//! Wire-level serving: a dependency-free HTTP/1.1 + JSON front end over
//! [`crate::service::SirumService`], built on `std::net` only so the build
//! stays offline.
//!
//! The subsystem splits into:
//!
//! - [`metrics`] — log-bucket latency histograms and the per-endpoint
//!   counters behind `GET /metrics` (also reused by the service layer for
//!   job-latency stats);
//! - [`http`] — request parsing and response writing for a deliberately
//!   small, hostile-input-hardened slice of HTTP/1.1 (keep-alive,
//!   pipelining, size caps, read timeouts);
//! - [`router`] — endpoint dispatch mapping the HTTP surface onto the
//!   in-process service API;
//! - [`server`] — the accept loop, connection cap, and graceful drain;
//! - [`client`] — a minimal blocking client used by the integration tests
//!   and the `loadgen` harness.

pub mod client;
pub mod http;
pub mod metrics;
pub mod router;
pub mod server;
