//! Endpoint dispatch: maps the HTTP surface onto the in-process
//! [`SirumService`] API. Pure request→response logic — no sockets — so the
//! whole routing layer is unit-testable without a listener.

use crate::json::{self, parse_json_with, JsonLimits, JsonValue};
use crate::net::http::{Request, Response};
use crate::net::metrics::{Endpoint, NetMetrics};
use crate::service::{IngestHandle, JobState, JobStatus, SirumService};
use parking_lot::Mutex;
use sirum_core::{Rule, SirumError, Variant, WILDCARD};
use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Serving knobs for the router (the server adds socket-level ones).
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// How long `POST /mine` waits inline for the job before answering
    /// `202 Accepted` with a job id (overridable per request via
    /// `wait_ms`). Default 15 s.
    pub default_wait: Duration,
    /// JSON parser limits applied to request bodies.
    pub json_limits: JsonLimits,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            default_wait: Duration::from_secs(15),
            json_limits: JsonLimits::default(),
        }
    }
}

/// The wire front end's dispatcher: owns the service handle, the
/// per-endpoint metrics and the server-held ingest streams.
pub struct Router {
    service: SirumService,
    metrics: Arc<NetMetrics>,
    // Two-level locking: the outer map lock is only ever held to look up
    // or insert an entry, never across ingest/mining work; each stream
    // serializes its own operations behind its own mutex, so a slow
    // `mine_more` on one table cannot stall `POST /stream` on another.
    streams: Mutex<HashMap<String, Arc<Mutex<IngestHandle>>>>,
    started: Instant,
    config: RouterConfig,
}

/// Map a service error to its wire status: unknown names are `404`,
/// shed load is `429`, internal serving trouble is `500`, and every
/// bad-input shape is `400`.
fn error_status(e: &SirumError) -> u16 {
    match e {
        SirumError::UnknownTable { .. } | SirumError::UnknownDemo { .. } => 404,
        SirumError::Overloaded { .. } => 429,
        SirumError::Service { .. } => 500,
        _ => 400,
    }
}

fn service_error(e: &SirumError) -> Response {
    let status = error_status(e);
    let response = Response::error(status, &e.to_string());
    if status == 429 {
        // Shed-load contract: tell closed-loop clients when to retry.
        response.with_header("retry-after", "1")
    } else {
        response
    }
}

// -- typed field extraction --------------------------------------------------

fn field_usize(body: &JsonValue, key: &str) -> Result<Option<usize>, Response> {
    match body.get(key) {
        None => Ok(None),
        Some(v) => v.as_usize().map(Some).ok_or_else(|| {
            Response::error(422, &format!("field {key:?} must be a nonnegative integer"))
        }),
    }
}

fn field_u64(body: &JsonValue, key: &str) -> Result<Option<u64>, Response> {
    match body.get(key) {
        None => Ok(None),
        Some(v) => v.as_u64().map(Some).ok_or_else(|| {
            Response::error(422, &format!("field {key:?} must be a nonnegative integer"))
        }),
    }
}

fn field_f64(body: &JsonValue, key: &str) -> Result<Option<f64>, Response> {
    match body.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_f64()
            .map(Some)
            .ok_or_else(|| Response::error(422, &format!("field {key:?} must be a number"))),
    }
}

fn field_bool(body: &JsonValue, key: &str) -> Result<Option<bool>, Response> {
    match body.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_bool()
            .map(Some)
            .ok_or_else(|| Response::error(422, &format!("field {key:?} must be a boolean"))),
    }
}

fn field_str<'v>(body: &'v JsonValue, key: &str) -> Result<Option<&'v str>, Response> {
    match body.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_str()
            .map(Some)
            .ok_or_else(|| Response::error(422, &format!("field {key:?} must be a string"))),
    }
}

/// Every field `POST /mine` understands; anything else is a typo worth a
/// `422` instead of a silently ignored knob.
const MINE_FIELDS: [&str; 19] = [
    "table",
    "k",
    "sample_size",
    "variant",
    "full_cube",
    "two_sided",
    "epsilon",
    "max_scaling_iterations",
    "seed",
    "rules_per_iter",
    "target_kl",
    "max_rules",
    "column_groups",
    "gain_sweep",
    "columnar",
    "packed",
    "prior",
    "timeout_ms",
    "wait_ms",
];

/// Parse `"prior": [[1, null, 3], …]` into rules (`null` = wildcard).
fn parse_prior(value: &JsonValue) -> Result<Vec<Rule>, Response> {
    let rows = value
        .as_array()
        .ok_or_else(|| Response::error(422, "field \"prior\" must be an array of rules"))?;
    let mut rules = Vec::with_capacity(rows.len());
    for row in rows {
        let cells = row.as_array().ok_or_else(|| {
            Response::error(422, "each prior rule must be an array of values/nulls")
        })?;
        let mut values = Vec::with_capacity(cells.len());
        for cell in cells {
            if cell.is_null() {
                values.push(WILDCARD);
            } else {
                let code = cell
                    .as_u64()
                    .filter(|c| *c < u64::from(u32::MAX))
                    .ok_or_else(|| {
                        Response::error(422, "prior rule values must be null or dictionary codes")
                    })?;
                values.push(code as u32);
            }
        }
        rules.push(Rule::from_values(values));
    }
    Ok(rules)
}

impl Router {
    /// Build a router over a service handle.
    pub fn new(service: SirumService, metrics: Arc<NetMetrics>, config: RouterConfig) -> Self {
        Router {
            service,
            metrics,
            streams: Mutex::new(HashMap::new()),
            started: Instant::now(),
            config,
        }
    }

    /// The shared metrics registry (exported by `GET /metrics`).
    pub fn metrics(&self) -> &Arc<NetMetrics> {
        &self.metrics
    }

    /// The underlying service handle.
    pub fn service(&self) -> &SirumService {
        &self.service
    }

    /// Dispatch one parsed request. Never panics; every outcome is a
    /// response paired with the endpoint label it is accounted under.
    pub fn handle(&self, request: &Request) -> (Endpoint, Response) {
        let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
        let method = request.method.as_str();
        match (method, segments.as_slice()) {
            ("GET", ["health"]) => (Endpoint::Health, self.health()),
            ("GET", ["tables"]) => (Endpoint::Tables, self.list_tables()),
            ("POST", ["tables"]) => match request.query_value("name") {
                Some(name) => (Endpoint::Tables, self.register_table(name, &request.body)),
                None => (
                    Endpoint::Tables,
                    Response::error(422, "POST /tables needs ?name=… (or use /tables/{name})"),
                ),
            },
            ("POST", ["tables", name]) => {
                (Endpoint::Tables, self.register_table(name, &request.body))
            }
            ("DELETE", ["tables", name]) => (Endpoint::Tables, self.unregister_table(name)),
            ("POST", ["mine"]) => (Endpoint::Mine, self.mine(request)),
            ("GET", ["jobs"]) => (Endpoint::Jobs, self.list_jobs()),
            ("GET", ["jobs", id]) => (Endpoint::Jobs, self.job(id, request)),
            ("DELETE", ["jobs", id]) => (Endpoint::Jobs, self.cancel_job(id)),
            ("GET", ["explain"]) => (Endpoint::Explain, self.explain(request)),
            ("POST", ["stream", table]) => (Endpoint::Stream, self.stream(table, &request.body)),
            ("GET", ["metrics"]) => (Endpoint::Metrics, self.metrics_snapshot()),
            ("GET", ["stats"]) => (Endpoint::Stats, self.stats()),
            (
                _,
                ["health" | "tables" | "mine" | "jobs" | "explain" | "stream" | "metrics" | "stats", ..],
            ) => (
                Endpoint::Other,
                Response::error(
                    405,
                    &format!("{method} is not supported on {}", request.path),
                ),
            ),
            _ => (
                Endpoint::Other,
                Response::error(404, &format!("no route for {}", request.path)),
            ),
        }
    }

    fn health(&self) -> Response {
        Response::json(
            200,
            format!(
                "{{\"status\":\"ok\",\"uptime_ms\":{}}}",
                self.started.elapsed().as_millis()
            ),
        )
    }

    fn list_tables(&self) -> Response {
        let mut out = String::from("{\"tables\":[");
        for (i, name) in self.service.table_names().iter().enumerate() {
            let Ok(table) = self.service.table(name) else {
                continue; // unregistered between listing and lookup
            };
            if i > 0 {
                out.push(',');
            }
            let _ = std::fmt::Write::write_fmt(
                &mut out,
                format_args!(
                    "{{\"name\":{},\"rows\":{},\"dims\":{},\"fingerprint\":\"{:016x}\"}}",
                    json::json_string(name),
                    table.num_rows(),
                    table.num_dims(),
                    table.fingerprint(),
                ),
            );
        }
        out.push_str("]}");
        Response::json(200, out)
    }

    fn register_table(&self, name: &str, body: &[u8]) -> Response {
        if name.is_empty() {
            return Response::error(422, "table name must be non-empty");
        }
        let csv = match std::str::from_utf8(body) {
            Ok(csv) => csv,
            Err(_) => return Response::error(400, "CSV body must be UTF-8"),
        };
        match self.service.register_csv(name, csv.as_bytes()) {
            Ok(table) => Response::json(
                200,
                format!(
                    "{{\"table\":{},\"rows\":{},\"dims\":{},\"fingerprint\":\"{:016x}\"}}",
                    json::json_string(name),
                    table.num_rows(),
                    table.num_dims(),
                    table.fingerprint(),
                ),
            ),
            Err(e) => service_error(&e),
        }
    }

    fn unregister_table(&self, name: &str) -> Response {
        // Drop any server-held ingest stream seeded from the table too.
        self.streams.lock().remove(name);
        match self.service.unregister(name) {
            Some(_) => Response::json(200, format!("{{\"removed\":{}}}", json::json_string(name))),
            None => Response::error(404, &format!("unknown table {name:?}")),
        }
    }

    fn mine(&self, request: &Request) -> Response {
        let body = match std::str::from_utf8(&request.body) {
            Ok(s) if !s.trim().is_empty() => s,
            _ => return Response::error(400, "POST /mine needs a JSON body"),
        };
        let parsed = match parse_json_with(body, self.config.json_limits) {
            Ok(v) => v,
            Err(e) => return Response::error(400, &format!("invalid JSON body: {e}")),
        };
        if let Some(entries) = parsed.entries() {
            for (key, _) in entries {
                if !MINE_FIELDS.contains(&key.as_str()) {
                    return Response::error(422, &format!("unknown field {key:?}"));
                }
            }
        } else {
            return Response::error(422, "mine request body must be a JSON object");
        }

        macro_rules! get {
            ($e:expr) => {
                match $e {
                    Ok(v) => v,
                    Err(resp) => return resp,
                }
            };
        }
        let table = match get!(field_str(&parsed, "table")) {
            Some(t) => t,
            None => return Response::error(422, "mine request needs a string \"table\" field"),
        };
        let mut req = self.service.mine(table);
        if let Some(k) = get!(field_usize(&parsed, "k")) {
            req = req.k(k);
        }
        if let Some(s) = get!(field_usize(&parsed, "sample_size")) {
            req = req.sample_size(s);
        }
        if let Some(v) = get!(field_str(&parsed, "variant")) {
            match v.parse::<Variant>() {
                Ok(variant) => req = req.variant(variant),
                Err(e) => return Response::error(422, &format!("invalid variant: {e}")),
            }
        }
        if get!(field_bool(&parsed, "full_cube")).unwrap_or(false) {
            req = req.full_cube();
        }
        if get!(field_bool(&parsed, "two_sided")).unwrap_or(false) {
            req = req.two_sided();
        }
        if let Some(e) = get!(field_f64(&parsed, "epsilon")) {
            req = req.epsilon(e);
        }
        if let Some(n) = get!(field_usize(&parsed, "max_scaling_iterations")) {
            req = req.max_scaling_iterations(n);
        }
        if let Some(seed) = get!(field_u64(&parsed, "seed")) {
            req = req.seed(seed);
        }
        if let Some(l) = get!(field_usize(&parsed, "rules_per_iter")) {
            req = req.rules_per_iter(l);
        }
        if let Some(t) = get!(field_f64(&parsed, "target_kl")) {
            req = req.target_kl(t);
        }
        if let Some(m) = get!(field_usize(&parsed, "max_rules")) {
            req = req.max_rules(m);
        }
        if let Some(g) = get!(field_usize(&parsed, "column_groups")) {
            req = req.column_groups(g);
        }
        if let Some(s) = get!(field_bool(&parsed, "gain_sweep")) {
            req = req.gain_sweep(s);
        }
        if let Some(c) = get!(field_bool(&parsed, "columnar")) {
            req = req.columnar(c);
        }
        if let Some(p) = get!(field_bool(&parsed, "packed")) {
            req = req.packed(p);
        }
        if let Some(prior) = parsed.get("prior") {
            match parse_prior(prior) {
                Ok(rules) => req = req.prior(rules),
                Err(resp) => return resp,
            }
        }
        if let Some(ms) = get!(field_u64(&parsed, "timeout_ms")) {
            req = req.deadline(Duration::from_millis(ms));
        }
        let wait = match get!(field_u64(&parsed, "wait_ms")) {
            Some(ms) => Duration::from_millis(ms),
            None => self.config.default_wait,
        };

        // Non-blocking admission: a full queue sheds with 429 instead of
        // stalling this connection thread (and the accept loop behind it).
        let handle = match req.try_submit() {
            Ok(handle) => handle,
            Err(e) => return service_error(&e),
        };
        let id = handle.id();
        drop(handle); // the registry keeps the job queryable by id
        if !wait.is_zero() {
            if let Some(outcome) = self.service.wait_job(id, wait) {
                return match outcome {
                    Ok(_) => self.job_response(id),
                    Err(e) => service_error(&e),
                };
            }
        }
        match self.service.job_status(id) {
            Some(_) => Response::json(202, format!("{{\"job\":{id},\"state\":\"queued\"}}")),
            None => Response::error(500, "job vanished from the registry"),
        }
    }

    fn list_jobs(&self) -> Response {
        let ids = self.service.job_ids();
        let rendered: Vec<String> = ids.iter().map(u64::to_string).collect();
        Response::json(200, format!("{{\"jobs\":[{}]}}", rendered.join(",")))
    }

    fn parse_job_id(&self, id: &str) -> Result<u64, Response> {
        id.parse::<u64>()
            .map_err(|_| Response::error(400, &format!("job id {id:?} must be an integer")))
    }

    fn job(&self, id: &str, request: &Request) -> Response {
        let id = match self.parse_job_id(id) {
            Ok(id) => id,
            Err(resp) => return resp,
        };
        if let Some(ms) = request.query_value("wait_ms") {
            match ms.parse::<u64>() {
                Ok(ms) => {
                    // lint:allow(SL008) — only the wait matters; job_response below re-reads the outcome non-consumingly
                    let _ = self.service.wait_job(id, Duration::from_millis(ms));
                }
                Err(_) => {
                    return Response::error(
                        400,
                        "wait_ms must be an integer number of milliseconds",
                    )
                }
            }
        }
        self.job_response(id)
    }

    /// Render a job's status (and, when finished, its full result) by id.
    fn job_response(&self, id: u64) -> Response {
        let Some(status) = self.service.job_status(id) else {
            return Response::error(
                404,
                &format!("unknown job {id} (never submitted or evicted)"),
            );
        };
        Response::json(200, self.job_json(&status))
    }

    fn job_json(&self, status: &JobStatus) -> String {
        let mut out = format!(
            "{{\"job\":{},\"table\":{},\"cancel_requested\":{}",
            status.id,
            json::json_string(&status.table),
            status.cancel_requested,
        );
        match &status.state {
            JobState::Queued => out.push_str(",\"state\":\"queued\""),
            JobState::Consumed => out.push_str(",\"state\":\"consumed\""),
            JobState::Failed { reason } => {
                let _ = std::fmt::Write::write_fmt(
                    &mut out,
                    format_args!(
                        ",\"state\":\"failed\",\"reason\":{}",
                        json::json_string(reason)
                    ),
                );
            }
            JobState::Done {
                from_cache,
                cancelled,
            } => {
                let _ = std::fmt::Write::write_fmt(
                    &mut out,
                    format_args!(
                        ",\"state\":\"done\",\"from_cache\":{from_cache},\"cancelled\":{cancelled}"
                    ),
                );
                // Attach the full result when both the outcome and the
                // table (for dictionary decoding) are still reachable.
                if let (Some(Ok(output)), Ok(table)) = (
                    self.service.job_output(status.id),
                    self.service.table(&status.table),
                ) {
                    out.push_str(",\"result\":");
                    out.push_str(&json::mining_result_to_json(&output.result, &table));
                }
            }
        }
        out.push('}');
        out
    }

    fn cancel_job(&self, id: &str) -> Response {
        let id = match self.parse_job_id(id) {
            Ok(id) => id,
            Err(resp) => return resp,
        };
        if self.service.cancel_job(id) {
            Response::json(200, format!("{{\"job\":{id},\"cancel_requested\":true}}"))
        } else {
            Response::error(404, &format!("unknown job {id}"))
        }
    }

    fn explain(&self, request: &Request) -> Response {
        let Some(table) = request.query_value("table") else {
            return Response::error(422, "GET /explain needs ?table=…");
        };
        let mut req = self.service.mine(table);
        for (key, value) in &request.query {
            macro_rules! parse {
                ($ty:ty) => {
                    match value.parse::<$ty>() {
                        Ok(v) => v,
                        Err(_) => {
                            return Response::error(
                                422,
                                &format!("query parameter {key}={value:?} is invalid"),
                            )
                        }
                    }
                };
            }
            match key.as_str() {
                "table" => {}
                "k" => req = req.k(parse!(usize)),
                "sample_size" => req = req.sample_size(parse!(usize)),
                "variant" => req = req.variant(parse!(Variant)),
                "full_cube" => {
                    if parse!(bool) {
                        req = req.full_cube();
                    }
                }
                "two_sided" => {
                    if parse!(bool) {
                        req = req.two_sided();
                    }
                }
                "seed" => req = req.seed(parse!(u64)),
                "rules_per_iter" => req = req.rules_per_iter(parse!(usize)),
                "column_groups" => req = req.column_groups(parse!(usize)),
                "gain_sweep" => req = req.gain_sweep(parse!(bool)),
                "columnar" => req = req.columnar(parse!(bool)),
                "packed" => req = req.packed(parse!(bool)),
                "target_kl" => req = req.target_kl(parse!(f64)),
                "max_rules" => req = req.max_rules(parse!(usize)),
                "epsilon" => req = req.epsilon(parse!(f64)),
                other => {
                    return Response::error(422, &format!("unknown query parameter {other:?}"))
                }
            }
        }
        let plan = match req.explain() {
            Ok(plan) => plan,
            Err(e) => return service_error(&e),
        };
        let packed_bits = match plan.packed_bits {
            Some(bits) => bits.to_string(),
            None => "null".to_string(),
        };
        Response::json(
            200,
            format!(
                "{{\"table\":{},\"rows\":{},\"dims\":{},\"k\":{},\"gain_sweep\":{},\"columnar\":{},\
                 \"packed_bits\":{},\"estimated_iterations\":{},\"estimated_stages\":{},\
                 \"estimated_lca_pairs\":{},\"estimated_secs\":{},\"cached\":{},\"rendered\":{}}}",
                json::json_string(&plan.table),
                plan.rows,
                plan.dims,
                plan.k,
                plan.gain_sweep,
                plan.columnar,
                packed_bits,
                plan.estimated_iterations,
                plan.estimated_stages,
                plan.estimated_lca_pairs,
                json::json_number(plan.estimated_secs),
                plan.cached,
                json::json_string(&plan.to_string()),
            ),
        )
    }

    fn stream(&self, table: &str, body: &[u8]) -> Response {
        let parsed = match std::str::from_utf8(body)
            .map_err(|_| ())
            .and_then(|s| parse_json_with(s, self.config.json_limits).map_err(|_| ()))
        {
            Ok(v) => v,
            Err(()) => return Response::error(400, "POST /stream needs a JSON body"),
        };
        let mut rows: Vec<(Vec<u32>, f64)> = Vec::new();
        if let Some(list) = parsed.get("rows") {
            let Some(list) = list.as_array() else {
                return Response::error(422, "field \"rows\" must be an array");
            };
            for row in list {
                let codes = row.get("codes").and_then(|c| c.as_array());
                let measure = row.get("measure").and_then(|m| m.as_f64());
                let (Some(codes), Some(measure)) = (codes, measure) else {
                    return Response::error(
                        422,
                        "each row needs {\"codes\": [dictionary codes], \"measure\": number}",
                    );
                };
                let mut decoded = Vec::with_capacity(codes.len());
                for code in codes {
                    match code.as_u64().filter(|c| *c < u64::from(u32::MAX)) {
                        Some(c) => decoded.push(c as u32),
                        None => return Response::error(422, "codes must be u32 dictionary codes"),
                    }
                }
                rows.push((decoded, measure));
            }
        }
        let mine_more = match parsed.get("mine_more") {
            None => None,
            Some(v) => match v.as_usize() {
                Some(k) => Some(k),
                None => {
                    return Response::error(
                        422,
                        "field \"mine_more\" must be a nonnegative integer",
                    )
                }
            },
        };

        let stream = {
            let mut streams = self.streams.lock();
            match streams.entry(table.to_string()) {
                std::collections::hash_map::Entry::Occupied(e) => Arc::clone(e.get()),
                std::collections::hash_map::Entry::Vacant(slot) => {
                    match self.service.stream(table) {
                        Ok(handle) => Arc::clone(slot.insert(Arc::new(Mutex::new(handle)))),
                        Err(e) => return service_error(&e),
                    }
                }
            }
        };
        let mut handle = stream.lock();
        let borrowed: Vec<(&[u32], f64)> = rows.iter().map(|(r, m)| (r.as_slice(), *m)).collect();
        // lint:allow(SL003) — per-stream guard: serializing one stream's own ingest is the contract
        if let Err(e) = handle.ingest(&borrowed) {
            return service_error(&e);
        }
        let added = match mine_more {
            // lint:allow(SL003) — per-stream guard: mine_more extends this stream's own pool
            Some(k) => match handle.mine_more(k) {
                Ok(added) => added.len(),
                Err(e) => return service_error(&e),
            },
            None => 0,
        };
        Response::json(
            200,
            format!(
                "{{\"table\":{},\"rows\":{},\"rules\":{},\"added\":{added},\"kl\":{}}}",
                json::json_string(table),
                handle.len(),
                handle.rules().len(),
                json::json_number(handle.kl()),
            ),
        )
    }

    /// Render block-store memory pressure as a JSON object fragment.
    fn memory_json(memory: &sirum_dataflow::MemoryStats) -> String {
        format!(
            "{{\"resident_bytes\":{},\"spilled_bytes\":{},\"evictions\":{}}}",
            memory.resident_bytes, memory.spilled_bytes, memory.evictions,
        )
    }

    fn metrics_snapshot(&self) -> Response {
        Response::json(
            200,
            format!(
                "{{\"uptime_ms\":{},\"connections\":{},\"connections_rejected\":{},\
                 \"read_failures\":{},\"write_failures\":{},\"memory\":{},\"endpoints\":{}}}",
                self.started.elapsed().as_millis(),
                self.metrics.connections.load(Ordering::Relaxed),
                self.metrics.connections_rejected.load(Ordering::Relaxed),
                self.metrics.read_failures.load(Ordering::Relaxed),
                self.metrics.write_failures.load(Ordering::Relaxed),
                Self::memory_json(&self.service.stats().memory),
                self.metrics.endpoints_json(),
            ),
        )
    }

    fn stats(&self) -> Response {
        let stats = self.service.stats();
        let active: Vec<String> = stats.active_jobs.iter().map(u64::to_string).collect();
        Response::json(
            200,
            format!(
                "{{\"cache_hits\":{},\"cache_misses\":{},\"jobs_executed\":{},\
                 \"jobs_cancelled\":{},\"jobs_coalesced\":{},\"jobs_rejected\":{},\
                 \"queue_depth\":{},\"cache_entries\":{},\"active_jobs\":[{}],\
                 \"job_latency\":{},\"memory\":{}}}",
                stats.cache_hits,
                stats.cache_misses,
                stats.jobs_executed,
                stats.jobs_cancelled,
                stats.jobs_coalesced,
                stats.jobs_rejected,
                stats.queue_depth,
                stats.cache_entries,
                active.join(","),
                stats.job_latency.to_json(),
                Self::memory_json(&stats.memory),
            ),
        )
    }
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Router")
            .field("tables", &self.service.table_names())
            .field("streams", &self.streams.lock().len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse_json;
    use crate::net::http::Request;

    fn request(method: &str, target: &str, body: &[u8]) -> Request {
        let (path, query) = match target.split_once('?') {
            Some((p, q)) => (
                p.to_string(),
                q.split('&')
                    .filter(|kv| !kv.is_empty())
                    .map(|kv| match kv.split_once('=') {
                        Some((k, v)) => (k.to_string(), v.to_string()),
                        None => (kv.to_string(), String::new()),
                    })
                    .collect(),
            ),
            None => (target.to_string(), Vec::new()),
        };
        Request {
            method: method.to_string(),
            path,
            query,
            headers: Vec::new(),
            body: body.to_vec(),
            keep_alive: true,
        }
    }

    fn router() -> Router {
        let service = SirumService::in_memory().expect("service");
        service.register_demo("flights").expect("demo");
        Router::new(
            service,
            Arc::new(NetMetrics::new()),
            RouterConfig::default(),
        )
    }

    fn body_json(resp: &Response) -> JsonValue {
        parse_json(std::str::from_utf8(&resp.body).expect("utf8 body")).expect("json body")
    }

    #[test]
    fn health_tables_and_stats_respond() {
        let r = router();
        let (ep, resp) = r.handle(&request("GET", "/health", b""));
        assert_eq!((ep, resp.status), (Endpoint::Health, 200));
        let (_, resp) = r.handle(&request("GET", "/tables", b""));
        let tables = body_json(&resp);
        let names = tables
            .get("tables")
            .and_then(|t| t.as_array())
            .expect("array");
        assert_eq!(names.len(), 1);
        assert_eq!(
            names[0].get("name").and_then(|n| n.as_str()),
            Some("flights")
        );
        let (_, resp) = r.handle(&request("GET", "/stats", b""));
        assert_eq!(resp.status, 200);
        let stats = body_json(&resp);
        assert!(stats.get("job_latency").is_some());
        // Memory pressure is part of the serving surface: resident bytes
        // plus spill/eviction counters from the engine's block store.
        let memory = stats.get("memory").expect("memory object");
        for key in ["resident_bytes", "spilled_bytes", "evictions"] {
            assert!(memory.get(key).and_then(|v| v.as_u64()).is_some(), "{key}");
        }
    }

    #[test]
    fn mine_round_trips_inline_and_matches_in_process() {
        let r = router();
        let (ep, resp) = r.handle(&request(
            "POST",
            "/mine",
            br#"{"table":"flights","k":2,"sample_size":14}"#,
        ));
        assert_eq!((ep, resp.status), (Endpoint::Mine, 200));
        let body = body_json(&resp);
        assert_eq!(body.get("state").and_then(|s| s.as_str()), Some("done"));
        let rules = body
            .get("result")
            .and_then(|r| r.get("rules"))
            .and_then(|r| r.as_array())
            .expect("rules");
        assert_eq!(rules.len(), 3);
        // Bit-identical to the in-process path: the wire result is the
        // same JSON the service renders directly.
        let table = r.service().table("flights").expect("table");
        let out = r
            .service()
            .mine("flights")
            .k(2)
            .sample_size(14)
            .run()
            .expect("run");
        let inline = json::mining_result_to_json(&out.result, &table);
        let wire = body.get("result").expect("result").render();
        assert_eq!(
            parse_json(&inline).expect("json"),
            parse_json(&wire).expect("json")
        );
    }

    #[test]
    fn mine_validates_its_body() {
        let r = router();
        for (body, status) in [
            (&b"not json"[..], 400),
            (br#"[1,2,3]"#, 422),
            (br#"{"k":3}"#, 422),
            (br#"{"table":"flights","kk":3}"#, 422),
            (br#"{"table":"flights","k":"three"}"#, 422),
            (br#"{"table":"nope"}"#, 404),
            (br#"{"table":"flights","variant":"warp-speed"}"#, 422),
            (br#"{"table":"flights","sample_size":0}"#, 400),
        ] {
            let (_, resp) = r.handle(&request("POST", "/mine", body));
            assert_eq!(
                resp.status,
                status,
                "body {:?} → {}",
                String::from_utf8_lossy(body),
                String::from_utf8_lossy(&resp.body)
            );
        }
    }

    #[test]
    fn async_mine_jobs_are_pollable_and_cancellable() {
        let r = router();
        let (_, resp) = r.handle(&request(
            "POST",
            "/mine",
            br#"{"table":"flights","k":1,"sample_size":14,"wait_ms":0}"#,
        ));
        assert_eq!(resp.status, 202, "{}", String::from_utf8_lossy(&resp.body));
        let id = body_json(&resp)
            .get("job")
            .and_then(|j| j.as_u64())
            .expect("job id");
        // Poll with a wait until done.
        let (_, resp) = r.handle(&request("GET", &format!("/jobs/{id}?wait_ms=30000"), b""));
        assert_eq!(resp.status, 200);
        let body = body_json(&resp);
        assert_eq!(body.get("state").and_then(|s| s.as_str()), Some("done"));
        assert!(body.get("result").is_some());
        // Listed, cancellable (no-op once done), and unknown ids 404.
        let (_, resp) = r.handle(&request("GET", "/jobs", b""));
        assert!(body_json(&resp)
            .get("jobs")
            .and_then(|j| j.as_array())
            .is_some());
        let (_, resp) = r.handle(&request("DELETE", &format!("/jobs/{id}"), b""));
        assert_eq!(resp.status, 200);
        let (_, resp) = r.handle(&request("GET", "/jobs/999999", b""));
        assert_eq!(resp.status, 404);
        let (_, resp) = r.handle(&request("DELETE", "/jobs/999999", b""));
        assert_eq!(resp.status, 404);
        let (_, resp) = r.handle(&request("GET", "/jobs/bogus", b""));
        assert_eq!(resp.status, 400);
    }

    #[test]
    fn explain_routes_query_knobs() {
        let r = router();
        let (_, resp) = r.handle(&request(
            "GET",
            "/explain?table=flights&k=3&sample_size=14&gain_sweep=true",
            b"",
        ));
        assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
        let body = body_json(&resp);
        assert_eq!(body.get("rows").and_then(|v| v.as_u64()), Some(14));
        assert_eq!(body.get("cached").and_then(|v| v.as_bool()), Some(false));
        let (_, resp) = r.handle(&request("GET", "/explain?table=flights&k=zap", b""));
        assert_eq!(resp.status, 422);
        let (_, resp) = r.handle(&request("GET", "/explain?table=flights&warp=1", b""));
        assert_eq!(resp.status, 422);
        let (_, resp) = r.handle(&request("GET", "/explain", b""));
        assert_eq!(resp.status, 422);
        let (_, resp) = r.handle(&request("GET", "/explain?table=nope", b""));
        assert_eq!(resp.status, 404);
    }

    #[test]
    fn tables_register_and_unregister_over_the_wire() {
        let r = router();
        let csv = b"city,color,n\nparis,red,3\nparis,blue,4\nlyon,red,5\n";
        let (_, resp) = r.handle(&request("POST", "/tables/trips", csv));
        assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
        let body = body_json(&resp);
        assert_eq!(body.get("rows").and_then(|v| v.as_u64()), Some(3));
        assert_eq!(body.get("dims").and_then(|v| v.as_u64()), Some(2));
        // Mining the uploaded table works end to end.
        let (_, resp) = r.handle(&request(
            "POST",
            "/mine",
            br#"{"table":"trips","k":1,"sample_size":3}"#,
        ));
        assert_eq!(resp.status, 200);
        // Bad uploads are typed errors, not panics.
        let (_, resp) = r.handle(&request("POST", "/tables/bad", b"\xff\xfe garbage"));
        assert_eq!(resp.status, 400);
        let (_, resp) = r.handle(&request("POST", "/tables/bad", b"only,a,header\n"));
        assert_eq!(resp.status, 400);
        let (_, resp) = r.handle(&request("POST", "/tables?other=1", csv));
        assert_eq!(resp.status, 422);
        // Unregister, then the table is gone.
        let (_, resp) = r.handle(&request("DELETE", "/tables/trips", b""));
        assert_eq!(resp.status, 200);
        let (_, resp) = r.handle(&request("DELETE", "/tables/trips", b""));
        assert_eq!(resp.status, 404);
    }

    #[test]
    fn stream_ingests_and_reports_model_state() {
        let r = router();
        // Codes straight from the demo table's first row.
        let table = r.service().table("flights").expect("table");
        let row: Vec<u32> = table.row(0).to_vec();
        let body = format!(
            "{{\"rows\":[{{\"codes\":[{},{},{}],\"measure\":5.0}}],\"mine_more\":1}}",
            row[0], row[1], row[2]
        );
        let (ep, resp) = r.handle(&request("POST", "/stream/flights", body.as_bytes()));
        assert_eq!((ep, resp.status), (Endpoint::Stream, 200));
        let parsed = body_json(&resp);
        assert_eq!(parsed.get("rows").and_then(|v| v.as_u64()), Some(15));
        // Hostile stream bodies are typed errors.
        let (_, resp) = r.handle(&request("POST", "/stream/flights", b"{\"rows\":[{}]}"));
        assert_eq!(resp.status, 422);
        let (_, resp) = r.handle(&request("POST", "/stream/nope", b"{}"));
        assert_eq!(resp.status, 404);
    }

    #[test]
    fn unknown_routes_and_methods_are_typed() {
        let r = router();
        let (ep, resp) = r.handle(&request("GET", "/warp", b""));
        assert_eq!((ep, resp.status), (Endpoint::Other, 404));
        let (ep, resp) = r.handle(&request("PATCH", "/tables", b""));
        assert_eq!((ep, resp.status), (Endpoint::Other, 405));
        let (_, resp) = r.handle(&request("POST", "/health", b""));
        assert_eq!(resp.status, 405);
    }

    #[test]
    fn metrics_endpoint_reports_endpoint_counters() {
        let r = router();
        let (ep, resp) = r.handle(&request("GET", "/metrics", b""));
        assert_eq!((ep, resp.status), (Endpoint::Metrics, 200));
        let body = body_json(&resp);
        assert!(body.get("endpoints").and_then(|e| e.get("mine")).is_some());
        assert!(body
            .get("memory")
            .and_then(|m| m.get("evictions"))
            .is_some());
    }
}
