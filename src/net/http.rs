//! A deliberately small, hostile-input-hardened slice of HTTP/1.1 over
//! `std::io` — request parsing and response writing for the SIRUM wire
//! front end. No external dependencies; the grammar subset is: request
//! line + headers + optional `Content-Length` body, keep-alive and
//! pipelining via the caller's buffered reader, no chunked encoding
//! (`501`), hard caps on head and body size, and socket read timeouts
//! surfacing as typed errors (slow-loris → `408`).

use std::io::{self, BufRead, Read, Write};

/// Size caps applied while reading one request.
#[derive(Debug, Clone, Copy)]
pub struct HttpLimits {
    /// Cap on the request line + headers, bytes (default 16 KiB → `431`).
    pub max_head_bytes: usize,
    /// Cap on the declared body size, bytes (default 16 MiB → `413`).
    pub max_body_bytes: usize,
}

impl Default for HttpLimits {
    fn default() -> Self {
        HttpLimits {
            max_head_bytes: 16 << 10,
            max_body_bytes: 16 << 20,
        }
    }
}

/// A parsed request: method, decoded path, query pairs, lowercased
/// headers, body bytes.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method token (`GET`, `POST`, `DELETE`, …).
    pub method: String,
    /// Percent-decoded path, query stripped (always starts with `/`).
    pub path: String,
    /// Percent-decoded query pairs in order of appearance.
    pub query: Vec<(String, String)>,
    /// Headers with lowercased names, values trimmed.
    pub headers: Vec<(String, String)>,
    /// The body (empty without `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the client asked to keep the connection open.
    pub keep_alive: bool,
}

impl Request {
    /// First value of a (lowercase) header name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// First value of a query key.
    pub fn query_value(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read. Each protocol variant maps to one
/// response status; `Io`/`Closed` are connection-level (no response).
#[derive(Debug)]
pub enum HttpError {
    /// Clean EOF before the first byte of a request (keep-alive close).
    Closed,
    /// Malformed request line, header, or `Content-Length` → `400`.
    BadRequest(String),
    /// The socket read timed out mid-request (slow-loris) → `408`.
    Timeout,
    /// Declared body exceeds the cap → `413`.
    BodyTooLarge {
        /// The configured cap in bytes.
        limit: usize,
    },
    /// Request line + headers exceed the cap → `431`.
    HeadTooLarge {
        /// The configured cap in bytes.
        limit: usize,
    },
    /// A feature outside the supported subset (chunked bodies) → `501`.
    Unsupported(&'static str),
    /// Any other I/O failure; the connection is dropped without a
    /// response.
    Io(io::Error),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Closed => write!(f, "connection closed"),
            HttpError::BadRequest(reason) => write!(f, "bad request: {reason}"),
            HttpError::Timeout => write!(f, "timed out reading the request"),
            HttpError::BodyTooLarge { limit } => {
                write!(f, "request body exceeds the {limit}-byte cap")
            }
            HttpError::HeadTooLarge { limit } => {
                write!(f, "request head exceeds the {limit}-byte cap")
            }
            HttpError::Unsupported(what) => write!(f, "unsupported: {what}"),
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for HttpError {}

impl HttpError {
    /// The response status this error maps to; `None` for connection-level
    /// failures that get no response.
    pub fn status(&self) -> Option<u16> {
        match self {
            HttpError::Closed | HttpError::Io(_) => None,
            HttpError::BadRequest(_) => Some(400),
            HttpError::Timeout => Some(408),
            HttpError::BodyTooLarge { .. } => Some(413),
            HttpError::HeadTooLarge { .. } => Some(431),
            HttpError::Unsupported(_) => Some(501),
        }
    }

    fn from_io(e: io::Error) -> Self {
        match e.kind() {
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => HttpError::Timeout,
            _ => HttpError::Io(e),
        }
    }
}

/// Read one `\n`-terminated line, bounded by `remaining` head bytes.
/// Returns the line without its terminator. `at_start` distinguishes a
/// clean keep-alive close from truncation mid-request.
fn read_line(
    reader: &mut impl BufRead,
    remaining: &mut usize,
    limit: usize,
    at_start: bool,
) -> Result<Vec<u8>, HttpError> {
    let mut line = Vec::new();
    let budget = (*remaining + 1) as u64; // +1 so overflow is detectable
    let n = (&mut *reader)
        .take(budget)
        .read_until(b'\n', &mut line)
        .map_err(HttpError::from_io)?;
    if n == 0 {
        return Err(if at_start && line.is_empty() {
            HttpError::Closed
        } else {
            HttpError::BadRequest("truncated request head".into())
        });
    }
    if line.last() != Some(&b'\n') {
        // Budget exhausted (or EOF) before the terminator.
        return Err(if n > *remaining {
            HttpError::HeadTooLarge { limit }
        } else {
            HttpError::BadRequest("truncated request head".into())
        });
    }
    *remaining = remaining.saturating_sub(n);
    line.pop();
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    Ok(line)
}

/// Percent-decode a URL component (`%XX`, and `+` → space when `plus`).
/// Invalid escapes pass through literally — hostile input must not panic
/// or error the whole request over a stray `%`.
fn percent_decode(input: &str, plus: bool) -> String {
    let bytes = input.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes.get(i + 1..i + 3);
                match hex
                    .and_then(|h| std::str::from_utf8(h).ok())
                    .and_then(|h| u8::from_str_radix(h, 16).ok())
                {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' if plus => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Split a request target into decoded path and query pairs.
fn parse_target(target: &str) -> (String, Vec<(String, String)>) {
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let pairs = query
        .split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (percent_decode(k, true), percent_decode(v, true)),
            None => (percent_decode(kv, true), String::new()),
        })
        .collect();
    (percent_decode(path, false), pairs)
}

/// Read and parse one request from a (possibly pipelined) connection.
///
/// # Errors
/// [`HttpError::Closed`] on clean EOF between requests; otherwise the
/// protocol error mapping to a 4xx/5xx status, or [`HttpError::Io`] for
/// connection-level failures.
pub fn read_request(reader: &mut impl BufRead, limits: &HttpLimits) -> Result<Request, HttpError> {
    let mut remaining = limits.max_head_bytes;
    let line = read_line(reader, &mut remaining, limits.max_head_bytes, true)?;
    let line = String::from_utf8(line)
        .map_err(|_| HttpError::BadRequest("request line is not UTF-8".into()))?;
    if line.bytes().any(|b| b < 0x20 && b != b'\t') {
        return Err(HttpError::BadRequest(
            "control characters in request line".into(),
        ));
    }
    let mut parts = line.split_ascii_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m, t, v),
        _ => {
            return Err(HttpError::BadRequest(format!(
                "malformed request line {line:?}"
            )))
        }
    };
    if !matches!(version, "HTTP/1.1" | "HTTP/1.0") {
        return Err(HttpError::BadRequest(format!(
            "unsupported protocol version {version:?}"
        )));
    }
    if !target.starts_with('/') {
        return Err(HttpError::BadRequest(format!(
            "request target {target:?} must be origin-form"
        )));
    }

    let mut headers: Vec<(String, String)> = Vec::new();
    loop {
        let line = read_line(reader, &mut remaining, limits.max_head_bytes, false)?;
        if line.is_empty() {
            break;
        }
        let line = String::from_utf8(line)
            .map_err(|_| HttpError::BadRequest("header is not UTF-8".into()))?;
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::BadRequest(format!("header without colon: {line:?}")))?;
        if name.is_empty() || name.contains(' ') || name.contains('\t') {
            return Err(HttpError::BadRequest(format!(
                "invalid header name {name:?}"
            )));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    let header = |name: &str| {
        headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    };
    if header("transfer-encoding").is_some() {
        return Err(HttpError::Unsupported("transfer-encoding (chunked bodies)"));
    }
    let content_length = match header("content-length") {
        None => 0,
        Some(v) => v.trim().parse::<usize>().map_err(|_| {
            HttpError::BadRequest(format!("content-length {v:?} is not a valid length"))
        })?,
    };
    if content_length > limits.max_body_bytes {
        return Err(HttpError::BodyTooLarge {
            limit: limits.max_body_bytes,
        });
    }
    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        reader.read_exact(&mut body).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                HttpError::BadRequest("body shorter than content-length".into())
            } else {
                HttpError::from_io(e)
            }
        })?;
    }

    let keep_alive = match header("connection").map(str::to_ascii_lowercase) {
        Some(v) if v.contains("close") => false,
        Some(v) if v.contains("keep-alive") => true,
        _ => version == "HTTP/1.1",
    };
    let (path, query) = parse_target(target);
    Ok(Request {
        method: method.to_ascii_uppercase(),
        path,
        query,
        headers,
        body,
        keep_alive,
    })
}

/// A response about to be written: status, body, content type, plus any
/// extra headers (e.g. `Retry-After`).
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Body bytes.
    pub body: Vec<u8>,
    /// Extra headers appended verbatim.
    pub extra_headers: Vec<(&'static str, String)>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "application/json",
            body: body.into_bytes(),
            extra_headers: Vec::new(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into().into_bytes(),
            extra_headers: Vec::new(),
        }
    }

    /// A JSON error envelope: `{"error": "..."}`.
    pub fn error(status: u16, message: &str) -> Self {
        Response::json(
            status,
            format!("{{\"error\":{}}}", crate::json::json_string(message)),
        )
    }

    /// Append an extra header.
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Self {
        self.extra_headers.push((name, value.into()));
        self
    }
}

/// Canonical reason phrase for the statuses this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Serialize a response. `keep_alive` selects the `Connection` header; the
/// body always carries an exact `Content-Length` so pipelined clients can
/// frame it.
pub fn write_response(
    writer: &mut impl Write,
    response: &Response,
    keep_alive: bool,
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\n",
        response.status,
        reason(response.status),
        response.content_type,
        response.body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    for (name, value) in &response.extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    writer.write_all(head.as_bytes())?;
    writer.write_all(&response.body)?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(input: &[u8]) -> Result<Request, HttpError> {
        read_request(&mut BufReader::new(input), &HttpLimits::default())
    }

    #[test]
    fn parses_a_get_with_query_and_headers() {
        let req =
            parse(b"GET /explain?table=air%20fares&k=3 HTTP/1.1\r\nHost: x\r\nX-Custom: v\r\n\r\n")
                .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/explain");
        assert_eq!(req.query_value("table"), Some("air fares"));
        assert_eq!(req.query_value("k"), Some("3"));
        assert_eq!(req.header("x-custom"), Some("v"));
        assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_a_post_body_by_content_length() {
        let req = parse(b"POST /mine HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello").unwrap();
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn pipelined_requests_parse_back_to_back() {
        let wire = b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\nConnection: close\r\n\r\n";
        let mut reader = BufReader::new(&wire[..]);
        let limits = HttpLimits::default();
        let a = read_request(&mut reader, &limits).unwrap();
        let b = read_request(&mut reader, &limits).unwrap();
        assert_eq!((a.path.as_str(), b.path.as_str()), ("/a", "/b"));
        assert!(a.keep_alive && !b.keep_alive);
        assert!(matches!(
            read_request(&mut reader, &limits),
            Err(HttpError::Closed)
        ));
    }

    #[test]
    fn hostile_inputs_map_to_typed_errors() {
        // Truncated head.
        assert!(matches!(
            parse(b"GET /x HTTP/1.1\r\nHost: tru"),
            Err(HttpError::BadRequest(_))
        ));
        // Garbage request line.
        assert!(matches!(
            parse(b"\x01\x02\x03\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        // Bad content-length.
        assert!(matches!(
            parse(b"POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse(b"POST /x HTTP/1.1\r\nContent-Length: -4\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        // Body shorter than declared.
        assert!(matches!(
            parse(b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"),
            Err(HttpError::BadRequest(_))
        ));
        // Chunked is refused, not mis-framed.
        assert!(matches!(
            parse(b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n"),
            Err(HttpError::Unsupported(_))
        ));
        // Proxy-form targets are rejected.
        assert!(matches!(
            parse(b"GET http://evil/ HTTP/1.1\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        // Unsupported version.
        assert!(matches!(
            parse(b"GET / HTTP/9.9\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
    }

    #[test]
    fn oversized_head_and_body_hit_their_caps() {
        let limits = HttpLimits {
            max_head_bytes: 64,
            max_body_bytes: 8,
        };
        let long = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(200));
        assert!(matches!(
            read_request(&mut BufReader::new(long.as_bytes()), &limits),
            Err(HttpError::HeadTooLarge { limit: 64 })
        ));
        let big = b"POST /x HTTP/1.1\r\nContent-Length: 9\r\n\r\n123456789";
        assert!(matches!(
            read_request(&mut BufReader::new(&big[..]), &limits),
            Err(HttpError::BodyTooLarge { limit: 8 })
        ));
        // An over-cap *declaration* is enough — the body is never read.
        let declared = b"POST /x HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n";
        assert!(matches!(
            read_request(&mut BufReader::new(&declared[..]), &limits),
            Err(HttpError::BodyTooLarge { .. })
        ));
    }

    #[test]
    fn error_statuses_match_the_contract() {
        assert_eq!(HttpError::Closed.status(), None);
        assert_eq!(HttpError::BadRequest(String::new()).status(), Some(400));
        assert_eq!(HttpError::Timeout.status(), Some(408));
        assert_eq!(HttpError::BodyTooLarge { limit: 1 }.status(), Some(413));
        assert_eq!(HttpError::HeadTooLarge { limit: 1 }.status(), Some(431));
        assert_eq!(HttpError::Unsupported("x").status(), Some(501));
    }

    #[test]
    fn responses_serialize_with_exact_framing() {
        let mut out = Vec::new();
        let resp =
            Response::json(429, "{\"error\":\"busy\"}".to_string()).with_header("retry-after", "1");
        write_response(&mut out, &resp, true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("content-length: 16\r\n"));
        assert!(text.contains("retry-after: 1\r\n"));
        assert!(text.contains("connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"error\":\"busy\"}"));
    }

    #[test]
    fn percent_decoding_is_lenient_on_bad_escapes() {
        assert_eq!(percent_decode("a%2Fb", false), "a/b");
        assert_eq!(percent_decode("a+b", true), "a b");
        assert_eq!(percent_decode("a+b", false), "a+b");
        assert_eq!(percent_decode("100%", false), "100%");
        assert_eq!(percent_decode("%zz", false), "%zz");
    }
}
