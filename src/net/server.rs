//! The accept loop: thread-per-connection serving with a connection cap,
//! per-socket read timeouts, and graceful drain.
//!
//! Admission control happens at two layers. At the socket layer, accepts
//! beyond [`ServerConfig::max_connections`] are answered `503` and closed
//! immediately — the accept loop itself never blocks on a slow client. At
//! the job layer, the router submits mining work non-blockingly, so a full
//! worker queue surfaces as `429` + `Retry-After` while the server keeps
//! answering cheap endpoints.

use crate::net::http::{self, HttpError, HttpLimits, Response};
use crate::net::router::Router;
use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Socket-layer serving knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Concurrent connections served before new accepts get `503`
    /// (default 64).
    pub max_connections: usize,
    /// Per-socket read timeout; a connection that stalls mid-request
    /// (slow-loris) is answered `408` and closed (default 10 s).
    pub read_timeout: Duration,
    /// Head/body size caps applied to every request.
    pub limits: HttpLimits,
    /// How long [`Server::shutdown`] waits for in-flight connections to
    /// finish before giving up on them (default 5 s).
    pub drain_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_connections: 64,
            read_timeout: Duration::from_secs(10),
            limits: HttpLimits::default(),
            drain_timeout: Duration::from_secs(5),
        }
    }
}

/// A running HTTP server: owns the accept thread and the shutdown flag.
/// Dropping it drains gracefully.
pub struct Server {
    router: Arc<Router>,
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    active: Arc<AtomicUsize>,
    accept: Option<thread::JoinHandle<()>>,
    drain_timeout: Duration,
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and start
    /// serving `router` on a background accept thread.
    ///
    /// # Errors
    ///
    /// Returns the bind error if the address is unavailable.
    pub fn bind(
        addr: impl ToSocketAddrs,
        router: Router,
        config: ServerConfig,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let router = Arc::new(router);
        let shutdown = Arc::new(AtomicBool::new(false));
        let active = Arc::new(AtomicUsize::new(0));
        let drain_timeout = config.drain_timeout;
        let accept = thread::Builder::new().name("sirum-accept".into()).spawn({
            let router = Arc::clone(&router);
            let shutdown = Arc::clone(&shutdown);
            let active = Arc::clone(&active);
            move || accept_loop(&listener, &router, &shutdown, &active, &config)
        })?;
        Ok(Server {
            router,
            local_addr,
            shutdown,
            active,
            accept: Some(accept),
            drain_timeout,
        })
    }

    /// The bound address (port resolved if `:0` was requested).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The router behind the accept loop (shared with connection threads).
    pub fn router(&self) -> &Arc<Router> {
        &self.router
    }

    /// Connections currently being served.
    pub fn active_connections(&self) -> usize {
        self.active.load(Ordering::Acquire)
    }

    /// Stop accepting, wake the accept thread, and wait up to the drain
    /// timeout for in-flight connections to finish. Keep-alive clients get
    /// `Connection: close` on their next response.
    pub fn shutdown(mut self) {
        self.drain();
    }

    fn drain(&mut self) {
        let Some(handle) = self.accept.take() else {
            return;
        };
        self.shutdown.store(true, Ordering::Release);
        // The accept thread is parked in `accept()`; a throwaway local
        // connection is the portable way to wake it so it can observe the
        // flag and exit.
        // lint:allow(SL008) — wake-up probe; if connect fails the listener is already dead and accept() returns anyway
        let _ = TcpStream::connect(self.local_addr);
        // lint:allow(SL008) — Err means the accept thread panicked; drain still bounds the wait below and Drop must not propagate
        let _ = handle.join();
        let deadline = Instant::now() + self.drain_timeout;
        while self.active.load(Ordering::Acquire) > 0 && Instant::now() < deadline {
            thread::sleep(Duration::from_millis(5));
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.drain();
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("local_addr", &self.local_addr)
            .field("active", &self.active.load(Ordering::Relaxed))
            .field("draining", &self.shutdown.load(Ordering::Relaxed))
            .finish()
    }
}

fn accept_loop(
    listener: &TcpListener,
    router: &Arc<Router>,
    shutdown: &Arc<AtomicBool>,
    active: &Arc<AtomicUsize>,
    config: &ServerConfig,
) {
    let metrics = Arc::clone(router.metrics());
    loop {
        let stream = match listener.accept() {
            Ok((stream, _peer)) => stream,
            Err(_) => {
                if shutdown.load(Ordering::Acquire) {
                    return;
                }
                // Transient accept failure (EMFILE, aborted handshake):
                // back off briefly instead of spinning.
                // lint:allow(SL004) — bounded 10 ms backoff on accept errors, the one deliberate pause in this loop
                thread::sleep(Duration::from_millis(10));
                continue;
            }
        };
        if shutdown.load(Ordering::Acquire) {
            return; // the wakeup connection itself lands here
        }
        metrics.connections.fetch_add(1, Ordering::Relaxed);
        if active.load(Ordering::Acquire) >= config.max_connections {
            reject_connection(stream, &metrics);
            continue;
        }
        active.fetch_add(1, Ordering::AcqRel);
        let spawned = thread::Builder::new().name("sirum-conn".into()).spawn({
            let router = Arc::clone(router);
            let shutdown = Arc::clone(shutdown);
            let active = Arc::clone(active);
            let config = config.clone();
            move || {
                serve_connection(stream, &router, &shutdown, &config);
                active.fetch_sub(1, Ordering::AcqRel);
            }
        });
        if spawned.is_err() {
            // Thread exhaustion is load shedding too; the slot was never
            // really taken.
            active.fetch_sub(1, Ordering::AcqRel);
            metrics.connections_rejected.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Write one response, counting delivery failures. A client that hangs
/// up (or times out) mid-reply is work the server finished but could not
/// deliver; without the counter that loss is invisible in `/metrics`.
/// Returns whether the full response reached the writer.
fn send_response<W: Write>(
    writer: &mut W,
    metrics: &crate::net::metrics::NetMetrics,
    response: &Response,
    keep_alive: bool,
) -> bool {
    match http::write_response(writer, response, keep_alive) {
        Ok(()) => true,
        Err(_) => {
            metrics.write_failures.fetch_add(1, Ordering::Relaxed);
            false
        }
    }
}

/// Over the connection cap: say so quickly and hang up — never block the
/// accept loop behind a slow writer.
fn reject_connection(mut stream: TcpStream, metrics: &crate::net::metrics::NetMetrics) {
    metrics.connections_rejected.fetch_add(1, Ordering::Relaxed);
    // lint:allow(SL008) — advisory socket tuning; a connection without the timeout still gets the 503
    let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
    let response =
        Response::error(503, "server is at its connection cap").with_header("retry-after", "1");
    send_response(&mut stream, metrics, &response, false);
}

/// Serve one connection until close: keep-alive loop of
/// `read_request → route → write_response`, with wire errors mapped to
/// their 4xx statuses and a forced close once draining starts.
fn serve_connection(
    stream: TcpStream,
    router: &Router,
    shutdown: &AtomicBool,
    config: &ServerConfig,
) {
    let metrics = Arc::clone(router.metrics());
    // lint:allow(SL008) — advisory socket tuning; reads still complete without the timeout, just unbounded
    let _ = stream.set_read_timeout(Some(config.read_timeout));
    // lint:allow(SL008) — Nagle stays on if this fails; a latency tweak, not a correctness need
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    loop {
        let request = match http::read_request(&mut reader, &config.limits) {
            Ok(request) => request,
            Err(HttpError::Closed) => return,
            Err(e) => {
                metrics.read_failures.fetch_add(1, Ordering::Relaxed);
                if let Some(status) = e.status() {
                    let response = Response::error(status, &e.to_string());
                    metrics
                        .endpoint(crate::net::metrics::Endpoint::Other)
                        .record(status, Duration::ZERO);
                    send_response(&mut writer, &metrics, &response, false);
                }
                return;
            }
        };
        let started = Instant::now();
        let (endpoint, response) = router.handle(&request);
        metrics
            .endpoint(endpoint)
            .record(response.status, started.elapsed());
        // Draining: finish this response, then close even if the client
        // asked for keep-alive.
        let keep_alive = request.keep_alive && !shutdown.load(Ordering::Acquire);
        if !send_response(&mut writer, &metrics, &response, keep_alive) || !keep_alive {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::router::RouterConfig;
    use crate::service::SirumService;
    use std::io::{Read, Write};

    fn spawn_server() -> Server {
        let service = SirumService::in_memory().expect("service");
        service.register_demo("flights").expect("demo");
        let router = Router::new(
            service,
            Arc::new(crate::net::metrics::NetMetrics::new()),
            RouterConfig::default(),
        );
        Server::bind("127.0.0.1:0", router, ServerConfig::default()).expect("bind")
    }

    fn raw_round_trip(addr: SocketAddr, request: &[u8]) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(request).expect("write");
        let mut out = String::new();
        let _ = stream.read_to_string(&mut out);
        out
    }

    #[test]
    fn serves_health_over_a_real_socket() {
        let server = spawn_server();
        let reply = raw_round_trip(
            server.local_addr(),
            b"GET /health HTTP/1.1\r\nconnection: close\r\n\r\n",
        );
        assert!(reply.starts_with("HTTP/1.1 200 OK\r\n"), "{reply}");
        assert!(reply.contains("\"status\":\"ok\""), "{reply}");
        server.shutdown();
    }

    #[test]
    fn garbage_requests_get_400_and_do_not_kill_the_server() {
        let server = spawn_server();
        let reply = raw_round_trip(server.local_addr(), b"\x00\x01\x02 garbage\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 400"), "{reply}");
        // Server still alive afterwards.
        let reply = raw_round_trip(
            server.local_addr(),
            b"GET /health HTTP/1.1\r\nconnection: close\r\n\r\n",
        );
        assert!(reply.starts_with("HTTP/1.1 200"), "{reply}");
        server.shutdown();
    }

    #[test]
    fn failed_response_writes_are_counted() {
        struct BrokenPipe;
        impl Write for BrokenPipe {
            fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::from(std::io::ErrorKind::BrokenPipe))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let metrics = crate::net::metrics::NetMetrics::new();
        let response = Response::error(503, "nope");
        let delivered = send_response(&mut BrokenPipe, &metrics, &response, false);
        assert!(!delivered);
        assert_eq!(metrics.write_failures.load(Ordering::Relaxed), 1);
        // A working writer delivers and leaves the counter alone.
        let mut sink = Vec::new();
        assert!(send_response(&mut sink, &metrics, &response, false));
        assert_eq!(metrics.write_failures.load(Ordering::Relaxed), 1);
        assert!(sink.starts_with(b"HTTP/1.1 503"));
    }

    #[test]
    fn shutdown_drains_and_refuses_new_work() {
        let server = spawn_server();
        let addr = server.local_addr();
        server.shutdown();
        // After shutdown the listener is gone: either the connect fails or
        // the wakeup-race connection is dropped without a response.
        if let Ok(mut stream) = TcpStream::connect(addr) {
            let _ = stream.write_all(b"GET /health HTTP/1.1\r\n\r\n");
            let mut out = String::new();
            let _ = stream.read_to_string(&mut out);
            assert!(out.is_empty(), "drained server answered: {out}");
        }
    }
}
