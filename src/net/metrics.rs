//! Serving metrics: a fixed log₂-bucket latency [`Histogram`] (no
//! dependencies, no allocation after construction, lock-free recording)
//! plus the per-endpoint registry ([`NetMetrics`]) the HTTP front end
//! exposes through `GET /metrics`.
//!
//! The histogram is shared machinery: [`crate::service::SirumService`]
//! records per-job execution latency into one and surfaces the summary in
//! [`crate::service::ServiceStats::job_latency`], and the wire layer keeps
//! one histogram per endpoint.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of log₂ buckets: bucket `i` counts samples in `[2^(i-1), 2^i)`
/// nanoseconds (bucket 0 holds 0 ns), so 64 buckets cover every `u64`
/// nanosecond value — about 584 years.
const BUCKETS: usize = 64;

/// A concurrent, fixed-size log₂-bucket histogram of durations.
///
/// Recording is a single relaxed atomic increment per sample; snapshots
/// walk the 64 buckets. Quantiles are bucket-resolution estimates (within
/// 2× of the true value by construction — plenty for serving dashboards,
/// not for micro-benchmarks).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    sum_nanos: AtomicU64,
    max_nanos: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_nanos: AtomicU64::new(0),
            max_nanos: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bucket index for a sample: position of its highest set bit.
    fn bucket(nanos: u64) -> usize {
        (u64::BITS - nanos.leading_zeros()) as usize % BUCKETS
    }

    /// Record one duration.
    pub fn record(&self, elapsed: Duration) {
        self.record_nanos(elapsed.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// Record one duration in nanoseconds.
    pub fn record_nanos(&self, nanos: u64) {
        self.buckets[Self::bucket(nanos)].fetch_add(1, Ordering::Relaxed);
        self.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.max_nanos.fetch_max(nanos, Ordering::Relaxed);
    }

    /// Point-in-time summary (concurrent recordings may be partially
    /// visible; each counter is individually consistent).
    pub fn snapshot(&self) -> LatencySummary {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count: u64 = counts.iter().sum();
        let max = self.max_nanos.load(Ordering::Relaxed);
        let quantile = |q: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            // Rank of the q-quantile sample, 1-based.
            let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
            let mut seen = 0u64;
            for (i, c) in counts.iter().enumerate() {
                seen += c;
                if seen >= rank {
                    // Upper bound of bucket i (see [`BUCKETS`]), clamped
                    // to the observed maximum so estimates never exceed
                    // a real sample.
                    let upper = if i == 0 { 0 } else { (1u64 << i) - 1 };
                    return upper.min(max);
                }
            }
            max
        };
        LatencySummary {
            count,
            sum_nanos: self.sum_nanos.load(Ordering::Relaxed),
            p50_nanos: quantile(0.50),
            p95_nanos: quantile(0.95),
            p99_nanos: quantile(0.99),
            max_nanos: max,
        }
    }
}

/// A snapshot of a [`Histogram`]: counts plus estimated percentiles.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencySummary {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples in nanoseconds (mean = `sum / count`).
    pub sum_nanos: u64,
    /// Estimated median, in nanoseconds (bucket upper bound).
    pub p50_nanos: u64,
    /// Estimated 95th percentile, in nanoseconds.
    pub p95_nanos: u64,
    /// Estimated 99th percentile, in nanoseconds.
    pub p99_nanos: u64,
    /// Largest sample observed, exact.
    pub max_nanos: u64,
}

impl LatencySummary {
    /// Mean sample in nanoseconds (0 when empty).
    pub fn mean_nanos(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_nanos as f64 / self.count as f64
        }
    }

    /// Render the summary as a JSON object fragment.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"count\":{},\"mean_ms\":{:.3},\"p50_ms\":{:.3},\"p95_ms\":{:.3},\"p99_ms\":{:.3},\"max_ms\":{:.3}}}",
            self.count,
            self.mean_nanos() / 1e6,
            self.p50_nanos as f64 / 1e6,
            self.p95_nanos as f64 / 1e6,
            self.p99_nanos as f64 / 1e6,
            self.max_nanos as f64 / 1e6,
        )
    }
}

/// The served endpoints, used to label per-endpoint metrics. `Other`
/// absorbs unroutable requests so hostile paths cannot grow the registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// `GET/POST/DELETE /tables…`
    Tables,
    /// `POST /mine`
    Mine,
    /// `GET/DELETE /jobs/{id}`
    Jobs,
    /// `GET /explain`
    Explain,
    /// `POST /stream/{table}`
    Stream,
    /// `GET /metrics`
    Metrics,
    /// `GET /stats`
    Stats,
    /// `GET /health`
    Health,
    /// Anything that did not route.
    Other,
}

/// Every endpoint, for iteration in export order.
pub const ENDPOINTS: [Endpoint; 9] = [
    Endpoint::Tables,
    Endpoint::Mine,
    Endpoint::Jobs,
    Endpoint::Explain,
    Endpoint::Stream,
    Endpoint::Metrics,
    Endpoint::Stats,
    Endpoint::Health,
    Endpoint::Other,
];

impl Endpoint {
    /// Stable label used in `GET /metrics` output.
    pub fn label(self) -> &'static str {
        match self {
            Endpoint::Tables => "tables",
            Endpoint::Mine => "mine",
            Endpoint::Jobs => "jobs",
            Endpoint::Explain => "explain",
            Endpoint::Stream => "stream",
            Endpoint::Metrics => "metrics",
            Endpoint::Stats => "stats",
            Endpoint::Health => "health",
            Endpoint::Other => "other",
        }
    }

    fn index(self) -> usize {
        match self {
            Endpoint::Tables => 0,
            Endpoint::Mine => 1,
            Endpoint::Jobs => 2,
            Endpoint::Explain => 3,
            Endpoint::Stream => 4,
            Endpoint::Metrics => 5,
            Endpoint::Stats => 6,
            Endpoint::Health => 7,
            Endpoint::Other => 8,
        }
    }
}

/// Per-endpoint serving counters: one latency histogram plus response
/// counts by status class.
#[derive(Debug, Default)]
pub struct EndpointMetrics {
    /// Wall-clock handler latency (request fully read → response queued).
    pub latency: Histogram,
    /// 2xx responses.
    pub ok: AtomicU64,
    /// 4xx responses other than 429.
    pub client_error: AtomicU64,
    /// 429 responses (admission control shed the request).
    pub rejected: AtomicU64,
    /// 5xx responses.
    pub server_error: AtomicU64,
}

impl EndpointMetrics {
    /// Record one served response.
    pub fn record(&self, status: u16, elapsed: Duration) {
        self.latency.record(elapsed);
        match status {
            200..=299 => &self.ok,
            429 => &self.rejected,
            400..=499 => &self.client_error,
            _ => &self.server_error,
        }
        .fetch_add(1, Ordering::Relaxed);
    }
}

/// The wire front end's metrics registry: fixed per-endpoint slots.
#[derive(Debug, Default)]
pub struct NetMetrics {
    slots: [EndpointMetrics; 9],
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Connections shed because the concurrent-connection cap was hit.
    pub connections_rejected: AtomicU64,
    /// Requests that died mid-read (timeouts, truncation, oversize).
    pub read_failures: AtomicU64,
    /// Responses that died mid-write (client hung up, send timeout):
    /// work the server finished but could not deliver.
    pub write_failures: AtomicU64,
}

impl NetMetrics {
    /// A zeroed registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The metrics slot for `endpoint`.
    pub fn endpoint(&self, endpoint: Endpoint) -> &EndpointMetrics {
        &self.slots[endpoint.index()]
    }

    /// Render all per-endpoint metrics as a JSON object keyed by endpoint
    /// label.
    pub fn endpoints_json(&self) -> String {
        let mut out = String::from("{");
        for (i, ep) in ENDPOINTS.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let m = self.endpoint(*ep);
            out.push_str(&format!(
                "\"{}\":{{\"ok\":{},\"client_error\":{},\"rejected\":{},\"server_error\":{},\"latency\":{}}}",
                ep.label(),
                m.ok.load(Ordering::Relaxed),
                m.client_error.load(Ordering::Relaxed),
                m.rejected.load(Ordering::Relaxed),
                m.server_error.load(Ordering::Relaxed),
                m.latency.snapshot().to_json(),
            ));
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2_and_cover_u64() {
        assert_eq!(Histogram::bucket(0), 0);
        assert_eq!(Histogram::bucket(1), 1);
        assert_eq!(Histogram::bucket(2), 2);
        assert_eq!(Histogram::bucket(3), 2);
        assert_eq!(Histogram::bucket(4), 3);
        assert_eq!(Histogram::bucket(1023), 10);
        assert_eq!(Histogram::bucket(1024), 11);
        assert_eq!(Histogram::bucket(u64::MAX), 0, "wraps into slot 0 of 64");
    }

    #[test]
    fn empty_histogram_snapshots_to_zeroes() {
        let h = Histogram::new();
        let s = h.snapshot();
        assert_eq!(s, LatencySummary::default());
        assert_eq!(s.mean_nanos(), 0.0);
    }

    #[test]
    fn quantiles_are_ordered_and_bounded_by_max() {
        let h = Histogram::new();
        // 90 fast samples, 10 slow ones.
        for _ in 0..90 {
            h.record_nanos(1_000);
        }
        for _ in 0..10 {
            h.record_nanos(1_000_000);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert!(s.p50_nanos <= s.p95_nanos && s.p95_nanos <= s.p99_nanos);
        assert!(s.p99_nanos <= s.max_nanos);
        assert_eq!(s.max_nanos, 1_000_000);
        // The p50 estimate sits in the 1 µs bucket (within 2× of truth).
        assert!(
            s.p50_nanos >= 1_000 && s.p50_nanos < 2_048,
            "{}",
            s.p50_nanos
        );
        // The p95 estimate reflects the slow tail.
        assert!(s.p95_nanos >= 500_000, "{}", s.p95_nanos);
    }

    #[test]
    fn single_sample_percentiles_equal_the_sample_bucket() {
        let h = Histogram::new();
        h.record(Duration::from_micros(5));
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.p50_nanos, s.p99_nanos);
        assert_eq!(s.max_nanos, 5_000);
        assert!(s.p50_nanos <= 5_000);
    }

    #[test]
    fn endpoint_metrics_classify_statuses() {
        let m = EndpointMetrics::default();
        m.record(200, Duration::from_millis(1));
        m.record(204, Duration::from_millis(1));
        m.record(404, Duration::from_millis(1));
        m.record(429, Duration::from_millis(1));
        m.record(500, Duration::from_millis(1));
        assert_eq!(m.ok.load(Ordering::Relaxed), 2);
        assert_eq!(m.client_error.load(Ordering::Relaxed), 1);
        assert_eq!(m.rejected.load(Ordering::Relaxed), 1);
        assert_eq!(m.server_error.load(Ordering::Relaxed), 1);
        assert_eq!(m.latency.snapshot().count, 5);
    }

    #[test]
    fn net_metrics_render_every_endpoint() {
        let metrics = NetMetrics::new();
        metrics
            .endpoint(Endpoint::Mine)
            .record(200, Duration::from_millis(2));
        let json = metrics.endpoints_json();
        for ep in ENDPOINTS {
            assert!(json.contains(&format!("\"{}\":", ep.label())), "{json}");
        }
        let parsed = crate::json::parse_json(&json).expect("valid JSON");
        assert_eq!(
            parsed
                .get("mine")
                .and_then(|m| m.get("ok"))
                .and_then(|v| v.as_u64()),
            Some(1)
        );
    }
}
