//! A minimal blocking HTTP/1.1 client for the wire front end: keep-alive
//! with one transparent reconnect, `Content-Length` bodies only. Used by
//! the integration tests and the `loadgen` harness — it speaks exactly the
//! dialect [`crate::net::server`] serves, nothing more.

use crate::json::{parse_json, JsonValue};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Cap on response bodies the client will buffer (64 MiB — mining results
/// on demo-scale tables are far smaller; this guards against a confused
/// server, not real payloads).
const MAX_RESPONSE_BODY: u64 = 64 << 20;

/// A parsed HTTP response.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// Status code from the status line.
    pub status: u16,
    /// Lowercased header name/value pairs in wire order.
    pub headers: Vec<(String, String)>,
    /// The response body.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First header with the given (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8, lossily.
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// Parse the body as JSON.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` when the body is not valid JSON.
    pub fn json(&self) -> io::Result<JsonValue> {
        let text = std::str::from_utf8(&self.body).map_err(|_| {
            io::Error::new(io::ErrorKind::InvalidData, "response body is not UTF-8")
        })?;
        parse_json(text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad JSON body: {e}")))
    }
}

struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

/// A blocking keep-alive client bound to one server address.
pub struct HttpClient {
    addr: SocketAddr,
    timeout: Duration,
    conn: Option<Conn>,
}

impl HttpClient {
    /// Create a client for `addr` (connects lazily on first request) with
    /// a 30 s read timeout.
    pub fn new(addr: SocketAddr) -> Self {
        HttpClient {
            addr,
            timeout: Duration::from_secs(30),
            conn: None,
        }
    }

    /// Override the read/write timeout applied to the socket.
    pub fn timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// `GET` a path (with query string included).
    ///
    /// # Errors
    ///
    /// Propagates connect/read/write failures and malformed responses.
    pub fn get(&mut self, path: &str) -> io::Result<ClientResponse> {
        self.request("GET", path, None, "")
    }

    /// `DELETE` a path.
    ///
    /// # Errors
    ///
    /// Propagates connect/read/write failures and malformed responses.
    pub fn delete(&mut self, path: &str) -> io::Result<ClientResponse> {
        self.request("DELETE", path, None, "")
    }

    /// `POST` a JSON body.
    ///
    /// # Errors
    ///
    /// Propagates connect/read/write failures and malformed responses.
    pub fn post_json(&mut self, path: &str, body: &str) -> io::Result<ClientResponse> {
        self.request("POST", path, Some(body.as_bytes()), "application/json")
    }

    /// `POST` an arbitrary body (e.g. CSV table uploads).
    ///
    /// # Errors
    ///
    /// Propagates connect/read/write failures and malformed responses.
    pub fn post(
        &mut self,
        path: &str,
        body: &[u8],
        content_type: &str,
    ) -> io::Result<ClientResponse> {
        self.request("POST", path, Some(body), content_type)
    }

    fn connect(&mut self) -> io::Result<&mut Conn> {
        if self.conn.is_none() {
            let stream = TcpStream::connect_timeout(&self.addr, self.timeout)?;
            stream.set_read_timeout(Some(self.timeout))?;
            stream.set_write_timeout(Some(self.timeout))?;
            stream.set_nodelay(true)?;
            let reader = BufReader::new(stream.try_clone()?);
            self.conn = Some(Conn {
                reader,
                writer: stream,
            });
        }
        self.conn
            .as_mut()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotConnected, "connection lost"))
    }

    fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
        content_type: &str,
    ) -> io::Result<ClientResponse> {
        // One transparent retry on a fresh connection: a keep-alive peer
        // may have idle-closed between our requests.
        match self.request_once(method, path, body, content_type) {
            Ok(response) => Ok(response),
            Err(_) => {
                self.conn = None;
                self.request_once(method, path, body, content_type)
            }
        }
    }

    fn request_once(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
        content_type: &str,
    ) -> io::Result<ClientResponse> {
        let conn = self.connect()?;
        let mut head = format!("{method} {path} HTTP/1.1\r\nhost: sirum\r\n");
        if let Some(body) = body {
            head.push_str(&format!(
                "content-type: {content_type}\r\ncontent-length: {}\r\n",
                body.len()
            ));
        }
        head.push_str("\r\n");
        let outcome: io::Result<ClientResponse> = (|| {
            conn.writer.write_all(head.as_bytes())?;
            if let Some(body) = body {
                conn.writer.write_all(body)?;
            }
            conn.writer.flush()?;
            read_response(&mut conn.reader)
        })();
        match outcome {
            Ok(response) => {
                if response
                    .header("connection")
                    .is_some_and(|v| v.eq_ignore_ascii_case("close"))
                {
                    self.conn = None;
                }
                Ok(response)
            }
            Err(e) => {
                self.conn = None;
                Err(e)
            }
        }
    }
}

impl std::fmt::Debug for HttpClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HttpClient")
            .field("addr", &self.addr)
            .field("connected", &self.conn.is_some())
            .finish()
    }
}

fn bad(message: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message.into())
}

fn read_response(reader: &mut BufReader<TcpStream>) -> io::Result<ClientResponse> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Err(io::Error::new(
            io::ErrorKind::ConnectionAborted,
            "server closed the connection",
        ));
    }
    let mut parts = line.trim_end().splitn(3, ' ');
    let version = parts.next().unwrap_or_default();
    if !version.starts_with("HTTP/1.") {
        return Err(bad(format!("bad status line: {line:?}")));
    }
    let status: u16 = parts
        .next()
        .unwrap_or_default()
        .parse()
        .map_err(|_| bad(format!("bad status code in {line:?}")))?;

    let mut headers = Vec::new();
    let mut content_length: u64 = 0;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            return Err(bad("connection closed mid-headers"));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        let Some((name, value)) = header.split_once(':') else {
            return Err(bad(format!("malformed header {header:?}")));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim().to_string();
        if name == "content-length" {
            content_length = value
                .parse()
                .map_err(|_| bad(format!("bad content-length {value:?}")))?;
            if content_length > MAX_RESPONSE_BODY {
                return Err(bad(format!("response body too large: {content_length}")));
            }
        }
        headers.push((name, value));
    }
    let mut body = vec![0_u8; content_length as usize];
    reader.read_exact(&mut body)?;
    Ok(ClientResponse {
        status,
        headers,
        body,
    })
}
