//! Hand-rolled JSON rendering for mining output (the build is offline, so
//! no serde): machine-consumable `MiningResult` serialization for the CLI's
//! `--format json` and for services piping results downstream.
//!
//! The encoder is deliberately tiny — string escaping per RFC 8259, floats
//! via Rust's shortest-round-trip `Display` (non-finite values become
//! `null`), and one composer for [`MiningResult`].

use sirum_core::{MiningResult, Rule, WILDCARD};
use sirum_table::Table;
use std::fmt::Write as _;

/// Escape `s` as a JSON string literal (including the surrounding quotes).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Render a float as a JSON number; non-finite values (which JSON cannot
/// represent) become `null`.
pub fn json_number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn json_f64_array(values: impl IntoIterator<Item = f64>) -> String {
    let items: Vec<String> = values.into_iter().map(json_number).collect();
    format!("[{}]", items.join(","))
}

/// One rule as a JSON object: the display string, the per-dimension values
/// (`null` for wildcards, decoded strings otherwise) and the reporting
/// aggregates.
fn rule_json(id: usize, rule: &Rule, avg: f64, count: u64, gain: f64, table: &Table) -> String {
    let values: Vec<String> = (0..rule.arity())
        .map(|i| match rule.get(i) {
            WILDCARD => "null".to_string(),
            code => json_string(table.decode(i, code)),
        })
        .collect();
    format!(
        "{{\"id\":{id},\"rule\":{},\"values\":[{}],\"avg_measure\":{},\"count\":{count},\"gain\":{}}}",
        json_string(&rule.display(table)),
        values.join(","),
        json_number(avg),
        json_number(gain),
    )
}

/// Serialize a [`MiningResult`] (with the table it was mined from, for
/// schema names and dictionary decoding) as a single JSON object.
///
/// ```
/// use sirum::api::SirumSession;
///
/// let mut session = SirumSession::in_memory()?;
/// session.register_demo("flights")?;
/// let result = session.mine("flights").k(2).sample_size(14).run()?;
/// let json = sirum::json::mining_result_to_json(&result, session.table("flights")?);
/// assert!(json.starts_with('{') && json.ends_with('}'));
/// assert!(json.contains("\"rules\":["));
/// assert!(json.contains("\"measure\":\"Delay\""));
/// # Ok::<(), sirum::api::SirumError>(())
/// ```
pub fn mining_result_to_json(result: &MiningResult, table: &Table) -> String {
    let mut out = String::with_capacity(1024);
    out.push('{');
    let dims: Vec<String> = table
        .schema()
        .dim_names()
        .iter()
        .map(|n| json_string(n))
        .collect();
    let _ = write!(
        out,
        "\"schema\":{{\"dimensions\":[{}],\"measure\":{}}}",
        dims.join(","),
        json_string(table.schema().measure_name()),
    );
    out.push_str(",\"rules\":[");
    for (i, r) in result.rules.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&rule_json(
            i + 1,
            &r.rule,
            r.avg_measure,
            r.count,
            r.gain,
            table,
        ));
    }
    out.push(']');
    let _ = write!(
        out,
        ",\"kl_trace\":{},\"final_kl\":{},\"information_gain\":{}",
        json_f64_array(result.kl_trace.iter().copied()),
        json_number(result.final_kl()),
        json_number(result.information_gain()),
    );
    let _ = write!(
        out,
        ",\"iterations\":{},\"ancestors_emitted\":{},\"scaling_iterations\":[{}]",
        result.iterations,
        result.ancestors_emitted,
        result
            .scaling_iterations
            .iter()
            .map(|n| n.to_string())
            .collect::<Vec<_>>()
            .join(","),
    );
    let _ = write!(
        out,
        ",\"transform_shift\":{},\"cancelled\":{}",
        json_number(result.transform_shift),
        result.cancelled,
    );
    let t = &result.timings;
    let _ = write!(
        out,
        ",\"timings\":{{\"candidate_pruning\":{},\"ancestor_generation\":{},\"gain_computation\":{},\"gain_sweep\":{},\"iterative_scaling\":{},\"rule_generation\":{},\"total\":{}}}",
        json_number(t.candidate_pruning),
        json_number(t.ancestor_generation),
        json_number(t.gain_computation),
        json_number(t.gain_sweep),
        json_number(t.iterative_scaling),
        json_number(t.rule_generation()),
        json_number(t.total),
    );
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sirum_table::generators;

    #[test]
    fn strings_escape_control_and_quote_characters() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b"), "\"a\\\"b\"");
        assert_eq!(json_string("a\\b"), "\"a\\\\b\"");
        assert_eq!(json_string("a\nb\tc"), "\"a\\nb\\tc\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn numbers_round_trip_and_non_finite_become_null() {
        assert_eq!(json_number(1.5), "1.5");
        assert_eq!(json_number(-0.25), "-0.25");
        assert_eq!(json_number(f64::NAN), "null");
        assert_eq!(json_number(f64::INFINITY), "null");
    }

    #[test]
    fn mining_result_serializes_with_balanced_braces() {
        let engine = sirum_dataflow::Engine::in_memory();
        let table = generators::flights();
        let config = sirum_core::SirumConfig {
            k: 2,
            strategy: sirum_core::CandidateStrategy::SampleLca { sample_size: 14 },
            ..Default::default()
        };
        let result = sirum_core::Miner::new(engine, config)
            .try_mine(&table)
            .unwrap();
        let json = mining_result_to_json(&result, &table);
        assert!(json.starts_with('{') && json.ends_with('}'));
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"id\":1"));
        assert!(json.contains("\"cancelled\":false"));
        assert!(json.contains("\"dimensions\":[\"Day\",\"Origin\",\"Destination\"]"));
        // The wildcard seed rule renders null values.
        assert!(json.contains("\"values\":[null,null,null]"));
    }
}
