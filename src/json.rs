//! Hand-rolled JSON encoding *and* parsing (the build is offline, so no
//! serde): machine-consumable `MiningResult` serialization for the CLI's
//! `--format json`, plus the RFC 8259 parser the wire front end
//! ([`crate::net`]) uses to decode request bodies.
//!
//! The encoder is deliberately tiny — string escaping per RFC 8259, floats
//! via Rust's shortest-round-trip `Display` (non-finite values become
//! `null`), and one composer for [`MiningResult`]. The parser
//! ([`parse_json`]) is a recursive-descent reader into [`JsonValue`] with
//! typed positional errors ([`JsonError`]) and hard depth/size limits
//! ([`JsonLimits`]) so hostile wire input cannot blow the stack or the
//! heap.

use sirum_core::{MiningResult, Rule, WILDCARD};
use sirum_table::Table;
use std::fmt::Write as _;

/// Escape `s` as a JSON string literal (including the surrounding quotes).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Render a float as a JSON number; non-finite values (which JSON cannot
/// represent) become `null`.
pub fn json_number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn json_f64_array(values: impl IntoIterator<Item = f64>) -> String {
    let items: Vec<String> = values.into_iter().map(json_number).collect();
    format!("[{}]", items.join(","))
}

/// One rule as a JSON object: the display string, the per-dimension values
/// (`null` for wildcards, decoded strings otherwise) and the reporting
/// aggregates.
fn rule_json(id: usize, rule: &Rule, avg: f64, count: u64, gain: f64, table: &Table) -> String {
    let values: Vec<String> = (0..rule.arity())
        .map(|i| match rule.get(i) {
            WILDCARD => "null".to_string(),
            code => json_string(table.decode(i, code)),
        })
        .collect();
    format!(
        "{{\"id\":{id},\"rule\":{},\"values\":[{}],\"avg_measure\":{},\"count\":{count},\"gain\":{}}}",
        json_string(&rule.display(table)),
        values.join(","),
        json_number(avg),
        json_number(gain),
    )
}

/// Serialize a [`MiningResult`] (with the table it was mined from, for
/// schema names and dictionary decoding) as a single JSON object.
///
/// ```
/// use sirum::api::SirumSession;
///
/// let mut session = SirumSession::in_memory()?;
/// session.register_demo("flights")?;
/// let result = session.mine("flights").k(2).sample_size(14).run()?;
/// let json = sirum::json::mining_result_to_json(&result, session.table("flights")?);
/// assert!(json.starts_with('{') && json.ends_with('}'));
/// assert!(json.contains("\"rules\":["));
/// assert!(json.contains("\"measure\":\"Delay\""));
/// # Ok::<(), sirum::api::SirumError>(())
/// ```
pub fn mining_result_to_json(result: &MiningResult, table: &Table) -> String {
    let mut out = String::with_capacity(1024);
    out.push('{');
    let dims: Vec<String> = table
        .schema()
        .dim_names()
        .iter()
        .map(|n| json_string(n))
        .collect();
    let _ = write!(
        out,
        "\"schema\":{{\"dimensions\":[{}],\"measure\":{}}}",
        dims.join(","),
        json_string(table.schema().measure_name()),
    );
    out.push_str(",\"rules\":[");
    for (i, r) in result.rules.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&rule_json(
            i + 1,
            &r.rule,
            r.avg_measure,
            r.count,
            r.gain,
            table,
        ));
    }
    out.push(']');
    let _ = write!(
        out,
        ",\"kl_trace\":{},\"final_kl\":{},\"information_gain\":{}",
        json_f64_array(result.kl_trace.iter().copied()),
        json_number(result.final_kl()),
        json_number(result.information_gain()),
    );
    let _ = write!(
        out,
        ",\"iterations\":{},\"ancestors_emitted\":{},\"scaling_iterations\":[{}]",
        result.iterations,
        result.ancestors_emitted,
        result
            .scaling_iterations
            .iter()
            .map(|n| n.to_string())
            .collect::<Vec<_>>()
            .join(","),
    );
    let _ = write!(
        out,
        ",\"transform_shift\":{},\"cancelled\":{}",
        json_number(result.transform_shift),
        result.cancelled,
    );
    let t = &result.timings;
    let _ = write!(
        out,
        ",\"timings\":{{\"candidate_pruning\":{},\"ancestor_generation\":{},\"gain_computation\":{},\"gain_sweep\":{},\"iterative_scaling\":{},\"rule_generation\":{},\"total\":{}}}",
        json_number(t.candidate_pruning),
        json_number(t.ancestor_generation),
        json_number(t.gain_computation),
        json_number(t.gain_sweep),
        json_number(t.iterative_scaling),
        json_number(t.rule_generation()),
        json_number(t.total),
    );
    out.push('}');
    out
}

// ---------------------------------------------------------------------------
// Parsing (RFC 8259)
// ---------------------------------------------------------------------------

/// A parsed JSON document node.
///
/// Objects preserve their textual key order (and duplicate keys — lookups
/// via [`JsonValue::get`] return the *first* occurrence, later duplicates
/// are reachable through [`JsonValue::entries`]). Numbers are `f64`, like
/// JavaScript; [`JsonValue::as_u64`] / [`JsonValue::as_usize`] reject
/// non-integral values instead of truncating.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always finite — the grammar has no NaN/Infinity).
    Number(f64),
    /// A string literal, unescaped.
    String(String),
    /// `[ … ]`.
    Array(Vec<JsonValue>),
    /// `{ … }`, in textual order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object member lookup (first occurrence); `None` for non-objects and
    /// missing keys.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an exact nonnegative integer; `None` when
    /// fractional, negative, or beyond `u64`'s exactly-representable range.
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n.fract() == 0.0 && (0.0..=9.007_199_254_740_992e15).contains(&n) {
            Some(n as u64)
        } else {
            None
        }
    }

    /// [`Self::as_u64`] narrowed to `usize`.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|n| usize::try_from(n).ok())
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The member list, if this is an object (textual order, duplicates
    /// preserved).
    pub fn entries(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// True for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, JsonValue::Null)
    }

    /// Re-encode the value as compact JSON text, using the same rules as
    /// the result encoder (RFC 8259 string escapes, shortest-round-trip
    /// floats). `parse_json(v.render())` reproduces `v` exactly for every
    /// value this parser can produce.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(true) => out.push_str("true"),
            JsonValue::Bool(false) => out.push_str("false"),
            JsonValue::Number(n) => out.push_str(&json_number(*n)),
            JsonValue::String(s) => out.push_str(&json_string(s)),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            JsonValue::Object(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&json_string(k));
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// What went wrong while parsing, without position (see [`JsonError`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsonErrorKind {
    /// Input ended inside a value.
    UnexpectedEof,
    /// A byte that cannot start or continue the expected production.
    UnexpectedByte(u8),
    /// Bytes remain after the top-level value.
    TrailingData,
    /// Nesting exceeded [`JsonLimits::max_depth`].
    TooDeep(usize),
    /// The document exceeded [`JsonLimits::max_bytes`].
    TooLarge(usize),
    /// A malformed number literal (leading zeros, bare `-`, `1.`, …).
    InvalidNumber,
    /// A number outside `f64`'s finite range (e.g. `1e999`).
    NumberOutOfRange,
    /// A backslash escape other than `\" \\ \/ \b \f \n \r \t \uXXXX`.
    InvalidEscape,
    /// A `\u` escape with bad hex digits or an unpaired surrogate.
    InvalidUnicodeEscape,
    /// A raw control character (< 0x20) inside a string literal.
    ControlCharacterInString,
}

/// A typed JSON parse error with the byte offset it was detected at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where the error was detected.
    pub offset: usize,
    /// The failure class.
    pub kind: JsonErrorKind,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let msg = match &self.kind {
            JsonErrorKind::UnexpectedEof => "unexpected end of input".to_string(),
            JsonErrorKind::UnexpectedByte(b) => {
                format!("unexpected byte {:?} (0x{b:02x})", char::from(*b))
            }
            JsonErrorKind::TrailingData => "trailing data after the value".to_string(),
            JsonErrorKind::TooDeep(limit) => {
                format!("nesting deeper than the {limit}-level limit")
            }
            JsonErrorKind::TooLarge(limit) => {
                format!("document larger than the {limit}-byte limit")
            }
            JsonErrorKind::InvalidNumber => "malformed number literal".to_string(),
            JsonErrorKind::NumberOutOfRange => "number outside f64 range".to_string(),
            JsonErrorKind::InvalidEscape => "invalid string escape".to_string(),
            JsonErrorKind::InvalidUnicodeEscape => "invalid \\u escape".to_string(),
            JsonErrorKind::ControlCharacterInString => {
                "raw control character inside a string".to_string()
            }
        };
        write!(f, "JSON error at byte {}: {msg}", self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Hard limits the parser enforces against hostile input.
#[derive(Debug, Clone, Copy)]
pub struct JsonLimits {
    /// Maximum container nesting (arrays + objects). The parser is
    /// recursive, so this bounds stack use.
    pub max_depth: usize,
    /// Maximum input size in bytes.
    pub max_bytes: usize,
}

impl Default for JsonLimits {
    fn default() -> Self {
        JsonLimits {
            max_depth: 64,
            max_bytes: 16 << 20,
        }
    }
}

/// Parse one complete JSON document with [`JsonLimits::default`].
pub fn parse_json(input: &str) -> Result<JsonValue, JsonError> {
    parse_json_with(input, JsonLimits::default())
}

/// Parse one complete JSON document under explicit [`JsonLimits`].
/// Trailing whitespace is allowed; any other trailing bytes are
/// [`JsonErrorKind::TrailingData`].
pub fn parse_json_with(input: &str, limits: JsonLimits) -> Result<JsonValue, JsonError> {
    if input.len() > limits.max_bytes {
        return Err(JsonError {
            offset: limits.max_bytes,
            kind: JsonErrorKind::TooLarge(limits.max_bytes),
        });
    }
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        limits,
    };
    parser.skip_ws();
    let value = parser.value(0)?;
    parser.skip_ws();
    if parser.pos < parser.bytes.len() {
        return Err(parser.err(JsonErrorKind::TrailingData));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    limits: JsonLimits,
}

impl Parser<'_> {
    fn err(&self, kind: JsonErrorKind) -> JsonError {
        JsonError {
            offset: self.pos,
            kind,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    /// Consume `literal` (the parser sits on its first byte). A truncated
    /// prefix reports EOF; a diverging byte reports itself.
    fn literal(&mut self, literal: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        let rest = &self.bytes[self.pos..];
        if rest.starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            return Ok(value);
        }
        if literal.as_bytes().starts_with(rest) {
            self.pos = self.bytes.len();
            return Err(self.err(JsonErrorKind::UnexpectedEof));
        }
        let start = self.pos;
        while self.pos < self.bytes.len()
            && self.bytes[self.pos] == literal.as_bytes()[self.pos - start]
        {
            self.pos += 1;
        }
        Err(self.err(JsonErrorKind::UnexpectedByte(self.bytes[self.pos])))
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        match self.peek() {
            None => Err(self.err(JsonErrorKind::UnexpectedEof)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => self.string().map(JsonValue::String),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(self.err(JsonErrorKind::UnexpectedByte(b))),
        }
    }

    fn enter(&self, depth: usize) -> Result<usize, JsonError> {
        if depth + 1 > self.limits.max_depth {
            Err(self.err(JsonErrorKind::TooDeep(self.limits.max_depth)))
        } else {
            Ok(depth + 1)
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        let depth = self.enter(depth)?;
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                Some(b) => return Err(self.err(JsonErrorKind::UnexpectedByte(b))),
                None => return Err(self.err(JsonErrorKind::UnexpectedEof)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        let depth = self.enter(depth)?;
        self.pos += 1; // '{'
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(entries));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return match self.peek() {
                    Some(b) => Err(self.err(JsonErrorKind::UnexpectedByte(b))),
                    None => Err(self.err(JsonErrorKind::UnexpectedEof)),
                };
            }
            let key = self.string()?;
            self.skip_ws();
            match self.peek() {
                Some(b':') => self.pos += 1,
                Some(b) => return Err(self.err(JsonErrorKind::UnexpectedByte(b))),
                None => return Err(self.err(JsonErrorKind::UnexpectedEof)),
            }
            self.skip_ws();
            entries.push((key, self.value(depth)?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(entries));
                }
                Some(b) => return Err(self.err(JsonErrorKind::UnexpectedByte(b))),
                None => return Err(self.err(JsonErrorKind::UnexpectedEof)),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.pos += 1; // opening '"'
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err(JsonErrorKind::UnexpectedEof));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    out.push(self.escape()?);
                }
                0x00..=0x1f => return Err(self.err(JsonErrorKind::ControlCharacterInString)),
                _ => {
                    // Input is &str, so multi-byte sequences are valid
                    // UTF-8; copy the whole scalar in one step.
                    let start = self.pos;
                    let mut end = self.pos + 1;
                    while end < self.bytes.len() && self.bytes[end] & 0xc0 == 0x80 {
                        end += 1;
                    }
                    match std::str::from_utf8(&self.bytes[start..end]) {
                        Ok(s) => out.push_str(s),
                        Err(_) => return Err(self.err(JsonErrorKind::UnexpectedByte(b))),
                    }
                    self.pos = end;
                }
            }
        }
    }

    fn escape(&mut self) -> Result<char, JsonError> {
        let Some(b) = self.peek() else {
            return Err(self.err(JsonErrorKind::UnexpectedEof));
        };
        self.pos += 1;
        Ok(match b {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'b' => '\u{8}',
            b'f' => '\u{c}',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'u' => return self.unicode_escape(),
            _ => {
                self.pos -= 1;
                return Err(self.err(JsonErrorKind::InvalidEscape));
            }
        })
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let Some(b) = self.peek() else {
                return Err(self.err(JsonErrorKind::UnexpectedEof));
            };
            let digit = match b {
                b'0'..=b'9' => u32::from(b - b'0'),
                b'a'..=b'f' => u32::from(b - b'a') + 10,
                b'A'..=b'F' => u32::from(b - b'A') + 10,
                _ => return Err(self.err(JsonErrorKind::InvalidUnicodeEscape)),
            };
            v = v * 16 + digit;
            self.pos += 1;
        }
        Ok(v)
    }

    /// `\uXXXX`, with surrogate pairs (`😀`) combined per
    /// RFC 8259 §7. The parser sits just past the `u`.
    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let start = self.pos - 2; // at the backslash, for error offsets
        let first = self.hex4()?;
        let code = match first {
            0xd800..=0xdbff => {
                // High surrogate: a low surrogate escape must follow.
                if self.peek() == Some(b'\\') && self.bytes.get(self.pos + 1) == Some(&b'u') {
                    self.pos += 2;
                    let second = self.hex4()?;
                    if !(0xdc00..=0xdfff).contains(&second) {
                        self.pos = start;
                        return Err(self.err(JsonErrorKind::InvalidUnicodeEscape));
                    }
                    0x10000 + ((first - 0xd800) << 10) + (second - 0xdc00)
                } else {
                    self.pos = start;
                    return Err(self.err(JsonErrorKind::InvalidUnicodeEscape));
                }
            }
            0xdc00..=0xdfff => {
                self.pos = start;
                return Err(self.err(JsonErrorKind::InvalidUnicodeEscape));
            }
            other => other,
        };
        char::from_u32(code).ok_or(JsonError {
            offset: start,
            kind: JsonErrorKind::InvalidUnicodeEscape,
        })
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: a single 0, or [1-9][0-9]* — leading zeros are
        // malformed per the RFC 8259 grammar.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err(JsonErrorKind::InvalidNumber)),
        }
        if matches!(self.peek(), Some(b'0'..=b'9')) {
            // Only reachable after a leading 0.
            return Err(self.err(JsonErrorKind::InvalidNumber));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err(JsonErrorKind::InvalidNumber));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err(JsonErrorKind::InvalidNumber));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err(JsonErrorKind::InvalidNumber))?;
        let n: f64 = text
            .parse()
            .map_err(|_| self.err(JsonErrorKind::InvalidNumber))?;
        if !n.is_finite() {
            return Err(JsonError {
                offset: start,
                kind: JsonErrorKind::NumberOutOfRange,
            });
        }
        Ok(JsonValue::Number(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sirum_table::generators;

    #[test]
    fn strings_escape_control_and_quote_characters() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b"), "\"a\\\"b\"");
        assert_eq!(json_string("a\\b"), "\"a\\\\b\"");
        assert_eq!(json_string("a\nb\tc"), "\"a\\nb\\tc\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn numbers_round_trip_and_non_finite_become_null() {
        assert_eq!(json_number(1.5), "1.5");
        assert_eq!(json_number(-0.25), "-0.25");
        assert_eq!(json_number(f64::NAN), "null");
        assert_eq!(json_number(f64::INFINITY), "null");
    }

    #[test]
    fn mining_result_serializes_with_balanced_braces() {
        let engine = sirum_dataflow::Engine::in_memory();
        let table = generators::flights();
        let config = sirum_core::SirumConfig {
            k: 2,
            strategy: sirum_core::CandidateStrategy::SampleLca { sample_size: 14 },
            ..Default::default()
        };
        let result = sirum_core::Miner::new(engine, config)
            .try_mine(&table)
            .unwrap();
        let json = mining_result_to_json(&result, &table);
        assert!(json.starts_with('{') && json.ends_with('}'));
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"id\":1"));
        assert!(json.contains("\"cancelled\":false"));
        assert!(json.contains("\"dimensions\":[\"Day\",\"Origin\",\"Destination\"]"));
        // The wildcard seed rule renders null values.
        assert!(json.contains("\"values\":[null,null,null]"));
    }

    // -- parser -------------------------------------------------------------

    #[test]
    fn parses_scalars() {
        assert_eq!(parse_json("null").unwrap(), JsonValue::Null);
        assert_eq!(parse_json(" true ").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse_json("false").unwrap(), JsonValue::Bool(false));
        assert_eq!(parse_json("0").unwrap(), JsonValue::Number(0.0));
        assert_eq!(parse_json("-0.5e2").unwrap(), JsonValue::Number(-50.0));
        assert_eq!(
            parse_json("\"a\\n\\u00e9\\ud83d\\ude00\"").unwrap(),
            JsonValue::String("a\né😀".to_string())
        );
    }

    #[test]
    fn parses_containers_preserving_order() {
        let v = parse_json("{\"b\":[1,2,{\"c\":null}],\"a\":\"x\"}").unwrap();
        let entries = v.entries().unwrap();
        assert_eq!(entries[0].0, "b");
        assert_eq!(entries[1].0, "a");
        assert_eq!(v.get("a").unwrap().as_str(), Some("x"));
        let b = v.get("b").unwrap().as_array().unwrap();
        assert_eq!(b[0].as_u64(), Some(1));
        assert!(b[2].get("c").unwrap().is_null());
        // Duplicate keys: get() returns the first.
        let dup = parse_json("{\"k\":1,\"k\":2}").unwrap();
        assert_eq!(dup.get("k").unwrap().as_u64(), Some(1));
        assert_eq!(dup.entries().unwrap().len(), 2);
    }

    #[test]
    fn accessors_reject_mismatched_types() {
        let v = parse_json("{\"n\":1.5,\"neg\":-3,\"big\":1e300}").unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), None, "fractional");
        assert_eq!(v.get("neg").unwrap().as_u64(), None, "negative");
        assert_eq!(v.get("big").unwrap().as_u64(), None, "beyond exact u64");
        assert_eq!(v.get("n").unwrap().as_f64(), Some(1.5));
        assert_eq!(v.get("missing"), None);
        assert_eq!(JsonValue::Null.get("k"), None);
        assert_eq!(v.get("n").unwrap().as_str(), None);
    }

    #[test]
    fn malformed_documents_yield_typed_errors() {
        use JsonErrorKind as K;
        let kind = |s: &str| parse_json(s).unwrap_err().kind;
        assert_eq!(kind(""), K::UnexpectedEof);
        assert_eq!(kind("{"), K::UnexpectedEof);
        assert_eq!(kind("\"abc"), K::UnexpectedEof);
        assert_eq!(kind("[1,"), K::UnexpectedEof);
        assert_eq!(kind("nul"), K::UnexpectedEof);
        assert_eq!(kind("nulL"), K::UnexpectedByte(b'L'));
        assert_eq!(kind("[1 2]"), K::UnexpectedByte(b'2'));
        assert_eq!(kind("{\"a\" 1}"), K::UnexpectedByte(b'1'));
        assert_eq!(kind("{a:1}"), K::UnexpectedByte(b'a'));
        assert_eq!(kind("1 2"), K::TrailingData);
        assert_eq!(kind("01"), K::InvalidNumber);
        assert_eq!(kind("1."), K::InvalidNumber);
        assert_eq!(kind("-"), K::InvalidNumber);
        assert_eq!(kind("1e"), K::InvalidNumber);
        assert_eq!(kind("1e999"), K::NumberOutOfRange);
        assert_eq!(kind("\"\\x\""), K::InvalidEscape);
        assert_eq!(kind("\"\\u12g4\""), K::InvalidUnicodeEscape);
        assert_eq!(kind("\"\\ud800\""), K::InvalidUnicodeEscape);
        assert_eq!(kind("\"\\ude00\\ud800\""), K::InvalidUnicodeEscape);
        assert_eq!(kind("\"\u{1}\""), K::ControlCharacterInString);
        // Errors carry the detection offset and render with it: in
        // `[true, nope]` the parse of a `null` literal diverges at the
        // `o`, byte 8.
        let err = parse_json("[true, nope]").unwrap_err();
        assert_eq!(err.offset, 8);
        assert_eq!(err.kind, K::UnexpectedByte(b'o'));
        assert!(err.to_string().contains("byte 8"));
    }

    #[test]
    fn depth_and_size_limits_hold() {
        let deep_ok = format!("{}1{}", "[".repeat(64), "]".repeat(64));
        assert!(parse_json(&deep_ok).is_ok());
        let deep_bad = format!("{}1{}", "[".repeat(65), "]".repeat(65));
        assert_eq!(
            parse_json(&deep_bad).unwrap_err().kind,
            JsonErrorKind::TooDeep(64)
        );
        let limits = JsonLimits {
            max_depth: 2,
            max_bytes: 8,
        };
        assert_eq!(
            parse_json_with("[[[1]]]", limits).unwrap_err().kind,
            JsonErrorKind::TooDeep(2)
        );
        assert_eq!(
            parse_json_with("[1,2,3,4,5]", limits).unwrap_err().kind,
            JsonErrorKind::TooLarge(8)
        );
    }

    #[test]
    fn parser_round_trips_the_mining_result_encoder() {
        let engine = sirum_dataflow::Engine::in_memory();
        let table = generators::flights();
        let config = sirum_core::SirumConfig {
            k: 2,
            strategy: sirum_core::CandidateStrategy::SampleLca { sample_size: 14 },
            ..Default::default()
        };
        let result = sirum_core::Miner::new(engine, config)
            .try_mine(&table)
            .unwrap();
        let json = mining_result_to_json(&result, &table);
        let value = parse_json(&json).unwrap();
        assert_eq!(
            value.get("rules").unwrap().as_array().unwrap().len(),
            result.rules.len()
        );
        assert_eq!(
            value.get("iterations").unwrap().as_usize(),
            Some(result.iterations)
        );
        assert_eq!(value.get("cancelled").unwrap().as_bool(), Some(false));
        // Re-encoding the parse tree and re-parsing reaches a fixpoint.
        assert_eq!(parse_json(&value.render()).unwrap(), value);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::collection::vec;
    use proptest::prelude::*;

    /// Strings that stress escaping: quotes, backslashes, control chars,
    /// multi-byte scalars, astral-plane characters.
    fn string_pool() -> impl Strategy<Value = &'static str> {
        let pool: &[&'static str] = &[
            "",
            "plain",
            "with \"quotes\"",
            "back\\slash",
            "tab\tnewline\ncr\r",
            "ctrl\u{1}\u{1f}",
            "東京 Zürich ØΔπ",
            "astral 😀 pair",
            "/slashes//",
            "null",
            "-1e3",
        ];
        (0..pool.len()).prop_map(move |i| pool[i])
    }

    /// Finite measures whose Display text round-trips exactly.
    fn number() -> impl Strategy<Value = f64> {
        prop_oneof![
            -1.0e12f64..1.0e12,
            (-1.0e6f64..1.0e6).prop_map(f64::trunc),
            Just(0.0),
            Just(-0.5),
            Just(1.0e-300),
        ]
    }

    fn leaf() -> impl Strategy<Value = JsonValue> {
        prop_oneof![
            Just(JsonValue::Null),
            any::<bool>().prop_map(JsonValue::Bool),
            number().prop_map(JsonValue::Number),
            string_pool().prop_map(|s| JsonValue::String(s.to_string())),
        ]
    }

    /// One level of containers over leaves.
    fn level1() -> impl Strategy<Value = JsonValue> {
        prop_oneof![
            leaf(),
            vec(leaf(), 0..4).prop_map(JsonValue::Array),
            vec((string_pool(), leaf()), 0..4).prop_map(|entries| JsonValue::Object(
                entries
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), v))
                    .collect()
            )),
        ]
    }

    /// Bounded-depth JSON trees: leaves, then two levels of containers
    /// (the vendored proptest has no `prop_recursive`; two explicit levels
    /// exercise every parser production).
    fn tree() -> impl Strategy<Value = JsonValue> {
        prop_oneof![
            vec(level1(), 0..4).prop_map(JsonValue::Array),
            vec((string_pool(), level1()), 0..4).prop_map(|entries| JsonValue::Object(
                entries
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), v))
                    .collect()
            )),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn encode_then_parse_is_identity(value in tree()) {
            let text = value.render();
            let parsed = parse_json(&text).unwrap();
            prop_assert_eq!(&parsed, &value);
            // And rendering the parse tree is byte-stable.
            prop_assert_eq!(parsed.render(), text);
        }

        #[test]
        fn string_escaping_round_trips(s in proptest::collection::vec(0u32..0x300, 0..24)) {
            // Arbitrary scalar soup (skipping the surrogate gap) through
            // the escaper and back.
            let s: String = s
                .into_iter()
                .filter_map(char::from_u32)
                .collect();
            let parsed = parse_json(&json_string(&s)).unwrap();
            prop_assert_eq!(parsed, JsonValue::String(s));
        }

        #[test]
        fn number_rendering_round_trips(n in number()) {
            let parsed = parse_json(&json_number(n)).unwrap();
            prop_assert_eq!(parsed, JsonValue::Number(n));
        }

        #[test]
        fn parser_never_panics_on_mutated_input(
            bytes in vec(0u8..=255, 0..64),
        ) {
            // Fuzz-shaped: arbitrary byte soup, lossily decoded. The
            // parser must return Ok or a typed error, never panic.
            let text = String::from_utf8_lossy(&bytes);
            let _ = parse_json(&text);
        }
    }
}
