//! The concurrent service layer: a thread-safe, cheaply clonable
//! [`SirumService`] that shares one table catalog, one engine and one
//! result cache across any number of threads.
//!
//! Where a [`crate::api::SirumSession`] is the single-owner, `&mut`-bound
//! embedding API, `SirumService` is the *serving* API: registration
//! dictionary-encodes and transposes each table once into the shared
//! catalog ([`sirum_core::PreparedTable`] behind an `Arc`, holding the
//! columnar `Arc`-shared [`sirum_table::Frame`]), so every concurrent job
//! scans the same column buffers through zero-copy partition views.
//! Requests are submitted
//! as jobs to a bounded worker pool, and identical repeated requests are
//! answered from an LRU result cache keyed by (table content fingerprint,
//! normalized configuration) without re-running the miner. Identical
//! requests that are still *in flight* coalesce onto one execution, so a
//! burst of equal queries against a cold cache runs the miner once.
//!
//! ```
//! use sirum::service::SirumService;
//!
//! let service = SirumService::in_memory()?;
//! service.register_demo("flights")?;
//!
//! // Submit a job; the handle supports wait(), try_poll() and cancel().
//! let handle = service.mine("flights").k(3).sample_size(14).submit()?;
//! let output = handle.wait()?;
//! assert_eq!(output.result.rules.len(), 4);
//! assert!(!output.from_cache);
//!
//! // The identical request is served from the result cache.
//! let again = service.mine("flights").k(3).sample_size(14).submit()?.wait()?;
//! assert!(again.from_cache);
//! assert_eq!(service.stats().cache_hits, 1);
//! # Ok::<(), sirum::api::SirumError>(())
//! ```
//!
//! Cloning a `SirumService` is an `Arc` bump; all clones share catalog,
//! pool, cache and counters, so handing a clone to each request thread is
//! the intended usage. See `DESIGN.md` ("Concurrent service layer") for the
//! ownership diagram and the session-vs-service migration table.

use crate::json;
use crate::net::metrics::{Histogram, LatencySummary};
use crossbeam::channel;
use parking_lot::{Mutex, RwLock};
use sirum_core::miner::IterationObserver;
use sirum_core::{
    try_evaluate_rules_prepared, try_mine_on_sample, CancellationToken, CandidateStrategy,
    IterationDecision, IterationEvent, Miner, MiningResult, MultiRuleConfig, PreparedTable, Rule,
    RuleLayout, RuleSetEvaluation, SampleDataResult, ScalingConfig, SirumConfig, SirumError,
    StreamingConfig, StreamingMiner, SweepOptions, Variant,
};
use sirum_dataflow::cost::{
    choose_combine, makespan, modeled_sweep_stage, ClusterSpec, CombineStrategy,
};
use sirum_dataflow::{Engine, EngineConfig, EngineMode, StageRecord, TaskRecord};
use sirum_table::{generators, Table, TableError};
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Request specification (shared with the session API)
// ---------------------------------------------------------------------------

/// The full, owner-independent description of a mining request: every knob
/// the fluent builders expose, resolved against a table by name. Both the
/// session's `MiningRequest` and the service's [`ServiceRequest`] wrap one
/// of these.
#[derive(Debug, Clone)]
pub(crate) struct RequestSpec {
    pub(crate) table: String,
    pub(crate) variant: Option<Variant>,
    pub(crate) k: usize,
    pub(crate) sample_size: usize,
    pub(crate) full_cube: bool,
    pub(crate) epsilon: Option<f64>,
    pub(crate) max_scaling_iterations: Option<usize>,
    pub(crate) seed: Option<u64>,
    pub(crate) rules_per_iter: Option<usize>,
    pub(crate) two_sided: bool,
    pub(crate) target_kl: Option<f64>,
    pub(crate) max_rules: Option<usize>,
    pub(crate) column_groups: Option<usize>,
    pub(crate) gain_sweep: Option<bool>,
    pub(crate) columnar: Option<bool>,
    pub(crate) packed: Option<bool>,
    pub(crate) prior: Vec<Rule>,
}

impl RequestSpec {
    pub(crate) fn new(table: &str) -> Self {
        RequestSpec {
            table: table.to_string(),
            variant: None,
            k: 10,
            sample_size: 64,
            full_cube: false,
            epsilon: None,
            max_scaling_iterations: None,
            seed: None,
            rules_per_iter: None,
            two_sided: false,
            target_kl: None,
            max_rules: None,
            column_groups: None,
            gain_sweep: None,
            columnar: None,
            packed: None,
            prior: Vec::new(),
        }
    }

    /// Materialize the [`SirumConfig`] this spec describes (also how a
    /// request is *normalized*: two builder paths producing the same final
    /// configuration yield identical configs, hence identical cache keys).
    pub(crate) fn build_config(&self, num_rows: usize) -> SirumConfig {
        let sample_size = if self.sample_size == 0 {
            0 // left invalid so validation names the field
        } else {
            self.sample_size.min(num_rows)
        };
        let mut config = match self.variant {
            Some(variant) => variant.config(self.k, sample_size),
            None => SirumConfig {
                k: self.k,
                strategy: CandidateStrategy::SampleLca { sample_size },
                ..SirumConfig::default()
            },
        };
        if self.full_cube {
            config.strategy = CandidateStrategy::FullCube;
        }
        if let Some(epsilon) = self.epsilon {
            config.scaling.epsilon = epsilon;
        }
        if let Some(n) = self.max_scaling_iterations {
            config.scaling.max_iterations = n;
        }
        if let Some(seed) = self.seed {
            config.seed = seed;
        }
        if let Some(l) = self.rules_per_iter {
            config.multirule = MultiRuleConfig {
                rules_per_iter: l,
                ..config.multirule
            };
        }
        if let Some(groups) = self.column_groups {
            config.column_groups = groups;
        }
        if let Some(sweep) = self.gain_sweep {
            config.gain_sweep = sweep;
        }
        if let Some(columnar) = self.columnar {
            config.columnar = columnar;
        }
        if let Some(packed) = self.packed {
            config.packed_codes = packed;
        }
        config.two_sided_gain |= self.two_sided;
        config.target_kl = self.target_kl.or(config.target_kl);
        config.max_rules = self.max_rules.or(config.max_rules);
        config
    }
}

/// Generates the fluent setter methods shared by the session's
/// `MiningRequest` and the service's [`ServiceRequest`] — both wrap a
/// [`RequestSpec`] plus an optional iteration observer.
macro_rules! impl_request_setters {
    ($ty:ident) => {
        impl<'s> $ty<'s> {
            /// Number of rules to mine beyond `(*, …, *)` (default 10).
            pub fn k(mut self, k: usize) -> Self {
                self.spec.k = k;
                self
            }

            /// Candidate-pruning sample size `|s|` (default 64; clamped to
            /// the table's row count at run time). Zero is rejected at
            /// validation.
            pub fn sample_size(mut self, sample_size: usize) -> Self {
                self.spec.sample_size = sample_size;
                self
            }

            /// Use a named Table 4.2 variant (Naive/Baseline/RCT/…) as the
            /// base configuration instead of Optimized-by-default.
            pub fn variant(mut self, variant: Variant) -> Self {
                self.spec.variant = Some(variant);
                self
            }

            /// Exhaustive cube enumeration instead of sample-based pruning
            /// (the data-cube-exploration setting, §5.6.2).
            pub fn full_cube(mut self) -> Self {
                self.spec.full_cube = true;
                self
            }

            /// Score candidates with the symmetrized two-sided gain, also
            /// surfacing unusually *low*-measure regions (data-cleansing
            /// queries).
            pub fn two_sided(mut self) -> Self {
                self.spec.two_sided = true;
                self
            }

            /// Iterative-scaling convergence tolerance ε.
            pub fn epsilon(mut self, epsilon: f64) -> Self {
                self.spec.epsilon = Some(epsilon);
                self
            }

            /// Iterative-scaling λ-update cap.
            pub fn max_scaling_iterations(mut self, n: usize) -> Self {
                self.spec.max_scaling_iterations = Some(n);
                self
            }

            /// Sampling / column-group shuffling seed.
            pub fn seed(mut self, seed: u64) -> Self {
                self.spec.seed = Some(seed);
                self
            }

            /// Insert up to `l` mutually disjoint rules per iteration (§4.4).
            pub fn rules_per_iter(mut self, l: usize) -> Self {
                self.spec.rules_per_iter = Some(l);
                self
            }

            /// Keep mining past `k` until the KL divergence reaches `target`
            /// (the `l-rule*` mode of §5.5), bounded by `max_rules`.
            pub fn target_kl(mut self, target: f64) -> Self {
                self.spec.target_kl = Some(target);
                self
            }

            /// Hard cap on mined rules when a KL target is set.
            pub fn max_rules(mut self, max: usize) -> Self {
                self.spec.max_rules = Some(max);
                self
            }

            /// Column groups for multi-stage ancestor generation (§4.3).
            pub fn column_groups(mut self, groups: usize) -> Self {
                self.spec.column_groups = Some(groups);
                self
            }

            /// Toggle the fused partition-parallel gain sweep
            /// ([`sirum_core::sweep`]). On by default (and for the
            /// `Optimized` variant); pass `false` to score candidates with
            /// the legacy staged pipeline that models the paper's
            /// per-platform jobs.
            pub fn gain_sweep(mut self, enabled: bool) -> Self {
                self.spec.gain_sweep = Some(enabled);
                self
            }

            /// Choose the data representation `D` is scanned in. On by
            /// default: partitions are zero-copy range views over the
            /// registered table's `Arc`-shared dimension columns. Pass
            /// `false` for the row-major boxed-tuple reference path. The
            /// mining output is bit-identical either way (proptested), so
            /// this knob trades only speed — and both settings share one
            /// result-cache entry.
            pub fn columnar(mut self, enabled: bool) -> Self {
                self.spec.columnar = Some(enabled);
                self
            }

            /// Choose how the gain sweep keys its accumulators. On by
            /// default: rules are interned as dense packed integer codes
            /// (`u64`/`u128` per the table's dictionary bit-widths,
            /// [`sirum_core::RuleLayout`]). Pass `false` for the
            /// `Rule`-keyed reference maps. Like [`Self::columnar`], the
            /// mining output is bit-identical either way (proptested), so
            /// this knob trades only speed and both settings share one
            /// result-cache entry. No effect when the sweep is off.
            pub fn packed(mut self, enabled: bool) -> Self {
                self.spec.packed = Some(enabled);
                self
            }

            /// Seed the model with prior-knowledge rules (cube exploration,
            /// Table 1.3): the mined rules come *in addition to* these.
            pub fn prior(mut self, rules: Vec<Rule>) -> Self {
                self.spec.prior = rules;
                self
            }

            /// Observe progress: `observer` runs after every mining
            /// iteration and can cancel the run gracefully by returning
            /// [`IterationDecision::Stop`] (the partial result is returned
            /// with [`MiningResult::cancelled`] set). A request carrying an
            /// observer is never served from — nor inserted into — the
            /// result cache, since the observer is a side effect.
            pub fn on_iteration(
                mut self,
                observer: impl Fn(&IterationEvent) -> IterationDecision + Send + Sync + 'static,
            ) -> Self {
                self.observer = Some(Box::new(observer));
                self
            }
        }
    };
}
pub(crate) use impl_request_setters;

// ---------------------------------------------------------------------------
// Catalog
// ---------------------------------------------------------------------------

/// A registered table: the immutable table, its one-time mining
/// preparation (the columnar `Arc`-shared frame + fitted measure
/// transform) and its content fingerprint. Cloning shares everything —
/// every concurrent job's partitions are range views over one set of
/// column buffers.
#[derive(Clone)]
pub(crate) struct CatalogEntry {
    pub(crate) table: Arc<Table>,
    pub(crate) prepared: Arc<PreparedTable>,
    pub(crate) fingerprint: u64,
}

// ---------------------------------------------------------------------------
// Result cache
// ---------------------------------------------------------------------------

/// Cache key: table content fingerprint plus the canonical rendering of the
/// fully normalized configuration and prior rules. Two requests that
/// *execute* identically — regardless of which builder path produced them —
/// map to the same key; a table re-registered with identical content keeps
/// its key (the fingerprint is content-addressed, not name-addressed).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct RequestKey {
    fingerprint: u64,
    spec: String,
}

/// Render the executed configuration canonically. Floats are written by bit
/// pattern so `0.01` and any other value that *displays* the same but
/// differs in bits cannot alias.
fn request_key(fingerprint: u64, config: &SirumConfig, prior: &[Rule]) -> RequestKey {
    let mut s = String::with_capacity(160);
    let strategy = match config.strategy {
        CandidateStrategy::SampleLca { sample_size } => format!("lca{sample_size}"),
        CandidateStrategy::FullCube => "cube".to_string(),
    };
    // broadcast_join / fast_pruning / column_groups only steer the legacy
    // staged pipeline; under the fused sweep they have no effect on the
    // result (see `SirumConfig::gain_sweep`), so they normalize to fixed
    // sentinels — requests differing only in inert knobs share one entry.
    // `columnar` is likewise absent from the key: the two representations
    // produce bit-identical results (proptested), so a row-major request
    // is correctly served from a columnar run's cache entry and vice versa.
    // `packed_codes` follows the same rule — packed and `Rule`-keyed sweep
    // accumulators compute bit-identical candidates (proptested), so the
    // keying choice must not split the cache either.
    let (bj, fp, cg) = if config.gain_sweep {
        (1, 1, 0)
    } else {
        (
            u8::from(config.broadcast_join),
            u8::from(config.fast_pruning),
            config.column_groups,
        )
    };
    let _ = write!(
        s,
        "k{};{};eps{:x};it{};bj{bj};rct{};fp{fp};cg{cg};gs{};l{};tf{:x};mg{:x};reset{};tkl{};mr{};ts{};seed{}",
        config.k,
        strategy,
        config.scaling.epsilon.to_bits(),
        config.scaling.max_iterations,
        u8::from(config.rct),
        u8::from(config.gain_sweep),
        config.multirule.rules_per_iter,
        config.multirule.top_fraction.to_bits(),
        config.multirule.min_gain_fraction.to_bits(),
        u8::from(config.reset_lambdas_on_insert),
        config
            .target_kl
            .map_or("-".to_string(), |t| format!("{:x}", t.to_bits())),
        config.max_rules.map_or("-".to_string(), |m| m.to_string()),
        u8::from(config.two_sided_gain),
        config.seed,
    );
    for rule in prior {
        let _ = write!(s, ";p");
        for i in 0..rule.arity() {
            let _ = write!(s, ",{}", rule.get(i));
        }
    }
    RequestKey {
        fingerprint,
        spec: s,
    }
}

/// A bounded LRU map from [`RequestKey`] to completed results. Hand-rolled
/// (offline build): recency is a monotonically increasing stamp; eviction
/// removes the smallest stamp. Capacity 0 disables caching.
struct ResultCache {
    capacity: usize,
    clock: u64,
    entries: HashMap<RequestKey, (u64, Arc<MiningResult>)>,
}

impl ResultCache {
    fn new(capacity: usize) -> Self {
        ResultCache {
            capacity,
            clock: 0,
            entries: HashMap::new(),
        }
    }

    fn get(&mut self, key: &RequestKey) -> Option<Arc<MiningResult>> {
        self.clock += 1;
        let clock = self.clock;
        self.entries.get_mut(key).map(|(stamp, result)| {
            *stamp = clock;
            Arc::clone(result)
        })
    }

    fn contains(&self, key: &RequestKey) -> bool {
        self.entries.contains_key(key)
    }

    fn insert(&mut self, key: RequestKey, result: Arc<MiningResult>) {
        if self.capacity == 0 {
            return;
        }
        if !self.entries.contains_key(&key) && self.entries.len() >= self.capacity {
            if let Some(lru) = self
                .entries
                .iter()
                .min_by_key(|(_, (stamp, _))| *stamp)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&lru);
            }
        }
        self.clock += 1;
        self.entries.insert(key, (self.clock, result));
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

// ---------------------------------------------------------------------------
// Worker pool
// ---------------------------------------------------------------------------

type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolState {
    sender: channel::Sender<Job>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

/// A bounded worker pool over the vendored `crossbeam::channel` stand-in.
/// Threads are spawned lazily on the first submission; `submit` blocks once
/// `queue_capacity` jobs are in flight (backpressure). Dropping the pool
/// closes the queue, lets the workers drain it, and joins them.
struct WorkerPool {
    workers: usize,
    queue_capacity: usize,
    state: Mutex<Option<PoolState>>,
}

impl WorkerPool {
    fn new(workers: usize, queue_capacity: usize) -> Self {
        WorkerPool {
            workers: workers.max(1),
            queue_capacity: queue_capacity.max(1),
            state: Mutex::new(None),
        }
    }

    /// Queue a job, blocking while the queue is at capacity (backpressure).
    fn submit(&self, job: Job) -> Result<(), SirumError> {
        self.submit_impl(job, false)
    }

    /// Queue a job without blocking: a full queue returns
    /// [`SirumError::Overloaded`] immediately (admission control — the wire
    /// front end maps this to `429 Too Many Requests` and never stalls its
    /// accept loop on a saturated pool).
    fn try_submit(&self, job: Job) -> Result<(), SirumError> {
        self.submit_impl(job, true)
    }

    fn submit_impl(&self, job: Job, nonblocking: bool) -> Result<(), SirumError> {
        // Clone the sender out of the state lock before sending so a
        // blocking `submit` parked on a full queue cannot stall a
        // concurrent `try_submit` behind the mutex.
        let sender = {
            let mut state = self.state.lock();
            let state = state.get_or_insert_with(|| {
                let (sender, receiver) = channel::bounded::<Job>(self.queue_capacity);
                let handles = (0..self.workers)
                    .map(|i| {
                        let receiver = receiver.clone();
                        std::thread::Builder::new()
                            .name(format!("sirum-worker-{i}"))
                            .spawn(move || {
                                while let Ok(job) = receiver.recv() {
                                    job();
                                }
                            })
                    })
                    .filter_map(Result::ok)
                    .collect();
                PoolState { sender, handles }
            });
            if state.handles.is_empty() {
                return Err(SirumError::service("worker pool failed to spawn threads"));
            }
            state.sender.clone()
        };
        if nonblocking {
            sender.try_send(job).map_err(|e| match e {
                channel::TrySendError::Full(_) => SirumError::Overloaded {
                    queue_capacity: self.queue_capacity,
                },
                channel::TrySendError::Disconnected(_) => {
                    SirumError::service("worker pool has shut down")
                }
            })
        } else {
            sender
                .send(job)
                .map_err(|_| SirumError::service("worker pool has shut down"))
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Take the state out in its own statement: an `if let` scrutinee
        // would keep the MutexGuard temporary alive across the joins
        // below (edition-2021 temporary scoping), so a worker that
        // touched the pool while we wait would deadlock shutdown.
        let state = self.state.lock().take();
        if let Some(state) = state {
            drop(state.sender); // disconnect; workers drain the queue and exit
            for handle in state.handles {
                // lint:allow(SL008) — Err here means a worker panicked; its job already reported the failure and Drop must not propagate
                let _ = handle.join();
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Service
// ---------------------------------------------------------------------------

/// State shared between service handles *and* in-flight jobs. Jobs capture
/// an `Arc<ServiceCore>` only — never the pool — so a job queued at service
/// drop time cannot deadlock the pool join.
struct ServiceCore {
    engine: Engine,
    cache: Mutex<ResultCache>,
    /// In-flight cacheable executions, for request coalescing: followers of
    /// an identical pending request park their [`JobShared`] here and are
    /// completed by the leader instead of re-executing (no thundering herd
    /// on a cold cache).
    pending: Mutex<HashMap<RequestKey, Vec<Arc<JobShared>>>>,
    /// Recently submitted jobs by id, for out-of-band status queries and
    /// cancellation (the HTTP front end's `GET/DELETE /jobs/{id}`).
    /// Bounded: once full, finished records are evicted oldest-first.
    jobs: Mutex<JobRegistry>,
    /// Job ids are 1-based and monotonically increasing.
    next_job_id: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    jobs_executed: AtomicU64,
    jobs_cancelled: AtomicU64,
    jobs_coalesced: AtomicU64,
    jobs_rejected: AtomicU64,
    /// Jobs accepted into the pool queue but not yet started.
    queue_depth: AtomicU64,
    /// Wall-clock latency of actual mining executions (cache hits and
    /// coalesced deliveries are not samples — nothing executed).
    job_latency: Histogram,
}

/// One registry entry per submitted job: enough shared state to report
/// status, peek the outcome repeatedly and request cancellation, without
/// keeping the handle alive.
struct JobRecord {
    table: String,
    shared: Arc<JobShared>,
    token: CancellationToken,
}

impl JobRecord {
    fn is_pending(&self) -> bool {
        matches!(*self.shared.lock(), JobSlot::Pending)
    }
}

/// Bounded id→record map. Ids are monotonic, so `BTreeMap` iteration order
/// is submission order and eviction scans oldest-first.
struct JobRegistry {
    capacity: usize,
    entries: BTreeMap<u64, JobRecord>,
}

impl JobRegistry {
    fn new(capacity: usize) -> Self {
        JobRegistry {
            capacity,
            entries: BTreeMap::new(),
        }
    }

    fn insert(&mut self, id: u64, record: JobRecord) {
        if self.capacity == 0 {
            return;
        }
        while self.entries.len() >= self.capacity {
            // Prefer evicting a finished record; a registry saturated with
            // in-flight jobs drops its oldest record outright (the job
            // itself still runs — it merely stops being queryable by id).
            let victim = self
                .entries
                .iter()
                .find(|(_, r)| !r.is_pending())
                .map(|(id, _)| *id)
                .or_else(|| self.entries.keys().next().copied());
            match victim {
                Some(id) => {
                    self.entries.remove(&id);
                }
                None => break,
            }
        }
        self.entries.insert(id, record);
    }
}

impl ServiceCore {
    /// Counting cache lookup: a hit bumps `cache_hits`. Misses are NOT
    /// counted here — a missing entry may still be coalesced onto an
    /// in-flight execution; callers count `cache_misses` only when the
    /// request actually proceeds to execute.
    fn cache_lookup(&self, key: &RequestKey) -> Option<Arc<MiningResult>> {
        let hit = self.cache.lock().get(key);
        if hit.is_some() {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Execute one mining job on a metrics-isolated fork of the shared
    /// engine, recording stats and populating the cache on success.
    fn execute(
        &self,
        prepared: &PreparedTable,
        config: SirumConfig,
        prior: &[Rule],
        observer: Option<Box<IterationObserver>>,
        token: CancellationToken,
        key: Option<RequestKey>,
    ) -> Result<JobOutput, SirumError> {
        if key.is_some() {
            // A cacheable request that reached execution: a true miss
            // (cache hits and coalesced followers never get here).
            self.cache_misses.fetch_add(1, Ordering::Relaxed);
        }
        let mut miner = Miner::new(self.engine.fork(), config).with_cancellation(token);
        if let Some(observer) = observer {
            miner = miner.with_observer(move |event| observer(event));
        }
        let started = Instant::now();
        let result = miner.try_mine_prepared(prepared, prior)?;
        self.job_latency.record(started.elapsed());
        self.jobs_executed.fetch_add(1, Ordering::Relaxed);
        if result.cancelled {
            self.jobs_cancelled.fetch_add(1, Ordering::Relaxed);
        }
        let result = Arc::new(result);
        if let Some(key) = key {
            // Cancelled runs are partial: correct to return, wrong to cache.
            if !result.cancelled {
                self.cache.lock().insert(key, Arc::clone(&result));
            }
        }
        Ok(JobOutput {
            result,
            from_cache: false,
        })
    }

    /// Record a submitted job in the bounded registry so it stays
    /// queryable/cancellable by id after its handle is gone.
    fn register_job(
        &self,
        id: u64,
        table: &str,
        shared: &Arc<JobShared>,
        token: &CancellationToken,
    ) {
        self.jobs.lock().insert(
            id,
            JobRecord {
                table: table.to_string(),
                shared: Arc::clone(shared),
                token: token.clone(),
            },
        );
    }
}

struct ServiceInner {
    core: Arc<ServiceCore>,
    catalog: RwLock<BTreeMap<String, CatalogEntry>>,
    pool: WorkerPool,
}

/// A thread-safe mining service: one shared engine, one shared catalog of
/// pre-encoded tables, a bounded worker pool and an LRU result cache.
///
/// `SirumService` is `Send + Sync` and cheap to clone (an `Arc` bump);
/// clones share all state. See the [module docs](self) for an end-to-end
/// example and [`SirumService::builder`] for the knobs.
#[derive(Clone)]
pub struct SirumService {
    inner: Arc<ServiceInner>,
}

// Shared across request threads by design; keep it a compile-time fact.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync + Clone>() {}
    assert_send_sync::<SirumService>();
};

/// Builder for a [`SirumService`]: engine configuration plus the serving
/// knobs (pool size, queue bound, cache capacity).
#[derive(Debug, Clone)]
pub struct ServiceBuilder {
    config: EngineConfig,
    pool_workers: usize,
    queue_capacity: usize,
    cache_capacity: usize,
    job_registry_capacity: usize,
}

impl Default for ServiceBuilder {
    fn default() -> Self {
        ServiceBuilder {
            config: EngineConfig::in_memory(),
            pool_workers: 2,
            queue_capacity: 64,
            cache_capacity: 64,
            job_registry_capacity: 256,
        }
    }
}

impl ServiceBuilder {
    /// Replace the entire engine configuration.
    pub fn engine_config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }

    /// Select the platform-emulation mode, preserving every other engine
    /// setting (same contract as the session builder).
    pub fn mode(mut self, mode: EngineMode) -> Self {
        let base = match mode {
            EngineMode::InMemory => EngineConfig::in_memory(),
            EngineMode::DiskMr => EngineConfig::disk_mr(),
            EngineMode::SingleThread => EngineConfig::single_thread(),
        };
        self.config.mode = base.mode;
        self.config.stage_startup = base.stage_startup;
        self
    }

    /// Default number of partitions for datasets created by this service.
    pub fn partitions(mut self, partitions: usize) -> Self {
        self.config.partitions = partitions;
        self
    }

    /// Number of OS worker threads *per mining stage* (the engine's
    /// intra-job parallelism; distinct from [`Self::pool_workers`]).
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers = workers;
        self
    }

    /// Memory budget in bytes for cached blocks.
    pub fn memory_budget(mut self, bytes: usize) -> Self {
        self.config.memory_budget = Some(bytes);
        self
    }

    /// Number of concurrent mining jobs the pool runs (inter-job
    /// parallelism; default 2). Threads are spawned lazily on the first
    /// [`ServiceRequest::submit`].
    pub fn pool_workers(mut self, workers: usize) -> Self {
        self.pool_workers = workers.max(1);
        self
    }

    /// Bound on queued-but-not-started jobs; once full, `submit` blocks
    /// (backpressure) rather than growing without limit (default 64).
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Result-cache capacity in entries; 0 disables caching (default 64).
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Bound on recently submitted jobs kept queryable by id via
    /// [`SirumService::job_status`] (default 256; 0 disables the registry).
    /// Once full, finished records are evicted oldest-first.
    pub fn job_registry_capacity(mut self, capacity: usize) -> Self {
        self.job_registry_capacity = capacity;
        self
    }

    /// Validate the engine configuration, stand up the engine and return
    /// the service.
    pub fn build(self) -> Result<SirumService, SirumError> {
        let engine = Engine::try_new(self.config)?;
        Ok(SirumService::with_engine_and(
            engine,
            self.pool_workers,
            self.queue_capacity,
            self.cache_capacity,
            self.job_registry_capacity,
        ))
    }
}

impl SirumService {
    /// Start configuring a service.
    pub fn builder() -> ServiceBuilder {
        ServiceBuilder::default()
    }

    /// A service on a default Spark-like in-memory engine with default
    /// serving knobs.
    pub fn in_memory() -> Result<Self, SirumError> {
        Self::builder().build()
    }

    /// Wrap an already-constructed engine with default serving knobs.
    pub fn with_engine(engine: Engine) -> Self {
        let defaults = ServiceBuilder::default();
        Self::with_engine_and(
            engine,
            defaults.pool_workers,
            defaults.queue_capacity,
            defaults.cache_capacity,
            defaults.job_registry_capacity,
        )
    }

    fn with_engine_and(
        engine: Engine,
        pool_workers: usize,
        queue_capacity: usize,
        cache_capacity: usize,
        job_registry_capacity: usize,
    ) -> Self {
        SirumService {
            inner: Arc::new(ServiceInner {
                core: Arc::new(ServiceCore {
                    engine,
                    cache: Mutex::new(ResultCache::new(cache_capacity)),
                    pending: Mutex::new(HashMap::new()),
                    jobs: Mutex::new(JobRegistry::new(job_registry_capacity)),
                    next_job_id: AtomicU64::new(0),
                    cache_hits: AtomicU64::new(0),
                    cache_misses: AtomicU64::new(0),
                    jobs_executed: AtomicU64::new(0),
                    jobs_cancelled: AtomicU64::new(0),
                    jobs_coalesced: AtomicU64::new(0),
                    jobs_rejected: AtomicU64::new(0),
                    queue_depth: AtomicU64::new(0),
                    job_latency: Histogram::new(),
                }),
                catalog: RwLock::new(BTreeMap::new()),
                pool: WorkerPool::new(pool_workers, queue_capacity),
            }),
        }
    }

    /// The shared engine (metrics, block store, configuration). Jobs run on
    /// metrics-isolated forks of it; this handle's registry records only
    /// work driven through the session path or directly by the caller.
    pub fn engine(&self) -> &Engine {
        &self.inner.core.engine
    }

    // -- catalog ------------------------------------------------------------

    /// Register a table under `name`, replacing any previous table of that
    /// name; returns the shared handle. Registration validates the data
    /// (non-empty, finite measures) and pays the dictionary-encoding and
    /// measure-transform work **once**, so every subsequent request on the
    /// table skips it.
    pub fn register(
        &self,
        name: impl Into<String>,
        table: Table,
    ) -> Result<Arc<Table>, SirumError> {
        if table.num_rows() == 0 {
            return Err(SirumError::EmptyDataset);
        }
        if let Some(i) = table.measures().iter().position(|m| !m.is_finite()) {
            return Err(SirumError::InvalidMeasure {
                reason: format!(
                    "row {i}: value {} in measure column {:?} is not finite",
                    table.measures()[i],
                    table.schema().measure_name()
                ),
            });
        }
        let table = Arc::new(table);
        let entry = CatalogEntry {
            fingerprint: table.fingerprint(),
            prepared: Arc::new(PreparedTable::try_new(&table)?),
            table: Arc::clone(&table),
        };
        self.inner.catalog.write().insert(name.into(), entry);
        Ok(table)
    }

    /// Parse a CSV stream (header + rows, last column numeric) and register
    /// it under `name`.
    pub fn register_csv(
        &self,
        name: impl Into<String>,
        input: impl std::io::BufRead,
    ) -> Result<Arc<Table>, SirumError> {
        let table = sirum_table::csv::read_csv(input)?;
        self.register(name, table)
    }

    /// Register one of the built-in demo datasets under its own name with
    /// default sizing: `flights`, `income`, `gdelt`, `susy`, `tlc` or
    /// `dirty`.
    pub fn register_demo(&self, name: &str) -> Result<Arc<Table>, SirumError> {
        self.register_demo_with(name, None, 42)
    }

    /// [`Self::register_demo`] with explicit row count (`None` = the demo's
    /// default) and generator seed.
    pub fn register_demo_with(
        &self,
        name: &str,
        rows: Option<usize>,
        seed: u64,
    ) -> Result<Arc<Table>, SirumError> {
        let table = match name {
            "flights" => generators::flights(),
            "income" => generators::income_like(rows.unwrap_or(20_000), seed),
            "gdelt" => generators::gdelt_like(rows.unwrap_or(20_000), seed),
            "susy" => generators::susy_like(rows.unwrap_or(2_000), seed),
            "tlc" => generators::tlc_like(rows.unwrap_or(50_000), seed),
            "dirty" => generators::gdelt_dirty(rows.unwrap_or(20_000), seed),
            other => {
                return Err(SirumError::UnknownDemo {
                    name: other.to_string(),
                })
            }
        };
        self.register(name, table)
    }

    /// Look up a registered table (a cheap `Arc` clone). Unknown names list
    /// the registered ones in the error.
    pub fn table(&self, name: &str) -> Result<Arc<Table>, SirumError> {
        self.entry(name).map(|e| e.table)
    }

    /// Names of all registered tables, in sorted order.
    pub fn table_names(&self) -> Vec<String> {
        self.inner.catalog.read().keys().cloned().collect()
    }

    /// Remove a table from the catalog, returning its shared handle if
    /// present. In-flight jobs against the table finish normally (they hold
    /// their own `Arc`s); cached results keyed by its content fingerprint
    /// age out via LRU.
    pub fn unregister(&self, name: &str) -> Option<Arc<Table>> {
        self.inner.catalog.write().remove(name).map(|e| e.table)
    }

    pub(crate) fn entry(&self, name: &str) -> Result<CatalogEntry, SirumError> {
        self.inner
            .catalog
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| SirumError::UnknownTable {
                name: name.to_string(),
                registered: self.table_names(),
            })
    }

    // -- requests -----------------------------------------------------------

    /// Start building a mining request against the named table; finish with
    /// [`ServiceRequest::submit`] (pooled, returns a [`JobHandle`]),
    /// [`ServiceRequest::run`] (synchronous on the calling thread) or
    /// [`ServiceRequest::explain`] (plan only, no execution).
    pub fn mine(&self, table: &str) -> ServiceRequest<'_> {
        ServiceRequest {
            service: self,
            spec: RequestSpec::new(table),
            observer: None,
            deadline: None,
        }
    }

    /// Score an externally supplied rule set against a registered table
    /// (offline evaluation, §4.5/§5.7.3), scanning the catalog entry's
    /// shared columnar preparation — no per-call transpose.
    pub fn evaluate(
        &self,
        table: &str,
        rules: &[Rule],
        scaling: &ScalingConfig,
    ) -> Result<RuleSetEvaluation, SirumError> {
        try_evaluate_rules_prepared(&self.entry(table)?.prepared, rules, scaling)
    }

    /// Open an incremental-maintenance stream seeded with the named table's
    /// current contents (§7-style streaming SIRUM): the returned
    /// [`IngestHandle`] accepts new batches and maintains the rule model
    /// with warm-started refits. The handle is single-owner (`&mut`
    /// ingestion) and independent of later catalog changes.
    ///
    /// Streaming maintenance requires nonnegative measures (history cannot
    /// be re-shifted retroactively); a table with negative measures is
    /// rejected with [`SirumError::InvalidMeasure`]. A table wider than
    /// the cube-lattice expansion limit is rejected with
    /// [`SirumError::InvalidConfig`], mirroring [`Self::mine`] — the
    /// stream's [`IngestHandle::mine_more`] expands sample-tuple lattices
    /// just like the miner does.
    pub fn stream(&self, table: &str) -> Result<IngestHandle, SirumError> {
        let entry = self.entry(table)?;
        let d = entry.table.num_dims();
        if d > sirum_core::lattice::MAX_EXPAND_BITS {
            return Err(SirumError::invalid_config(
                "table.dims",
                format!(
                    "{d} dimension attributes imply 2^{d} candidate rules per \
                     tuple lattice, beyond the 2^{} expansion limit; project \
                     the table first",
                    sirum_core::lattice::MAX_EXPAND_BITS
                ),
            ));
        }
        if let Some(i) = entry.table.measures().iter().position(|m| *m < 0.0) {
            return Err(SirumError::InvalidMeasure {
                reason: format!(
                    "row {i}: value {} is negative; streaming maintenance requires \
                     nonnegative measures (apply a measure transform upstream)",
                    entry.table.measures()[i]
                ),
            });
        }
        let mut miner = StreamingMiner::new(entry.table.num_dims(), StreamingConfig::default());
        miner.ingest_table(&entry.table);
        Ok(IngestHandle {
            miner,
            table: entry.table,
        })
    }

    // -- jobs ---------------------------------------------------------------

    /// Ids of every job the bounded registry still remembers, in
    /// submission order (oldest first).
    pub fn job_ids(&self) -> Vec<u64> {
        self.inner
            .core
            .jobs
            .lock()
            .entries
            .keys()
            .copied()
            .collect()
    }

    /// Point-in-time status of a registered job; `None` when the id is
    /// unknown (never submitted, or evicted from the bounded registry).
    pub fn job_status(&self, id: u64) -> Option<JobStatus> {
        let jobs = self.inner.core.jobs.lock();
        let record = jobs.entries.get(&id)?;
        let state = match &*record.shared.lock() {
            JobSlot::Pending => JobState::Queued,
            JobSlot::Done(Ok(out)) => JobState::Done {
                from_cache: out.from_cache,
                cancelled: out.result.cancelled,
            },
            JobSlot::Done(Err(e)) => JobState::Failed {
                reason: e.to_string(),
            },
            JobSlot::Taken => JobState::Consumed,
        };
        Some(JobStatus {
            id,
            table: record.table.clone(),
            state,
            cancel_requested: record.token.is_cancelled(),
        })
    }

    /// Non-consuming read of a registered job's outcome: `None` while the
    /// job is still queued/running (or the id is unknown — disambiguate
    /// with [`Self::job_status`]); repeatable once finished, unlike
    /// [`JobHandle::wait`]. A job whose outcome was consumed through its
    /// handle reports [`SirumError::Service`].
    pub fn job_output(&self, id: u64) -> Option<Result<JobOutput, SirumError>> {
        let shared = {
            let jobs = self.inner.core.jobs.lock();
            Arc::clone(&jobs.entries.get(&id)?.shared)
        };
        shared.peek()
    }

    /// Like [`Self::job_output`], but block up to `timeout` for the job to
    /// finish. `None` on timeout or unknown id.
    pub fn wait_job(&self, id: u64, timeout: Duration) -> Option<Result<JobOutput, SirumError>> {
        let shared = {
            let jobs = self.inner.core.jobs.lock();
            Arc::clone(&jobs.entries.get(&id)?.shared)
        };
        shared.peek_within(timeout)
    }

    /// Request cooperative cancellation of a registered job by id; returns
    /// whether the id was known. Same semantics as [`JobHandle::cancel`].
    pub fn cancel_job(&self, id: u64) -> bool {
        let jobs = self.inner.core.jobs.lock();
        match jobs.entries.get(&id) {
            Some(record) => {
                record.token.cancel();
                true
            }
            None => false,
        }
    }

    /// Point-in-time serving statistics.
    pub fn stats(&self) -> ServiceStats {
        let core = &self.inner.core;
        let active_jobs: Vec<u64> = {
            let jobs = core.jobs.lock();
            jobs.entries
                .iter()
                .filter(|(_, record)| record.is_pending())
                .map(|(id, _)| *id)
                .collect()
        };
        ServiceStats {
            cache_hits: core.cache_hits.load(Ordering::Relaxed),
            cache_misses: core.cache_misses.load(Ordering::Relaxed),
            jobs_executed: core.jobs_executed.load(Ordering::Relaxed),
            jobs_cancelled: core.jobs_cancelled.load(Ordering::Relaxed),
            jobs_coalesced: core.jobs_coalesced.load(Ordering::Relaxed),
            jobs_rejected: core.jobs_rejected.load(Ordering::Relaxed),
            queue_depth: core.queue_depth.load(Ordering::Relaxed),
            cache_entries: core.cache.lock().len(),
            active_jobs,
            job_latency: core.job_latency.snapshot(),
            memory: core.engine.store().memory_stats(),
        }
    }
}

impl std::fmt::Debug for SirumService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SirumService")
            .field("mode", &self.inner.core.engine.mode())
            .field("tables", &self.table_names())
            .field("stats", &self.stats())
            .finish()
    }
}

/// Counters describing how the service has been serving requests.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests answered from the result cache without re-execution.
    pub cache_hits: u64,
    /// Cacheable requests that had to execute.
    pub cache_misses: u64,
    /// Mining runs actually executed (cache misses + uncacheable requests).
    pub jobs_executed: u64,
    /// Executed runs that ended via cooperative cancellation.
    pub jobs_cancelled: u64,
    /// Submitted jobs served by coalescing onto an identical in-flight
    /// execution instead of running themselves.
    pub jobs_coalesced: u64,
    /// Jobs shed by non-blocking admission ([`ServiceRequest::try_submit`]
    /// against a full queue → [`SirumError::Overloaded`]).
    pub jobs_rejected: u64,
    /// Jobs accepted into the pool queue but not yet started.
    pub queue_depth: u64,
    /// Results currently held by the cache.
    pub cache_entries: usize,
    /// Ids of registered jobs still queued or running, oldest first.
    pub active_jobs: Vec<u64>,
    /// Latency distribution of actual mining executions (cache hits and
    /// coalesced deliveries are not samples).
    pub job_latency: LatencySummary,
    /// Block-store memory pressure: resident bytes, cumulative spill
    /// volume and eviction count — how hard the engine's budget is
    /// working.
    pub memory: sirum_dataflow::MemoryStats,
}

/// Point-in-time status of a submitted job, from
/// [`SirumService::job_status`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobStatus {
    /// The job's id ([`JobHandle::id`]).
    pub id: u64,
    /// The table the request targeted.
    pub table: String,
    /// Where the job is in its lifecycle.
    pub state: JobState,
    /// Whether cooperative cancellation has been requested (by handle,
    /// [`SirumService::cancel_job`], or an expired deadline).
    pub cancel_requested: bool,
}

/// A job's lifecycle state within [`JobStatus`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobState {
    /// Still queued or running.
    Queued,
    /// Finished successfully; the outcome is readable via
    /// [`SirumService::job_output`].
    Done {
        /// The result was served from the cache (or a coalesced leader).
        from_cache: bool,
        /// The run ended via cooperative cancellation (partial result).
        cancelled: bool,
    },
    /// Finished with an error.
    Failed {
        /// The error, rendered.
        reason: String,
    },
    /// The outcome was taken through the job's own [`JobHandle`].
    Consumed,
}

// ---------------------------------------------------------------------------
// Requests and job handles
// ---------------------------------------------------------------------------

/// A fluent, validated mining request against a [`SirumService`]. Build
/// with [`SirumService::mine`], tweak, then [`Self::submit`] it to the
/// worker pool, [`Self::run`] it synchronously, or [`Self::explain`] it.
pub struct ServiceRequest<'s> {
    service: &'s SirumService,
    spec: RequestSpec,
    observer: Option<Box<IterationObserver>>,
    /// Per-request execution deadline. Deliberately *not* part of
    /// [`RequestSpec`]: the deadline must never split the cache key (two
    /// requests differing only in patience execute identically).
    deadline: Option<Duration>,
}

impl_request_setters!(ServiceRequest);

impl ServiceRequest<'_> {
    /// Resolve the table and validate the normalized configuration, the
    /// shared front half of submit/run/explain.
    fn resolve(&self) -> Result<(CatalogEntry, SirumConfig), SirumError> {
        let entry = self.service.entry(&self.spec.table)?;
        let config = self.spec.build_config(entry.table.num_rows());
        config.validate()?;
        Ok((entry, config))
    }

    fn cache_key(&self, entry: &CatalogEntry, config: &SirumConfig) -> Option<RequestKey> {
        // Observers are side effects; requests carrying one bypass the
        // cache entirely (a hit would silently skip every callback).
        if self.observer.is_some() {
            None
        } else {
            Some(request_key(entry.fingerprint, config, &self.spec.prior))
        }
    }

    /// Submit the request to the worker pool and return a [`JobHandle`].
    ///
    /// Table resolution and configuration validation happen *here*, on the
    /// calling thread, so every "bad request" error surfaces immediately;
    /// the handle only ever carries execution-time outcomes. Blocks while
    /// the job queue is at capacity (backpressure).
    ///
    /// Identical requests are served once: a previously-completed one is
    /// answered from the result cache (the returned handle is already
    /// finished, [`JobOutput::from_cache`] set), and one that is still
    /// *running* is **coalesced** — the new handle rides the in-flight
    /// execution and receives the same shared result when it completes (no
    /// thundering herd on a cold cache). A coalesced handle's `cancel()`
    /// does not stop the shared execution (other handles want its result).
    /// If the *leader* is cancelled, its own handle receives the partial
    /// result with [`MiningResult::cancelled`] set, but coalesced handles
    /// asked for the full answer: they receive a retryable
    /// [`SirumError::Service`] instead of a partial result (and the cache
    /// stays unpopulated, so a resubmission executes fresh). Should the
    /// leader *fail*, followers receive the failure re-wrapped as
    /// [`SirumError::Service`] with the original error rendered into the
    /// reason (errors are not clonable across handles) — match on the
    /// leader's handle for the typed variant.
    ///
    /// # Errors
    /// * [`SirumError::UnknownTable`] / [`SirumError::InvalidConfig`] — the
    ///   request cannot execute.
    /// * [`SirumError::Service`] — the worker pool is shut down.
    pub fn submit(self) -> Result<JobHandle, SirumError> {
        self.submit_inner(false)
    }

    /// Like [`Self::submit`], but with **non-blocking admission**: when the
    /// job queue is at capacity the request is shed immediately with
    /// [`SirumError::Overloaded`] instead of blocking the caller — the wire
    /// front end's path (mapped to `429 Too Many Requests`). Cache hits and
    /// coalesced followers bypass admission entirely: they consume no queue
    /// slot, so they succeed even against a saturated pool.
    pub fn try_submit(self) -> Result<JobHandle, SirumError> {
        self.submit_inner(true)
    }

    /// Cancel the job cooperatively once `timeout` of wall-clock time has
    /// elapsed after submission (the run then completes with a *partial*
    /// result, [`MiningResult::cancelled`] set, exactly like
    /// [`JobHandle::cancel`]). Not part of the cache key: a request
    /// differing only in patience is still the same request.
    pub fn deadline(mut self, timeout: Duration) -> Self {
        self.deadline = Some(timeout);
        self
    }

    fn submit_inner(self, nonblocking: bool) -> Result<JobHandle, SirumError> {
        let (entry, config) = self.resolve()?;
        let key = self.cache_key(&entry, &config);
        let core = Arc::clone(&self.service.inner.core);
        let token = CancellationToken::new();
        if let Some(timeout) = self.deadline {
            token.cancel_after(timeout);
        }
        let shared = Arc::new(JobShared::new());
        let id = core.next_job_id.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(key) = &key {
            if let Some(hit) = core.cache_lookup(key) {
                shared.set(Ok(JobOutput {
                    result: hit,
                    from_cache: true,
                }));
                core.register_job(id, &self.spec.table, &shared, &token);
                return Ok(JobHandle {
                    id,
                    shared,
                    token,
                    delivered: false,
                });
            }
            // Coalesce onto an identical in-flight execution, or claim
            // leadership of this key (push/claim and the leader's drain
            // serialize on the `pending` lock, so no follower is lost).
            let mut pending = core.pending.lock();
            if let Some(waiters) = pending.get_mut(key) {
                waiters.push(Arc::clone(&shared));
                core.jobs_coalesced.fetch_add(1, Ordering::Relaxed);
                drop(pending);
                core.register_job(id, &self.spec.table, &shared, &token);
                return Ok(JobHandle {
                    id,
                    shared,
                    token,
                    delivered: false,
                });
            }
            pending.insert(key.clone(), Vec::new());
        }
        let observer = self.observer;
        let prior = self.spec.prior;
        let job_shared = Arc::clone(&shared);
        let job_token = token.clone();
        let leader_key = key.clone();
        let leader_core = Arc::clone(&core);
        let job: Job = Box::new(move || {
            core.queue_depth.fetch_sub(1, Ordering::Relaxed);
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                core.execute(
                    &entry.prepared,
                    config,
                    &prior,
                    observer,
                    job_token,
                    key.clone(),
                )
            }))
            .unwrap_or_else(|_| Err(SirumError::service("mining job panicked")));
            // Complete every follower that coalesced onto this execution.
            // The cache was populated inside `execute`, so a request
            // arriving between the drain and our own slot-set hits it.
            //
            // Cache-correctness invariant: a cancelled run is a *partial*
            // result. It is correct to hand it to the handle whose owner
            // requested the cancellation, but a follower asked for the
            // full answer — it must never be resolved with the leader's
            // partial rules (and the cache was likewise not populated).
            // Followers of a cancelled leader get a typed retryable error
            // instead; a resubmission executes fresh.
            if let Some(key) = &key {
                let waiters = core.pending.lock().remove(key).unwrap_or_default();
                for waiter in waiters {
                    waiter.set(match &outcome {
                        Ok(out) if out.result.cancelled => Err(SirumError::service(
                            "coalesced execution was cancelled before completion; \
                             resubmit the request for a full run",
                        )),
                        Ok(out) => Ok(JobOutput {
                            result: Arc::clone(&out.result),
                            from_cache: true,
                        }),
                        Err(e) => Err(SirumError::service(format!("coalesced job failed: {e}"))),
                    });
                }
            }
            job_shared.set(outcome);
        });
        leader_core.queue_depth.fetch_add(1, Ordering::Relaxed);
        let pool = &self.service.inner.pool;
        let submitted = if nonblocking {
            pool.try_submit(job)
        } else {
            pool.submit(job)
        };
        if let Err(e) = submitted {
            leader_core.queue_depth.fetch_sub(1, Ordering::Relaxed);
            if matches!(e, SirumError::Overloaded { .. }) {
                leader_core.jobs_rejected.fetch_add(1, Ordering::Relaxed);
            }
            // Leadership was claimed but the job never queued: release the
            // key AND fail any follower that already coalesced onto it
            // (dropping their JobShared unset would hang their wait()).
            if let Some(key) = &leader_key {
                let waiters = leader_core.pending.lock().remove(key).unwrap_or_default();
                for waiter in waiters {
                    waiter.set(Err(SirumError::service(format!(
                        "coalesced job was never scheduled: {e}"
                    ))));
                }
            }
            return Err(e);
        }
        leader_core.register_job(id, &self.spec.table, &shared, &token);
        Ok(JobHandle {
            id,
            shared,
            token,
            delivered: false,
        })
    }

    /// Execute the request synchronously on the calling thread (still
    /// cache-checked and metrics-isolated; the worker pool is not
    /// involved and the run neither joins nor leads in-flight coalescing).
    pub fn run(self) -> Result<JobOutput, SirumError> {
        let (entry, config) = self.resolve()?;
        let key = self.cache_key(&entry, &config);
        let core = &self.service.inner.core;
        if let Some(key) = &key {
            if let Some(hit) = core.cache_lookup(key) {
                return Ok(JobOutput {
                    result: hit,
                    from_cache: true,
                });
            }
        }
        let token = CancellationToken::new();
        if let Some(timeout) = self.deadline {
            token.cancel_after(timeout);
        }
        core.execute(
            &entry.prepared,
            config,
            &self.spec.prior,
            self.observer,
            token,
            key,
        )
    }

    /// Like [`Self::run`], but mine on a Bernoulli row sample of the table
    /// at `rate` and score the mined rules against the *full* table
    /// (§4.5/§5.7.3). Never cached (the sample is drawn per call); the
    /// progress observer is not invoked in this mode.
    pub fn run_on_sample(self, rate: f64) -> Result<SampleDataResult, SirumError> {
        let (entry, config) = self.resolve()?;
        try_mine_on_sample(&self.service.engine().fork(), &entry.table, rate, config)
    }

    /// Return the planned execution — strategy, normalized configuration
    /// and a modeled cost estimate from [`sirum_dataflow::cost`] — without
    /// running anything. The same validation as [`Self::submit`] applies,
    /// so `explain` doubles as a dry-run check.
    pub fn explain(&self) -> Result<MiningPlan, SirumError> {
        let (entry, config) = self.resolve()?;
        let cached = match self.cache_key(&entry, &config) {
            Some(key) => self.service.inner.core.cache.lock().contains(&key),
            None => false,
        };
        Ok(MiningPlan::model(
            &self.spec.table,
            self.spec.variant,
            &entry,
            &config,
            self.service.engine().config(),
            cached,
        ))
    }
}

impl std::fmt::Debug for ServiceRequest<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceRequest")
            .field("table", &self.spec.table)
            .field("k", &self.spec.k)
            .field("variant", &self.spec.variant)
            .field("sample_size", &self.spec.sample_size)
            .finish_non_exhaustive()
    }
}

/// A completed request: the mining result (shared — cache hits return the
/// *same* allocation, observable via [`Arc::ptr_eq`]) plus where it came
/// from.
#[derive(Debug, Clone)]
pub struct JobOutput {
    /// The mining result.
    pub result: Arc<MiningResult>,
    /// True when the result was served from the result cache without
    /// re-execution.
    pub from_cache: bool,
}

enum JobSlot {
    Pending,
    Done(Result<JobOutput, SirumError>),
    Taken,
}

struct JobShared {
    slot: StdMutex<JobSlot>,
    done: Condvar,
}

impl JobShared {
    fn new() -> Self {
        JobShared {
            slot: StdMutex::new(JobSlot::Pending),
            done: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, JobSlot> {
        // A panicking setter is already mapped to Err by the job wrapper;
        // recover the poison instead of propagating it.
        self.slot.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn set(&self, outcome: Result<JobOutput, SirumError>) {
        *self.lock() = JobSlot::Done(outcome);
        self.done.notify_all();
    }

    /// Non-consuming read: clone a finished outcome, leaving the slot
    /// `Done` so later peeks (and the handle's own `wait`) still see it.
    /// Errors are not clonable, so a failed job peeks as a re-rendered
    /// [`SirumError::Service`]; `None` while pending.
    fn peek(&self) -> Option<Result<JobOutput, SirumError>> {
        match &*self.lock() {
            JobSlot::Pending => None,
            JobSlot::Done(Ok(output)) => Some(Ok(output.clone())),
            JobSlot::Done(Err(e)) => Some(Err(SirumError::service(format!("job failed: {e}")))),
            JobSlot::Taken => Some(Err(SirumError::service(
                "job result was already taken through its handle",
            ))),
        }
    }

    /// [`Self::peek`], blocking up to `timeout` for the job to finish;
    /// `None` on timeout.
    fn peek_within(&self, timeout: Duration) -> Option<Result<JobOutput, SirumError>> {
        // `Instant + Duration` can overflow-panic on absurd timeouts; an
        // unrepresentable deadline just re-checks in hour-long waits.
        let deadline = Instant::now().checked_add(timeout);
        let mut slot = self.lock();
        loop {
            match &*slot {
                JobSlot::Pending => {}
                JobSlot::Done(Ok(output)) => return Some(Ok(output.clone())),
                JobSlot::Done(Err(e)) => {
                    return Some(Err(SirumError::service(format!("job failed: {e}"))))
                }
                JobSlot::Taken => {
                    return Some(Err(SirumError::service(
                        "job result was already taken through its handle",
                    )))
                }
            }
            let remaining = match deadline {
                Some(deadline) => deadline.saturating_duration_since(Instant::now()),
                None => Duration::from_secs(3600),
            };
            if remaining.is_zero() {
                return None;
            }
            slot = self
                .done
                // lint:allow(SL003) — Condvar::wait_timeout atomically releases the guard while parked
                .wait_timeout(slot, remaining)
                .unwrap_or_else(|e| e.into_inner())
                .0;
        }
    }
}

/// Handle to a submitted mining job (see [`ServiceRequest::submit`]).
///
/// ```
/// use sirum::service::SirumService;
///
/// let service = SirumService::in_memory()?;
/// service.register_demo("flights")?;
/// let mut handle = service.mine("flights").k(2).sample_size(14).submit()?;
/// // Poll without blocking…
/// let output = loop {
///     match handle.try_poll() {
///         Some(outcome) => break outcome?,
///         None => std::thread::yield_now(),
///     }
/// };
/// assert_eq!(output.result.rules.len(), 3);
/// # Ok::<(), sirum::api::SirumError>(())
/// ```
///
/// `cancel()` requests cooperative cancellation: the running miner stops at
/// the next iteration boundary and the job completes *successfully* with a
/// partial result whose [`MiningResult::cancelled`] flag is set.
pub struct JobHandle {
    id: u64,
    shared: Arc<JobShared>,
    token: CancellationToken,
    delivered: bool,
}

impl JobHandle {
    /// The job's service-wide id (1-based, monotonically increasing).
    /// Usable out-of-band through [`SirumService::job_status`],
    /// [`SirumService::job_output`] and [`SirumService::cancel_job`] while
    /// the bounded registry remembers the job.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Request cooperative cancellation. Idempotent; a job that already
    /// finished is unaffected, a queued job stops before its first mining
    /// iteration, a running job stops at the next iteration boundary. The
    /// partial result still arrives through [`Self::wait`] /
    /// [`Self::try_poll`] with [`MiningResult::cancelled`] set.
    pub fn cancel(&self) {
        self.token.cancel();
    }

    /// A clone of the job's cancellation token (e.g. to hand to a watchdog
    /// thread).
    pub fn cancellation_token(&self) -> CancellationToken {
        self.token.clone()
    }

    /// True once the job's outcome is available (or was already taken).
    pub fn is_finished(&self) -> bool {
        !matches!(*self.shared.lock(), JobSlot::Pending)
    }

    /// Non-blocking poll: `None` while the job is still queued or running;
    /// the outcome exactly once when finished (subsequent polls return
    /// `None` again).
    pub fn try_poll(&mut self) -> Option<Result<JobOutput, SirumError>> {
        let mut slot = self.shared.lock();
        match std::mem::replace(&mut *slot, JobSlot::Taken) {
            JobSlot::Done(outcome) => {
                self.delivered = true;
                Some(outcome)
            }
            JobSlot::Pending => {
                *slot = JobSlot::Pending;
                None
            }
            JobSlot::Taken => None,
        }
    }

    /// Block up to `timeout` for the job to finish: `None` on timeout (the
    /// job keeps running and the handle stays usable), the outcome exactly
    /// once when it finishes within the window (like [`Self::try_poll`],
    /// a delivered outcome is not delivered again).
    pub fn wait_timeout(&mut self, timeout: Duration) -> Option<Result<JobOutput, SirumError>> {
        let deadline = Instant::now().checked_add(timeout);
        let mut slot = self.shared.lock();
        loop {
            match std::mem::replace(&mut *slot, JobSlot::Taken) {
                JobSlot::Done(outcome) => {
                    self.delivered = true;
                    return Some(outcome);
                }
                JobSlot::Taken => {
                    return Some(Err(SirumError::service(
                        "job result was already taken by try_poll()",
                    )))
                }
                JobSlot::Pending => {
                    *slot = JobSlot::Pending;
                }
            }
            let remaining = match deadline {
                Some(deadline) => deadline.saturating_duration_since(Instant::now()),
                None => Duration::from_secs(3600),
            };
            if remaining.is_zero() {
                return None;
            }
            slot = self
                .shared
                .done
                // lint:allow(SL003) — Condvar::wait_timeout atomically releases the guard while parked
                .wait_timeout(slot, remaining)
                .unwrap_or_else(|e| e.into_inner())
                .0;
        }
    }

    /// Block until the job finishes and return its outcome.
    ///
    /// # Errors
    /// The job's own error, or [`SirumError::Service`] if the outcome was
    /// already taken by [`Self::try_poll`].
    pub fn wait(mut self) -> Result<JobOutput, SirumError> {
        if self.delivered {
            return Err(SirumError::service(
                "job result was already taken by try_poll()",
            ));
        }
        let mut slot = self.shared.lock();
        loop {
            match std::mem::replace(&mut *slot, JobSlot::Taken) {
                JobSlot::Done(outcome) => {
                    self.delivered = true;
                    return outcome;
                }
                JobSlot::Pending => {
                    *slot = JobSlot::Pending;
                    slot = self
                        .shared
                        .done
                        // lint:allow(SL003) — Condvar::wait atomically releases the guard while parked
                        .wait(slot)
                        .unwrap_or_else(|e| e.into_inner());
                }
                JobSlot::Taken => {
                    return Err(SirumError::service(
                        "job result was already taken by try_poll()",
                    ))
                }
            }
        }
    }
}

impl std::fmt::Debug for JobHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobHandle")
            .field("id", &self.id)
            .field("finished", &self.is_finished())
            .field("cancel_requested", &self.token.is_cancelled())
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Explain
// ---------------------------------------------------------------------------

/// Modeled per-record processing cost used by [`MiningPlan`]. A planning
/// heuristic, not a measurement: it only needs to rank plans sensibly and
/// scale with input size.
const EST_NANOS_PER_RECORD: f64 = 60.0;
/// Modeled bytes per shuffled candidate pair.
const EST_BYTES_PER_PAIR: u64 = 24;

/// The planned execution of a mining request: the normalized strategy plus
/// a deterministic cost estimate obtained by replaying the *predicted*
/// stage list through the cluster cost model ([`sirum_dataflow::cost`]).
/// Produced by [`ServiceRequest::explain`]; nothing is executed.
#[derive(Debug, Clone)]
pub struct MiningPlan {
    /// Requested table name.
    pub table: String,
    /// The table's content fingerprint (the cache key's table half).
    pub fingerprint: u64,
    /// Rows in the table.
    pub rows: usize,
    /// Dimension attributes in the table.
    pub dims: usize,
    /// Syntactically possible rules `∏(|dom(Aᵢ)|+1)` for scale context.
    pub possible_rules: f64,
    /// Normalized candidate strategy (sample size already clamped).
    pub strategy: CandidateStrategy,
    /// The variant the request was based on, if any.
    pub variant: Option<Variant>,
    /// Rules to mine beyond the wildcard rule.
    pub k: usize,
    /// Column groups for staged ancestor generation.
    pub column_groups: usize,
    /// Rules inserted per iteration.
    pub rules_per_iter: usize,
    /// Whether the RCT scaling path is active.
    pub rct: bool,
    /// Whether candidate evaluation runs as the fused partition-parallel
    /// gain sweep (one scan per iteration, no shuffles) or as the legacy
    /// staged pipeline.
    pub gain_sweep: bool,
    /// Whether `D` is scanned in columnar form (zero-copy `FrameView`
    /// partitions over the registered table's shared columns) or as
    /// row-major boxed tuples; the model charges row-materializing scans
    /// [`sirum_dataflow::cost::ROW_MATERIALIZE_FACTOR`]× per record.
    pub columnar: bool,
    /// Whether the registered table's dimension columns are stored
    /// compressed (bit-packed/RLE segments, scanned morsel-by-morsel) —
    /// the [`sirum_table::Compression`] policy's decision at registration.
    pub compressed: bool,
    /// Per-column physical formats (`"raw"`, `"packed4"`, `"rle"`, …),
    /// one entry per dimension, as chosen by the per-segment size
    /// heuristic.
    pub column_formats: Vec<String>,
    /// Modeled per-record cost of one columnar scan pass over the table's
    /// dimension columns ([`sirum_dataflow::cost::scan_record_nanos`]):
    /// memory traffic at streaming bandwidth plus, when compressed, the
    /// per-value decode tax. This is the compressed-vs-raw trade the plan
    /// prices into `estimated_secs`.
    pub scan_nanos_per_record: f64,
    /// Packed-code width the sweep's accumulators will use: `Some(64)` or
    /// `Some(128)` when rules intern as dense integer codes (the table's
    /// dictionary bit-widths fit; [`sirum_core::RuleLayout`]), `None` when
    /// the sweep falls back to `Rule`-keyed maps (packing disabled or the
    /// layout exceeds 128 bits) — or when the sweep itself is off.
    pub packed_bits: Option<u32>,
    /// Predicted stage-1 combine strategy for one sweep partition
    /// ([`sirum_dataflow::cost::choose_combine`] replayed on the planned
    /// per-partition emission volume). `None` when the sweep is off.
    pub combine: Option<CombineStrategy>,
    /// Predicted rule-generation iterations (`⌈k / l⌉`; a KL-target run may
    /// iterate further, up to its `max_rules` bound).
    pub estimated_iterations: usize,
    /// Predicted engine stages across the whole run.
    pub estimated_stages: usize,
    /// Predicted candidate pairs emitted per iteration by the LCA join
    /// (`|s| × n`, before combining).
    pub estimated_lca_pairs: u64,
    /// Modeled wall-clock seconds on the service's engine configuration
    /// (LPT schedule over `workers` slots, per-stage startup, shuffle
    /// volume — see [`sirum_dataflow::cost::stage_makespan`]).
    pub estimated_secs: f64,
    /// True when the result cache already holds this exact request (it
    /// would be answered without execution).
    pub cached: bool,
}

impl MiningPlan {
    fn model(
        table: &str,
        variant: Option<Variant>,
        entry: &CatalogEntry,
        config: &SirumConfig,
        engine_config: &EngineConfig,
        cached: bool,
    ) -> MiningPlan {
        let n = entry.table.num_rows() as u64;
        let sample = match config.strategy {
            CandidateStrategy::SampleLca { sample_size } => sample_size as u64,
            CandidateStrategy::FullCube => 1,
        };
        let lca_pairs = n * sample;
        let iterations = config.k.div_ceil(config.multirule.rules_per_iter.max(1));
        let partitions = engine_config.partitions.max(1);

        // Replay the sweep's own per-partition decisions: the packed-code
        // width falls out of the registered dictionaries' bit-widths, and
        // the combine strategy out of the cost model on the planned
        // per-partition emission volume (rows/partition × |s| emissions,
        // rows/partition as the distinct-key ceiling) — the same inputs
        // `sirum_core::sweep` uses at run time.
        let (packed_bits, combine) = if config.gain_sweep {
            let bits = if config.packed_codes {
                let layout = RuleLayout::from_cardinalities(entry.prepared.frame().cards());
                SweepOptions::packed(layout).packed_bits()
            } else {
                None
            };
            // Same (records, distinct-ceiling) hint the sweep's
            // per-partition strategy pick uses: the emission count itself
            // bounds the distinct codes a partition can produce.
            let records = n.div_ceil(partitions as u64) * sample;
            (bits, Some(choose_combine(records, records)))
        } else {
            (None, None)
        };

        // Per-record scan cost: a base processing constant, the memory
        // traffic + decode term of the table's actual column formats
        // (compressed columns move fewer bytes but pay a per-value unpack
        // tax), and the row-materializing factor for the boxed-tuple
        // reference path, which re-allocates every row on every rewrite.
        let frame = entry.prepared.frame();
        let compressed = frame.is_compressed();
        let column_formats: Vec<String> = frame
            .column_formats()
            .iter()
            .map(ToString::to_string)
            .collect();
        let bytes_per_row = if n > 0 {
            frame.dim_bytes() as f64 / n as f64
        } else {
            0.0
        };
        let scan_record =
            sirum_dataflow::cost::scan_record_nanos(frame.num_dims(), bytes_per_row, compressed);
        let scan_nanos = if config.columnar {
            EST_NANOS_PER_RECORD + scan_record
        } else {
            EST_NANOS_PER_RECORD * sirum_dataflow::cost::ROW_MATERIALIZE_FACTOR + scan_record
        };

        // Predicted stage list for one iteration: the LCA join, one
        // combine+reduce per column group for ancestor generation, the
        // adjust+gain pass, then scaling (3 RCT passes or a modeled 5
        // Algorithm-1 passes over D).
        let stage = |records: u64, shuffled: bool| -> StageRecord {
            let per_task = records.div_ceil(partitions as u64);
            StageRecord {
                label: "planned".to_string(),
                tasks: (0..partitions)
                    .map(|p| TaskRecord {
                        partition: p,
                        records_in: per_task,
                        records_out: per_task,
                        nanos: (per_task as f64 * scan_nanos) as u64,
                    })
                    .collect(),
                shuffled_records: if shuffled { records } else { 0 },
                shuffled_bytes: if shuffled {
                    records * EST_BYTES_PER_PAIR
                } else {
                    0
                },
            }
        };
        let mut stages: Vec<StageRecord> = Vec::new();
        stages.push(stage(n, false)); // seed distribution + rule sums
        for _ in 0..iterations {
            if config.gain_sweep {
                // One fused scan folds LCA combining, ancestor expansion
                // and aggregation into per-partition accumulators; the
                // reduction is a driver-side partition-ordered fold, so
                // the stage carries the pair volume but zero shuffle.
                stages.push(modeled_sweep_stage(lca_pairs, partitions, scan_nanos));
            } else {
                stages.push(stage(lca_pairs, false)); // LCA join emit
                stages.push(stage(lca_pairs, true)); // lca-agg combine+reduce
                for _ in 0..config.column_groups.max(1) {
                    stages.push(stage(lca_pairs, false)); // ancestor expansion
                    stages.push(stage(lca_pairs, true)); // ancestor reduce
                }
                stages.push(stage(lca_pairs, false)); // adjust + gain
            }
            let scaling_passes = if config.rct { 3 } else { 5 };
            for _ in 0..scaling_passes {
                stages.push(stage(n, false));
            }
        }
        let spec = ClusterSpec {
            executors: 1,
            cores_per_executor: engine_config.effective_workers(),
            stage_startup_secs: engine_config.stage_startup.as_secs_f64(),
            shuffle_secs_per_mb: 0.01,
            straggler_slowdown: 1.0,
        };
        MiningPlan {
            table: table.to_string(),
            fingerprint: entry.fingerprint,
            rows: entry.table.num_rows(),
            dims: entry.table.num_dims(),
            possible_rules: entry.table.possible_rule_count(),
            strategy: config.strategy,
            variant,
            k: config.k,
            column_groups: config.column_groups,
            rules_per_iter: config.multirule.rules_per_iter,
            rct: config.rct,
            gain_sweep: config.gain_sweep,
            columnar: config.columnar,
            compressed,
            column_formats,
            scan_nanos_per_record: scan_record,
            packed_bits,
            combine,
            estimated_iterations: iterations,
            estimated_stages: stages.len(),
            estimated_lca_pairs: lca_pairs,
            estimated_secs: makespan(&stages, &spec),
            cached,
        }
    }
}

impl std::fmt::Display for MiningPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "plan: table {:?} ({} rows × {} dims, {:.3e} possible rules, fingerprint {:016x})",
            self.table, self.rows, self.dims, self.possible_rules, self.fingerprint
        )?;
        let strategy = match self.strategy {
            CandidateStrategy::SampleLca { sample_size } => {
                format!("sample-LCA pruning, |s| = {sample_size}")
            }
            CandidateStrategy::FullCube => "full cube enumeration".to_string(),
        };
        writeln!(
            f,
            "  strategy: {strategy}; k = {}, {} column group(s), {} rule(s)/iteration, scaling via {}",
            self.k,
            self.column_groups,
            self.rules_per_iter,
            if self.rct { "RCT" } else { "Algorithm 1" },
        )?;
        writeln!(
            f,
            "  candidate evaluation: {}",
            if self.gain_sweep {
                "fused partition-parallel gain sweep (one scan/iteration, no shuffles)"
            } else {
                "legacy staged pipeline (LCA join → ancestor stages → adjust + gain)"
            },
        )?;
        writeln!(
            f,
            "  data path: {}",
            if self.columnar {
                "columnar (zero-copy FrameView partitions over shared columns)"
            } else {
                "row-major (boxed per-row tuples — reference path)"
            },
        )?;
        writeln!(
            f,
            "  storage: {} column format(s) [{}], ~{:.1}ns/record scan",
            if self.compressed { "compressed" } else { "raw" },
            self.column_formats.join(", "),
            self.scan_nanos_per_record,
        )?;
        if let Some(combine) = self.combine {
            writeln!(
                f,
                "  sweep accumulators: {}, {combine} combine",
                match self.packed_bits {
                    Some(bits) => format!("packed u{bits} rule codes"),
                    None => "Rule-keyed maps (packing disabled or layout > 128 bits)".to_string(),
                },
            )?;
        }
        write!(
            f,
            "  estimate: {} iteration(s), {} stages, {} LCA pairs/iteration, ~{:.3}s modeled{}",
            self.estimated_iterations,
            self.estimated_stages,
            self.estimated_lca_pairs,
            self.estimated_secs,
            if self.cached {
                " — cached, would be served without execution"
            } else {
                ""
            },
        )
    }
}

// ---------------------------------------------------------------------------
// Streaming
// ---------------------------------------------------------------------------

/// An incremental-maintenance stream over one table's rule model, from
/// [`SirumService::stream`]: batches ingested through the handle update the
/// model with warm-started refits ([`StreamingMiner`], §7), and
/// [`Self::mine_more`] mines additional rules when the model drifts.
///
/// The handle owns its miner (single-owner, `&mut` ingestion) but shares
/// the catalog's table `Arc` for dictionaries, so codes can be decoded and
/// validated without copying the table.
pub struct IngestHandle {
    miner: StreamingMiner,
    table: Arc<Table>,
}

impl IngestHandle {
    /// The table this stream was seeded from (dictionaries, schema).
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// Rows in the model's history (seed rows + ingested rows).
    pub fn len(&self) -> usize {
        self.miner.len()
    }

    /// True before any row arrives (cannot happen for catalog-seeded
    /// streams, which start with the table's rows).
    pub fn is_empty(&self) -> bool {
        self.miner.is_empty()
    }

    /// Current rule list (all-wildcards first).
    pub fn rules(&self) -> &[Rule] {
        self.miner.rules()
    }

    /// Exact KL divergence of the current model over the whole history.
    pub fn kl(&self) -> f64 {
        self.miner.kl()
    }

    /// Ingest one batch of dictionary-coded rows and re-fit the model from
    /// the current multipliers (warm start). Codes must come from the
    /// seeding table's dictionaries (e.g. via [`sirum_table::Dictionary::code`]).
    ///
    /// # Errors
    /// * [`SirumError::InvalidConfig`] — a row's arity does not match the
    ///   table.
    /// * [`SirumError::InvalidMeasure`] — a measure is negative or not
    ///   finite.
    /// * [`SirumError::Table`] — a code was never interned in the seeding
    ///   table's dictionary.
    pub fn ingest(&mut self, rows: &[(&[u32], f64)]) -> Result<(), SirumError> {
        let d = self.table.num_dims();
        for (row, m) in rows {
            if row.len() != d {
                return Err(SirumError::invalid_config(
                    "stream.row",
                    format!("row has {} dimensions but the table has {d}", row.len()),
                ));
            }
            if !(m.is_finite() && *m >= 0.0) {
                return Err(SirumError::InvalidMeasure {
                    reason: format!("streamed value {m} must be finite and ≥ 0"),
                });
            }
            for (col, &code) in row.iter().enumerate() {
                if code as usize >= self.table.dict(col).cardinality() {
                    return Err(SirumError::Table(TableError::UninternedCode {
                        column: col,
                        code,
                    }));
                }
            }
        }
        self.miner.ingest(rows);
        Ok(())
    }

    /// Mine up to `k` additional rules over the accumulated history,
    /// warm-starting the scaling (typically after [`Self::kl`] reveals
    /// drift). Returns the new rules with their selection-time gains.
    ///
    /// # Errors
    /// [`SirumError::InvalidConfig`] when `k` would exceed the
    /// rule-coverage bit-array capacity.
    pub fn mine_more(&mut self, k: usize) -> Result<Vec<(Rule, f64)>, SirumError> {
        if self.miner.rules().len() + k > sirum_core::rct::MAX_RULES {
            return Err(SirumError::invalid_config(
                "k",
                format!(
                    "{} existing + {k} requested rules exceeds the {}-rule bit-array limit",
                    self.miner.rules().len(),
                    sirum_core::rct::MAX_RULES
                ),
            ));
        }
        Ok(self.miner.mine_more(k))
    }

    /// Render the current rule list like Table 1.2 (decoded through the
    /// seeding table's dictionaries).
    pub fn render_rules(&self) -> String {
        let mut out = String::new();
        for (i, rule) in self.miner.rules().iter().enumerate() {
            let _ = writeln!(out, "{} | {}", i + 1, rule.display(&self.table));
        }
        out
    }
}

impl std::fmt::Debug for IngestHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IngestHandle")
            .field("rows", &self.len())
            .field("rules", &self.rules().len())
            .finish()
    }
}

// Re-exported here so the JSON rendering of service output lives next to
// its producers in the docs.
pub use json::mining_result_to_json;

#[cfg(test)]
mod tests {
    use super::*;

    fn flights_service() -> SirumService {
        let service = SirumService::in_memory().unwrap();
        service.register_demo("flights").unwrap();
        service
    }

    #[test]
    fn submit_wait_round_trip_matches_run() {
        let service = flights_service();
        let a = service
            .mine("flights")
            .k(2)
            .sample_size(14)
            .submit()
            .unwrap()
            .wait()
            .unwrap();
        assert!(!a.from_cache);
        // Identical request → cache hit, same allocation.
        let b = service.mine("flights").k(2).sample_size(14).run().unwrap();
        assert!(b.from_cache);
        assert!(Arc::ptr_eq(&a.result, &b.result));
        let stats = service.stats();
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(stats.jobs_executed, 1);
    }

    #[test]
    fn different_builder_paths_normalize_to_one_cache_key() {
        let service = flights_service();
        // Optimized-by-default vs the explicit Optimized variant: the
        // normalized configs are identical, so the second is a hit.
        let _ = service.mine("flights").k(2).sample_size(14).run().unwrap();
        let again = service
            .mine("flights")
            .variant(Variant::Optimized)
            .rules_per_iter(1) // Optimized defaults to l=2; override back to the default config's l=1
            .k(2)
            .sample_size(14)
            .run()
            .unwrap();
        assert!(
            again.from_cache,
            "normalized configs are identical, so the explicit-variant spelling must hit"
        );
        // Sample size larger than the table clamps to n → one key.
        let big = service
            .mine("flights")
            .k(2)
            .sample_size(10_000)
            .run()
            .unwrap();
        let clamped = service.mine("flights").k(2).sample_size(14).run().unwrap();
        assert!(clamped.from_cache);
        assert!(Arc::ptr_eq(&big.result, &clamped.result));
    }

    #[test]
    fn sweep_inert_knobs_normalize_to_one_cache_key() {
        let service = flights_service();
        let a = service.mine("flights").k(2).sample_size(14).run().unwrap();
        // column_groups (like broadcast_join/fast_pruning) has no effect
        // under the fused sweep, so it must not split the cache key.
        let b = service
            .mine("flights")
            .k(2)
            .sample_size(14)
            .column_groups(3)
            .run()
            .unwrap();
        assert!(b.from_cache, "inert knob must hit the same entry");
        assert!(Arc::ptr_eq(&a.result, &b.result));
        // With the sweep off the knob steers execution again → own key.
        let c = service
            .mine("flights")
            .k(2)
            .sample_size(14)
            .gain_sweep(false)
            .column_groups(3)
            .run()
            .unwrap();
        assert!(!c.from_cache);
    }

    #[test]
    fn columnar_and_rowmajor_requests_share_one_cache_entry() {
        // The representation does not affect results (bit-identical,
        // proptested), so it must not split the cache key: a row-major
        // request is correctly served the columnar run's Arc.
        let service = flights_service();
        let a = service.mine("flights").k(2).sample_size(14).run().unwrap();
        let b = service
            .mine("flights")
            .k(2)
            .sample_size(14)
            .columnar(false)
            .run()
            .unwrap();
        assert!(b.from_cache, "representation must not split the cache key");
        assert!(Arc::ptr_eq(&a.result, &b.result));
        // And an executed row-major run returns the same rules anyway.
        let c = service
            .mine("flights")
            .k(3)
            .sample_size(14)
            .columnar(false)
            .run()
            .unwrap();
        let d = service.mine("flights").k(3).sample_size(14).run().unwrap();
        assert!(d.from_cache);
        assert!(Arc::ptr_eq(&c.result, &d.result));
    }

    #[test]
    fn packed_and_rulekey_requests_share_one_cache_entry() {
        // Accumulator keying is pure representation (bit-identical,
        // proptested), so it must not split the cache key either: a
        // Rule-keyed request is served the packed run's Arc and vice
        // versa.
        let service = flights_service();
        let a = service.mine("flights").k(2).sample_size(14).run().unwrap();
        let b = service
            .mine("flights")
            .k(2)
            .sample_size(14)
            .packed(false)
            .run()
            .unwrap();
        assert!(b.from_cache, "accumulator keying must not split the key");
        assert!(Arc::ptr_eq(&a.result, &b.result));
        // And an executed Rule-keyed run seeds the cache for packed.
        let c = service
            .mine("flights")
            .k(3)
            .sample_size(14)
            .packed(false)
            .run()
            .unwrap();
        let d = service
            .mine("flights")
            .k(3)
            .sample_size(14)
            .packed(true)
            .run()
            .unwrap();
        assert!(d.from_cache);
        assert!(Arc::ptr_eq(&c.result, &d.result));
    }

    #[test]
    fn observers_bypass_the_cache() {
        let service = flights_service();
        let _ = service.mine("flights").k(2).sample_size(14).run().unwrap();
        let observed = service
            .mine("flights")
            .k(2)
            .sample_size(14)
            .on_iteration(|_| IterationDecision::Continue)
            .run()
            .unwrap();
        assert!(!observed.from_cache, "observer requests must re-execute");
        let stats = service.stats();
        assert_eq!(stats.jobs_executed, 2);
        assert_eq!(stats.cache_hits, 0);
    }

    #[test]
    fn concurrent_identical_submissions_coalesce() {
        let service = SirumService::builder().pool_workers(4).build().unwrap();
        service
            .register_demo_with("income", Some(1_500), 3)
            .unwrap();
        let n = 6;
        let handles: Vec<JobHandle> = (0..n)
            .map(|_| service.mine("income").k(3).submit().unwrap())
            .collect();
        let outputs: Vec<JobOutput> = handles.into_iter().map(|h| h.wait().unwrap()).collect();
        let stats = service.stats();
        assert_eq!(
            stats.jobs_executed + stats.jobs_coalesced + stats.cache_hits,
            n as u64,
            "every submission is accounted for: {stats:?}"
        );
        assert!(stats.jobs_executed >= 1);
        // All outputs carry identical results; followers share the
        // leader's allocation.
        for output in &outputs {
            assert_eq!(output.result.rules.len(), outputs[0].result.rules.len());
            assert_eq!(output.result.final_kl(), outputs[0].result.final_kl());
        }
        let shared = outputs
            .iter()
            .filter(|o| Arc::ptr_eq(&o.result, &outputs[0].result))
            .count();
        assert!(shared >= 1);
    }

    #[test]
    fn submit_reports_bad_requests_before_queueing() {
        let service = flights_service();
        assert!(matches!(
            service.mine("nope").submit(),
            Err(SirumError::UnknownTable { .. })
        ));
        assert!(matches!(
            service.mine("flights").sample_size(0).submit(),
            Err(SirumError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn try_poll_delivers_exactly_once_and_wait_after_poll_errors() {
        let service = flights_service();
        let mut handle = service
            .mine("flights")
            .k(1)
            .sample_size(14)
            .submit()
            .unwrap();
        let output = loop {
            match handle.try_poll() {
                Some(outcome) => break outcome.unwrap(),
                None => std::thread::yield_now(),
            }
        };
        assert_eq!(output.result.rules.len(), 2);
        assert!(handle.try_poll().is_none(), "delivered exactly once");
        assert!(matches!(handle.wait(), Err(SirumError::Service { .. })));
    }

    #[test]
    fn cancelled_job_never_caches_and_resubmission_executes_fresh() {
        // Regression (ISSUE 4): a run that ends cancelled is partial; the
        // cache must stay unpopulated so re-submitting the identical
        // request performs a fresh, full execution.
        let service = SirumService::builder().pool_workers(1).build().unwrap();
        service
            .register_demo_with("income", Some(1_000), 7)
            .unwrap();
        // Occupy the single pool worker so the target job is still queued
        // when we cancel it — the miner then observes the token before its
        // first iteration, making the cancellation deterministic.
        let blocker = service.mine("income").k(4).submit().unwrap();
        let target = service.mine("income").k(2).submit().unwrap();
        target.cancel();
        let out = target.wait().unwrap();
        assert!(out.result.cancelled, "queued job cancels before iterating");
        assert!(!out.from_cache);
        assert_eq!(out.result.rules.len(), 1, "seed rule only");
        let _ = blocker.wait().unwrap();
        // Identical request: must be a fresh full execution, not a cache
        // hit on the partial result.
        let fresh = service
            .mine("income")
            .k(2)
            .submit()
            .unwrap()
            .wait()
            .unwrap();
        assert!(!fresh.from_cache, "partial results must never be cached");
        assert!(!fresh.result.cancelled);
        assert_eq!(fresh.result.rules.len(), 3, "(*,…,*) + k=2 rules");
        let stats = service.stats();
        assert_eq!(stats.jobs_cancelled, 1);
        assert_eq!(stats.cache_hits, 0);
    }

    #[test]
    fn cancelled_leader_fails_followers_instead_of_partial_results() {
        // Regression (ISSUE 4): followers coalesced onto a leader that got
        // cancelled asked for the FULL answer; resolving them with the
        // leader's partial rules would silently serve truncated results.
        let service = SirumService::builder().pool_workers(1).build().unwrap();
        service
            .register_demo_with("income", Some(1_000), 7)
            .unwrap();
        let blocker = service.mine("income").k(4).submit().unwrap();
        let leader = service.mine("income").k(2).submit().unwrap();
        let follower = service.mine("income").k(2).submit().unwrap();
        assert_eq!(service.stats().jobs_coalesced, 1);
        leader.cancel();
        let _ = blocker.wait().unwrap();
        let lead_out = leader.wait().unwrap();
        assert!(lead_out.result.cancelled, "the leader sees its partial run");
        match follower.wait() {
            Err(SirumError::Service { reason }) => {
                assert!(reason.contains("cancelled"), "reason: {reason}")
            }
            other => panic!("follower must get a retryable error, got {other:?}"),
        }
        // And the retry executes fresh and fully.
        let retry = service
            .mine("income")
            .k(2)
            .submit()
            .unwrap()
            .wait()
            .unwrap();
        assert!(!retry.from_cache);
        assert!(!retry.result.cancelled);
        assert_eq!(retry.result.rules.len(), 3);
    }

    #[test]
    fn cancelled_results_are_not_cached() {
        let service = SirumService::in_memory().unwrap();
        service
            .register_demo_with("income", Some(2_000), 7)
            .unwrap();
        let handle = service.mine("income").k(8).submit().unwrap();
        handle.cancel(); // may land before the first iteration
        let out = handle.wait().unwrap();
        if out.result.cancelled {
            let rerun = service.mine("income").k(8).run().unwrap();
            assert!(!rerun.from_cache, "partial results must not be served");
        }
    }

    #[test]
    fn explain_plans_without_executing() {
        let service = flights_service();
        let plan = service
            .mine("flights")
            .k(3)
            .sample_size(14)
            .explain()
            .unwrap();
        assert_eq!(plan.rows, 14);
        assert_eq!(plan.dims, 3);
        assert!(plan.rct, "Optimized default uses the RCT");
        assert_eq!(
            plan.strategy,
            CandidateStrategy::SampleLca { sample_size: 14 }
        );
        assert!(plan.estimated_stages > 0 && plan.estimated_secs >= 0.0);
        assert!(!plan.cached);
        // Flights: 3 dims of tiny cardinality, well inside a u64 code; the
        // small per-partition volume keeps stage 1 on the hash combine.
        assert_eq!(plan.packed_bits, Some(64));
        assert_eq!(plan.combine, Some(CombineStrategy::HashProbe));
        assert!(plan.to_string().contains("packed u64 rule codes"));
        // 14 rows is far below the Auto compression threshold: the plan
        // reports raw per-column formats and a traffic-only scan cost.
        assert!(!plan.compressed);
        assert_eq!(plan.column_formats, vec!["raw"; 3]);
        assert!(plan.scan_nanos_per_record > 0.0);
        assert!(plan.to_string().contains("raw column format(s)"));
        // With packing off the plan reports the Rule-keyed fallback; with
        // the sweep off there is no combine stage to report at all.
        let plan_rulekey = service
            .mine("flights")
            .k(3)
            .sample_size(14)
            .packed(false)
            .explain()
            .unwrap();
        assert_eq!(plan_rulekey.packed_bits, None);
        assert!(plan_rulekey.combine.is_some());
        let plan_staged = service
            .mine("flights")
            .k(3)
            .sample_size(14)
            .gain_sweep(false)
            .explain()
            .unwrap();
        assert_eq!(plan_staged.packed_bits, None);
        assert_eq!(plan_staged.combine, None);
        assert!(!plan_staged.to_string().contains("sweep accumulators"));
        assert_eq!(service.stats().jobs_executed, 0, "explain ran nothing");
        // After executing, the same plan reports a cache hit ahead.
        let _ = service.mine("flights").k(3).sample_size(14).run().unwrap();
        let plan = service
            .mine("flights")
            .k(3)
            .sample_size(14)
            .explain()
            .unwrap();
        assert!(plan.cached);
        assert!(plan.to_string().contains("cached"));
    }

    #[test]
    fn lru_cache_evicts_oldest() {
        let mut cache = ResultCache::new(2);
        let key = |i: u64| RequestKey {
            fingerprint: i,
            spec: String::new(),
        };
        let result = || {
            Arc::new(MiningResult {
                rules: Vec::new(),
                kl_trace: vec![0.0],
                timings: Default::default(),
                scaling_iterations: Vec::new(),
                ancestors_emitted: 0,
                iterations: 0,
                transform_shift: 0.0,
                cancelled: false,
            })
        };
        cache.insert(key(1), result());
        cache.insert(key(2), result());
        assert!(cache.get(&key(1)).is_some()); // 1 is now most recent
        cache.insert(key(3), result()); // evicts 2
        assert!(cache.get(&key(2)).is_none());
        assert!(cache.get(&key(1)).is_some());
        assert!(cache.get(&key(3)).is_some());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn stream_rejects_tables_beyond_the_expansion_limit() {
        // Regression: stream()+mine_more() used to reach the lattice
        // expansion assert on >24-dim tables where mine() already returned
        // a typed error.
        let service = SirumService::in_memory().unwrap();
        let mut b = Table::builder(sirum_table::Schema::new(
            (0..30).map(|i| format!("c{i}")).collect::<Vec<_>>(),
            "m",
        ));
        for i in 0..3 {
            let vals: Vec<String> = (0..30).map(|c| format!("v{}", (i + c) % 2)).collect();
            let refs: Vec<&str> = vals.iter().map(String::as_str).collect();
            b.push_row(&refs, 1.0);
        }
        service.register("wide", b.build()).unwrap();
        assert!(matches!(
            service.stream("wide"),
            Err(SirumError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn stream_handle_maintains_the_model() {
        let service = flights_service();
        let mut stream = service.stream("flights").unwrap();
        assert_eq!(stream.len(), 14);
        assert!(!stream.is_empty());
        // Ingest a valid coded row and a few invalid ones.
        let row: Vec<u32> = stream.table().row(0).to_vec();
        stream.ingest(&[(&row, 5.0)]).unwrap();
        assert_eq!(stream.len(), 15);
        assert!(matches!(
            stream.ingest(&[(&row[..2], 1.0)]),
            Err(SirumError::InvalidConfig { .. })
        ));
        assert!(matches!(
            stream.ingest(&[(&row, -1.0)]),
            Err(SirumError::InvalidMeasure { .. })
        ));
        let bad = vec![u32::MAX - 1; 3];
        assert!(matches!(
            stream.ingest(&[(&bad, 1.0)]),
            Err(SirumError::Table(TableError::UninternedCode { .. }))
        ));
        let added = stream.mine_more(2).unwrap();
        assert!(added.len() <= 2);
        assert!(stream.kl().is_finite());
        assert!(!stream.render_rules().is_empty());
    }

    /// An observer that parks its job until `release` flips — used to hold
    /// a pool worker deterministically. Observer requests are uncacheable,
    /// so they never coalesce with each other.
    fn parked(
        release: &Arc<std::sync::atomic::AtomicBool>,
    ) -> impl Fn(&IterationEvent) -> IterationDecision + Send + Sync + 'static {
        let release = Arc::clone(release);
        move |_| {
            while !release.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(1));
            }
            IterationDecision::Continue
        }
    }

    #[test]
    fn try_submit_sheds_load_with_overloaded_while_submit_would_queue() {
        let service = SirumService::builder()
            .pool_workers(1)
            .queue_capacity(1)
            .build()
            .unwrap();
        service.register_demo("flights").unwrap();
        let release = Arc::new(std::sync::atomic::AtomicBool::new(false));
        // Occupy the single worker, then wait until the job has observably
        // left the queue (its first act is decrementing `queue_depth`).
        let running = service
            .mine("flights")
            .k(1)
            .sample_size(14)
            .on_iteration(parked(&release))
            .submit()
            .unwrap();
        while service.stats().queue_depth > 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        // Fill the single queue slot behind the parked worker.
        let queued = service
            .mine("flights")
            .k(2)
            .sample_size(14)
            .on_iteration(parked(&release))
            .try_submit()
            .unwrap();
        // Queue is full: the next non-blocking admission must shed.
        match service
            .mine("flights")
            .k(3)
            .sample_size(14)
            .on_iteration(parked(&release))
            .try_submit()
        {
            Err(SirumError::Overloaded { queue_capacity }) => assert_eq!(queue_capacity, 1),
            other => panic!("expected Overloaded, got {:?}", other.map(|h| h.id())),
        }
        let stats = service.stats();
        assert!(stats.jobs_rejected >= 1);
        assert_eq!(stats.queue_depth, 1, "one job still queued");
        assert!(!stats.active_jobs.is_empty());
        release.store(true, Ordering::SeqCst);
        running.wait().unwrap();
        queued.wait().unwrap();
    }

    #[test]
    fn zero_deadline_cancels_before_the_first_iteration() {
        let service = flights_service();
        let out = service
            .mine("flights")
            .k(3)
            .sample_size(14)
            .deadline(Duration::ZERO)
            .submit()
            .unwrap()
            .wait()
            .unwrap();
        assert!(out.result.cancelled, "expired deadline → partial result");
        assert_eq!(out.result.rules.len(), 1, "seed rule only");
        assert_eq!(service.stats().jobs_cancelled, 1);
        // A generous deadline does not perturb the run — and, crucially,
        // does not split the cache key: the identical request without a
        // deadline seeds the cache for the deadline-carrying one.
        let full = service.mine("flights").k(2).sample_size(14).run().unwrap();
        assert!(!full.result.cancelled);
        let patient = service
            .mine("flights")
            .k(2)
            .sample_size(14)
            .deadline(Duration::from_secs(3600))
            .submit()
            .unwrap()
            .wait()
            .unwrap();
        assert!(patient.from_cache, "deadline must not split the cache key");
        assert!(Arc::ptr_eq(&full.result, &patient.result));
    }

    #[test]
    fn wait_timeout_times_out_then_delivers_exactly_once() {
        let service = SirumService::builder().pool_workers(1).build().unwrap();
        service.register_demo("flights").unwrap();
        let release = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut handle = service
            .mine("flights")
            .k(1)
            .sample_size(14)
            .on_iteration(parked(&release))
            .submit()
            .unwrap();
        assert!(
            handle.wait_timeout(Duration::from_millis(20)).is_none(),
            "parked job must time out"
        );
        release.store(true, Ordering::SeqCst);
        let out = handle
            .wait_timeout(Duration::from_secs(30))
            .expect("released job finishes well within the window")
            .unwrap();
        assert_eq!(out.result.rules.len(), 2);
        // Delivered exactly once, like try_poll.
        assert!(handle.try_poll().is_none());
    }

    #[test]
    fn job_registry_reports_status_output_and_cancellation() {
        let service = flights_service();
        let handle = service
            .mine("flights")
            .k(2)
            .sample_size(14)
            .submit()
            .unwrap();
        let id = handle.id();
        assert!(id >= 1);
        assert!(service.job_ids().contains(&id));
        // Out-of-band wait + repeatable peeks.
        let out = service
            .wait_job(id, Duration::from_secs(30))
            .expect("job finishes")
            .unwrap();
        assert_eq!(out.result.rules.len(), 3);
        let again = service.job_output(id).expect("still peekable").unwrap();
        assert!(Arc::ptr_eq(&out.result, &again.result));
        let status = service.job_status(id).unwrap();
        assert_eq!(status.table, "flights");
        assert_eq!(
            status.state,
            JobState::Done {
                from_cache: false,
                cancelled: false
            }
        );
        assert!(!status.cancel_requested);
        // The handle's own consuming wait still works after peeks…
        let owned = handle.wait().unwrap();
        assert!(Arc::ptr_eq(&owned.result, &out.result));
        // …after which the registry reports the slot as consumed.
        assert_eq!(service.job_status(id).unwrap().state, JobState::Consumed);
        assert!(matches!(
            service.job_output(id),
            Some(Err(SirumError::Service { .. }))
        ));
        // Unknown ids are distinguishable.
        assert!(service.job_status(id + 999).is_none());
        assert!(!service.cancel_job(id + 999));
        assert!(
            service.cancel_job(id),
            "known id is cancellable (no-op: done)"
        );
    }

    #[test]
    fn job_registry_evicts_finished_records_oldest_first() {
        let service = SirumService::builder()
            .job_registry_capacity(2)
            .build()
            .unwrap();
        service.register_demo("flights").unwrap();
        let mut ids = Vec::new();
        for k in 1..=3 {
            let handle = service
                .mine("flights")
                .k(k)
                .sample_size(14)
                .submit()
                .unwrap();
            ids.push(handle.id());
            handle.wait().unwrap();
        }
        let remembered = service.job_ids();
        assert_eq!(remembered.len(), 2);
        assert!(!remembered.contains(&ids[0]), "oldest finished evicted");
        assert!(remembered.contains(&ids[2]));
    }

    #[test]
    fn stats_expose_queue_depth_active_jobs_and_latency() {
        let service = flights_service();
        let before = service.stats();
        assert_eq!(before.job_latency.count, 0);
        assert!(before.active_jobs.is_empty());
        let _ = service.mine("flights").k(2).sample_size(14).run().unwrap();
        let after = service.stats();
        assert_eq!(after.job_latency.count, 1);
        assert!(after.job_latency.max_nanos > 0);
        assert_eq!(after.queue_depth, 0);
    }

    #[test]
    fn unregister_keeps_shared_handles_alive() {
        let service = flights_service();
        let table = service.table("flights").unwrap();
        let removed = service.unregister("flights").unwrap();
        assert!(Arc::ptr_eq(&table, &removed));
        assert!(service.table("flights").is_err());
        assert_eq!(table.num_rows(), 14, "existing Arcs still usable");
    }
}
