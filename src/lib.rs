//! # sirum
//!
//! Facade crate for the SIRUM reproduction — **S**calable **I**nformative
//! **RU**le **M**ining (Feng, University of Waterloo, 2016).
//!
//! Two entry points are supported:
//!
//! * **Embedding** ([`api`]): a single-owner [`api::SirumSession`] owns a
//!   configured engine plus a catalog of named tables, and each query is a
//!   validated [`api::MiningRequest`] returning
//!   `Result<MiningResult, SirumError>` — no panics on bad input.
//! * **Serving** ([`service`]): a `Send + Sync`, cheaply clonable
//!   [`service::SirumService`] shares one catalog of pre-encoded tables
//!   across threads, schedules requests on a bounded worker pool
//!   ([`service::JobHandle`] with `wait`/`try_poll`/`cancel`), answers
//!   repeated identical requests from an LRU result cache, and can
//!   [`service::ServiceRequest::explain`] a request's planned cost before
//!   running it.
//!
//! ```
//! use sirum::api::SirumSession;
//! use sirum::prelude::*;
//!
//! let mut session = SirumSession::in_memory()?;
//! session.register_demo("flights")?;
//! let result = session
//!     .mine("flights")
//!     .k(3)
//!     .sample_size(14)
//!     .run()?;
//! let flights = session.table("flights")?;
//! assert_eq!(result.rules[1].rule.display(flights), "(*, *, London)");
//! # Ok::<(), SirumError>(())
//! ```
//!
//! The layer crates remain directly accessible:
//!
//! * [`core`] (`sirum_core`) — the mining algorithms.
//! * [`table`] (`sirum_table`) — the multidimensional table substrate and
//!   dataset generators.
//! * [`dataflow`] (`sirum_dataflow`) — the Spark-like execution engine.
//! * [`baselines`] (`sirum_baselines`) — prior-work comparators.
//!
//! The old panicking `Miner::mine` facade is gone; `Miner::try_mine` and
//! the session/service builders are the entry points (see the [`api`]
//! module docs for the migration note). See the `examples/` directory for
//! runnable walkthroughs and `DESIGN.md` for the system inventory.

#![warn(missing_docs)]

pub mod api;
pub mod json;
pub mod net;
pub mod service;

pub use sirum_baselines as baselines;
pub use sirum_core as core;
pub use sirum_dataflow as dataflow;
pub use sirum_table as table;

/// One-stop imports for applications.
pub mod prelude {
    pub use crate::api::{MiningRequest, SessionBuilder, SirumSession};
    pub use crate::net::client::{ClientResponse, HttpClient};
    pub use crate::net::metrics::{LatencySummary, NetMetrics};
    pub use crate::net::router::{Router, RouterConfig};
    pub use crate::net::server::{Server, ServerConfig};
    pub use crate::service::{
        IngestHandle, JobHandle, JobOutput, JobState, JobStatus, MiningPlan, ServiceBuilder,
        ServiceRequest, ServiceStats, SirumService,
    };
    pub use sirum_core::{
        evaluate_rules, explore, mine_on_sample, try_evaluate_rules, try_explore,
        try_mine_on_sample, CancellationToken, CandidateStrategy, IterationDecision,
        IterationEvent, MinedRule, Miner, MiningResult, MultiRuleConfig, PreparedTable, Rule,
        RuleSetEvaluation, ScalingConfig, SirumConfig, SirumError, Variant, WILDCARD,
    };
    pub use sirum_dataflow::{DataflowError, Engine, EngineConfig, EngineMode};
    pub use sirum_table::{generators, Schema, Table, TableError};
}
