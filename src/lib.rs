//! # sirum
//!
//! Facade crate for the SIRUM reproduction — **S**calable **I**nformative
//! **RU**le **M**ining (Feng, University of Waterloo, 2016). Re-exports the
//! workspace's public API:
//!
//! * [`core`] (`sirum_core`) — the mining algorithms.
//! * [`table`] (`sirum_table`) — the multidimensional table substrate and
//!   dataset generators.
//! * [`dataflow`] (`sirum_dataflow`) — the Spark-like execution engine.
//! * [`baselines`] (`sirum_baselines`) — prior-work comparators.
//!
//! See the `examples/` directory for runnable walkthroughs and `DESIGN.md`
//! for the system inventory.
//!
//! ```
//! use sirum::prelude::*;
//!
//! let engine = Engine::in_memory();
//! let table = generators::flights();
//! let config = SirumConfig {
//!     k: 3,
//!     strategy: CandidateStrategy::SampleLca { sample_size: 14 },
//!     ..SirumConfig::default()
//! };
//! let result = Miner::new(engine, config).mine(&table);
//! assert_eq!(result.rules[1].rule.display(&table), "(*, *, London)");
//! ```

#![warn(missing_docs)]

pub use sirum_baselines as baselines;
pub use sirum_core as core;
pub use sirum_dataflow as dataflow;
pub use sirum_table as table;

/// One-stop imports for applications.
pub mod prelude {
    pub use sirum_core::{
        evaluate_rules, explore, mine_on_sample, CandidateStrategy, MinedRule, Miner, MiningResult,
        MultiRuleConfig, Rule, RuleSetEvaluation, ScalingConfig, SirumConfig, Variant, WILDCARD,
    };
    pub use sirum_dataflow::{Engine, EngineConfig, EngineMode};
    pub use sirum_table::{generators, Schema, Table};
}
