//! `sirum` — command-line informative rule mining.
//!
//! Reads a CSV file whose last column is a numeric measure and whose other
//! columns are categorical dimensions, mines `k` informative rules, and
//! prints them as a table.
//!
//! ```sh
//! sirum data.csv --k 10 --sample 64 --variant optimized
//! sirum data.csv --k 5 --engine single-thread --two-rules
//! sirum --demo flights --k 3        # built-in demo datasets
//! ```

use sirum::prelude::*;
use std::process::exit;

struct Args {
    input: Option<String>,
    demo: Option<String>,
    k: usize,
    sample: usize,
    variant: Variant,
    engine: &'static str,
    rules_per_iter: usize,
    epsilon: f64,
    seed: u64,
    partitions: usize,
}

const USAGE: &str = "\
sirum — scalable informative rule mining

USAGE:
  sirum <input.csv> [OPTIONS]
  sirum --demo <flights|income|gdelt|susy|tlc|dirty> [OPTIONS]

The CSV's last column must be numeric (the measure); all other columns are
treated as categorical dimension attributes. The first line is the header.

OPTIONS:
  --k <N>            rules to mine beyond (*, …, *)      [default: 10]
  --sample <N>       candidate-pruning sample size |s|   [default: 64]
  --variant <V>      naive|baseline|rct|fast-pruning|fast-ancestor|
                     multi-rule|optimized                [default: optimized]
  --engine <E>       in-memory|disk-mr|single-thread     [default: in-memory]
  --two-rules        insert 2 disjoint rules per iteration
  --epsilon <F>      iterative-scaling tolerance         [default: 0.01]
  --seed <N>         sampling seed                       [default: 42]
  --partitions <N>   dataset partitions                  [default: 16]
  --help             print this help
";

fn parse_args() -> Args {
    let mut args = Args {
        input: None,
        demo: None,
        k: 10,
        sample: 64,
        variant: Variant::Optimized,
        engine: "in-memory",
        rules_per_iter: 1,
        epsilon: 0.01,
        seed: 42,
        partitions: 16,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                exit(2);
            })
        };
        match arg.as_str() {
            "--help" | "-h" => {
                print!("{USAGE}");
                exit(0);
            }
            "--demo" => args.demo = Some(value("--demo")),
            "--k" => args.k = value("--k").parse().expect("--k must be an integer"),
            "--sample" => {
                args.sample = value("--sample")
                    .parse()
                    .expect("--sample must be an integer");
            }
            "--variant" => {
                args.variant = match value("--variant").as_str() {
                    "naive" => Variant::Naive,
                    "baseline" => Variant::Baseline,
                    "rct" => Variant::Rct,
                    "fast-pruning" => Variant::FastPruning,
                    "fast-ancestor" => Variant::FastAncestor,
                    "multi-rule" => Variant::MultiRule,
                    "optimized" => Variant::Optimized,
                    other => {
                        eprintln!("unknown variant {other:?}");
                        exit(2);
                    }
                }
            }
            "--engine" => {
                let e = value("--engine");
                args.engine = match e.as_str() {
                    "in-memory" => "in-memory",
                    "disk-mr" => "disk-mr",
                    "single-thread" => "single-thread",
                    other => {
                        eprintln!("unknown engine {other:?}");
                        exit(2);
                    }
                }
            }
            "--two-rules" => args.rules_per_iter = 2,
            "--epsilon" => {
                args.epsilon = value("--epsilon")
                    .parse()
                    .expect("--epsilon must be a float");
            }
            "--seed" => args.seed = value("--seed").parse().expect("--seed must be an integer"),
            "--partitions" => {
                args.partitions = value("--partitions")
                    .parse()
                    .expect("--partitions must be an integer");
            }
            other if !other.starts_with('-') && args.input.is_none() => {
                args.input = Some(other.to_string());
            }
            other => {
                eprintln!("unexpected argument {other:?}\n\n{USAGE}");
                exit(2);
            }
        }
    }
    args
}

fn load_table(args: &Args) -> Table {
    if let Some(demo) = &args.demo {
        return match demo.as_str() {
            "flights" => generators::flights(),
            "income" => generators::income_like(20_000, args.seed),
            "gdelt" => generators::gdelt_like(20_000, args.seed),
            "susy" => generators::susy_like(2_000, args.seed),
            "tlc" => generators::tlc_like(50_000, args.seed),
            "dirty" => generators::gdelt_dirty(20_000, args.seed),
            other => {
                eprintln!("unknown demo dataset {other:?}");
                exit(2);
            }
        };
    }
    let Some(path) = &args.input else {
        eprint!("{USAGE}");
        exit(2);
    };
    let file = std::fs::File::open(path).unwrap_or_else(|e| {
        eprintln!("cannot open {path}: {e}");
        exit(1);
    });
    sirum::table::csv::read_csv(std::io::BufReader::new(file)).unwrap_or_else(|e| {
        eprintln!("cannot parse {path}: {e}");
        exit(1);
    })
}

fn main() {
    let args = parse_args();
    let table = load_table(&args);
    eprintln!(
        "{} rows × {} dimensions ({}), measure = {}",
        table.num_rows(),
        table.num_dims(),
        table.schema().dim_names().join(", "),
        table.schema().measure_name(),
    );

    let engine_cfg = match args.engine {
        "disk-mr" => EngineConfig::disk_mr(),
        "single-thread" => EngineConfig::single_thread(),
        _ => EngineConfig::in_memory(),
    }
    .with_partitions(args.partitions);
    let engine = Engine::new(engine_cfg);

    let mut config = args
        .variant
        .config(args.k, args.sample.min(table.num_rows()));
    config.scaling = ScalingConfig {
        epsilon: args.epsilon,
        ..ScalingConfig::default()
    };
    config.seed = args.seed;
    if args.rules_per_iter > 1 {
        config.multirule = MultiRuleConfig::l_rules(args.rules_per_iter);
    }

    let result = Miner::new(engine, config).mine(&table);

    // Rule table.
    println!(
        "\n{:>4}  {:<60} {:>12} {:>10} {:>10}",
        "id",
        format!("rule ({})", table.schema().dim_names().join(", ")),
        "AVG(m)",
        "count",
        "gain"
    );
    for (i, r) in result.rules.iter().enumerate() {
        println!(
            "{:>4}  {:<60} {:>12.4} {:>10} {:>10.3}",
            i + 1,
            r.rule.display(&table),
            r.avg_measure,
            r.count,
            r.gain
        );
    }
    println!(
        "\nKL divergence {:.6} → {:.6} (information gain {:.6})",
        result.kl_trace[0],
        result.final_kl(),
        result.information_gain()
    );
    println!(
        "timings: rule generation {:.2}s (pruning {:.2}s, ancestors {:.2}s, gain {:.2}s), scaling {:.2}s, total {:.2}s",
        result.timings.rule_generation(),
        result.timings.candidate_pruning,
        result.timings.ancestor_generation,
        result.timings.gain_computation,
        result.timings.iterative_scaling,
        result.timings.total
    );
}
