//! `sirum` — command-line informative rule mining on the service API.
//!
//! Reads a CSV file whose last column is a numeric measure and whose other
//! columns are categorical dimensions, mines `k` informative rules, and
//! prints them as a table (or JSON).
//!
//! ```sh
//! sirum data.csv --k 10 --sample 64 --variant optimized
//! sirum data.csv --k 5 --engine single-thread --two-rules
//! sirum --demo flights --k 3              # built-in demo datasets
//! sirum --demo tlc --target-kl 0.05 --progress
//! sirum --demo income --repeat 8 --jobs 4 # exercise the worker pool + cache
//! sirum --demo flights --k 3 --format json
//! sirum --demo gdelt --explain            # plan + cost estimate, no run
//! sirum serve --demo flights              # HTTP front end on 127.0.0.1:7878
//! ```
//!
//! Exit codes: `0` success, `1` runtime failure (unreadable/malformed data,
//! engine trouble), `2` usage error (unknown flags, unparsable values).

use sirum::api::SirumError;
use sirum::prelude::*;
use std::fmt::Display;
use std::process::exit;
use std::str::FromStr;

#[derive(Clone, Copy, PartialEq, Eq)]
enum OutputFormat {
    Text,
    Json,
}

impl FromStr for OutputFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "text" => Ok(OutputFormat::Text),
            "json" => Ok(OutputFormat::Json),
            other => Err(format!("unknown format {other:?} (expected text or json)")),
        }
    }
}

struct Args {
    input: Option<String>,
    demo: Option<String>,
    k: usize,
    sample: usize,
    variant: Variant,
    engine: EngineMode,
    rules_per_iter: usize,
    no_sweep: bool,
    row_major: bool,
    epsilon: f64,
    seed: u64,
    partitions: usize,
    target_kl: Option<f64>,
    two_sided: bool,
    progress: bool,
    jobs: usize,
    repeat: usize,
    format: OutputFormat,
    explain: bool,
}

const USAGE: &str = "\
sirum — scalable informative rule mining

USAGE:
  sirum <input.csv> [OPTIONS]
  sirum --demo <flights|income|gdelt|susy|tlc|dirty> [OPTIONS]

The CSV's last column must be numeric (the measure); all other columns are
treated as categorical dimension attributes. The first line is the header.

OPTIONS:
  --k <N>            rules to mine beyond (*, …, *)      [default: 10]
  --sample <N>       candidate-pruning sample size |s|   [default: 64]
  --variant <V>      naive|baseline|rct|fast-pruning|fast-ancestor|
                     multi-rule|optimized                [default: optimized]
  --engine <E>       in-memory|disk-mr|single-thread     [default: in-memory]
  --two-rules        insert 2 disjoint rules per iteration
  --two-sided        also surface unusually LOW-measure regions
  --no-sweep         score candidates with the legacy staged pipeline
                     instead of the fused partition-parallel gain sweep
  --row-major        scan D as boxed per-row tuples instead of zero-copy
                     columnar views (reference path; same results, slower)
  --target-kl <F>    keep mining until KL reaches this target
  --epsilon <F>      iterative-scaling tolerance         [default: 0.01]
  --seed <N>         sampling seed                       [default: 42]
  --partitions <N>   dataset partitions                  [default: 16]
  --jobs <N>         worker-pool size for --repeat       [default: 2]
  --repeat <N>       submit the request N times through the service's
                     worker pool and report cache behavior
  --format <F>       text|json result output             [default: text]
  --explain          print the planned strategy and modeled cost estimate
                     instead of mining
  --progress         report each mining iteration on stderr
                     (incompatible with --repeat: observers disable caching)
  --help             print this help

SERVING:
  sirum serve [OPTIONS] [input.csv ...]

  Start the wire front end: a dependency-free HTTP/1.1 + JSON server over
  the same service API. Endpoints: POST /tables/{name} (CSV body),
  GET /tables, POST /mine, GET|DELETE /jobs/{id}, GET /explain,
  POST /stream/{table}, GET /metrics, GET /stats, GET /health.

  --addr <A>         listen address                      [default: 127.0.0.1:7878]
  --demo <NAME>      pre-register a demo table (repeatable)
  --jobs <N>         mining worker threads               [default: 4]
  --queue <N>        job queue depth before /mine sheds
                     load with 429 + Retry-After         [default: 64]
  --max-connections <N>  concurrent connections before new
                     accepts get 503                     [default: 64]
  --read-timeout <SECS>  per-socket read timeout (slow-loris
                     guard)                              [default: 10]
  --engine / --partitions / --seed    as in mining mode
";

/// Print a usage error and exit with status 2.
fn usage_error(msg: impl Display) -> ! {
    eprintln!("error: {msg}\n\n{USAGE}");
    exit(2);
}

/// Parse `raw` as the value of `flag`, exiting with a friendly usage
/// message instead of panicking when it does not parse.
fn parse_value<T: FromStr>(flag: &str, raw: &str) -> T
where
    T::Err: Display,
{
    match raw.parse() {
        Ok(value) => value,
        Err(e) => usage_error(format!("{flag} {raw:?}: {e}")),
    }
}

fn parse_args() -> Args {
    let mut args = Args {
        input: None,
        demo: None,
        k: 10,
        sample: 64,
        variant: Variant::Optimized,
        engine: EngineMode::InMemory,
        rules_per_iter: 1,
        no_sweep: false,
        row_major: false,
        epsilon: 0.01,
        seed: 42,
        partitions: 16,
        target_kl: None,
        two_sided: false,
        progress: false,
        jobs: 2,
        repeat: 1,
        format: OutputFormat::Text,
        explain: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> String {
            match it.next() {
                Some(v) => v,
                None => usage_error(format!("missing value for {name}")),
            }
        };
        match arg.as_str() {
            "--help" | "-h" => {
                print!("{USAGE}");
                exit(0);
            }
            "--demo" => args.demo = Some(value("--demo")),
            "--k" => args.k = parse_value("--k", &value("--k")),
            "--sample" => args.sample = parse_value("--sample", &value("--sample")),
            "--variant" => args.variant = parse_value("--variant", &value("--variant")),
            "--engine" => args.engine = parse_value("--engine", &value("--engine")),
            "--two-rules" => args.rules_per_iter = 2,
            "--two-sided" => args.two_sided = true,
            "--no-sweep" => args.no_sweep = true,
            "--row-major" => args.row_major = true,
            "--progress" => args.progress = true,
            "--explain" => args.explain = true,
            "--target-kl" => {
                args.target_kl = Some(parse_value("--target-kl", &value("--target-kl")));
            }
            "--epsilon" => args.epsilon = parse_value("--epsilon", &value("--epsilon")),
            "--seed" => args.seed = parse_value("--seed", &value("--seed")),
            "--partitions" => {
                args.partitions = parse_value("--partitions", &value("--partitions"));
            }
            "--jobs" => args.jobs = parse_value("--jobs", &value("--jobs")),
            "--repeat" => args.repeat = parse_value("--repeat", &value("--repeat")),
            "--format" => args.format = parse_value("--format", &value("--format")),
            other if !other.starts_with('-') && args.input.is_none() => {
                args.input = Some(other.to_string());
            }
            other => usage_error(format!("unexpected argument {other:?}")),
        }
    }
    if args.jobs == 0 {
        usage_error("--jobs must be ≥ 1");
    }
    if args.repeat == 0 {
        usage_error("--repeat must be ≥ 1");
    }
    if args.progress && args.repeat > 1 {
        // Progress observers disable result caching, which is the very
        // thing --repeat demonstrates; combining them would silently
        // change what --repeat measures.
        usage_error("--progress cannot be combined with --repeat");
    }
    args
}

/// Register the requested dataset in the service and return its name.
fn load_table(service: &SirumService, args: &Args) -> Result<String, SirumError> {
    if let Some(demo) = &args.demo {
        service.register_demo_with(demo, None, args.seed)?;
        return Ok(demo.clone());
    }
    let Some(path) = &args.input else {
        eprint!("{USAGE}");
        exit(2);
    };
    let file = std::fs::File::open(path).map_err(|e| SirumError::Table(TableError::Io(e)))?;
    service.register_csv(path.clone(), std::io::BufReader::new(file))?;
    Ok(path.clone())
}

/// Build the request described by the CLI flags.
fn build_request<'s>(service: &'s SirumService, name: &str, args: &Args) -> ServiceRequest<'s> {
    let mut request = service
        .mine(name)
        .k(args.k)
        .sample_size(args.sample)
        .variant(args.variant)
        .epsilon(args.epsilon)
        .seed(args.seed);
    if args.rules_per_iter > 1 {
        request = request.rules_per_iter(args.rules_per_iter);
    }
    if args.no_sweep {
        request = request.gain_sweep(false);
    }
    if args.row_major {
        request = request.columnar(false);
    }
    if args.two_sided {
        request = request.two_sided();
    }
    if let Some(target) = args.target_kl {
        request = request.target_kl(target);
    }
    request
}

fn print_text(result: &MiningResult, table: &Table) {
    println!(
        "\n{:>4}  {:<60} {:>12} {:>10} {:>10}",
        "id",
        format!("rule ({})", table.schema().dim_names().join(", ")),
        "AVG(m)",
        "count",
        "gain"
    );
    for (i, r) in result.rules.iter().enumerate() {
        println!(
            "{:>4}  {:<60} {:>12.4} {:>10} {:>10.3}",
            i + 1,
            r.rule.display(table),
            r.avg_measure,
            r.count,
            r.gain
        );
    }
    println!(
        "\nKL divergence {:.6} → {:.6} (information gain {:.6})",
        result.kl_trace[0],
        result.final_kl(),
        result.information_gain()
    );
    if result.timings.gain_sweep > 0.0 {
        println!(
            "timings: rule generation {:.2}s (fused gain sweep {:.2}s, selection {:.2}s), scaling {:.2}s, total {:.2}s",
            result.timings.rule_generation(),
            result.timings.gain_sweep,
            result.timings.gain_computation,
            result.timings.iterative_scaling,
            result.timings.total
        );
    } else {
        println!(
            "timings: rule generation {:.2}s (pruning {:.2}s, ancestors {:.2}s, gain {:.2}s), scaling {:.2}s, total {:.2}s",
            result.timings.rule_generation(),
            result.timings.candidate_pruning,
            result.timings.ancestor_generation,
            result.timings.gain_computation,
            result.timings.iterative_scaling,
            result.timings.total
        );
    }
}

struct ServeArgs {
    addr: String,
    demos: Vec<String>,
    inputs: Vec<String>,
    jobs: usize,
    queue: usize,
    max_connections: usize,
    read_timeout_secs: u64,
    engine: EngineMode,
    partitions: usize,
    seed: u64,
}

fn parse_serve_args(it: impl Iterator<Item = String>) -> ServeArgs {
    let mut args = ServeArgs {
        addr: "127.0.0.1:7878".to_string(),
        demos: Vec::new(),
        inputs: Vec::new(),
        jobs: 4,
        queue: 64,
        max_connections: 64,
        read_timeout_secs: 10,
        engine: EngineMode::InMemory,
        partitions: 16,
        seed: 42,
    };
    let mut it = it;
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> String {
            match it.next() {
                Some(v) => v,
                None => usage_error(format!("missing value for {name}")),
            }
        };
        match arg.as_str() {
            "--help" | "-h" => {
                print!("{USAGE}");
                exit(0);
            }
            "--addr" => args.addr = value("--addr"),
            "--demo" => args.demos.push(value("--demo")),
            "--jobs" => args.jobs = parse_value("--jobs", &value("--jobs")),
            "--queue" => args.queue = parse_value("--queue", &value("--queue")),
            "--max-connections" => {
                args.max_connections =
                    parse_value("--max-connections", &value("--max-connections"));
            }
            "--read-timeout" => {
                args.read_timeout_secs = parse_value("--read-timeout", &value("--read-timeout"));
            }
            "--engine" => args.engine = parse_value("--engine", &value("--engine")),
            "--partitions" => {
                args.partitions = parse_value("--partitions", &value("--partitions"));
            }
            "--seed" => args.seed = parse_value("--seed", &value("--seed")),
            other if !other.starts_with('-') => args.inputs.push(other.to_string()),
            other => usage_error(format!("unexpected argument {other:?}")),
        }
    }
    if args.jobs == 0 {
        usage_error("--jobs must be ≥ 1");
    }
    if args.read_timeout_secs == 0 {
        usage_error("--read-timeout must be ≥ 1 second");
    }
    args
}

/// `sirum serve`: register the requested tables, bind the HTTP front end,
/// and serve until the process is killed.
fn run_serve(args: &ServeArgs) -> Result<(), SirumError> {
    let service = SirumService::builder()
        .mode(args.engine)
        .partitions(args.partitions)
        .pool_workers(args.jobs)
        .queue_capacity(args.queue)
        .build()?;
    for demo in &args.demos {
        service.register_demo_with(demo, None, args.seed)?;
    }
    for path in &args.inputs {
        let file = std::fs::File::open(path).map_err(|e| SirumError::Table(TableError::Io(e)))?;
        service.register_csv(path.clone(), std::io::BufReader::new(file))?;
    }
    let tables = service.table_names();
    let router = Router::new(
        service,
        std::sync::Arc::new(NetMetrics::new()),
        RouterConfig::default(),
    );
    let config = ServerConfig {
        max_connections: args.max_connections,
        read_timeout: std::time::Duration::from_secs(args.read_timeout_secs),
        ..ServerConfig::default()
    };
    let server = Server::bind(args.addr.as_str(), router, config)
        .map_err(|e| SirumError::service(format!("cannot bind {}: {e}", args.addr)))?;
    eprintln!(
        "sirum serving on http://{} — tables: [{}]; try GET /health, POST /mine",
        server.local_addr(),
        tables.join(", "),
    );
    // Serve until killed; the accept loop runs on its own thread and the
    // Server's Drop handles draining if this ever unparks.
    loop {
        std::thread::park();
    }
}

fn run(args: &Args) -> Result<(), SirumError> {
    let service = SirumService::builder()
        .mode(args.engine)
        .partitions(args.partitions)
        .pool_workers(args.jobs)
        .build()?;
    let name = load_table(&service, args)?;
    let table = service.table(&name)?;
    eprintln!(
        "{} rows × {} dimensions ({}), measure = {}",
        table.num_rows(),
        table.num_dims(),
        table.schema().dim_names().join(", "),
        table.schema().measure_name(),
    );

    if args.explain {
        let plan = build_request(&service, &name, args).explain()?;
        println!("{plan}");
        return Ok(());
    }

    let output = if args.repeat > 1 {
        // Exercise the concurrent path: submit N identical jobs to the
        // pool; the first execution populates the result cache and the
        // rest are served from it.
        let handles: Vec<JobHandle> = (0..args.repeat)
            .map(|_| build_request(&service, &name, args).submit())
            .collect::<Result<_, _>>()?;
        let mut outputs = Vec::with_capacity(handles.len());
        for handle in handles {
            outputs.push(handle.wait()?);
        }
        let stats = service.stats();
        eprintln!(
            "{} jobs: {} executed, {} coalesced onto in-flight runs, {} served from cache \
             ({} entries cached)",
            args.repeat,
            stats.jobs_executed,
            stats.jobs_coalesced,
            stats.cache_hits,
            stats.cache_entries
        );
        let Some(output) = outputs.into_iter().next() else {
            return Err(SirumError::service("no job output produced"));
        };
        output
    } else {
        let mut request = build_request(&service, &name, args);
        if args.progress {
            request = request.on_iteration(|event| {
                eprintln!(
                    "iteration {:>3}: {} rules, KL {:.6} ({:.2}s)",
                    event.iteration, event.rules_mined, event.kl, event.elapsed_secs
                );
                IterationDecision::Continue
            });
        }
        request.run()?
    };

    match args.format {
        OutputFormat::Json => {
            println!(
                "{}",
                sirum::json::mining_result_to_json(&output.result, &table)
            );
        }
        OutputFormat::Text => print_text(&output.result, &table),
    }
    Ok(())
}

fn main() {
    if std::env::args().nth(1).as_deref() == Some("serve") {
        let args = parse_serve_args(std::env::args().skip(2));
        if let Err(e) = run_serve(&args) {
            eprintln!("error: {e}");
            exit(1);
        }
        return;
    }
    let args = parse_args();
    if let Err(e) = run(&args) {
        eprintln!("error: {e}");
        exit(1);
    }
}
