//! The session API: the supported way to embed SIRUM in applications.
//!
//! A [`SirumSession`] owns a configured [`Engine`] and a catalog of named
//! [`Table`]s, amortizing engine setup across requests — rule mining is an
//! interactive, repeated-query workload (El Gebaly et al., VLDB'14), so the
//! expensive pieces live for the session, not per query. Each query is a
//! [`MiningRequest`] built fluently from [`SirumSession::mine`]; the full
//! configuration (strategy/variant/column-group/multirule invariants) is
//! validated *before* execution and every failure is a typed
//! [`SirumError`], never a panic.
//!
//! ```
//! use sirum::api::SirumSession;
//!
//! let mut session = SirumSession::in_memory()?;
//! session.register_demo("flights")?;
//! let result = session
//!     .mine("flights")
//!     .k(3)
//!     .sample_size(14)
//!     .run()?;
//! assert_eq!(result.rules.len(), 4); // (*, *, *) + 3 mined rules
//! assert_eq!(result.rules[1].rule.display(session.table("flights")?), "(*, *, London)");
//! # Ok::<(), sirum::api::SirumError>(())
//! ```
//!
//! ## Migrating from the old `Miner` facade
//!
//! `Miner::new(engine, config).mine(&table)` still compiles but is
//! deprecated: it panics on bad input. The session equivalent is
//!
//! ```text
//! old: Miner::new(engine, config).mine(&table)                  // panics
//! new: session.mine("name").k(10).variant(Variant::Rct).run()?  // Result
//! ```
//!
//! with one-off migrations also served by [`Miner::try_mine`].

use sirum_core::miner::IterationObserver;
use sirum_core::{
    try_evaluate_rules, try_mine_on_sample, CandidateStrategy, IterationDecision, IterationEvent,
    Miner, MiningResult, MultiRuleConfig, Rule, RuleSetEvaluation, SampleDataResult, ScalingConfig,
    SirumConfig, Variant,
};
use sirum_dataflow::{Engine, EngineConfig, EngineMode};
use sirum_table::{generators, Table};
use std::collections::BTreeMap;

pub use sirum_core::SirumError;

/// Builder for a [`SirumSession`]'s engine configuration.
///
/// Unlike the clamping `EngineConfig::with_*` helpers, these setters pass
/// values through verbatim so that invalid inputs (zero partitions, a zero
/// memory budget) surface as [`SirumError::Dataflow`] from
/// [`SessionBuilder::build`] rather than being silently corrected.
#[derive(Debug, Clone)]
pub struct SessionBuilder {
    config: EngineConfig,
}

impl SessionBuilder {
    /// Replace the entire engine configuration.
    pub fn engine_config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }

    /// Select the platform-emulation mode. Only the mode-dependent knobs
    /// change (`mode` itself and the stage-startup latency); every other
    /// setting — `workers`, `partitions`, a full [`Self::engine_config`] —
    /// is preserved, so setter order does not matter. `SingleThread`'s
    /// one-worker constraint is applied by the engine at execution time.
    pub fn mode(mut self, mode: EngineMode) -> Self {
        let base = match mode {
            EngineMode::InMemory => EngineConfig::in_memory(),
            EngineMode::DiskMr => EngineConfig::disk_mr(),
            EngineMode::SingleThread => EngineConfig::single_thread(),
        };
        self.config.mode = base.mode;
        self.config.stage_startup = base.stage_startup;
        self
    }

    /// Default number of partitions for datasets created by this session.
    pub fn partitions(mut self, partitions: usize) -> Self {
        self.config.partitions = partitions;
        self
    }

    /// Number of OS worker threads.
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers = workers;
        self
    }

    /// Memory budget in bytes for cached blocks.
    pub fn memory_budget(mut self, bytes: usize) -> Self {
        self.config.memory_budget = Some(bytes);
        self
    }

    /// Validate the configuration, stand up the engine (including its spill
    /// directory) and return the session.
    pub fn build(self) -> Result<SirumSession, SirumError> {
        let engine = Engine::try_new(self.config)?;
        Ok(SirumSession::with_engine(engine))
    }
}

/// A long-lived mining session: one configured [`Engine`] plus a catalog of
/// named tables. See the [module docs](self) for an end-to-end example.
pub struct SirumSession {
    engine: Engine,
    tables: BTreeMap<String, Table>,
}

impl SirumSession {
    /// Start configuring a session.
    pub fn builder() -> SessionBuilder {
        SessionBuilder {
            config: EngineConfig::in_memory(),
        }
    }

    /// A session on a default Spark-like in-memory engine.
    pub fn in_memory() -> Result<Self, SirumError> {
        Self::builder().build()
    }

    /// Wrap an already-constructed engine (assumed validated via
    /// [`Engine::try_new`] or [`Engine::new`]).
    pub fn with_engine(engine: Engine) -> Self {
        SirumSession {
            engine,
            tables: BTreeMap::new(),
        }
    }

    /// The session's engine (metrics, block store, configuration).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Register a table under `name`, replacing any previous table of that
    /// name. Rejects empty tables ([`SirumError::EmptyDataset`]) and
    /// non-finite measure values ([`SirumError::InvalidMeasure`]) at
    /// registration time so every later request on the table can assume a
    /// minable measure column.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        table: Table,
    ) -> Result<&mut Self, SirumError> {
        if table.num_rows() == 0 {
            return Err(SirumError::EmptyDataset);
        }
        if let Some(i) = table.measures().iter().position(|m| !m.is_finite()) {
            return Err(SirumError::InvalidMeasure {
                reason: format!(
                    "row {i}: value {} in measure column {:?} is not finite",
                    table.measures()[i],
                    table.schema().measure_name()
                ),
            });
        }
        self.tables.insert(name.into(), table);
        Ok(self)
    }

    /// Parse a CSV stream (header + rows, last column numeric) and register
    /// it under `name`. Malformed input surfaces as
    /// [`SirumError::Table`] naming the offending line.
    pub fn register_csv(
        &mut self,
        name: impl Into<String>,
        input: impl std::io::BufRead,
    ) -> Result<&mut Self, SirumError> {
        let table = sirum_table::csv::read_csv(input)?;
        self.register(name, table)
    }

    /// Register one of the built-in demo datasets under its own name with
    /// default sizing: `flights` (the paper's Table 1.1), `income`,
    /// `gdelt`, `susy`, `tlc` or `dirty`.
    pub fn register_demo(&mut self, name: &str) -> Result<&mut Self, SirumError> {
        self.register_demo_with(name, None, 42)
    }

    /// [`Self::register_demo`] with explicit row count (`None` = the demo's
    /// default) and generator seed. `flights` is the fixed 14-row table and
    /// ignores `rows`.
    pub fn register_demo_with(
        &mut self,
        name: &str,
        rows: Option<usize>,
        seed: u64,
    ) -> Result<&mut Self, SirumError> {
        let table = match name {
            "flights" => generators::flights(),
            "income" => generators::income_like(rows.unwrap_or(20_000), seed),
            "gdelt" => generators::gdelt_like(rows.unwrap_or(20_000), seed),
            "susy" => generators::susy_like(rows.unwrap_or(2_000), seed),
            "tlc" => generators::tlc_like(rows.unwrap_or(50_000), seed),
            "dirty" => generators::gdelt_dirty(rows.unwrap_or(20_000), seed),
            other => {
                return Err(SirumError::UnknownDemo {
                    name: other.to_string(),
                })
            }
        };
        self.register(name, table)
    }

    /// Look up a registered table. Unknown names list the registered ones
    /// in the error.
    pub fn table(&self, name: &str) -> Result<&Table, SirumError> {
        self.tables
            .get(name)
            .ok_or_else(|| SirumError::UnknownTable {
                name: name.to_string(),
                registered: self.tables.keys().cloned().collect(),
            })
    }

    /// Names of all registered tables, in sorted order.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }

    /// Remove a table from the catalog, returning it if present.
    pub fn unregister(&mut self, name: &str) -> Option<Table> {
        self.tables.remove(name)
    }

    /// Start building a mining request against the named table. The name is
    /// resolved at [`MiningRequest::run`] time, so requests can be built
    /// before the table is registered.
    pub fn mine(&self, table: &str) -> MiningRequest<'_> {
        MiningRequest {
            session: self,
            table: table.to_string(),
            variant: None,
            k: 10,
            sample_size: 64,
            full_cube: false,
            epsilon: None,
            max_scaling_iterations: None,
            seed: None,
            rules_per_iter: None,
            two_sided: false,
            target_kl: None,
            max_rules: None,
            column_groups: None,
            prior: Vec::new(),
            observer: None,
        }
    }

    /// Score an externally supplied rule set against a registered table
    /// (offline evaluation, §4.5/§5.7.3).
    pub fn evaluate(
        &self,
        table: &str,
        rules: &[Rule],
        scaling: &ScalingConfig,
    ) -> Result<RuleSetEvaluation, SirumError> {
        try_evaluate_rules(self.table(table)?, rules, scaling)
    }
}

impl std::fmt::Debug for SirumSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SirumSession")
            .field("mode", &self.engine.mode())
            .field("tables", &self.table_names())
            .finish()
    }
}

/// A fluent, validated mining request. Build one with
/// [`SirumSession::mine`], tweak it, then [`MiningRequest::run`] it.
///
/// Unset knobs default to the paper's Optimized SIRUM configuration
/// ([`SirumConfig::default`]); [`MiningRequest::variant`] swaps in a whole
/// Table 4.2 row instead.
pub struct MiningRequest<'s> {
    session: &'s SirumSession,
    table: String,
    variant: Option<Variant>,
    k: usize,
    sample_size: usize,
    full_cube: bool,
    epsilon: Option<f64>,
    max_scaling_iterations: Option<usize>,
    seed: Option<u64>,
    rules_per_iter: Option<usize>,
    two_sided: bool,
    target_kl: Option<f64>,
    max_rules: Option<usize>,
    column_groups: Option<usize>,
    prior: Vec<Rule>,
    observer: Option<Box<IterationObserver>>,
}

impl<'s> MiningRequest<'s> {
    /// Number of rules to mine beyond `(*, …, *)` (default 10).
    pub fn k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Candidate-pruning sample size `|s|` (default 64; clamped to the
    /// table's row count at run time). Zero is rejected at validation.
    pub fn sample_size(mut self, sample_size: usize) -> Self {
        self.sample_size = sample_size;
        self
    }

    /// Use a named Table 4.2 variant (Naive/Baseline/RCT/…) as the base
    /// configuration instead of Optimized-by-default.
    pub fn variant(mut self, variant: Variant) -> Self {
        self.variant = Some(variant);
        self
    }

    /// Exhaustive cube enumeration instead of sample-based pruning (the
    /// data-cube-exploration setting, §5.6.2).
    pub fn full_cube(mut self) -> Self {
        self.full_cube = true;
        self
    }

    /// Score candidates with the symmetrized two-sided gain, also
    /// surfacing unusually *low*-measure regions (data-cleansing queries).
    pub fn two_sided(mut self) -> Self {
        self.two_sided = true;
        self
    }

    /// Iterative-scaling convergence tolerance ε.
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = Some(epsilon);
        self
    }

    /// Iterative-scaling λ-update cap.
    pub fn max_scaling_iterations(mut self, n: usize) -> Self {
        self.max_scaling_iterations = Some(n);
        self
    }

    /// Sampling / column-group shuffling seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Insert up to `l` mutually disjoint rules per iteration (§4.4).
    pub fn rules_per_iter(mut self, l: usize) -> Self {
        self.rules_per_iter = Some(l);
        self
    }

    /// Keep mining past `k` until the KL divergence reaches `target`
    /// (the `l-rule*` mode of §5.5), bounded by [`Self::max_rules`].
    pub fn target_kl(mut self, target: f64) -> Self {
        self.target_kl = Some(target);
        self
    }

    /// Hard cap on mined rules when a KL target is set.
    pub fn max_rules(mut self, max: usize) -> Self {
        self.max_rules = Some(max);
        self
    }

    /// Column groups for multi-stage ancestor generation (§4.3).
    pub fn column_groups(mut self, groups: usize) -> Self {
        self.column_groups = Some(groups);
        self
    }

    /// Seed the model with prior-knowledge rules (cube exploration,
    /// Table 1.3): the mined rules come *in addition to* these.
    pub fn prior(mut self, rules: Vec<Rule>) -> Self {
        self.prior = rules;
        self
    }

    /// Observe progress: `observer` runs after every mining iteration and
    /// can cancel the run gracefully by returning
    /// [`IterationDecision::Stop`] (the partial result is returned with
    /// [`MiningResult::cancelled`] set).
    pub fn on_iteration(
        mut self,
        observer: impl Fn(&IterationEvent) -> IterationDecision + Send + Sync + 'static,
    ) -> Self {
        self.observer = Some(Box::new(observer));
        self
    }

    /// Materialize the [`SirumConfig`] this request describes (also how the
    /// request is validated: the config is checked before execution).
    fn build_config(&self, num_rows: usize) -> SirumConfig {
        let sample_size = if self.sample_size == 0 {
            0 // left invalid so validation names the field
        } else {
            self.sample_size.min(num_rows)
        };
        let mut config = match self.variant {
            Some(variant) => variant.config(self.k, sample_size),
            None => SirumConfig {
                k: self.k,
                strategy: CandidateStrategy::SampleLca { sample_size },
                ..SirumConfig::default()
            },
        };
        if self.full_cube {
            config.strategy = CandidateStrategy::FullCube;
        }
        if let Some(epsilon) = self.epsilon {
            config.scaling.epsilon = epsilon;
        }
        if let Some(n) = self.max_scaling_iterations {
            config.scaling.max_iterations = n;
        }
        if let Some(seed) = self.seed {
            config.seed = seed;
        }
        if let Some(l) = self.rules_per_iter {
            config.multirule = MultiRuleConfig {
                rules_per_iter: l,
                ..config.multirule
            };
        }
        if let Some(groups) = self.column_groups {
            config.column_groups = groups;
        }
        config.two_sided_gain |= self.two_sided;
        config.target_kl = self.target_kl.or(config.target_kl);
        config.max_rules = self.max_rules.or(config.max_rules);
        config
    }

    /// Validate the full configuration and execute the mining run.
    ///
    /// # Errors
    /// * [`SirumError::UnknownTable`] — the request names an unregistered
    ///   table.
    /// * [`SirumError::InvalidConfig`] — a strategy/variant/column-group/
    ///   multirule invariant fails, with the field named.
    /// * [`SirumError::EmptyDataset`] / [`SirumError::InvalidMeasure`] —
    ///   the data cannot drive the model.
    /// * [`SirumError::Dataflow`] — the engine failed mid-run (spill I/O).
    pub fn run(self) -> Result<MiningResult, SirumError> {
        let table = self.session.table(&self.table)?;
        let config = self.build_config(table.num_rows());
        let mut miner = Miner::new(self.session.engine.clone(), config);
        if let Some(observer) = self.observer {
            miner = miner.with_observer(move |event| observer(event));
        }
        miner.try_mine_with_prior(table, &self.prior)
    }

    /// Like [`Self::run`], but mine on a Bernoulli row sample of the table
    /// at `rate` and score the mined rules against the *full* table
    /// (§4.5/§5.7.3). The progress observer is not invoked in this mode.
    pub fn run_on_sample(self, rate: f64) -> Result<SampleDataResult, SirumError> {
        let table = self.session.table(&self.table)?;
        let config = self.build_config(table.num_rows());
        try_mine_on_sample(&self.session.engine, table, rate, config)
    }
}

impl std::fmt::Debug for MiningRequest<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MiningRequest")
            .field("table", &self.table)
            .field("k", &self.k)
            .field("variant", &self.variant)
            .field("sample_size", &self.sample_size)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_reuses_one_engine_across_requests() {
        let mut session = SirumSession::in_memory().unwrap();
        session.register_demo("flights").unwrap();
        let a = session.mine("flights").k(2).sample_size(14).run().unwrap();
        let stages_after_first = session.engine().metrics().stage_count();
        let b = session.mine("flights").k(2).sample_size(14).run().unwrap();
        assert_eq!(a.rules.len(), b.rules.len());
        assert!(
            session.engine().metrics().stage_count() > stages_after_first,
            "second request ran on the same engine"
        );
    }

    #[test]
    fn request_defaults_match_optimized_sirum() {
        let mut session = SirumSession::in_memory().unwrap();
        session.register_demo("flights").unwrap();
        let request = session.mine("flights").k(3).sample_size(14);
        let config = request.build_config(14);
        assert_eq!(config.k, 3);
        assert!(config.rct && config.fast_pruning);
        assert_eq!(
            config.strategy,
            CandidateStrategy::SampleLca { sample_size: 14 }
        );
    }

    #[test]
    fn builder_order_does_not_matter_for_variant_and_k() {
        let session = SirumSession::in_memory().unwrap();
        let a = session
            .mine("t")
            .k(5)
            .variant(Variant::Rct)
            .build_config(100);
        let b = session
            .mine("t")
            .variant(Variant::Rct)
            .k(5)
            .build_config(100);
        assert_eq!(a.k, b.k);
        assert_eq!(a.rct, b.rct);
    }

    #[test]
    fn session_builder_mode_preserves_earlier_overrides() {
        // workers() before mode() must survive the mode switch.
        let session = SirumSession::builder()
            .workers(3)
            .partitions(7)
            .mode(EngineMode::DiskMr)
            .build()
            .unwrap();
        let config = session.engine().config();
        assert_eq!(config.mode, EngineMode::DiskMr);
        assert_eq!(config.workers, 3);
        assert_eq!(config.partitions, 7);
        assert!(config.stage_startup > std::time::Duration::ZERO);
        // Switching back clears the mode-dependent latency only.
        let session = SirumSession::builder()
            .workers(3)
            .mode(EngineMode::DiskMr)
            .mode(EngineMode::InMemory)
            .build()
            .unwrap();
        let config = session.engine().config();
        assert_eq!(config.mode, EngineMode::InMemory);
        assert_eq!(config.stage_startup, std::time::Duration::ZERO);
        assert_eq!(config.workers, 3);
    }
}
