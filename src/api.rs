//! The session API: the supported way to embed SIRUM in applications.
//!
//! A [`SirumSession`] owns a configured [`Engine`] and a catalog of named
//! [`Table`]s, amortizing engine setup across requests — rule mining is an
//! interactive, repeated-query workload (El Gebaly et al., VLDB'14), so the
//! expensive pieces live for the session, not per query. Each query is a
//! [`MiningRequest`] built fluently from [`SirumSession::mine`]; the full
//! configuration (strategy/variant/column-group/multirule invariants) is
//! validated *before* execution and every failure is a typed
//! [`SirumError`], never a panic.
//!
//! Since the service-layer redesign, a session is a thin single-threaded
//! wrapper over [`crate::service::SirumService`]: the catalog holds
//! `Arc<Table>`s with their mining preparation (dictionary-encoded rows,
//! fitted measure transform) computed once at registration, so repeated
//! requests skip the per-query encode. For concurrent serving — worker
//! pool, job handles, result cache — use the service directly;
//! [`SirumSession::service`] exposes the one backing this session.
//!
//! ```
//! use sirum::api::SirumSession;
//!
//! let mut session = SirumSession::in_memory()?;
//! session.register_demo("flights")?;
//! let result = session
//!     .mine("flights")
//!     .k(3)
//!     .sample_size(14)
//!     .run()?;
//! assert_eq!(result.rules.len(), 4); // (*, *, *) + 3 mined rules
//! assert_eq!(result.rules[1].rule.display(session.table("flights")?), "(*, *, London)");
//! # Ok::<(), sirum::api::SirumError>(())
//! ```
//!
//! ## Migrating from the old `Miner` facade
//!
//! The panicking `Miner::new(engine, config).mine(&table)` shim has been
//! removed. The session equivalent is
//!
//! ```text
//! old: Miner::new(engine, config).mine(&table)                  // panicked
//! new: session.mine("name").k(10).variant(Variant::Rct).run()?  // Result
//! ```
//!
//! with one-off migrations also served by [`Miner::try_mine`].

use crate::service::{impl_request_setters, RequestSpec, SirumService};
use sirum_core::miner::IterationObserver;
use sirum_core::{
    try_mine_on_sample, IterationDecision, IterationEvent, Miner, MiningResult, Rule,
    RuleSetEvaluation, SampleDataResult, ScalingConfig, Variant,
};
use sirum_dataflow::{Engine, EngineConfig, EngineMode};
use sirum_table::Table;
use std::collections::BTreeMap;
use std::sync::Arc;

pub use sirum_core::SirumError;

/// Builder for a [`SirumSession`]'s engine configuration.
///
/// Unlike the clamping `EngineConfig::with_*` helpers, these setters pass
/// values through verbatim so that invalid inputs (zero partitions, a zero
/// memory budget) surface as [`SirumError::Dataflow`] from
/// [`SessionBuilder::build`] rather than being silently corrected.
#[derive(Debug, Clone)]
pub struct SessionBuilder {
    config: EngineConfig,
}

impl SessionBuilder {
    /// Replace the entire engine configuration.
    pub fn engine_config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }

    /// Select the platform-emulation mode. Only the mode-dependent knobs
    /// change (`mode` itself and the stage-startup latency); every other
    /// setting — `workers`, `partitions`, a full [`Self::engine_config`] —
    /// is preserved, so setter order does not matter. `SingleThread`'s
    /// one-worker constraint is applied by the engine at execution time.
    pub fn mode(mut self, mode: EngineMode) -> Self {
        let base = match mode {
            EngineMode::InMemory => EngineConfig::in_memory(),
            EngineMode::DiskMr => EngineConfig::disk_mr(),
            EngineMode::SingleThread => EngineConfig::single_thread(),
        };
        self.config.mode = base.mode;
        self.config.stage_startup = base.stage_startup;
        self
    }

    /// Default number of partitions for datasets created by this session.
    pub fn partitions(mut self, partitions: usize) -> Self {
        self.config.partitions = partitions;
        self
    }

    /// Number of OS worker threads.
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers = workers;
        self
    }

    /// Memory budget in bytes for cached blocks.
    pub fn memory_budget(mut self, bytes: usize) -> Self {
        self.config.memory_budget = Some(bytes);
        self
    }

    /// Validate the configuration, stand up the engine (including its spill
    /// directory) and return the session.
    pub fn build(self) -> Result<SirumSession, SirumError> {
        let engine = Engine::try_new(self.config)?;
        Ok(SirumSession::with_engine(engine))
    }
}

/// A long-lived mining session: one configured [`Engine`] plus a catalog of
/// named tables, wrapped around a single-owner [`SirumService`]. See the
/// [module docs](self) for an end-to-end example.
pub struct SirumSession {
    service: SirumService,
    // The session's own registrations, so `table()` can lend `&Table`
    // without holding the service's lock. Tables registered directly on
    // the shared service are intentionally NOT mirrored here — see
    // `SirumSession::service` for the visibility contract.
    tables: BTreeMap<String, Arc<Table>>,
}

impl SirumSession {
    /// Start configuring a session.
    pub fn builder() -> SessionBuilder {
        SessionBuilder {
            config: EngineConfig::in_memory(),
        }
    }

    /// A session on a default Spark-like in-memory engine.
    pub fn in_memory() -> Result<Self, SirumError> {
        Self::builder().build()
    }

    /// Wrap an already-constructed engine (assumed validated via
    /// [`Engine::try_new`] or [`Engine::new`]).
    pub fn with_engine(engine: Engine) -> Self {
        SirumSession {
            service: SirumService::with_engine(engine),
            tables: BTreeMap::new(),
        }
    }

    /// The session's engine (metrics, block store, configuration).
    pub fn engine(&self) -> &Engine {
        self.service.engine()
    }

    /// The concurrent service backing this session. Requests driven through
    /// the service (jobs, cache, streams) and through the session share one
    /// catalog and engine; cloning the returned service hands other threads
    /// a concurrent view of this session's tables.
    ///
    /// The sharing is asymmetric by design: everything registered through
    /// the *session* is visible to the service, and session requests
    /// ([`Self::mine`]) resolve against the live shared catalog — but
    /// [`Self::table`]/[`Self::table_names`] lend `&Table` from the
    /// session's own registrations only, so tables registered directly on
    /// the shared service are reachable via [`SirumService::table`] (an
    /// `Arc` clone), not via the session's borrow API.
    pub fn service(&self) -> &SirumService {
        &self.service
    }

    /// Register a table under `name`, replacing any previous table of that
    /// name. Rejects empty tables ([`SirumError::EmptyDataset`]) and
    /// non-finite measure values ([`SirumError::InvalidMeasure`]) at
    /// registration time so every later request on the table can assume a
    /// minable measure column. Registration also dictionary-encodes the
    /// table for mining once, so repeated requests skip that work.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        table: Table,
    ) -> Result<&mut Self, SirumError> {
        let name = name.into();
        let shared = self.service.register(name.clone(), table)?;
        self.tables.insert(name, shared);
        Ok(self)
    }

    /// Parse a CSV stream (header + rows, last column numeric) and register
    /// it under `name`. Malformed input surfaces as
    /// [`SirumError::Table`] naming the offending line.
    pub fn register_csv(
        &mut self,
        name: impl Into<String>,
        input: impl std::io::BufRead,
    ) -> Result<&mut Self, SirumError> {
        let table = sirum_table::csv::read_csv(input)?;
        self.register(name, table)
    }

    /// Register one of the built-in demo datasets under its own name with
    /// default sizing: `flights` (the paper's Table 1.1), `income`,
    /// `gdelt`, `susy`, `tlc` or `dirty`.
    pub fn register_demo(&mut self, name: &str) -> Result<&mut Self, SirumError> {
        self.register_demo_with(name, None, 42)
    }

    /// [`Self::register_demo`] with explicit row count (`None` = the demo's
    /// default) and generator seed. `flights` is the fixed 14-row table and
    /// ignores `rows`.
    pub fn register_demo_with(
        &mut self,
        name: &str,
        rows: Option<usize>,
        seed: u64,
    ) -> Result<&mut Self, SirumError> {
        let shared = self.service.register_demo_with(name, rows, seed)?;
        self.tables.insert(name.to_string(), shared);
        Ok(self)
    }

    /// Look up a table registered through this session. Unknown names list
    /// the registered ones in the error. (Tables registered directly on the
    /// shared [`Self::service`] are looked up there instead — the session
    /// can only lend `&Table` for registrations it performed itself.)
    pub fn table(&self, name: &str) -> Result<&Table, SirumError> {
        self.tables
            .get(name)
            .map(Arc::as_ref)
            .ok_or_else(|| SirumError::UnknownTable {
                name: name.to_string(),
                registered: self.tables.keys().cloned().collect(),
            })
    }

    /// Names of all registered tables, in sorted order.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }

    /// Remove a table from the shared catalog, returning it if present
    /// (whether it was registered through this session or directly on the
    /// backing service). The returned table is detached — cloned out of the
    /// shared handle if in-flight work still holds it.
    pub fn unregister(&mut self, name: &str) -> Option<Table> {
        let removed = self.service.unregister(name);
        self.tables.remove(name);
        removed.map(|arc| Arc::try_unwrap(arc).unwrap_or_else(|arc| (*arc).clone()))
    }

    /// Start building a mining request against the named table. The name is
    /// resolved at [`MiningRequest::run`] time, so requests can be built
    /// before the table is registered.
    pub fn mine(&self, table: &str) -> MiningRequest<'_> {
        MiningRequest {
            session: self,
            spec: RequestSpec::new(table),
            observer: None,
        }
    }

    /// Score an externally supplied rule set against a registered table
    /// (offline evaluation, §4.5/§5.7.3).
    pub fn evaluate(
        &self,
        table: &str,
        rules: &[Rule],
        scaling: &ScalingConfig,
    ) -> Result<RuleSetEvaluation, SirumError> {
        self.service.evaluate(table, rules, scaling)
    }
}

impl std::fmt::Debug for SirumSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SirumSession")
            .field("mode", &self.engine().mode())
            .field("tables", &self.table_names())
            .finish()
    }
}

/// A fluent, validated mining request. Build one with
/// [`SirumSession::mine`], tweak it, then [`MiningRequest::run`] it.
///
/// Unset knobs default to the paper's Optimized SIRUM configuration
/// ([`sirum_core::SirumConfig::default`]); [`MiningRequest::variant`] swaps
/// in a whole Table 4.2 row instead.
pub struct MiningRequest<'s> {
    session: &'s SirumSession,
    pub(crate) spec: RequestSpec,
    observer: Option<Box<IterationObserver>>,
}

impl_request_setters!(MiningRequest);

impl MiningRequest<'_> {
    /// Validate the full configuration and execute the mining run on the
    /// session's engine (synchronously, uncached — the session path always
    /// re-executes; use the [`crate::service`] API for cached serving).
    ///
    /// # Errors
    /// * [`SirumError::UnknownTable`] — the request names an unregistered
    ///   table.
    /// * [`SirumError::InvalidConfig`] — a strategy/variant/column-group/
    ///   multirule invariant fails, with the field named.
    /// * [`SirumError::EmptyDataset`] / [`SirumError::InvalidMeasure`] —
    ///   the data cannot drive the model.
    /// * [`SirumError::Dataflow`] — the engine failed mid-run (spill I/O).
    pub fn run(self) -> Result<MiningResult, SirumError> {
        let entry = self.session.service.entry(&self.spec.table)?;
        let config = self.spec.build_config(entry.table.num_rows());
        let mut miner = Miner::new(self.session.engine().clone(), config);
        if let Some(observer) = self.observer {
            miner = miner.with_observer(move |event| observer(event));
        }
        miner.try_mine_prepared(&entry.prepared, &self.spec.prior)
    }

    /// Like [`Self::run`], but mine on a Bernoulli row sample of the table
    /// at `rate` and score the mined rules against the *full* table
    /// (§4.5/§5.7.3). The progress observer is not invoked in this mode.
    pub fn run_on_sample(self, rate: f64) -> Result<SampleDataResult, SirumError> {
        let entry = self.session.service.entry(&self.spec.table)?;
        let config = self.spec.build_config(entry.table.num_rows());
        try_mine_on_sample(self.session.engine(), &entry.table, rate, config)
    }
}

impl std::fmt::Debug for MiningRequest<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MiningRequest")
            .field("table", &self.spec.table)
            .field("k", &self.spec.k)
            .field("variant", &self.spec.variant)
            .field("sample_size", &self.spec.sample_size)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sirum_core::CandidateStrategy;

    #[test]
    fn session_reuses_one_engine_across_requests() {
        let mut session = SirumSession::in_memory().unwrap();
        session.register_demo("flights").unwrap();
        let a = session.mine("flights").k(2).sample_size(14).run().unwrap();
        let stages_after_first = session.engine().metrics().stage_count();
        let b = session.mine("flights").k(2).sample_size(14).run().unwrap();
        assert_eq!(a.rules.len(), b.rules.len());
        assert!(
            session.engine().metrics().stage_count() > stages_after_first,
            "second request ran on the same engine"
        );
    }

    #[test]
    fn request_defaults_match_optimized_sirum() {
        let mut session = SirumSession::in_memory().unwrap();
        session.register_demo("flights").unwrap();
        let request = session.mine("flights").k(3).sample_size(14);
        let config = request.spec.build_config(14);
        assert_eq!(config.k, 3);
        assert!(config.rct && config.fast_pruning);
        assert_eq!(
            config.strategy,
            CandidateStrategy::SampleLca { sample_size: 14 }
        );
    }

    #[test]
    fn builder_order_does_not_matter_for_variant_and_k() {
        let session = SirumSession::in_memory().unwrap();
        let a = session
            .mine("t")
            .k(5)
            .variant(Variant::Rct)
            .spec
            .build_config(100);
        let b = session
            .mine("t")
            .variant(Variant::Rct)
            .k(5)
            .spec
            .build_config(100);
        assert_eq!(a.k, b.k);
        assert_eq!(a.rct, b.rct);
    }

    #[test]
    fn session_builder_mode_preserves_earlier_overrides() {
        // workers() before mode() must survive the mode switch.
        let session = SirumSession::builder()
            .workers(3)
            .partitions(7)
            .mode(EngineMode::DiskMr)
            .build()
            .unwrap();
        let config = session.engine().config();
        assert_eq!(config.mode, EngineMode::DiskMr);
        assert_eq!(config.workers, 3);
        assert_eq!(config.partitions, 7);
        assert!(config.stage_startup > std::time::Duration::ZERO);
        // Switching back clears the mode-dependent latency only.
        let session = SirumSession::builder()
            .workers(3)
            .mode(EngineMode::DiskMr)
            .mode(EngineMode::InMemory)
            .build()
            .unwrap();
        let config = session.engine().config();
        assert_eq!(config.mode, EngineMode::InMemory);
        assert_eq!(config.stage_startup, std::time::Duration::ZERO);
        assert_eq!(config.workers, 3);
    }

    #[test]
    fn session_and_service_share_one_catalog() {
        let mut session = SirumSession::in_memory().unwrap();
        session.register_demo("flights").unwrap();
        let service = session.service().clone();
        assert_eq!(service.table_names(), vec!["flights".to_string()]);
        // A service-side mine sees the session's registration.
        let output = service.mine("flights").k(2).sample_size(14).run().unwrap();
        assert_eq!(output.result.rules.len(), 3);
        // Session-side unregister is visible through the service.
        let removed = session.unregister("flights").unwrap();
        assert_eq!(removed.num_rows(), 14);
        assert!(service.table("flights").is_err());
        // A table registered directly on the shared service is minable and
        // removable through the session (borrow lookups stay session-only).
        service.register_demo_with("income", Some(200), 1).unwrap();
        assert!(session.table("income").is_err(), "no session borrow");
        let result = session.mine("income").k(1).run().unwrap();
        assert_eq!(result.rules.len(), 2);
        let removed = session.unregister("income").unwrap();
        assert_eq!(removed.num_rows(), 200);
        assert!(service.table("income").is_err());
    }
}
