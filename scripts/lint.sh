#!/usr/bin/env bash
# One-shot hygiene gate: formatting, clippy, and the workspace's own
# static-analysis pass (sirum-lint). Mirrors what CI runs, so a clean
# `scripts/lint.sh` locally means the lint jobs will pass.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy (workspace, all targets, -D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== sirum-lint --check"
cargo run -q -p sirum_lint -- --check "$@"
