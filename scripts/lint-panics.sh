#!/usr/bin/env bash
# Library panic gate: fail if `panic!`, `unwrap()`, `expect(`, or a bare
# `assert!`/`assert_eq!`/`assert_ne!` appears in the non-test source of the
# three library crates (core, dataflow, table) or the facade (`src/`:
# session + service layers, CLI, JSON rendering). The facade's error
# hierarchy (ISSUE 2) requires every *user-input-reachable* failure to be a
# typed `SirumError`, so new panic sites of those forms must not creep back
# in — and since `assert!` is reachable panic machinery too (the
# `kl_divergence` zero-mass panics of ISSUE 4 arrived that way), bare
# asserts now need an explicit allowlist marker.
#
# Deliberately OUT of scope: `debug_assert!`/`unreachable!` on internal
# invariants — those document logic errors, not input-reachable failures,
# and converting them to Results would only bury corruption.
#
# Exemptions:
#   * `#[cfg(test)]` modules — every library file keeps its test module at
#     the end of the file, so scanning stops at that attribute;
#   * comment-only lines (docs may mention the words);
#   * lines carrying a `lint:allow-panic` marker — reserved for the single
#     documented panic bridge per crate (`error::fail`) behind the
#     deprecated/infallible wrappers;
#   * asserts carrying a `lint:allow-assert — <reason>` marker on the same
#     line or the line directly above — reserved for genuinely *internal*
#     invariants (encode/decode framing, driver-maintained index bounds)
#     that no caller can reach with bad input. Reviewers should push back
#     when a new marker guards something user data can reach.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0
while IFS= read -r file; do
    hits=$(awk '
        /#\[cfg\(test\)\]/ { exit }
        # Comment lines are never findings; a comment carrying the assert
        # marker blesses only what DIRECTLY follows it — any other comment
        # line clears a pending blessing, so a marker cannot leak through
        # an unrelated comment block onto a distant assert.
        /^[[:space:]]*\/\// { allow = /lint:allow-assert/ ? 1 : 0; next }
        /lint:allow-panic/ { allow = 0; next }
        /panic!|unwrap\(\)|expect\(/ {
            printf "%s:%d: %s\n", FILENAME, FNR, $0; allow = 0; next
        }
        /debug_assert/ { allow = 0; next }
        /(^|[^_[:alnum:]])assert(_eq|_ne)?!/ {
            if (!allow && !/lint:allow-assert/) printf "%s:%d: %s\n", FILENAME, FNR, $0
            allow = 0; next
        }
        { allow = 0 }
    ' "$file")
    if [ -n "$hits" ]; then
        echo "$hits"
        fail=1
    fi
done < <(find crates/core/src crates/dataflow/src crates/table/src src -name '*.rs' | sort)

if [ "$fail" -ne 0 ]; then
    echo
    echo "error: panic/unwrap/expect/bare-assert found on non-test library paths." >&2
    echo "Convert these to typed errors (TableError / DataflowError / SirumError)," >&2
    echo "or mark a genuinely internal invariant with: // lint:allow-assert — <reason>" >&2
    exit 1
fi
echo "lint-panics: no panic!/unwrap()/expect(/bare assert! on non-test library paths."
