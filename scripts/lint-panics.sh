#!/usr/bin/env bash
# Library panic gate: fail if `panic!`, `unwrap()` or `expect(` appears in
# the non-test source of the three library crates (core, dataflow, table)
# or the facade (`src/`: session + service layers, CLI, JSON rendering).
# The facade's error hierarchy (ISSUE 2) requires every *user-input-
# reachable* failure to be a typed `SirumError`, so new panic sites of
# those forms must not creep back in.
#
# Deliberately OUT of scope: `assert!`/`debug_assert!`/`unreachable!` on
# internal invariants (e.g. "this block was written by this process", "a
# completed task filled its slot") — those document logic errors, not
# input-reachable failures, and converting them to Results would only bury
# corruption. Reviewers should still push back when a new assert guards
# something a caller can reach with bad input.
#
# Exemptions:
#   * `#[cfg(test)]` modules — every library file keeps its test module at
#     the end of the file, so scanning stops at that attribute;
#   * comment-only lines (docs may mention the words);
#   * lines carrying a `lint:allow-panic` marker — reserved for the single
#     documented panic bridge per crate (`error::fail`) behind the
#     deprecated/infallible wrappers.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0
while IFS= read -r file; do
    hits=$(awk '
        /#\[cfg\(test\)\]/ { exit }
        /lint:allow-panic/ { next }
        /^[[:space:]]*\/\// { next }
        /panic!|unwrap\(\)|expect\(/ { printf "%s:%d: %s\n", FILENAME, FNR, $0 }
    ' "$file")
    if [ -n "$hits" ]; then
        echo "$hits"
        fail=1
    fi
done < <(find crates/core/src crates/dataflow/src crates/table/src src -name '*.rs' | sort)

if [ "$fail" -ne 0 ]; then
    echo
    echo "error: panic/unwrap/expect found on non-test library paths." >&2
    echo "Convert these to typed errors (TableError / DataflowError / SirumError)." >&2
    exit 1
fi
echo "lint-panics: no panic!/unwrap()/expect( on non-test library paths."
