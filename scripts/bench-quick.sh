#!/usr/bin/env bash
# Quick benchmark sweep: runs all ten Criterion benches with a reduced
# sample count and appends one JSON line per benchmark to a BENCH_*.json
# file, seeding the repo's perf trajectory.
#
# Usage:
#   scripts/bench-quick.sh                # 3 samples/bench -> BENCH_<date>.json
#   SAMPLES=5 scripts/bench-quick.sh out.json
#
# The vendored criterion stand-in (vendor/criterion) reads:
#   SIRUM_BENCH_SAMPLES — timed samples per benchmark
#   SIRUM_BENCH_JSON    — JSON-lines output path (appended)
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="BENCH_$(date +%Y%m%d_%H%M%S).json"
if [[ $# -ge 1 && $1 != -* ]]; then
    OUT="$1"
    shift
fi
# Bench binaries run with the package dir as cwd; keep the output here.
case "$OUT" in
/*) ;;
*) OUT="$(pwd)/$OUT" ;;
esac
SAMPLES="${SAMPLES:-3}"

# Start fresh if the target file already exists (re-runs shouldn't mix).
# The file is touched up front so a filter matching no benchmark still
# leaves a (empty) results file rather than failing the final count.
rm -f "$OUT"
touch "$OUT"

echo "== bench-quick: $SAMPLES samples/bench -> $OUT"
SIRUM_BENCH_SAMPLES="$SAMPLES" SIRUM_BENCH_JSON="$OUT" \
    cargo bench -p sirum_bench "$@"

echo "== wrote $(wc -l < "$OUT") benchmark results to $OUT"

# Row-major vs columnar data-path comparison (ISSUE 5): pair each
# boxed-row reference benchmark with its columnar counterpart and print
# the speedup, so every BENCH_*.json snapshot carries the numbers needed
# to spot a regression of the zero-copy path at a glance.
median() {
    grep -F "\"bench\": \"$1\"" "$OUT" | head -1 |
        sed -n 's/.*"median_ns": \([0-9]*\).*/\1/p'
}
compare() {
    local label="$1" row="$2" col="$3"
    local row_ns col_ns
    row_ns="$(median "$row")"
    col_ns="$(median "$col")"
    if [[ -n "$row_ns" && -n "$col_ns" && "$col_ns" -gt 0 ]]; then
        awk -v l="$label" -v r="$row_ns" -v c="$col_ns" 'BEGIN {
            printf "==   %-34s row-major %8.2fms  columnar %8.2fms  (%.2fx)\n",
                l, r / 1e6, c / 1e6, r / c
        }'
    fi
}
echo "== row-major vs columnar (median, from $OUT):"
compare "gain_sweep mine (1 worker)" \
    "gain_sweep/mine/sweep-rowmajor" "gain_sweep/mine/sweep/1threads"
compare "gain_sweep single pass (1 worker)" \
    "gain_sweep/sweep-pass-rowmajor" "gain_sweep/sweep-pass/1threads"
compare "prepared seed-fit 20k rows" \
    "prepared_catalog/prepared-rowmajor/20000" "prepared_catalog/prepared/20000"
compare "prepared seed-fit 80k rows" \
    "prepared_catalog/prepared-rowmajor/80000" "prepared_catalog/prepared/80000"
