#!/usr/bin/env bash
# Quick benchmark sweep: runs all the Criterion benches with a reduced
# sample count and appends one JSON line per benchmark to a BENCH_*.json
# file, seeding the repo's perf trajectory.
#
# Usage:
#   scripts/bench-quick.sh                # 3 samples/bench -> BENCH_<date>.json
#   SAMPLES=5 scripts/bench-quick.sh out.json
#   SKIP_LONG=1 scripts/bench-quick.sh    # drop the slow end-to-end rows
#
# The vendored criterion stand-in (vendor/criterion) reads:
#   SIRUM_BENCH_SAMPLES     — timed samples per benchmark
#   SIRUM_BENCH_MIN_SAMPLES — sample floor the budget cutoff cannot cross
#   SIRUM_BENCH_JSON        — JSON-lines output path (appended)
#   SIRUM_BENCH_SKIP        — comma-separated substrings of benches to skip
#
# JSON lines whose benchmark was budget-truncated below its requested
# sample count carry "sub_floor": true — treat those medians as thin.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="BENCH_$(date +%Y%m%d_%H%M%S).json"
if [[ $# -ge 1 && $1 != -* ]]; then
    OUT="$1"
    shift
fi
# Bench binaries run with the package dir as cwd; keep the output here.
case "$OUT" in
/*) ;;
*) OUT="$(pwd)/$OUT" ;;
esac
SAMPLES="${SAMPLES:-3}"
# The floor defaults to the requested count, so quick runs never report a
# median over fewer samples than asked for; the vendored harness caps the
# floor at the request anyway.
MIN_SAMPLES="${MIN_SAMPLES:-$SAMPLES}"
# SKIP_LONG=1 drops the slow end-to-end rows (full baseline profiles and
# the staged-pipeline mine) for a faster smoke loop; SKIP overrides.
SKIP="${SKIP:-}"
if [[ -n "${SKIP_LONG:-}" && -z "$SKIP" ]]; then
    SKIP="baseline_profile,mine/staged-sequential"
fi
# The top of the row-count axis (2M/8M rows) materializes multi-hundred-MB
# tables; quick sweeps skip those sizes unless ROWSCALE_FULL=1. The bench
# checks the skip list before generating, so skipped sizes cost nothing.
if [[ -z "${ROWSCALE_FULL:-}" ]]; then
    for size in 2048000 8192000; do
        for side in raw compressed; do
            SKIP="${SKIP:+$SKIP,}rowscale/$side/$size"
        done
    done
fi

# Start fresh if the target file already exists (re-runs shouldn't mix).
# The file is touched up front so a filter matching no benchmark still
# leaves a (empty) results file rather than failing the final count.
rm -f "$OUT"
touch "$OUT"

echo "== bench-quick: $SAMPLES samples/bench (floor $MIN_SAMPLES) -> $OUT"
[[ -n "$SKIP" ]] && echo "== skipping benches matching: $SKIP"
SIRUM_BENCH_SAMPLES="$SAMPLES" SIRUM_BENCH_MIN_SAMPLES="$MIN_SAMPLES" \
    SIRUM_BENCH_SKIP="$SKIP" SIRUM_BENCH_JSON="$OUT" \
    cargo bench -p sirum_bench "$@"

echo "== wrote $(wc -l < "$OUT") benchmark results to $OUT"
SUB_FLOOR="$(grep -c '"sub_floor": true' "$OUT" || true)"
if [[ "$SUB_FLOOR" -gt 0 ]]; then
    echo "== WARNING: $SUB_FLOOR result(s) budget-truncated below $SAMPLES samples (marked \"sub_floor\")"
fi

# Paired comparisons: each snapshot carries, at a glance, the numbers
# needed to spot a regression of the zero-copy columnar path (ISSUE 5)
# and of the packed-code / combine-strategy sweep accumulators (ISSUE 6).
# Tolerates a missing benchmark (empty output): a filtered run — e.g.
# `bench-quick.sh out.json --bench rowscale` — leaves most pairs absent,
# and under `set -eo pipefail` a bare failing grep would kill the script.
median() {
    grep -F "\"bench\": \"$1\"" "$OUT" | head -1 |
        sed -n 's/.*"median_ns": \([0-9]*\).*/\1/p' || true
}
compare() {
    local label="$1" base_name="$2" base="$3" new_name="$4" new="$5"
    local base_ns new_ns
    base_ns="$(median "$base")"
    new_ns="$(median "$new")"
    if [[ -n "$base_ns" && -n "$new_ns" && "$new_ns" -gt 0 ]]; then
        awk -v l="$label" -v bn="$base_name" -v b="$base_ns" \
            -v nn="$new_name" -v n="$new_ns" 'BEGIN {
            printf "==   %-34s %-9s %8.2fms  %-9s %8.2fms  (%.2fx)\n",
                l, bn, b / 1e6, nn, n / 1e6, b / n
        }'
    fi
}
echo "== paired medians (from $OUT):"
compare "gain_sweep mine (1 worker)" \
    row-major "gain_sweep/mine/sweep-rowmajor" \
    columnar "gain_sweep/mine/sweep/1threads"
compare "gain_sweep single pass (1 worker)" \
    row-major "gain_sweep/sweep-pass-rowmajor" \
    columnar "gain_sweep/sweep-pass/1threads"
compare "prepared seed-fit 20k rows" \
    row-major "prepared_catalog/prepared-rowmajor/20000" \
    columnar "prepared_catalog/prepared/20000"
compare "prepared seed-fit 80k rows" \
    row-major "prepared_catalog/prepared-rowmajor/80000" \
    columnar "prepared_catalog/prepared/80000"
compare "sweep accumulator keying (1 worker)" \
    rule-key "gain_sweep/sweep-pass-rulekey/1threads" \
    packed "gain_sweep/sweep-pass/1threads"
compare "sweep combine strategy (1 worker)" \
    hash "gain_sweep/sweep-pass-hashprobe/1threads" \
    radix "gain_sweep/sweep-pass/1threads"
compare "serving cached-mine latency" \
    in-proc "serving/in-process/mine-cached" \
    wire "serving/wire/mine-cached"
for size in 20000 128000 512000 2048000 8192000; do
    compare "rowscale seed-fit scan ${size} rows" \
        raw "rowscale/raw/$size" \
        compressed "rowscale/compressed/$size"
done
