#!/usr/bin/env bash
# Quick benchmark sweep: runs all ten Criterion benches with a reduced
# sample count and appends one JSON line per benchmark to a BENCH_*.json
# file, seeding the repo's perf trajectory.
#
# Usage:
#   scripts/bench-quick.sh                # 3 samples/bench -> BENCH_<date>.json
#   SAMPLES=5 scripts/bench-quick.sh out.json
#
# The vendored criterion stand-in (vendor/criterion) reads:
#   SIRUM_BENCH_SAMPLES — timed samples per benchmark
#   SIRUM_BENCH_JSON    — JSON-lines output path (appended)
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="BENCH_$(date +%Y%m%d_%H%M%S).json"
if [[ $# -ge 1 && $1 != -* ]]; then
    OUT="$1"
    shift
fi
# Bench binaries run with the package dir as cwd; keep the output here.
case "$OUT" in
/*) ;;
*) OUT="$(pwd)/$OUT" ;;
esac
SAMPLES="${SAMPLES:-3}"

# Start fresh if the target file already exists (re-runs shouldn't mix).
# The file is touched up front so a filter matching no benchmark still
# leaves a (empty) results file rather than failing the final count.
rm -f "$OUT"
touch "$OUT"

echo "== bench-quick: $SAMPLES samples/bench -> $OUT"
SIRUM_BENCH_SAMPLES="$SAMPLES" SIRUM_BENCH_JSON="$OUT" \
    cargo bench -p sirum_bench "$@"

echo "== wrote $(wc -l < "$OUT") benchmark results to $OUT"
