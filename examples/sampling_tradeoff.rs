//! SIRUM on sample data (thesis §4.5, Figs 5.18/5.19): when the dataset
//! exceeds executor memory, mine on a row sample instead and measure the
//! time/quality trade-off — execution time from the sampled run,
//! information gain evaluated on the full data.
//!
//! Run with:
//! ```sh
//! cargo run --release --example sampling_tradeoff
//! ```

use sirum::api::{SirumError, SirumSession};
use std::time::Instant;

fn main() -> Result<(), SirumError> {
    // One session serves every rate: the engine and the registered table
    // are set up once and amortized across the repeated queries.
    let mut session = SirumSession::builder().partitions(16).build()?;
    session.register_demo_with("tlc", Some(120_000), 3)?;
    let table = session.table("tlc")?;
    println!(
        "Dataset: {} taxi trips ({} MB of column data)\n",
        table.num_rows(),
        table.data_bytes() / (1024 * 1024),
    );

    println!(
        "{:>9} | {:>9} | {:>11} | {:>16} | {:>11}",
        "rate", "rows", "time (s)", "info gain", "gain vs 100%"
    );
    let mut full_gain = None;
    for rate in [1.0, 0.5, 0.1, 0.01] {
        let start = Instant::now();
        let out = session
            .mine("tlc")
            .k(6)
            .sample_size(16)
            .run_on_sample(rate)?;
        let secs = start.elapsed().as_secs_f64();
        let gain = out.eval.information_gain;
        let full = *full_gain.get_or_insert(gain);
        println!(
            "{:>8.1}% | {:>9} | {:>11.2} | {:>16.6} | {:>10.1}%",
            rate * 100.0,
            out.rows_used,
            secs,
            gain,
            100.0 * gain / full,
        );
    }

    println!(
        "\nAs in the paper, aggressive sampling cuts runtime dramatically while\n\
         information gain (scored on the FULL dataset) degrades only slowly —\n\
         until the sample becomes too small to expose the informative rules."
    );
    Ok(())
}
