//! Data cleansing with informative rules (thesis §1, Tables 1.4/1.5):
//! the measure attribute flags records whose `Actor2 Type` field is
//! missing; SIRUM surfaces the dimension-value combinations most
//! correlated with the defect.
//!
//! Run with:
//! ```sh
//! cargo run --example data_cleansing
//! ```

use sirum::prelude::*;

fn main() {
    // GDELT-like event records with a planted data-quality defect:
    // media-reported US material-conflict events usually lack Actor2 Type.
    let events = generators::gdelt_dirty(30_000, 42);
    println!(
        "Dataset: {} events × {} dimension attributes; {:.1}% of records are dirty\n",
        events.num_rows(),
        events.num_dims(),
        events.avg_measure() * 100.0,
    );

    let engine = Engine::in_memory();
    let config = SirumConfig {
        k: 4,
        strategy: CandidateStrategy::SampleLca { sample_size: 64 },
        ..SirumConfig::default() // Optimized SIRUM
    };
    let result = Miner::new(engine, config).mine(&events);

    println!("Rules ranked by what they reveal about dirty records");
    println!("(AVG = fraction of covered records missing Actor2 Type, cf. Table 1.5):\n");
    for (i, rule) in result.rules.iter().enumerate() {
        let marker = if rule.avg_measure > 2.0 * events.avg_measure() {
            "  ← dirty cluster"
        } else {
            ""
        };
        println!(
            "{:>2}. {}  AVG={:.2} count={}{}",
            i + 1,
            rule.rule.display(&events),
            rule.avg_measure,
            rule.count,
            marker,
        );
    }

    // A data steward would now drill into the flagged subsets:
    let dirty: Vec<&MinedRule> = result
        .rules
        .iter()
        .skip(1)
        .filter(|r| r.avg_measure > 2.0 * events.avg_measure())
        .collect();
    println!(
        "\n{} rule(s) identify subsets with at least twice the overall defect rate.",
        dirty.len()
    );
    if let Some(worst) = dirty
        .iter()
        .max_by(|a, b| a.avg_measure.total_cmp(&b.avg_measure))
    {
        println!(
            "Worst offender: {} — {:.0}% of its {} records are missing Actor2 Type.",
            worst.rule.display(&events),
            worst.avg_measure * 100.0,
            worst.count,
        );
    }
}
