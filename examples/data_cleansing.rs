//! Data cleansing with informative rules (thesis §1, Tables 1.4/1.5):
//! the measure attribute flags records whose `Actor2 Type` field is
//! missing; SIRUM surfaces the dimension-value combinations most
//! correlated with the defect. The request uses the *two-sided* gain so
//! unusually clean regions surface too, and a progress observer reports
//! each mining iteration.
//!
//! Run with:
//! ```sh
//! cargo run --example data_cleansing
//! ```

use sirum::api::{SirumError, SirumSession};
use sirum::prelude::*;

fn main() -> Result<(), SirumError> {
    // GDELT-like event records with a planted data-quality defect:
    // media-reported US material-conflict events usually lack Actor2 Type.
    let mut session = SirumSession::in_memory()?;
    session.register_demo_with("dirty", Some(30_000), 42)?;
    let events = session.table("dirty")?;
    let base_rate = events.avg_measure();
    println!(
        "Dataset: {} events × {} dimension attributes; {:.1}% of records are dirty\n",
        events.num_rows(),
        events.num_dims(),
        base_rate * 100.0,
    );

    // Long mines are observable (and cancellable) through the iteration
    // hook; here it just narrates progress.
    let result = session
        .mine("dirty")
        .k(4)
        .sample_size(64)
        .two_sided()
        .on_iteration(|event| {
            eprintln!(
                "  [iteration {}] {} rules, KL {:.5}",
                event.iteration, event.rules_mined, event.kl
            );
            IterationDecision::Continue
        })
        .run()?;

    let events = session.table("dirty")?;
    println!("Rules ranked by what they reveal about dirty records");
    println!("(AVG = fraction of covered records missing Actor2 Type, cf. Table 1.5):\n");
    for (i, rule) in result.rules.iter().enumerate() {
        let marker = if rule.avg_measure > 2.0 * base_rate {
            "  ← dirty cluster"
        } else if i > 0 && rule.avg_measure < 0.5 * base_rate {
            "  ← unusually clean (two-sided gain)"
        } else {
            ""
        };
        println!(
            "{:>2}. {}  AVG={:.2} count={}{}",
            i + 1,
            rule.rule.display(events),
            rule.avg_measure,
            rule.count,
            marker,
        );
    }

    // A data steward would now drill into the flagged subsets:
    let dirty: Vec<&MinedRule> = result
        .rules
        .iter()
        .skip(1)
        .filter(|r| r.avg_measure > 2.0 * base_rate)
        .collect();
    println!(
        "\n{} rule(s) identify subsets with at least twice the overall defect rate.",
        dirty.len()
    );
    if let Some(worst) = dirty
        .iter()
        .max_by(|a, b| a.avg_measure.total_cmp(&b.avg_measure))
    {
        println!(
            "Worst offender: {} — {:.0}% of its {} records are missing Actor2 Type.",
            worst.rule.display(events),
            worst.avg_measure * 100.0,
            worst.count,
        );
    }
    Ok(())
}
