//! Quickstart: mine informative rules from the paper's 14-row flight-delay
//! table (Table 1.1) via the session API and print the rule set of
//! Table 1.2.
//!
//! Run with:
//! ```sh
//! cargo run --example quickstart
//! ```

use sirum::api::{SirumError, SirumSession};

fn main() -> Result<(), SirumError> {
    // A session owns the engine (Spark-like, in-memory) and a catalog of
    // named tables; both are reused across requests.
    let mut session = SirumSession::in_memory()?;
    session.register_demo("flights")?;

    let flights = session.table("flights")?;
    println!(
        "Dataset: {} rows × {} dimension attributes ({}), measure = {}\n",
        flights.num_rows(),
        flights.num_dims(),
        flights.schema().dim_names().join(", "),
        flights.schema().measure_name(),
    );

    // With |s| = 14 (the whole table) the sample-based candidate pruning is
    // exact. The request is validated before execution; any bad knob comes
    // back as a typed SirumError instead of a panic.
    let result = session.mine("flights").k(3).sample_size(14).run()?;

    // Print the informative rule set (cf. Table 1.2 of the thesis).
    let flights = session.table("flights")?;
    println!("Informative rule set:");
    println!(
        "{:>7} | {:^30} | {:>9} | {:>5} | {:>8}",
        "Rule ID", "Rule (Day, Origin, Destination)", "AVG(Late)", "count", "gain"
    );
    for (i, rule) in result.rules.iter().enumerate() {
        println!(
            "{:>7} | {:^30} | {:>9.1} | {:>5} | {:>8.3}",
            i + 1,
            rule.rule.display(flights),
            rule.avg_measure,
            rule.count,
            rule.gain,
        );
    }

    // How much of the delay distribution the rules explain.
    println!("\nKL divergence trace (per mining iteration): ");
    for (i, kl) in result.kl_trace.iter().enumerate() {
        println!("  after iteration {i}: {kl:.6}");
    }
    println!(
        "\nInformation gain vs. the all-wildcards model: {:.6}",
        result.information_gain()
    );
    println!(
        "Phase breakdown: rule generation {:.3}s (pruning {:.3}s, ancestors {:.3}s, gain {:.3}s), iterative scaling {:.3}s",
        result.timings.rule_generation(),
        result.timings.candidate_pruning,
        result.timings.ancestor_generation,
        result.timings.gain_computation,
        result.timings.iterative_scaling,
    );
    Ok(())
}
