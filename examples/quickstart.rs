//! Quickstart: mine informative rules from the paper's 14-row flight-delay
//! table (Table 1.1) and print the rule set of Table 1.2.
//!
//! Run with:
//! ```sh
//! cargo run --example quickstart
//! ```

use sirum::prelude::*;

fn main() {
    // The exact flight-delay table from the thesis (Table 1.1).
    let flights = generators::flights();
    println!(
        "Dataset: {} rows × {} dimension attributes ({}), measure = {}\n",
        flights.num_rows(),
        flights.num_dims(),
        flights.schema().dim_names().join(", "),
        flights.schema().measure_name(),
    );

    // A Spark-like in-memory engine. With |s| = 14 (the whole table) the
    // sample-based candidate pruning is exact.
    let engine = Engine::in_memory();
    let config = SirumConfig {
        k: 3,
        strategy: CandidateStrategy::SampleLca { sample_size: 14 },
        ..SirumConfig::default()
    };
    let result = Miner::new(engine, config).mine(&flights);

    // Print the informative rule set (cf. Table 1.2 of the thesis).
    println!("Informative rule set:");
    println!(
        "{:>7} | {:^30} | {:>9} | {:>5} | {:>8}",
        "Rule ID", "Rule (Day, Origin, Destination)", "AVG(Late)", "count", "gain"
    );
    for (i, rule) in result.rules.iter().enumerate() {
        println!(
            "{:>7} | {:^30} | {:>9.1} | {:>5} | {:>8.3}",
            i + 1,
            rule.rule.display(&flights),
            rule.avg_measure,
            rule.count,
            rule.gain,
        );
    }

    // How much of the delay distribution the rules explain.
    println!("\nKL divergence trace (per mining iteration): ");
    for (i, kl) in result.kl_trace.iter().enumerate() {
        println!("  after iteration {i}: {kl:.6}");
    }
    println!(
        "\nInformation gain vs. the all-wildcards model: {:.6}",
        result.information_gain()
    );
    println!(
        "Phase breakdown: rule generation {:.3}s (pruning {:.3}s, ancestors {:.3}s, gain {:.3}s), iterative scaling {:.3}s",
        result.timings.rule_generation(),
        result.timings.candidate_pruning,
        result.timings.ancestor_generation,
        result.timings.gain_computation,
        result.timings.iterative_scaling,
    );
}
