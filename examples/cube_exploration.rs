//! Smart data-cube exploration (thesis §1 Table 1.3, §5.6.2): the analyst
//! has already examined the two cheapest group-by views; SIRUM recommends
//! the cube cells that add the most information beyond what she has seen.
//!
//! Run with:
//! ```sh
//! cargo run --example cube_exploration
//! ```
//!
//! `SIRUM_EXAMPLE_ROWS` overrides the dataset size (the smoke-test harness
//! in `tests/examples.rs` sets it low so debug builds finish quickly).

use sirum::core::explore::explore;
use sirum::prelude::*;

fn main() {
    let rows = std::env::var("SIRUM_EXAMPLE_ROWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20_000);
    let trips = generators::tlc_like(rows, 7);
    println!(
        "Dataset: {} taxi trips × {} dimension attributes, measure = {}\n",
        trips.num_rows(),
        trips.num_dims(),
        trips.schema().measure_name(),
    );

    let engine = Engine::in_memory();
    let config = SirumConfig {
        k: 4,
        ..SirumConfig::default()
    };
    let out = explore(&engine, &trips, config);

    println!(
        "Prior knowledge: the analyst has examined {} group-by cells over the\n\
         two lowest-cardinality attributes:",
        out.prior.len()
    );
    for (rule, mined) in out.prior.iter().zip(&out.result.rules[1..=out.prior.len()]) {
        println!(
            "   {}  AVG({})={:.2} count={}",
            rule.display(&trips),
            trips.schema().measure_name(),
            mined.avg_measure,
            mined.count,
        );
    }

    println!("\nSIRUM's recommended cells to explore next (cf. Table 1.3):");
    for (i, rec) in out.result.rules[1 + out.prior.len()..].iter().enumerate() {
        println!(
            "{:>2}. {}  AVG={:.2} count={} gain={:.3}",
            i + 1,
            rec.rule.display(&trips),
            rec.avg_measure,
            rec.count,
            rec.gain,
        );
    }
    println!(
        "\nKL divergence: {:.6} (prior knowledge only) → {:.6} (with recommendations)",
        out.result.kl_trace.first().unwrap(),
        out.result.final_kl(),
    );
}
