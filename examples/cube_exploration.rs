//! Smart data-cube exploration (thesis §1 Table 1.3, §5.6.2): the analyst
//! has already examined the two cheapest group-by views; SIRUM recommends
//! the cube cells that add the most information beyond what she has seen.
//!
//! Run with:
//! ```sh
//! cargo run --example cube_exploration
//! ```
//!
//! `SIRUM_EXAMPLE_ROWS` overrides the dataset size (the smoke-test harness
//! in `tests/examples.rs` sets it low so debug builds finish quickly).

use sirum::api::{SirumError, SirumSession};
use sirum::core::explore::prior_rules_from_groupbys;

fn main() -> Result<(), SirumError> {
    let rows = std::env::var("SIRUM_EXAMPLE_ROWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20_000);
    let mut session = SirumSession::in_memory()?;
    session.register_demo_with("tlc", Some(rows), 7)?;
    let trips = session.table("tlc")?;
    println!(
        "Dataset: {} taxi trips × {} dimension attributes, measure = {}\n",
        trips.num_rows(),
        trips.num_dims(),
        trips.schema().measure_name(),
    );

    // The prior knowledge of §5.6.2: every examined group-by cell becomes a
    // rule already in the model; recommendations are mined on top, with
    // exhaustive (full-cube) candidate generation as in Sarawagi [29].
    let prior = prior_rules_from_groupbys(trips, 2);
    let result = session
        .mine("tlc")
        .k(4)
        .full_cube()
        .prior(prior.clone())
        .run()?;

    let trips = session.table("tlc")?;
    println!(
        "Prior knowledge: the analyst has examined {} group-by cells over the\n\
         two lowest-cardinality attributes:",
        prior.len()
    );
    for (rule, mined) in prior.iter().zip(&result.rules[1..=prior.len()]) {
        println!(
            "   {}  AVG({})={:.2} count={}",
            rule.display(trips),
            trips.schema().measure_name(),
            mined.avg_measure,
            mined.count,
        );
    }

    println!("\nSIRUM's recommended cells to explore next (cf. Table 1.3):");
    for (i, rec) in result.rules[1 + prior.len()..].iter().enumerate() {
        println!(
            "{:>2}. {}  AVG={:.2} count={} gain={:.3}",
            i + 1,
            rec.rule.display(trips),
            rec.avg_measure,
            rec.count,
            rec.gain,
        );
    }
    println!(
        "\nKL divergence: {:.6} (prior knowledge only) → {:.6} (with recommendations)",
        result.kl_trace.first().copied().unwrap_or(f64::NAN),
        result.final_kl(),
    );
    Ok(())
}
