//! Concurrent serving walkthrough: one shared `SirumService` under many
//! request threads — job submission, result caching, request coalescing,
//! cooperative cancellation, `explain()` plans and a §7-style incremental
//! stream.
//!
//! Run with:
//! ```sh
//! cargo run --example concurrent_service
//! ```

use sirum::api::SirumError;
use sirum::prelude::*;

fn main() -> Result<(), SirumError> {
    let rows: usize = std::env::var("SIRUM_EXAMPLE_ROWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4_000);

    // One service for the whole process: Send + Sync, Clone is an Arc bump.
    let service = SirumService::builder()
        .pool_workers(4)
        .cache_capacity(32)
        .build()?;
    service.register_demo_with("gdelt", Some(rows), 42)?;
    let table = service.table("gdelt")?;
    println!(
        "Registered gdelt: {} rows × {} dims (fingerprint {:016x})",
        table.num_rows(),
        table.num_dims(),
        table.fingerprint()
    );

    // Ask for the plan before spending anything.
    let plan = service.mine("gdelt").k(4).explain()?;
    println!("\n{plan}\n");

    // 8 request threads × 2 requests each against the shared service; the
    // distinct configurations execute once and repeats are served from the
    // cache (or coalesced onto an in-flight run).
    std::thread::scope(|scope| {
        for t in 0..8u64 {
            let service = service.clone();
            scope.spawn(move || {
                for r in 0..2u64 {
                    let seed = 40 + (t + r) % 4; // 4 distinct request shapes
                    let handle = service
                        .mine("gdelt")
                        .k(4)
                        .seed(seed)
                        .submit()
                        .map_err(|e| e.to_string())
                        .unwrap();
                    let output = handle.wait().map_err(|e| e.to_string()).unwrap();
                    println!(
                        "thread {t}: seed {seed} → {} rules, KL {:.4}{}",
                        output.result.rules.len(),
                        output.result.final_kl(),
                        if output.from_cache { " (cached)" } else { "" }
                    );
                }
            });
        }
    });
    let stats = service.stats();
    println!(
        "\n16 requests: {} executed, {} coalesced, {} cache hits ({} cached entries)",
        stats.jobs_executed, stats.jobs_coalesced, stats.cache_hits, stats.cache_entries
    );

    // Cooperative cancellation: start a long job and cancel it mid-mine.
    let handle = service.mine("gdelt").k(12).seed(1234).submit()?;
    handle.cancel();
    let partial = handle.wait()?;
    println!(
        "\ncancelled job: cancelled={}, {} rules mined before the stop",
        partial.result.cancelled,
        partial.result.rules.len() - 1
    );

    // Incremental maintenance: stream new batches into the model.
    let mut stream = service.stream("gdelt")?;
    let kl_before = stream.kl();
    let batch: Vec<(Vec<u32>, f64)> = (0..200)
        .map(|i| (table.row(i % table.num_rows()).to_vec(), 9.0))
        .collect();
    let coded: Vec<(&[u32], f64)> = batch.iter().map(|(r, m)| (r.as_slice(), *m)).collect();
    stream.ingest(&coded)?;
    let added = stream.mine_more(2)?;
    println!(
        "\nstream: {} rows after ingest, KL {:.4} → {:.4}, {} rule(s) mined incrementally",
        stream.len(),
        kl_before,
        stream.kl(),
        added.len()
    );
    Ok(())
}
