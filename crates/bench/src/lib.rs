//! # sirum-bench
//!
//! Shared workloads and reporting helpers for the SIRUM benchmark harness.
//! The `figures` binary regenerates every figure of the thesis evaluation;
//! the Criterion benches cover the per-optimization micro-comparisons.
//!
//! Dataset sizes are scaled from the paper's cluster-scale inputs to
//! laptop-scale (see DESIGN.md, substitution 3); the shapes — who wins and
//! by roughly what factor — are what the harness reproduces.

#![warn(missing_docs)]
#![allow(clippy::must_use_candidate)]

use std::io::Write;
use std::path::PathBuf;
use std::time::Instant;

pub use sirum_baselines as baselines;
pub use sirum_core as core;
pub use sirum_dataflow as dataflow;
pub use sirum_table as table;

/// Standard workloads (scaled-down versions of the paper's datasets).
pub mod workloads {
    use sirum_table::{generators, Table};

    /// Fixed seed for all workloads (runs are deterministic).
    pub const SEED: u64 = 2016;

    /// Income: 20k × 9 dims, binary measure (paper: 1.5M).
    pub fn income() -> Table {
        generators::income_like(20_000, SEED)
    }

    /// GDELT: 20k × 9 dims, numeric measure (paper: 3.8M).
    pub fn gdelt() -> Table {
        generators::gdelt_like(20_000, SEED)
    }

    /// SUSY: 300 × 18 dims, binary measure (paper: 5M). Scaled far below the
    /// other workloads because 18 dimensions make ancestor generation
    /// explode combinatorially — exactly the effect Figs 3.2/5.6/5.7
    /// measure — and this harness runs on a single core.
    pub fn susy() -> Table {
        generators::susy_like(300, SEED)
    }

    /// TLC sample of `n` rows, numeric measure (paper: TLC_2m…TLC_160m).
    pub fn tlc(n: usize) -> Table {
        generators::tlc_like(n, SEED)
    }

    /// Small Income variant for Criterion micro-benches.
    pub fn income_small() -> Table {
        generators::income_like(4_000, SEED)
    }

    /// Income variant with an explicit row count (service-layer benches
    /// sweep input sizes).
    pub fn income_sized(n: usize) -> Table {
        generators::income_like(n, SEED)
    }

    /// Small GDELT variant for Criterion micro-benches.
    pub fn gdelt_small() -> Table {
        generators::gdelt_like(4_000, SEED)
    }

    /// Small SUSY variant for Criterion micro-benches.
    pub fn susy_small() -> Table {
        generators::susy_like(400, SEED)
    }
}

/// Where figure TSVs are written.
pub fn figures_dir() -> PathBuf {
    let dir = PathBuf::from("target/figures");
    std::fs::create_dir_all(&dir).expect("create target/figures");
    dir
}

/// A printed + persisted result table for one figure.
pub struct FigureReport {
    name: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl FigureReport {
    /// Start a report for figure `name` with the given column header.
    pub fn new(name: &str, header: &[&str]) -> Self {
        FigureReport {
            name: name.to_string(),
            header: header.iter().map(|s| (*s).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Print the table to stdout and write `target/figures/<name>.tsv`.
    pub fn finish(&self) {
        let widths: Vec<usize> = self
            .header
            .iter()
            .enumerate()
            .map(|(i, h)| {
                self.rows
                    .iter()
                    .map(|r| r[i].len())
                    .chain(std::iter::once(h.len()))
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        out.push_str(&format!("\n== {} ==\n", self.name));
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r));
            out.push('\n');
        }
        print!("{out}");
        std::io::stdout().flush().ok();

        let path = figures_dir().join(format!("{}.tsv", self.name));
        let mut tsv = String::new();
        tsv.push_str(&self.header.join("\t"));
        tsv.push('\n');
        for r in &self.rows {
            tsv.push_str(&r.join("\t"));
            tsv.push('\n');
        }
        std::fs::write(&path, tsv).expect("write figure TSV");
    }
}

/// Time a closure, returning its value and elapsed seconds.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let v = f();
    (v, start.elapsed().as_secs_f64())
}

/// Format seconds with 2 decimals.
pub fn secs(s: f64) -> String {
    format!("{s:.2}")
}

/// Format a ratio as `N.Nx`.
pub fn speedup(base: f64, fast: f64) -> String {
    if fast <= 0.0 {
        return "-".into();
    }
    format!("{:.1}x", base / fast)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_round_trips_to_tsv() {
        let mut r = FigureReport::new("test_report", &["a", "b"]);
        r.row(vec!["1".into(), "2".into()]);
        r.finish();
        let tsv = std::fs::read_to_string(figures_dir().join("test_report.tsv")).unwrap();
        assert_eq!(tsv, "a\tb\n1\t2\n");
    }

    #[test]
    fn helpers_format() {
        assert_eq!(secs(1.234), "1.23");
        assert_eq!(speedup(10.0, 2.0), "5.0x");
        assert_eq!(speedup(10.0, 0.0), "-");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn report_checks_arity() {
        let mut r = FigureReport::new("x", &["a", "b"]);
        r.row(vec!["1".into()]);
    }
}
