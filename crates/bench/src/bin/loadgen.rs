//! `loadgen` — load-generator harness for the SIRUM wire front end.
//!
//! By default it self-hosts a server on an ephemeral port (so the harness
//! is one command, no daemon management), drives it with a configurable
//! client fleet, and appends JSON-lines results to a `BENCH_*.json`
//! snapshot. Point it at an already-running `sirum serve` with `--addr`.
//!
//! The run has three phases:
//!
//! 1. **Throughput** — closed-loop (or `--rate`-paced open-loop) clients
//!    issuing a read/mine/stream mix. Mine requests are hot-key skewed
//!    (`--hot-pct`): hot requests repeat one identical body, exercising
//!    the service's result cache and request coalescing.
//! 2. **Coalesce probe** — barrier-synchronized identical never-cached
//!    requests from every client at once; all but one leader should
//!    coalesce onto the in-flight run.
//! 3. **Overload** — `wait_ms: 0` submits with distinct seeds until the
//!    bounded queue sheds load with `429 Retry-After`, then a `/health`
//!    check proves the server stayed live.
//!
//! `--check` turns the phase expectations (no 5xx, coalescing observed,
//! 429s observed, health ok) into a nonzero exit status for CI.

use sirum::net::metrics::Histogram;
use sirum::prelude::*;
use std::fmt::Write as _;
use std::net::SocketAddr;
use std::process::exit;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

struct Opts {
    addr: Option<String>,
    clients: usize,
    duration: Duration,
    rate: Option<f64>,
    hot_pct: u64,
    read_pct: u64,
    stream_pct: u64,
    jobs: usize,
    queue: usize,
    rows: usize,
    out: Option<String>,
    check: bool,
}

const USAGE: &str = "\
loadgen — load generator for the sirum wire front end

USAGE:
  loadgen [OPTIONS]                 self-host a server and drive it
  loadgen --addr 127.0.0.1:7878     drive an external `sirum serve`

OPTIONS:
  --addr <A>           target server (default: self-host on an ephemeral port)
  --clients <N>        concurrent client connections        [default: 8]
  --duration-secs <S>  throughput-phase length              [default: 5]
  --rate <R>           open-loop: pace the fleet at R req/s total
                       (default: closed loop, fire as fast as replies come)
  --hot-pct <P>        % of mine requests using the one hot body
                       (cache/coalescing skew)              [default: 80]
  --read-pct <P>       % of requests that are cheap reads   [default: 50]
  --stream-pct <P>     % of requests that stream rows in    [default: 10]
  --jobs <N>           self-host worker threads             [default: 2]
  --queue <N>          self-host queue capacity             [default: 4]
  --rows <N>           self-host income table rows          [default: 4000]
  --out <FILE>         append JSON-lines results here
                       (default: BENCH_loadgen.json when self-hosting)
  --check              exit 1 unless: zero 5xx, coalescing observed,
                       overload produced 429s, health stayed ok
  --help               this help
";

fn usage_error(msg: &str) -> ! {
    eprintln!("error: {msg}\n\n{USAGE}");
    exit(2);
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        addr: None,
        clients: 8,
        duration: Duration::from_secs(5),
        rate: None,
        hot_pct: 80,
        read_pct: 50,
        stream_pct: 10,
        jobs: 2,
        queue: 4,
        rows: 4000,
        out: None,
        check: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> String {
            it.next()
                .unwrap_or_else(|| usage_error(&format!("missing value for {name}")))
        };
        macro_rules! parse {
            ($name:expr) => {{
                let raw = value($name);
                raw.parse()
                    .unwrap_or_else(|_| usage_error(&format!("bad value for {}: {raw:?}", $name)))
            }};
        }
        match arg.as_str() {
            "--help" | "-h" => {
                print!("{USAGE}");
                exit(0);
            }
            "--addr" => opts.addr = Some(value("--addr")),
            "--clients" => opts.clients = parse!("--clients"),
            "--duration-secs" => opts.duration = Duration::from_secs(parse!("--duration-secs")),
            "--rate" => opts.rate = Some(parse!("--rate")),
            "--hot-pct" => opts.hot_pct = parse!("--hot-pct"),
            "--read-pct" => opts.read_pct = parse!("--read-pct"),
            "--stream-pct" => opts.stream_pct = parse!("--stream-pct"),
            "--jobs" => opts.jobs = parse!("--jobs"),
            "--queue" => opts.queue = parse!("--queue"),
            "--rows" => opts.rows = parse!("--rows"),
            "--out" => opts.out = Some(value("--out")),
            "--check" => opts.check = true,
            other => usage_error(&format!("unexpected argument {other:?}")),
        }
    }
    if opts.clients == 0 {
        usage_error("--clients must be ≥ 1");
    }
    if opts.read_pct + opts.stream_pct > 100 {
        usage_error("--read-pct + --stream-pct must be ≤ 100");
    }
    if opts.hot_pct > 100 {
        usage_error("--hot-pct must be ≤ 100");
    }
    opts
}

/// Tiny xorshift so the mix and seeds are deterministic per client.
struct Prng(u64);

impl Prng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

/// One request class's client-side view: latency histogram + status tally.
#[derive(Default)]
struct ClassStats {
    latency: Histogram,
    ok: AtomicU64,
    client_error: AtomicU64,
    rejected: AtomicU64,
    server_error: AtomicU64,
    transport_error: AtomicU64,
}

impl ClassStats {
    fn record(&self, status: u16, elapsed: Duration) {
        self.latency.record(elapsed);
        let slot = match status {
            429 => &self.rejected,
            200..=299 => &self.ok,
            400..=499 => &self.client_error,
            _ => &self.server_error,
        };
        slot.fetch_add(1, Ordering::Relaxed);
    }

    fn row(&self, name: &str) -> String {
        let s = self.latency.snapshot();
        format!(
            "{{\"bench\": \"{name}\", \"count\": {}, \"p50_ns\": {}, \"p95_ns\": {}, \
             \"p99_ns\": {}, \"max_ns\": {}, \"ok\": {}, \"client_error\": {}, \
             \"rejected\": {}, \"server_error\": {}, \"transport_error\": {}}}",
            s.count,
            s.p50_nanos,
            s.p95_nanos,
            s.p99_nanos,
            s.max_nanos,
            self.ok.load(Ordering::Relaxed),
            self.client_error.load(Ordering::Relaxed),
            self.rejected.load(Ordering::Relaxed),
            self.server_error.load(Ordering::Relaxed),
            self.transport_error.load(Ordering::Relaxed),
        )
    }

    fn total(&self) -> u64 {
        self.latency.snapshot().count
    }

    fn server_errors(&self) -> u64 {
        self.server_error.load(Ordering::Relaxed)
    }
}

struct Fleet {
    read: ClassStats,
    mine_hot: ClassStats,
    mine_cold: ClassStats,
    stream: ClassStats,
}

fn hot_body() -> String {
    // One fixed body: every hot request is the same cache key.
    "{\"table\":\"income\",\"k\":3,\"sample_size\":64,\"seed\":1}".to_string()
}

fn cold_body(seed: u64) -> String {
    format!("{{\"table\":\"income\",\"k\":2,\"sample_size\":48,\"seed\":{seed}}}")
}

/// Phase 1: the mixed open/closed-loop fleet.
fn throughput_phase(addr: SocketAddr, opts: &Opts, fleet: &Arc<Fleet>) -> Duration {
    let started = Instant::now();
    let interval = opts
        .rate
        .map(|r| Duration::from_secs_f64(opts.clients as f64 / r.max(0.001)));
    std::thread::scope(|scope| {
        for client_id in 0..opts.clients {
            let fleet = Arc::clone(fleet);
            let deadline = started + opts.duration;
            let (read_pct, stream_pct, hot_pct) = (opts.read_pct, opts.stream_pct, opts.hot_pct);
            scope.spawn(move || {
                let mut http = HttpClient::new(addr).timeout(Duration::from_secs(30));
                let mut rng = Prng(0x9e37_79b9 ^ (client_id as u64 + 1));
                let mut next_fire = Instant::now();
                while Instant::now() < deadline {
                    if let Some(interval) = interval {
                        // Open loop: fire on the schedule even if the last
                        // reply was slow (sleep only when ahead).
                        let now = Instant::now();
                        if next_fire > now {
                            std::thread::sleep(next_fire - now);
                        }
                        next_fire += interval;
                    }
                    let draw = rng.next() % 100;
                    let t0 = Instant::now();
                    if draw < read_pct {
                        let (class, path) = match rng.next() % 3 {
                            0 => (&fleet.read, "/tables"),
                            1 => (&fleet.read, "/stats"),
                            _ => (&fleet.read, "/metrics"),
                        };
                        match http.get(path) {
                            Ok(r) => class.record(r.status, t0.elapsed()),
                            Err(_) => {
                                class.transport_error.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    } else if draw < read_pct + stream_pct {
                        // Stream one row into the tiny demo table.
                        let body = format!(
                            "{{\"rows\":[{{\"codes\":[{},{},{}],\"measure\":{}}}]}}",
                            rng.next() % 3,
                            rng.next() % 3,
                            rng.next() % 3,
                            (rng.next() % 50) as f64 / 10.0,
                        );
                        match http.post_json("/stream/flights", &body) {
                            Ok(r) => fleet.stream.record(r.status, t0.elapsed()),
                            Err(_) => {
                                fleet.stream.transport_error.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    } else if rng.next() % 100 < hot_pct {
                        match http.post_json("/mine", &hot_body()) {
                            Ok(r) => fleet.mine_hot.record(r.status, t0.elapsed()),
                            Err(_) => {
                                fleet
                                    .mine_hot
                                    .transport_error
                                    .fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    } else {
                        let body = cold_body(1000 + rng.next() % 64);
                        match http.post_json("/mine", &body) {
                            Ok(r) => fleet.mine_cold.record(r.status, t0.elapsed()),
                            Err(_) => {
                                fleet
                                    .mine_cold
                                    .transport_error
                                    .fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                }
            });
        }
    });
    started.elapsed()
}

/// Phase 2: barrier-synchronized identical requests on a fresh cache key —
/// one leader executes, the rest coalesce onto its in-flight run.
fn coalesce_phase(addr: SocketAddr, clients: usize, rounds: u64) -> u64 {
    for round in 0..rounds {
        let barrier = Arc::new(Barrier::new(clients));
        std::thread::scope(|scope| {
            for _ in 0..clients {
                let barrier = Arc::clone(&barrier);
                scope.spawn(move || {
                    let mut http = HttpClient::new(addr).timeout(Duration::from_secs(30));
                    // Connect before the barrier so the posts land together.
                    let _ = http.get("/health");
                    // A seed no other phase uses: never cached before this
                    // round, identical across the fleet within it.
                    let body = format!(
                        "{{\"table\":\"income\",\"k\":4,\"sample_size\":96,\"seed\":{}}}",
                        7_000_000 + round,
                    );
                    barrier.wait();
                    let _ = http.post_json("/mine", &body);
                });
            }
        });
    }
    rounds
}

/// Phase 3: saturate the bounded queue with instant submits until it sheds.
fn overload_phase(addr: SocketAddr, clients: usize) -> (u64, u64, bool) {
    let rejected = AtomicU64::new(0);
    let accepted = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for client_id in 0..clients {
            let (rejected, accepted) = (&rejected, &accepted);
            scope.spawn(move || {
                let mut http = HttpClient::new(addr).timeout(Duration::from_secs(30));
                for i in 0..40_u64 {
                    let seed = 9_000_000 + client_id as u64 * 1_000 + i;
                    let body = format!(
                        "{{\"table\":\"income\",\"k\":5,\"sample_size\":128,\
                         \"seed\":{seed},\"wait_ms\":0}}"
                    );
                    match http.post_json("/mine", &body) {
                        Ok(r) if r.status == 429 => {
                            rejected.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok(r) if r.status == 202 => {
                            accepted.fetch_add(1, Ordering::Relaxed);
                        }
                        _ => {}
                    }
                    if rejected.load(Ordering::Relaxed) >= 5 {
                        break;
                    }
                }
            });
        }
    });
    let mut http = HttpClient::new(addr).timeout(Duration::from_secs(30));
    let healthy = http
        .get("/health")
        .map(|r| r.status == 200)
        .unwrap_or(false);
    (
        rejected.load(Ordering::Relaxed),
        accepted.load(Ordering::Relaxed),
        healthy,
    )
}

fn stat(stats: &sirum::json::JsonValue, key: &str) -> u64 {
    stats.get(key).and_then(|v| v.as_u64()).unwrap_or(0)
}

fn main() {
    let opts = parse_opts();

    // Self-host unless --addr was given.
    let server = if opts.addr.is_none() {
        let service = SirumService::builder()
            .pool_workers(opts.jobs)
            .queue_capacity(opts.queue)
            .build()
            .unwrap_or_else(|e| {
                eprintln!("error: cannot build service: {e}");
                exit(1);
            });
        let register = service
            .register_demo("flights")
            .and_then(|_| service.register_demo_with("income", Some(opts.rows), 42));
        if let Err(e) = register {
            eprintln!("error: cannot register tables: {e}");
            exit(1);
        }
        let router = Router::new(
            service,
            Arc::new(NetMetrics::new()),
            RouterConfig::default(),
        );
        match Server::bind("127.0.0.1:0", router, ServerConfig::default()) {
            Ok(server) => Some(server),
            Err(e) => {
                eprintln!("error: cannot bind: {e}");
                exit(1);
            }
        }
    } else {
        None
    };
    let addr: SocketAddr = match (&server, &opts.addr) {
        (Some(server), _) => server.local_addr(),
        (None, Some(addr)) => addr
            .parse()
            .unwrap_or_else(|_| usage_error(&format!("--addr {addr:?} is not a socket address"))),
        (None, None) => unreachable!("self-host covers the no-addr case"),
    };
    let mode = match opts.rate {
        Some(rate) => format!("open-loop @ {rate} req/s"),
        None => "closed-loop".to_string(),
    };
    eprintln!(
        "loadgen: {} clients, {mode}, {}s against http://{addr} ({})",
        opts.clients,
        opts.duration.as_secs(),
        if server.is_some() {
            "self-hosted"
        } else {
            "external"
        },
    );

    // Phase 1: throughput.
    let fleet = Arc::new(Fleet {
        read: ClassStats::default(),
        mine_hot: ClassStats::default(),
        mine_cold: ClassStats::default(),
        stream: ClassStats::default(),
    });
    let elapsed = throughput_phase(addr, &opts, &fleet);

    // Phase 2: coalesce probe.
    let mut http = HttpClient::new(addr).timeout(Duration::from_secs(30));
    let before = http.get("/stats").and_then(|r| r.json()).ok();
    let rounds = coalesce_phase(addr, opts.clients.max(2), 5);

    // Phase 3: overload.
    let (rejected_429, overload_accepted, healthy) = overload_phase(addr, opts.clients.max(4));

    let after = http.get("/stats").and_then(|r| r.json()).ok();
    let (coalesced, cache_hits, jobs_rejected) = match (&before, &after) {
        (Some(_), Some(after)) => (
            stat(after, "jobs_coalesced"),
            stat(after, "cache_hits"),
            stat(after, "jobs_rejected"),
        ),
        _ => (0, 0, 0),
    };

    // Report.
    let requests = fleet.read.total()
        + fleet.mine_hot.total()
        + fleet.mine_cold.total()
        + fleet.stream.total();
    let server_errors = fleet.read.server_errors()
        + fleet.mine_hot.server_errors()
        + fleet.mine_cold.server_errors()
        + fleet.stream.server_errors();
    let throughput = requests as f64 / elapsed.as_secs_f64().max(1e-9);
    let mut out = String::new();
    let prefix = if opts.rate.is_some() {
        "open"
    } else {
        "closed"
    };
    for (name, class) in [
        ("read", &fleet.read),
        ("mine-hot", &fleet.mine_hot),
        ("mine-cold", &fleet.mine_cold),
        ("stream", &fleet.stream),
    ] {
        let _ = writeln!(out, "{}", class.row(&format!("serving/{prefix}/{name}")));
    }
    let _ = writeln!(
        out,
        "{{\"bench\": \"serving/summary\", \"clients\": {}, \"duration_secs\": {:.3}, \
         \"requests\": {requests}, \"throughput_rps\": {throughput:.1}, \
         \"server_errors\": {server_errors}, \"coalesce_rounds\": {rounds}, \
         \"jobs_coalesced\": {coalesced}, \"cache_hits\": {cache_hits}, \
         \"jobs_rejected\": {jobs_rejected}, \"overload_429\": {rejected_429}, \
         \"overload_202\": {overload_accepted}, \"healthy_after_overload\": {healthy}}}",
        opts.clients,
        elapsed.as_secs_f64(),
    );
    print!("{out}");
    let out_path = opts
        .out
        .clone()
        .or_else(|| server.as_ref().map(|_| "BENCH_loadgen.json".to_string()));
    if let Some(path) = out_path {
        use std::io::Write as _;
        let appended = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .and_then(|mut f| f.write_all(out.as_bytes()));
        match appended {
            Ok(()) => eprintln!("loadgen: appended {} rows to {path}", out.lines().count()),
            Err(e) => eprintln!("loadgen: cannot write {path}: {e}"),
        }
    }

    // Drain before verdicts so a failed check still exits cleanly.
    if let Some(server) = server {
        server.shutdown();
    }
    if opts.check {
        let mut failures = Vec::new();
        if server_errors > 0 {
            failures.push(format!("{server_errors} responses were 5xx"));
        }
        if coalesced == 0 {
            failures.push("no requests coalesced onto in-flight runs".to_string());
        }
        if cache_hits == 0 {
            failures.push("no requests were served from the result cache".to_string());
        }
        if rejected_429 == 0 {
            failures.push("overload never produced a 429".to_string());
        }
        if !healthy {
            failures.push("server unhealthy after overload".to_string());
        }
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("loadgen check FAILED: {f}");
            }
            exit(1);
        }
        eprintln!(
            "loadgen check OK: 0 5xx, {coalesced} coalesced, {cache_hits} cache hits, \
             {rejected_429} shed with 429, healthy after overload"
        );
    }
}
