//! Regenerate every figure of the thesis evaluation (Chapters 3–5).
//!
//! ```sh
//! cargo run -p sirum-bench --release --bin figures            # everything
//! cargo run -p sirum-bench --release --bin figures -- f5_3 f5_5
//! ```
//!
//! Each experiment prints the series the corresponding figure plots and
//! writes a TSV under `target/figures/`. Paper-vs-measured commentary lives
//! in EXPERIMENTS.md.

use sirum_bench::baselines::{sarawagi_explore, SarawagiConfig};
use sirum_bench::core::explore::explore;
use sirum_bench::core::{
    mine_on_sample, CandidateStrategy, Miner, MiningResult, MultiRuleConfig, SirumConfig, Variant,
};
use sirum_bench::dataflow::cost::{makespan, ClusterSpec};
use sirum_bench::dataflow::{Engine, EngineConfig, StageRecord};
use sirum_bench::table::Table;
use sirum_bench::{secs, speedup, timed, workloads, FigureReport};

const PARTITIONS: usize = 32;

fn engine() -> Engine {
    Engine::new(EngineConfig::in_memory().with_partitions(PARTITIONS))
}

fn run(table: &Table, config: SirumConfig) -> MiningResult {
    Miner::new(engine(), config).try_mine(table).expect("mine")
}

fn run_on(e: Engine, table: &Table, config: SirumConfig) -> MiningResult {
    Miner::new(e, config).try_mine(table).expect("mine")
}

/// Fig 3.1: Baseline SIRUM runtimes, rule generation vs iterative scaling,
/// per dataset (k = 10, |s| = 64).
fn f3_1() {
    let mut rep = FigureReport::new(
        "f3_1_baseline_runtimes",
        &["dataset", "rule_gen_s", "iter_scaling_s", "total_s"],
    );
    let datasets: Vec<(&str, Table, usize)> = vec![
        ("Income", workloads::income(), 64),
        ("GDELT", workloads::gdelt(), 64),
        ("SUSY", workloads::susy(), 16),
        ("TLC", workloads::tlc(60_000), 64),
    ];
    for (name, t, s) in datasets {
        let r = run(&t, Variant::Baseline.config(5, s));
        rep.row(vec![
            name.into(),
            secs(r.timings.rule_generation()),
            secs(r.timings.iterative_scaling),
            secs(r.timings.total),
        ]);
    }
    rep.finish();
}

/// Fig 3.2: rule-generation runtime by step as dimensions grow
/// (k = 10, |s| = 64; SUSY projected onto 10/14/18 dims).
fn f3_2() {
    let mut rep = FigureReport::new(
        "f3_2_rulegen_steps",
        &[
            "dataset",
            "dims",
            "pruning_s",
            "ancestor_s",
            "gain_s",
            "pruning_%",
            "ancestor_%",
            "gain_%",
        ],
    );
    let susy = workloads::susy();
    let datasets: Vec<(String, Table, usize)> = vec![
        ("Income".into(), workloads::income(), 64),
        ("GDELT".into(), workloads::gdelt(), 64),
        ("SUSY(10)".into(), susy.project(10), 16),
        ("SUSY(14)".into(), susy.project(14), 16),
        ("SUSY(18)".into(), susy.clone(), 16),
    ];
    for (name, t, s) in datasets {
        let r = run(&t, Variant::Baseline.config(5, s));
        let tm = &r.timings;
        let total = tm.rule_generation().max(1e-9);
        rep.row(vec![
            name,
            t.num_dims().to_string(),
            secs(tm.candidate_pruning),
            secs(tm.ancestor_generation),
            secs(tm.gain_computation),
            format!("{:.0}", 100.0 * tm.candidate_pruning / total),
            format!("{:.0}", 100.0 * tm.ancestor_generation / total),
            format!("{:.0}", 100.0 * tm.gain_computation / total),
        ]);
    }
    rep.finish();
}

/// Fig 4.3: memory used by cached blocks over time under two budgets.
fn f4_3() {
    let mut rep = FigureReport::new(
        "f4_3_memory_budgets",
        &[
            "budget_mb",
            "time_s",
            "peak_block_mb",
            "disk_read_mb",
            "disk_reads",
        ],
    );
    let t = workloads::tlc(80_000);
    let bytes = t.data_bytes();
    // "5GB vs 3GB executors" scaled: generous (fits) vs starved (spills).
    for (label, budget) in [("fits", bytes * 4), ("starved", bytes / 2)] {
        let e = Engine::new(
            EngineConfig::in_memory()
                .with_partitions(PARTITIONS)
                .with_memory_budget(budget),
        );
        let cfg = SirumConfig {
            k: 5,
            strategy: CandidateStrategy::SampleLca { sample_size: 16 },
            ..SirumConfig::default()
        };
        let (_, elapsed) = timed(|| run_on(e.clone(), &t, cfg));
        let trace = e.store().trace();
        let peak = trace.iter().map(|s| s.resident_bytes).max().unwrap_or(0);
        let c = e.metrics().counters();
        rep.row(vec![
            format!("{label}({})", budget / (1024 * 1024)),
            secs(elapsed),
            format!("{:.1}", peak as f64 / (1024.0 * 1024.0)),
            format!("{:.1}", c.disk_bytes_read as f64 / (1024.0 * 1024.0)),
            c.disk_reads.to_string(),
        ]);
        // Persist the raw trace for plotting.
        let mut tsv = String::from("secs\tresident_bytes\n");
        for s in &trace {
            tsv.push_str(&format!("{:.4}\t{}\n", s.secs, s.resident_bytes));
        }
        std::fs::write(
            sirum_bench::figures_dir().join(format!("f4_3_trace_{label}.tsv")),
            tsv,
        )
        .unwrap();
    }
    rep.finish();
}

/// Fig 4.4: memory over time — full data vs SIRUM on sample data under the
/// starved budget.
fn f4_4() {
    let mut rep = FigureReport::new(
        "f4_4_sample_data_memory",
        &["mode", "time_s", "rows", "disk_read_mb", "info_gain"],
    );
    let t = workloads::tlc(80_000);
    let budget = t.data_bytes() / 2;
    for (label, rate) in [("full", 1.0), ("sample60%", 0.6), ("sample10%", 0.1)] {
        let e = Engine::new(
            EngineConfig::in_memory()
                .with_partitions(PARTITIONS)
                .with_memory_budget(budget),
        );
        let cfg = SirumConfig {
            k: 5,
            strategy: CandidateStrategy::SampleLca { sample_size: 16 },
            ..SirumConfig::default()
        };
        let (out, elapsed) = timed(|| mine_on_sample(&e, &t, rate, cfg));
        let c = e.metrics().counters();
        rep.row(vec![
            label.into(),
            secs(elapsed),
            out.rows_used.to_string(),
            format!("{:.1}", c.disk_bytes_read as f64 / (1024.0 * 1024.0)),
            format!("{:.4}", out.eval.information_gain),
        ]);
    }
    rep.finish();
}

/// Modeled cluster time for the stages of one run.
fn modeled(stages: &[StageRecord], executors: usize) -> f64 {
    makespan(
        stages,
        &ClusterSpec::paper_cluster().with_executors(executors),
    )
}

/// Fig 5.1: Baseline SIRUM on Spark vs PostgreSQL (single node).
fn f5_1() {
    let mut rep = FigureReport::new(
        "f5_1_spark_vs_postgres",
        &[
            "platform",
            "measured_s",
            "modeled_node_s",
            "modeled_slowdown",
        ],
    );
    let t = workloads::income();
    let cfg = || Variant::Baseline.config(10, 16);
    // Spark mode: parallel operators; model with 1 node × 24 cores
    // (the paper's Fig 5.1 uses a single compute node for both systems).
    let spark_engine = engine();
    let (_, spark_measured) = timed(|| run_on(spark_engine.clone(), &t, cfg()));
    let spark_stages = spark_engine.metrics().stages();
    // Zero per-stage overhead on both sides: this figure isolates
    // intra-node parallelism, and our runs have hundreds of micro-stages
    // that a flat startup charge would swamp.
    let spark_modeled = makespan(
        &spark_stages,
        &ClusterSpec {
            executors: 1,
            cores_per_executor: 24,
            stage_startup_secs: 0.0,
            ..ClusterSpec::paper_cluster()
        },
    );
    // PostgreSQL mode: single worker, no intra-query parallelism and no
    // job-scheduling overhead.
    let pg_engine = Engine::new(EngineConfig::single_thread().with_partitions(PARTITIONS));
    let (_, pg_measured) = timed(|| run_on(pg_engine.clone(), &t, cfg()));
    let pg_stages = pg_engine.metrics().stages();
    let pg_modeled = makespan(
        &pg_stages,
        &ClusterSpec {
            executors: 1,
            cores_per_executor: 1,
            stage_startup_secs: 0.0,
            ..ClusterSpec::paper_cluster()
        },
    );
    rep.row(vec![
        "Spark".into(),
        secs(spark_measured),
        secs(spark_modeled),
        "1.0x".into(),
    ]);
    rep.row(vec![
        "PostgreSQL".into(),
        secs(pg_measured),
        secs(pg_modeled),
        speedup(pg_modeled, spark_modeled),
    ]);
    rep.finish();
}

/// Fig 5.2: Baseline SIRUM on Spark vs Hive (disk-materialized MapReduce).
fn f5_2() {
    let mut rep = FigureReport::new(
        "f5_2_spark_vs_hive",
        &[
            "platform",
            "measured_s",
            "stages",
            "disk_write_mb",
            "slowdown",
        ],
    );
    let t = workloads::tlc(30_000);
    let cfg = || Variant::Baseline.config(10, 16);
    let spark_engine = engine();
    let (_, spark_s) = timed(|| run_on(spark_engine.clone(), &t, cfg()));
    let spark_stages = spark_engine.metrics().stage_count();
    let hive_engine = Engine::new(EngineConfig::disk_mr().with_partitions(PARTITIONS));
    let (_, hive_s) = timed(|| run_on(hive_engine.clone(), &t, cfg()));
    let c = hive_engine.metrics().counters();
    rep.row(vec![
        "Spark".into(),
        secs(spark_s),
        spark_stages.to_string(),
        "0.0".into(),
        "1.0x".into(),
    ]);
    rep.row(vec![
        "Hive".into(),
        secs(hive_s),
        hive_engine.metrics().stage_count().to_string(),
        format!("{:.1}", c.disk_bytes_written as f64 / (1024.0 * 1024.0)),
        speedup(hive_s, spark_s),
    ]);
    rep.finish();
}

/// Figs 5.3/5.4: iterative-scaling time, Baseline vs RCT, vs k.
fn f5_3() {
    let mut rep = FigureReport::new(
        "f5_3_f5_4_rct",
        &["dataset", "k", "baseline_s", "rct_s", "speedup"],
    );
    for (name, t, s) in [
        ("GDELT", workloads::gdelt(), 64usize),
        ("SUSY", workloads::susy(), 16),
    ] {
        for k in [5usize, 10] {
            let base = run(&t, Variant::Baseline.config(k, s));
            let rct = run(&t, Variant::Rct.config(k, s));
            rep.row(vec![
                name.into(),
                k.to_string(),
                secs(base.timings.iterative_scaling),
                secs(rct.timings.iterative_scaling),
                speedup(
                    base.timings.iterative_scaling,
                    rct.timings.iterative_scaling,
                ),
            ]);
        }
    }
    rep.finish();
}

/// Fig 5.5: rule-generation time, Baseline vs FastPruning, vs |s| (GDELT,
/// k = 20).
fn f5_5() {
    let mut rep = FigureReport::new(
        "f5_5_fast_pruning",
        &["|s|", "baseline_s", "fastpruning_s", "speedup"],
    );
    let t = workloads::gdelt();
    for s in [64usize, 128, 256] {
        let base = run(&t, Variant::Baseline.config(5, s));
        let fast = run(&t, Variant::FastPruning.config(5, s));
        rep.row(vec![
            s.to_string(),
            secs(base.timings.rule_generation()),
            secs(fast.timings.rule_generation()),
            speedup(
                base.timings.rule_generation(),
                fast.timings.rule_generation(),
            ),
        ]);
    }
    rep.finish();
}

/// Fig 5.6: rule-generation time, Baseline vs FastAncestor, vs |s| (SUSY,
/// k = 20).
fn f5_6() {
    let mut rep = FigureReport::new(
        "f5_6_fast_ancestor",
        &["|s|", "baseline_s", "fastancestor_s", "speedup"],
    );
    let t = workloads::susy();
    for s in [8usize, 16, 32] {
        let base = run(&t, Variant::Baseline.config(5, s));
        let fast = run(&t, Variant::FastAncestor.config(5, s));
        rep.row(vec![
            s.to_string(),
            secs(base.timings.rule_generation()),
            secs(fast.timings.rule_generation()),
            speedup(
                base.timings.rule_generation(),
                fast.timings.rule_generation(),
            ),
        ]);
    }
    rep.finish();
}

/// Figs 5.7/5.8: rule-generation time and #ancestors emitted vs number of
/// dimensions (SUSY projections, k = 10, |s| = 64).
fn f5_7() {
    let mut rep = FigureReport::new(
        "f5_7_f5_8_dims",
        &[
            "dims",
            "baseline_s",
            "fastancestor_s",
            "baseline_ancestors",
            "fastancestor_ancestors",
        ],
    );
    let susy = workloads::susy();
    for d in [10usize, 12, 14, 16, 18] {
        let t = susy.project(d);
        let base = run(&t, Variant::Baseline.config(5, 16));
        let fast = run(&t, Variant::FastAncestor.config(5, 16));
        rep.row(vec![
            d.to_string(),
            secs(base.timings.rule_generation()),
            secs(fast.timings.rule_generation()),
            base.ancestors_emitted.to_string(),
            fast.ancestors_emitted.to_string(),
        ]);
    }
    rep.finish();
}

/// Figs 5.9/5.10: multi-rule insertion (l = 2, 3 and their `*` variants).
fn f5_9() {
    let mut rep = FigureReport::new(
        "f5_9_f5_10_multirule",
        &[
            "dataset",
            "k",
            "variant",
            "rule_gen_s",
            "rules_mined",
            "final_kl",
        ],
    );
    for (name, t, s, ks) in [
        ("GDELT", workloads::gdelt(), 64usize, vec![5usize, 10]),
        ("SUSY", workloads::susy(), 16, vec![5]),
    ] {
        for k in ks {
            let base = run(&t, Variant::Baseline.config(k, s));
            let target = base.final_kl();
            rep.row(vec![
                name.into(),
                k.to_string(),
                "Baseline".into(),
                secs(base.timings.rule_generation()),
                (base.rules.len() - 1).to_string(),
                format!("{:.5}", base.final_kl()),
            ]);
            for l in [2usize, 3] {
                let cfg = SirumConfig {
                    multirule: MultiRuleConfig::l_rules(l),
                    ..Variant::Baseline.config(k, s)
                };
                let r = run(&t, cfg);
                rep.row(vec![
                    name.into(),
                    k.to_string(),
                    format!("{l}-rule"),
                    secs(r.timings.rule_generation()),
                    (r.rules.len() - 1).to_string(),
                    format!("{:.5}", r.final_kl()),
                ]);
                // The `*` variant mines until it matches Baseline's KL.
                let cfg_star = SirumConfig {
                    multirule: MultiRuleConfig::l_rules(l),
                    target_kl: Some(target),
                    max_rules: Some((2 * k).min(60)),
                    ..Variant::Baseline.config(k, s)
                };
                let r = run(&t, cfg_star);
                rep.row(vec![
                    name.into(),
                    k.to_string(),
                    format!("{l}-rule*"),
                    secs(r.timings.rule_generation()),
                    (r.rules.len() - 1).to_string(),
                    format!("{:.5}", r.final_kl()),
                ]);
            }
        }
    }
    rep.finish();
}

/// Fig 5.11: Naive vs Baseline vs Optimized (and Optimized*) on growing
/// TLC samples (k = 20, |s| = 64).
fn f5_11() {
    let mut rep = FigureReport::new(
        "f5_11_tlc_variants",
        &["rows", "variant", "total_s", "rules", "final_kl"],
    );
    for rows in [10_000usize, 30_000, 60_000] {
        let t = workloads::tlc(rows);
        let base = run(&t, Variant::Baseline.config(10, 64));
        let target = base.final_kl();
        let naive = run(&t, Variant::Naive.config(10, 64));
        let optimized = run(&t, Variant::Optimized.config(10, 64));
        let opt_star = run(
            &t,
            SirumConfig {
                target_kl: Some(target),
                max_rules: Some(20),
                ..Variant::Optimized.config(10, 64)
            },
        );
        for (name, r) in [
            ("Naive", &naive),
            ("Baseline", &base),
            ("Optimized", &optimized),
            ("Optimized*", &opt_star),
        ] {
            rep.row(vec![
                rows.to_string(),
                name.into(),
                secs(r.timings.total),
                (r.rules.len() - 1).to_string(),
                format!("{:.5}", r.final_kl()),
            ]);
        }
    }
    rep.finish();
}

/// Figs 5.12/5.13: Baseline vs Optimized (and Optimized*) vs k.
fn f5_12() {
    let mut rep = FigureReport::new(
        "f5_12_f5_13_vs_k",
        &[
            "dataset",
            "k",
            "baseline_s",
            "optimized_s",
            "optimized*_s",
            "speedup",
        ],
    );
    for (name, t, s, ks) in [
        ("GDELT", workloads::gdelt(), 64usize, vec![5usize, 10, 20]),
        ("SUSY", workloads::susy(), 16, vec![5]),
    ] {
        for k in ks {
            let base = run(&t, Variant::Baseline.config(k, s));
            let opt = run(&t, Variant::Optimized.config(k, s));
            let opt_star = run(
                &t,
                SirumConfig {
                    target_kl: Some(base.final_kl()),
                    max_rules: Some((2 * k).min(60)),
                    ..Variant::Optimized.config(k, s)
                },
            );
            rep.row(vec![
                name.into(),
                k.to_string(),
                secs(base.timings.total),
                secs(opt.timings.total),
                secs(opt_star.timings.total),
                speedup(base.timings.total, opt.timings.total),
            ]);
        }
    }
    rep.finish();
}

/// Fig 5.14: performance improvement (%) of Optimized over Baseline vs |s|.
fn f5_14() {
    let mut rep = FigureReport::new(
        "f5_14_improvement_vs_s",
        &[
            "dataset",
            "|s|",
            "baseline_s",
            "optimized_s",
            "improvement_%",
        ],
    );
    for (name, t, sweep) in [
        ("Income", workloads::income(), [64usize, 128, 256]),
        ("SUSY", workloads::susy(), [8, 16, 32]),
    ] {
        for s in sweep {
            let base = run(&t, Variant::Baseline.config(5, s));
            let opt = run(&t, Variant::Optimized.config(5, s));
            let imp = 100.0 * (base.timings.total - opt.timings.total) / base.timings.total;
            rep.row(vec![
                name.into(),
                s.to_string(),
                secs(base.timings.total),
                secs(opt.timings.total),
                format!("{imp:.0}"),
            ]);
        }
    }
    rep.finish();
}

/// Fig 5.15: data-cube exploration — Sarawagi \[29\] baseline vs SIRUM
/// (k = 10, GDELT-like, exhaustive candidates).
fn f5_15() {
    let mut rep = FigureReport::new(
        "f5_15_cube_exploration",
        &[
            "system",
            "rule_gen_s",
            "iter_scaling_s",
            "total_s",
            "scaling_iters",
        ],
    );
    // FullCube enumerates 2^d ancestors per tuple; keep the table smaller.
    let t = sirum_bench::table::generators::gdelt_like(3_000, workloads::SEED);
    let e = engine();
    let (sar, _) = timed(|| {
        sarawagi_explore(
            &e,
            &t,
            &SarawagiConfig {
                k: 5,
                ..Default::default()
            },
        )
    });
    let e2 = engine();
    let (opt, _) = timed(|| {
        explore(
            &e2,
            &t,
            SirumConfig {
                k: 5,
                rct: true,
                column_groups: 2,
                multirule: MultiRuleConfig::l_rules(2),
                ..SirumConfig::default()
            },
        )
    });
    let e3 = engine();
    let (opt_star, _) = timed(|| {
        explore(
            &e3,
            &t,
            SirumConfig {
                k: 5,
                rct: true,
                column_groups: 2,
                multirule: MultiRuleConfig::l_rules(2),
                target_kl: Some(sar.result.final_kl()),
                max_rules: Some(15),
                ..SirumConfig::default()
            },
        )
    });
    for (name, r) in [
        ("Baseline[29]", &sar.result),
        ("Optimized", &opt.result),
        ("Optimized*", &opt_star.result),
    ] {
        rep.row(vec![
            name.into(),
            secs(r.timings.rule_generation()),
            secs(r.timings.iterative_scaling),
            secs(r.timings.total),
            r.scaling_iterations.iter().sum::<usize>().to_string(),
        ]);
    }
    rep.finish();
}

/// Fig 5.16: strong scaling — fixed data, 2→16 modeled executors.
fn f5_16() {
    let mut rep = FigureReport::new(
        "f5_16_strong_scaling",
        &["dataset", "executors", "modeled_s", "speedup_vs_2"],
    );
    for (name, rows) in [("TLC_small", 10_000usize), ("TLC_large", 60_000)] {
        let t = workloads::tlc(rows);
        let e = Engine::new(EngineConfig::in_memory().with_partitions(96));
        let _ = run_on(e.clone(), &t, Variant::Optimized.config(10, 64));
        let stages = e.metrics().stages();
        let t2 = modeled(&stages, 2);
        for execs in [2usize, 4, 8, 16] {
            let m = modeled(&stages, execs);
            rep.row(vec![
                name.into(),
                execs.to_string(),
                secs(m),
                speedup(t2, m),
            ]);
        }
    }
    rep.finish();
}

/// Fig 5.17: weak scaling — data grows with the modeled executor count.
fn f5_17() {
    let mut rep = FigureReport::new(
        "f5_17_weak_scaling",
        &["executors", "rows", "modeled_s", "ideal_s"],
    );
    let mut ideal = None;
    for (execs, rows) in [(4usize, 20_000usize), (8, 40_000), (16, 80_000)] {
        let t = workloads::tlc(rows);
        let e = Engine::new(EngineConfig::in_memory().with_partitions(96));
        let _ = run_on(e.clone(), &t, Variant::Optimized.config(10, 64));
        let stages = e.metrics().stages();
        // §5.7.2 observes stragglers breaking the flat line; model one
        // slow node at 15%.
        let m = makespan(
            &stages,
            &ClusterSpec::paper_cluster()
                .with_executors(execs)
                .with_straggler(1.15),
        );
        let ideal_s = *ideal.get_or_insert(m);
        rep.row(vec![
            execs.to_string(),
            rows.to_string(),
            secs(m),
            secs(ideal_s),
        ]);
    }
    rep.finish();
}

/// Figs 5.18/5.19: execution time and information gain vs sampling rate.
fn f5_18() {
    let mut rep = FigureReport::new(
        "f5_18_f5_19_sampling",
        &["dataset", "rate_%", "rows", "time_s", "info_gain"],
    );
    for (name, t) in [("TLC", workloads::tlc(80_000)), ("SUSY", workloads::susy())] {
        for rate in [1.0f64, 0.1, 0.01, 0.001] {
            let e = engine();
            let cfg = SirumConfig {
                k: 5,
                strategy: CandidateStrategy::SampleLca { sample_size: 16 },
                ..SirumConfig::default()
            };
            let (out, elapsed) = timed(|| mine_on_sample(&e, &t, rate, cfg));
            rep.row(vec![
                name.into(),
                format!("{:.1}", rate * 100.0),
                out.rows_used.to_string(),
                secs(elapsed),
                format!("{:.5}", out.eval.information_gain),
            ]);
        }
    }
    rep.finish();
}

/// Table 1.2: the flight-delay worked example.
fn t1_2() {
    let mut rep = FigureReport::new(
        "t1_2_flight_rules",
        &["rule_id", "rule", "avg_late", "count"],
    );
    let t = sirum_bench::table::generators::flights();
    let r = run(
        &t,
        SirumConfig {
            k: 3,
            strategy: CandidateStrategy::SampleLca { sample_size: 14 },
            ..SirumConfig::default()
        },
    );
    for (i, rule) in r.rules.iter().enumerate() {
        rep.row(vec![
            (i + 1).to_string(),
            rule.rule.display(&t),
            format!("{:.1}", rule.avg_measure),
            rule.count.to_string(),
        ]);
    }
    rep.finish();
}

fn main() {
    let all: Vec<(&str, fn())> = vec![
        ("t1_2", t1_2 as fn()),
        ("f3_1", f3_1),
        ("f3_2", f3_2),
        ("f4_3", f4_3),
        ("f4_4", f4_4),
        ("f5_1", f5_1),
        ("f5_2", f5_2),
        ("f5_3", f5_3),
        ("f5_5", f5_5),
        ("f5_6", f5_6),
        ("f5_7", f5_7),
        ("f5_9", f5_9),
        ("f5_11", f5_11),
        ("f5_12", f5_12),
        ("f5_14", f5_14),
        ("f5_15", f5_15),
        ("f5_16", f5_16),
        ("f5_17", f5_17),
        ("f5_18", f5_18),
    ];
    let args: Vec<String> = std::env::args().skip(1).collect();
    let selected: Vec<&(&str, fn())> = if args.is_empty() {
        all.iter().collect()
    } else {
        all.iter()
            .filter(|(name, _)| args.iter().any(|a| a == name))
            .collect()
    };
    if selected.is_empty() {
        eprintln!(
            "unknown experiment(s) {:?}; available: {:?}",
            args,
            all.iter().map(|(n, _)| *n).collect::<Vec<_>>()
        );
        std::process::exit(1);
    }
    println!("SIRUM figure harness — {} experiment(s)", selected.len());
    for (name, f) in selected {
        let (_, elapsed) = timed(f);
        println!("[{name}] done in {elapsed:.1}s");
    }
    println!("\nTSV output written to target/figures/");
}
