//! Figs 5.9/5.10 micro-bench: cost of selecting 1, 2 or 3 mutually
//! disjoint rules from a large scored candidate list (§4.4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sirum_bench::core::multirule::{select_rules, MultiRuleConfig, ScoredCandidate};
use sirum_bench::core::rule::{Rule, WILDCARD};

fn candidates(n: usize) -> Vec<ScoredCandidate> {
    (0..n)
        .map(|i| {
            let mut vals = vec![WILDCARD; 9];
            vals[i % 9] = (i / 9) as u32;
            if i % 3 == 0 {
                vals[(i + 1) % 9] = (i / 27) as u32;
            }
            ScoredCandidate {
                rule: Rule::from_values(vals),
                gain: ((i * 2_654_435_761) % 1_000_003) as f64,
                sum_m: 1.0,
                count: 10,
            }
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("multirule_selection");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for n in [10_000usize, 100_000] {
        let base = candidates(n);
        for l in [1usize, 2, 3] {
            group.bench_with_input(BenchmarkId::new(format!("l{l}"), n), &l, |b, &l| {
                b.iter(|| {
                    let mut cands = base.clone();
                    let n = cands.len();
                    select_rules(&mut cands, &MultiRuleConfig::l_rules(l), n)
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
