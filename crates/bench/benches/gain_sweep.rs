//! Candidate gain evaluation: the fused partition-parallel sweep vs. the
//! legacy sequential scoring path (ISSUE 4).
//!
//! `mine/staged-sequential` is the pre-sweep pipeline — LCA emit → shuffle
//! → ancestor stages → shuffle → adjust + gain — on one worker: the
//! "scores candidates sequentially" baseline the sweep replaces.
//! `mine/sweep/<N>threads` runs the same mining request with the fused
//! sweep on an engine *requesting* N workers, and
//! `sweep-pass/<N>threads` isolates one sweep over the distributed
//! dataset. N is the requested concurrency (the knob a user sets);
//! `EngineConfig::effective_workers` hardware-caps it, so on hosts with
//! fewer cores the higher-N rows measure the capped configuration — each
//! row logs its effective worker count. On a multi-core host the thread
//! variants show the partition-parallel scaling; on any host the sweep
//! beats the staged path by fusing its five-plus stages per iteration into
//! two shuffle-free scans (the mining output stays equivalent — see the
//! proptests in `crates/core/tests/properties.rs`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sirum_bench::core::candidates::SampleIndex;
use sirum_bench::core::miner::Tup;
use sirum_bench::core::sweep::sweep_gains;
use sirum_bench::core::{CandidateStrategy, Miner, PreparedTable, SirumConfig};
use sirum_bench::dataflow::{Engine, EngineConfig};
use sirum_bench::workloads;

// |s| = 128 doubles the paper-default pair volume, putting the workload
// squarely in the regime the sweep targets (per-stage materialization and
// shuffle overhead dominating the staged path).
const PARTITIONS: usize = 8;
const SAMPLE: usize = 128;

fn engine(workers: usize) -> Engine {
    Engine::new(
        EngineConfig::in_memory()
            .with_workers(workers)
            .with_partitions(PARTITIONS),
    )
}

fn config(gain_sweep: bool) -> SirumConfig {
    SirumConfig {
        k: 2,
        strategy: CandidateStrategy::SampleLca {
            sample_size: SAMPLE,
        },
        gain_sweep,
        ..SirumConfig::default()
    }
}

fn bench(c: &mut Criterion) {
    let table = workloads::income_sized(20_000);
    let prepared = PreparedTable::try_new(&table).unwrap();
    let d = prepared.num_dims();
    let mut group = c.benchmark_group("gain_sweep");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));

    // The sequential path: legacy staged scoring on a single worker.
    let staged = Miner::new(engine(1), config(false));
    group.bench_function("mine/staged-sequential", |b| {
        b.iter(|| staged.try_mine_prepared(&prepared, &[]).unwrap());
    });

    // The same request on the fused sweep, requesting 1/2/4 engine workers.
    for workers in [1usize, 2, 4] {
        let e = engine(workers);
        eprintln!(
            "gain_sweep: {workers} requested worker(s) -> {} effective on this host",
            e.config().effective_workers()
        );
        let miner = Miner::new(e, config(true));
        group.bench_with_input(
            BenchmarkId::new("mine/sweep", format!("{workers}threads")),
            &workers,
            |b, _| b.iter(|| miner.try_mine_prepared(&prepared, &[]).unwrap()),
        );
    }

    // One isolated sweep pass over the distributed dataset.
    let tuples: Vec<Tup> = (0..prepared.num_rows())
        .map(|i| (prepared.rows()[i].clone(), prepared.m_prime()[i], 1.0, 0u64))
        .collect();
    for workers in [1usize, 2, 4] {
        let e = engine(workers);
        let data = e.parallelize(tuples.clone(), PARTITIONS);
        let sample: Vec<Box<[u32]>> = data
            .take_sample(SAMPLE, 42)
            .into_iter()
            .map(|(dims, _, _, _)| dims)
            .collect();
        let index = SampleIndex::build(sample, d);
        group.bench_with_input(
            BenchmarkId::new("sweep-pass", format!("{workers}threads")),
            &workers,
            |b, _| b.iter(|| sweep_gains(&data, d, Some(&index), None)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
