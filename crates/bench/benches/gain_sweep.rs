//! Candidate gain evaluation: the fused partition-parallel sweep vs. the
//! legacy sequential scoring path (ISSUE 4), and the columnar vs.
//! boxed-row data representation under the sweep (ISSUE 5).
//!
//! `mine/staged-sequential` is the pre-sweep pipeline — LCA emit → shuffle
//! → ancestor stages → shuffle → adjust + gain — on one worker: the
//! "scores candidates sequentially" baseline the sweep replaces.
//! `mine/sweep/<N>threads` runs the same mining request with the fused
//! sweep on an engine *requesting* N workers over the default columnar
//! data path; `mine/sweep-rowmajor` is the identical single-worker request
//! on the boxed per-row reference path (`columnar: false`) — the
//! row-vs-columnar delta under equal everything else. `sweep-pass/…`
//! isolates one sweep over the columnar dataset and
//! `sweep-pass-rowmajor` one sweep over the row-major dataset. N is the
//! requested concurrency (the knob a user sets);
//! `EngineConfig::effective_workers` hardware-caps it, so on hosts with
//! fewer cores the higher-N rows measure the capped configuration — each
//! row logs its effective worker count. The mining output is bit-identical
//! across every row here — see the proptests in
//! `crates/core/tests/properties.rs`.
//!
//! ISSUE 6 adds the packed-code rows: `sweep-pass/…` now runs the default
//! packed-`u64` accumulators; `sweep-pass-rulekey` is the same single
//! sweep with the pre-packing `Rule`-keyed maps (the hash-probe
//! bottleneck being replaced) and `sweep-pass-hashprobe` forces the
//! flat probe-or-insert combine (the default `sweep-pass` row lets the
//! cost model pick, which at this volume means radix-group), so the
//! packed-vs-rulekey and hash-vs-radix deltas are both one compare away.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sirum_bench::core::candidates::SampleIndex;
use sirum_bench::core::miner::Tup;
use sirum_bench::core::sweep::{sweep_gains, sweep_gains_blocks, SweepOptions};
use sirum_bench::core::{
    CandidateStrategy, Miner, PreparedTable, RuleLayout, SirumConfig, TupleBlock,
};
use sirum_bench::dataflow::cost::CombineStrategy;
use sirum_bench::dataflow::{Dataset, Engine, EngineConfig};
use sirum_bench::workloads;

// |s| = 128 doubles the paper-default pair volume, putting the workload
// squarely in the regime the sweep targets (per-stage materialization and
// shuffle overhead dominating the staged path).
const PARTITIONS: usize = 8;
const SAMPLE: usize = 128;

fn engine(workers: usize) -> Engine {
    Engine::new(
        EngineConfig::in_memory()
            .with_workers(workers)
            .with_partitions(PARTITIONS),
    )
}

fn config(gain_sweep: bool, columnar: bool) -> SirumConfig {
    SirumConfig {
        k: 2,
        strategy: CandidateStrategy::SampleLca {
            sample_size: SAMPLE,
        },
        gain_sweep,
        columnar,
        ..SirumConfig::default()
    }
}

/// Row-major tuples gathered from the prepared frame (what the
/// `columnar: false` reference path distributes).
fn row_tuples(prepared: &PreparedTable) -> Vec<Tup> {
    let mut buf = Vec::with_capacity(prepared.num_dims());
    (0..prepared.num_rows())
        .map(|i| {
            prepared.frame().gather_row(i, &mut buf);
            (
                buf.clone().into_boxed_slice(),
                prepared.m_prime()[i],
                1.0,
                0u64,
            )
        })
        .collect()
}

/// Columnar blocks over the prepared frame's shared columns (what the
/// default path distributes — zero copies).
fn column_blocks(engine: &Engine, prepared: &PreparedTable) -> Dataset<TupleBlock> {
    let m = prepared.m_prime_slice();
    let blocks: Vec<TupleBlock> = prepared
        .frame()
        .partition_views(PARTITIONS)
        .into_iter()
        .map(|view| {
            let window = m.slice(view.start(), view.len());
            TupleBlock::seed(view, window)
        })
        .collect();
    Dataset::from_partitioned(engine, blocks)
}

fn bench(c: &mut Criterion) {
    let table = workloads::income_sized(20_000);
    let prepared = PreparedTable::try_new(&table).unwrap();
    let d = prepared.num_dims();
    let mut group = c.benchmark_group("gain_sweep");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));

    // The sequential path: legacy staged scoring on a single worker.
    let staged = Miner::new(engine(1), config(false, true));
    group.bench_function("mine/staged-sequential", |b| {
        b.iter(|| staged.try_mine_prepared(&prepared, &[]).unwrap());
    });

    // The same request on the fused sweep over the boxed-row reference
    // representation (single worker): the row-vs-columnar baseline.
    let rowmajor = Miner::new(engine(1), config(true, false));
    group.bench_function("mine/sweep-rowmajor", |b| {
        b.iter(|| rowmajor.try_mine_prepared(&prepared, &[]).unwrap());
    });

    // The same request on the fused sweep over the columnar path,
    // requesting 1/2/4 engine workers.
    for workers in [1usize, 2, 4] {
        let e = engine(workers);
        eprintln!(
            "gain_sweep: {workers} requested worker(s) -> {} effective on this host",
            e.config().effective_workers()
        );
        let miner = Miner::new(e, config(true, true));
        group.bench_with_input(
            BenchmarkId::new("mine/sweep", format!("{workers}threads")),
            &workers,
            |b, _| b.iter(|| miner.try_mine_prepared(&prepared, &[]).unwrap()),
        );
    }

    // One isolated sweep pass over the distributed dataset, in each
    // representation and under each accumulator keying. The sample is
    // drawn the way the miner draws it; every row computes bit-identical
    // candidates.
    let packed = SweepOptions::packed(RuleLayout::from_cardinalities(prepared.frame().cards()));
    let tuples = row_tuples(&prepared);
    {
        let e = engine(1);
        let data = e.parallelize(tuples.clone(), PARTITIONS);
        let sample: Vec<Box<[u32]>> = data
            .take_sample(SAMPLE, 42)
            .into_iter()
            .map(|(dims, _, _, _)| dims)
            .collect();
        let index = SampleIndex::build(sample, d);
        group.bench_function("sweep-pass-rowmajor", |b| {
            b.iter(|| sweep_gains(&data, d, Some(&index), None, &packed))
        });
    }
    for workers in [1usize, 2, 4] {
        let e = engine(workers);
        let data = column_blocks(&e, &prepared);
        let sample: Vec<Box<[u32]>> = e
            .parallelize(tuples.clone(), PARTITIONS)
            .take_sample(SAMPLE, 42)
            .into_iter()
            .map(|(dims, _, _, _)| dims)
            .collect();
        let index = SampleIndex::build(sample, d);
        group.bench_with_input(
            BenchmarkId::new("sweep-pass", format!("{workers}threads")),
            &workers,
            |b, _| b.iter(|| sweep_gains_blocks(&data, d, Some(&index), None, &packed)),
        );
    }
    // The pre-ISSUE-6 Rule-keyed sweep and the forced hash-probe combine,
    // single worker. At this workload's emission volume the cost model
    // picks radix-group, so the default `sweep-pass` row measures it and
    // the packed-vs-rulekey and hash-vs-radix deltas are one compare away.
    for (id, opts) in [
        ("sweep-pass-rulekey", SweepOptions::rule_keyed()),
        (
            "sweep-pass-hashprobe",
            packed.clone().with_combine(CombineStrategy::HashProbe),
        ),
    ] {
        let e = engine(1);
        let data = column_blocks(&e, &prepared);
        let sample: Vec<Box<[u32]>> = e
            .parallelize(tuples.clone(), PARTITIONS)
            .take_sample(SAMPLE, 42)
            .into_iter()
            .map(|(dims, _, _, _)| dims)
            .collect();
        let index = SampleIndex::build(sample, d);
        group.bench_with_input(BenchmarkId::new(id, "1threads"), &1usize, |b, _| {
            b.iter(|| sweep_gains_blocks(&data, d, Some(&index), None, &opts))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
