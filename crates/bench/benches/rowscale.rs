//! Row-count scaling axis (ISSUE 10): the paper's TLC_2m…TLC_160m axis,
//! scaled to 20k → 8M rows, comparing the seed-fit scan (`k = 0`: encode
//! validation, transform, seed model, KL — one full pass over every
//! dimension column) on raw `u32` columns vs. compressed bit-packed/RLE
//! segments decoded morsel-by-morsel. The compressed scan trades ~8× less
//! column memory traffic for per-value decode work; this curve records
//! where that trade lands at each size.
//!
//! The 2M/8M sizes materialize multi-hundred-MB tables; `bench-quick.sh`
//! skips them by default (`ROWSCALE_FULL=1` restores them). The skip list
//! is honored *before* table generation, so skipped sizes cost nothing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sirum_bench::core::{CandidateStrategy, Miner, PreparedTable, SirumConfig};
use sirum_bench::dataflow::Engine;
use sirum_bench::table::Compression;
use sirum_bench::workloads;

/// Mirror of the vendored harness's `SIRUM_BENCH_SKIP` matching, applied
/// up front: generating an 8M-row table only to skip both its benchmarks
/// would dominate the sweep's wall clock.
fn skipped(id: &str) -> bool {
    std::env::var("SIRUM_BENCH_SKIP")
        .unwrap_or_default()
        .split(',')
        .filter(|s| !s.is_empty())
        .any(|s| id.contains(s))
}

fn bench(c: &mut Criterion) {
    let engine = Engine::in_memory();
    let mut group = c.benchmark_group("rowscale");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let config = SirumConfig {
        k: 0,
        strategy: CandidateStrategy::SampleLca { sample_size: 32 },
        ..SirumConfig::default()
    };
    let miner = Miner::new(engine, config);
    for rows in [20_000usize, 128_000, 512_000, 2_048_000, 8_192_000] {
        let variants = [
            ("raw", Compression::Never),
            ("compressed", Compression::Always),
        ];
        if variants
            .iter()
            .all(|(label, _)| skipped(&format!("rowscale/{label}/{rows}")))
        {
            continue;
        }
        let table = workloads::tlc(rows);
        for (label, compression) in variants {
            // Built per variant and dropped right after: the 8M-row raw
            // frame alone is ~300 MB and must not coexist with the next.
            let prepared = PreparedTable::try_new_with(&table, compression).unwrap();
            group.bench_with_input(BenchmarkId::new(label, rows), &rows, |b, _| {
                b.iter(|| miner.try_mine_prepared(&prepared, &[]).unwrap());
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
