//! Figs 5.11–5.13 micro-bench: full mining runs, Baseline vs Optimized.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sirum_bench::core::{Miner, Variant};
use sirum_bench::dataflow::{Engine, EngineConfig};
use sirum_bench::workloads;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for (name, table) in [
        ("income", workloads::income_small()),
        ("gdelt", workloads::gdelt_small()),
    ] {
        for variant in [Variant::Baseline, Variant::Optimized] {
            group.bench_with_input(BenchmarkId::new(variant.name(), name), &variant, |b, v| {
                b.iter(|| {
                    let engine = Engine::new(EngineConfig::in_memory().with_partitions(8));
                    Miner::new(engine, v.config(4, 32))
                        .try_mine(&table)
                        .expect("mine")
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
