//! Fig 5.15 micro-bench: data-cube exploration — the Sarawagi [29]
//! λ-reset baseline vs SIRUM's carry-over scaling.

use criterion::{criterion_group, criterion_main, Criterion};
use sirum_bench::baselines::{sarawagi_explore, SarawagiConfig};
use sirum_bench::core::explore::explore;
use sirum_bench::core::SirumConfig;
use sirum_bench::dataflow::{Engine, EngineConfig};
use sirum_bench::table::generators;

fn bench(c: &mut Criterion) {
    let table = generators::gdelt_like(1_500, 2016);
    let mut group = c.benchmark_group("cube_exploration");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.bench_function("sarawagi_baseline", |b| {
        b.iter(|| {
            let e = Engine::new(EngineConfig::in_memory().with_partitions(8));
            sarawagi_explore(
                &e,
                &table,
                &SarawagiConfig {
                    k: 3,
                    ..Default::default()
                },
            )
        });
    });
    group.bench_function("sirum_optimized", |b| {
        b.iter(|| {
            let e = Engine::new(EngineConfig::in_memory().with_partitions(8));
            explore(
                &e,
                &table,
                SirumConfig {
                    k: 3,
                    rct: true,
                    column_groups: 2,
                    ..SirumConfig::default()
                },
            )
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
