//! Figs 3.1/3.2 micro-bench: baseline mining runs whose phase split
//! (rule generation vs iterative scaling) the profiling chapter analyzes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sirum_bench::core::{Miner, Variant};
use sirum_bench::dataflow::{Engine, EngineConfig};
use sirum_bench::workloads;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline_profile");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let susy = workloads::susy_small();
    let datasets = vec![
        ("income".to_string(), workloads::income_small()),
        ("gdelt".to_string(), workloads::gdelt_small()),
        ("susy10".to_string(), susy.project(10)),
        ("susy18".to_string(), susy.clone()),
    ];
    for (name, table) in &datasets {
        group.bench_with_input(BenchmarkId::new("baseline", name), table, |b, t| {
            b.iter(|| {
                let e = Engine::new(EngineConfig::in_memory().with_partitions(8));
                Miner::new(e, Variant::Baseline.config(4, 32))
                    .try_mine(t)
                    .expect("mine")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
