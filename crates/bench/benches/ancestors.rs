//! Figs 5.6/5.7/5.8 micro-bench: single-stage ancestor generation vs
//! column-grouped multi-stage generation (§4.3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sirum_bench::core::candidates::{merge_agg, Agg};
use sirum_bench::core::lattice::{ancestors, ancestors_restricted, column_groups};
use sirum_bench::core::rule::Rule;
use sirum_bench::dataflow::hash::FxHashMap;
use sirum_bench::workloads;

/// LCAs of a SUSY sample against itself — realistic rule shapes.
fn lcas(d: usize) -> Vec<(Rule, Agg)> {
    let table = workloads::susy_small().project(d);
    let mut out: FxHashMap<Rule, Agg> = FxHashMap::default();
    for i in (0..table.num_rows()).step_by(13) {
        for j in (0..table.num_rows()).step_by(97) {
            let lca = Rule::lca(table.row(i), table.row(j));
            merge_agg(out.entry(lca).or_insert((0.0, 0.0, 0)), (1.0, 1.0, 1));
        }
    }
    out.into_iter().collect()
}

fn single_stage(input: &[(Rule, Agg)]) -> usize {
    let mut out: FxHashMap<Rule, Agg> = FxHashMap::default();
    let mut emitted = 0usize;
    for (rule, agg) in input {
        for anc in ancestors(rule) {
            emitted += 1;
            merge_agg(out.entry(anc).or_insert((0.0, 0.0, 0)), *agg);
        }
    }
    emitted + out.len()
}

fn grouped(input: &[(Rule, Agg)], g: usize, d: usize) -> usize {
    let groups = column_groups(d, g, 42);
    let mut current: FxHashMap<Rule, Agg> = input.iter().cloned().collect();
    let mut emitted = 0usize;
    for group in &groups {
        let mut next: FxHashMap<Rule, Agg> = FxHashMap::default();
        for (rule, agg) in &current {
            for anc in ancestors_restricted(rule, group) {
                emitted += 1;
                merge_agg(next.entry(anc).or_insert((0.0, 0.0, 0)), *agg);
            }
        }
        current = next;
    }
    emitted + current.len()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ancestor_generation");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for d in [10usize, 14, 18] {
        let input = lcas(d);
        group.bench_with_input(BenchmarkId::new("single_stage", d), &d, |b, _| {
            b.iter(|| single_stage(&input));
        });
        group.bench_with_input(BenchmarkId::new("two_groups", d), &d, |b, &d| {
            b.iter(|| grouped(&input, 2, d));
        });
        group.bench_with_input(BenchmarkId::new("three_groups", d), &d, |b, &d| {
            b.iter(|| grouped(&input, 3, d));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
