//! Wire-serving latency: what the HTTP front end adds on top of the
//! in-process service path. `in-process/mine-cached` answers the request
//! straight from the service's result cache; `wire/mine-cached` is the
//! same request as an HTTP round trip over a real socket (parse + route +
//! serialize + TCP); `wire/health` isolates the pure wire overhead with no
//! mining behind it.

use criterion::{criterion_group, criterion_main, Criterion};
use sirum::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let service = SirumService::in_memory().unwrap();
    service
        .register_demo_with("income", Some(4_000), 42)
        .unwrap();
    let server = Server::bind(
        "127.0.0.1:0",
        Router::new(
            service.clone(),
            Arc::new(NetMetrics::new()),
            RouterConfig::default(),
        ),
        ServerConfig::default(),
    )
    .unwrap();
    let mut http = HttpClient::new(server.local_addr()).timeout(Duration::from_secs(30));
    let body = r#"{"table":"income","k":3,"sample_size":64,"seed":1}"#;

    // Warm the result cache so every measured request is a cache hit:
    // the comparison then isolates serving overhead, not mining time.
    service
        .mine("income")
        .k(3)
        .sample_size(64)
        .seed(1)
        .run()
        .unwrap();

    let mut group = c.benchmark_group("serving");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    group.bench_function("in-process/mine-cached", |b| {
        b.iter(|| {
            service
                .mine("income")
                .k(3)
                .sample_size(64)
                .seed(1)
                .run()
                .unwrap()
        });
    });
    group.bench_function("wire/mine-cached", |b| {
        b.iter(|| {
            let response = http.post_json("/mine", body).unwrap();
            assert_eq!(response.status, 200);
            response
        });
    });
    group.bench_function("wire/health", |b| {
        b.iter(|| {
            let response = http.get("/health").unwrap();
            assert_eq!(response.status, 200);
            response
        });
    });
    group.finish();
    server.shutdown();
}

criterion_group!(benches, bench);
criterion_main!(benches);
