//! Service-layer hot path: repeated mining with and without the catalog's
//! one-time table preparation (`PreparedTable`), and the columnar vs.
//! boxed-row data path on top of it. `cold` pays per-request validation,
//! measure-transform fitting and the columnar transpose on every call —
//! what `Miner::try_mine` does; `prepared` reuses one `PreparedTable` and
//! scans its `Arc`-shared columns through zero-copy views, as the service
//! catalog does for every registered table; `prepared-rowmajor` runs the
//! identical request on the boxed per-row reference representation
//! (`columnar: false`), isolating what the columnar zero-copy path saves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sirum_bench::core::{CandidateStrategy, Miner, PreparedTable, SirumConfig};
use sirum_bench::dataflow::Engine;
use sirum_bench::workloads;

fn bench(c: &mut Criterion) {
    let engine = Engine::in_memory();
    let mut group = c.benchmark_group("prepared_catalog");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for rows in [20_000usize, 80_000] {
        let table = workloads::income_sized(rows);
        // k = 0 isolates the per-request setup (validation, transform fit,
        // encode, seed-model fit) that the catalog's preparation amortizes;
        // a nonzero k would bury it under rule-generation stages.
        let config = SirumConfig {
            k: 0,
            strategy: CandidateStrategy::SampleLca { sample_size: 32 },
            ..SirumConfig::default()
        };
        let miner = Miner::new(engine.clone(), config.clone());
        group.bench_with_input(BenchmarkId::new("cold", rows), &rows, |b, _| {
            b.iter(|| miner.try_mine(&table).unwrap());
        });
        let prepared = PreparedTable::try_new(&table).unwrap();
        group.bench_with_input(BenchmarkId::new("prepared", rows), &rows, |b, _| {
            b.iter(|| miner.try_mine_prepared(&prepared, &[]).unwrap());
        });
        let rowmajor = Miner::new(
            engine.clone(),
            SirumConfig {
                columnar: false,
                ..config
            },
        );
        group.bench_with_input(
            BenchmarkId::new("prepared-rowmajor", rows),
            &rows,
            |b, _| {
                b.iter(|| rowmajor.try_mine_prepared(&prepared, &[]).unwrap());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
