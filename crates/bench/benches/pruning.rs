//! Fig 5.5 micro-bench: naive pairwise LCA computation vs the inverted
//! sample index (§4.2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sirum_bench::core::candidates::SampleIndex;
use sirum_bench::core::rule::Rule;
use sirum_bench::workloads;

fn bench(c: &mut Criterion) {
    let table = workloads::gdelt_small();
    let d = table.num_dims();
    let mut group = c.benchmark_group("lca_pruning");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for s in [64usize, 128, 256] {
        let sample: Vec<Box<[u32]>> = (0..s)
            .map(|i| {
                table
                    .row(i * 7 % table.num_rows())
                    .to_vec()
                    .into_boxed_slice()
            })
            .collect();
        let index = SampleIndex::build(sample.clone(), d);
        group.bench_with_input(BenchmarkId::new("naive", s), &s, |b, _| {
            b.iter(|| {
                let mut acc = 0usize;
                for row in table.rows() {
                    for srow in &sample {
                        let lca = Rule::lca(srow, row);
                        acc += lca.num_constants();
                    }
                }
                acc
            });
        });
        group.bench_with_input(BenchmarkId::new("inverted_index", s), &s, |b, _| {
            b.iter(|| {
                let mut acc = 0usize;
                let mut scratch = Vec::new();
                for row in table.rows() {
                    let lcas = index.lcas_into(row, &mut scratch);
                    acc += lcas
                        .iter()
                        .filter(|&&v| v != sirum_bench::core::rule::WILDCARD)
                        .count();
                }
                acc
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
