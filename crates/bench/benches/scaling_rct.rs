//! Figs 5.3/5.4 micro-bench: naive iterative scaling (Algorithm 1) vs
//! RCT-based scaling (Algorithm 3) on identical models.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sirum_bench::core::rct::{iterative_scaling_rct, Rct};
use sirum_bench::core::rule::Rule;
use sirum_bench::core::scaling::{
    iterative_scaling, rule_measure_sums, ScalingConfig, TableBackend,
};
use sirum_bench::core::transform::MeasureTransform;
use sirum_bench::workloads;

/// Build a model of `k` single-constant rules over the first columns.
fn model(table: &sirum_bench::table::Table, k: usize) -> (Vec<Rule>, Vec<f64>, Vec<f64>) {
    let d = table.num_dims();
    let mut rules = vec![Rule::all_wildcards(d)];
    'outer: for col in 0..d {
        for code in 0..table.dict(col).cardinality() as u32 {
            if rules.len() > k {
                break 'outer;
            }
            let mut vals = vec![sirum_bench::core::rule::WILDCARD; d];
            vals[col] = code;
            rules.push(Rule::from_values(vals));
        }
    }
    let (_t, m_prime) = MeasureTransform::fit(table.measures());
    let sums = rule_measure_sums(table, &m_prime, &rules);
    (rules, sums.iter().map(|s| s.0).collect(), m_prime)
}

fn bench(c: &mut Criterion) {
    let table = workloads::income_small();
    let cfg = ScalingConfig::default();
    let mut group = c.benchmark_group("iterative_scaling");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for k in [4usize, 8, 16] {
        let (rules, m_sums, m_prime) = model(&table, k);
        group.bench_with_input(BenchmarkId::new("naive", k), &k, |b, _| {
            b.iter(|| {
                let mut lambdas = vec![1.0; rules.len()];
                let mut backend = TableBackend::new(&table);
                iterative_scaling(&mut backend, &rules, &m_sums, &mut lambdas, &cfg)
            });
        });
        // RCT path: mask computation + RCT build + scaling (its full cost).
        group.bench_with_input(BenchmarkId::new("rct", k), &k, |b, _| {
            b.iter(|| {
                let masks: Vec<u64> = table
                    .rows()
                    .map(|row| {
                        let mut mask = 0u64;
                        for (i, r) in rules.iter().enumerate() {
                            if r.matches(row) {
                                mask |= 1 << i;
                            }
                        }
                        mask
                    })
                    .collect();
                let mut rct = Rct::build(&masks, &m_prime, &vec![1.0; table.num_rows()]);
                let mut lambdas = vec![1.0; rules.len()];
                iterative_scaling_rct(&mut rct, rules.len(), &m_sums, &mut lambdas, &cfg)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
