//! Figs 5.1/5.2 micro-bench: the same mining run on the three platform
//! emulations (Spark-like in-memory, Hive-like disk MR, PostgreSQL-like
//! single thread).

use criterion::{criterion_group, criterion_main, Criterion};
use sirum_bench::core::{Miner, Variant};
use sirum_bench::dataflow::{Engine, EngineConfig};
use sirum_bench::workloads;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let table = workloads::income_small();
    let mut group = c.benchmark_group("platforms");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.bench_function("spark_in_memory", |b| {
        b.iter(|| {
            let e = Engine::new(EngineConfig::in_memory().with_partitions(8));
            Miner::new(e, Variant::Baseline.config(3, 16))
                .try_mine(&table)
                .expect("mine")
        });
    });
    group.bench_function("hive_disk_mr", |b| {
        b.iter(|| {
            // Zero startup sleep so the bench isolates the disk round trips.
            let e = Engine::new(
                EngineConfig::disk_mr()
                    .with_stage_startup(Duration::ZERO)
                    .with_partitions(8),
            );
            Miner::new(e, Variant::Baseline.config(3, 16))
                .try_mine(&table)
                .expect("mine")
        });
    });
    group.bench_function("postgres_single_thread", |b| {
        b.iter(|| {
            let e = Engine::new(EngineConfig::single_thread().with_partitions(8));
            Miner::new(e, Variant::Baseline.config(3, 16))
                .try_mine(&table)
                .expect("mine")
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
