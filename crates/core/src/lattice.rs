//! Cube-lattice ancestor enumeration (§2.5 / Fig 2.1).
//!
//! A rule with `w` non-wildcard positions has exactly `2^w` ancestors
//! (including itself): one per subset of constants replaced by wildcards.
//! The multi-stage "column grouping" optimization (§4.3) restricts each
//! stage to wildcarding positions from one attribute group only.

use crate::rule::{PackedCode, PackedMasks, Rule, WILDCARD};

/// Maximum number of constants we are willing to expand in one call
/// (2^24 ≈ 16M ancestors). Exceeding this is a configuration error —
/// sample-based pruning keeps real workloads far below it.
pub const MAX_EXPAND_BITS: usize = 24;

/// All `2^w` ancestors of `rule` (including `rule` itself), in subset order.
pub fn ancestors(rule: &Rule) -> Vec<Rule> {
    ancestors_restricted(rule, &rule.constant_positions())
}

/// Ancestors obtained by wildcarding subsets of `positions` only (including
/// the empty subset, i.e. `rule` itself). `positions` must name non-wildcard
/// positions of `rule`; wildcard positions are skipped harmlessly.
pub fn ancestors_restricted(rule: &Rule, positions: &[usize]) -> Vec<Rule> {
    let live: Vec<usize> = positions
        .iter()
        .copied()
        .filter(|&i| !rule.is_wildcard(i))
        .collect();
    let w = live.len();
    // lint:allow(SL001) — expansion-size cap; the miner and the service's stream() reject >MAX_EXPAND_BITS-dim tables with typed errors
    assert!(
        w <= MAX_EXPAND_BITS,
        "refusing to expand 2^{w} ancestors; use column grouping or sampling"
    );
    let mut out = Vec::with_capacity(1usize << w);
    let mut values = rule.values().to_vec();
    for subset in 0..(1u32 << w) {
        for (bit, &pos) in live.iter().enumerate() {
            values[pos] = if subset & (1 << bit) != 0 {
                WILDCARD
            } else {
                rule.get(pos)
            };
        }
        out.push(Rule::from_values(values.clone()));
    }
    out
}

/// Collect the non-wildcard dimension indices of a packed code into `live`
/// (cleared first), in increasing dimension order — the same order
/// [`Rule::constant_positions`] yields, so the packed subset loop below
/// walks ancestors in exactly the order [`ancestors`] does.
#[inline]
pub fn packed_live_dims<C: PackedCode>(code: C, masks: &PackedMasks<C>, live: &mut Vec<usize>) {
    live.clear();
    for j in 0..masks.num_dims() {
        if !masks.is_wild(code, j) {
            live.push(j);
        }
    }
}

/// The ancestor of `code` obtained by wildcarding the `live` dimensions
/// named by the set bits of `subset` (bit `b` ↔ `live[b]`): one OR per set
/// bit, no unpacking. With `subset` running over `0..2^live.len()` this
/// enumerates the same `2^w` ancestors as [`ancestors`], in the same subset
/// order.
#[inline]
pub fn packed_ancestor<C: PackedCode>(
    code: C,
    masks: &PackedMasks<C>,
    live: &[usize],
    subset: u32,
) -> C {
    let mut anc = code;
    let mut bits = subset;
    while bits != 0 {
        let b = bits.trailing_zeros() as usize;
        anc = masks.widen(anc, live[b]);
        bits &= bits - 1;
    }
    anc
}

/// Number of ancestors [`ancestors`] would produce, without producing them.
pub fn ancestor_count(rule: &Rule) -> u64 {
    1u64 << rule.num_constants().min(63)
}

/// Immediate proper ancestors (parent rules): one constant wildcarded.
pub fn parents(rule: &Rule) -> Vec<Rule> {
    rule.constant_positions()
        .into_iter()
        .map(|i| rule.generalize(i))
        .collect()
}

/// Partition the `d` dimension indices into `g` groups for the multi-stage
/// ancestor pipeline (§4.3). The paper partitions randomly; we rotate
/// deterministically from `seed` so experiments are reproducible.
pub fn column_groups(d: usize, g: usize, seed: u64) -> Vec<Vec<usize>> {
    let g = g.clamp(1, d);
    let mut order: Vec<usize> = (0..d).collect();
    // Deterministic Fisher-Yates driven by a simple LCG on the seed.
    let mut state = seed.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
    for i in (1..d).rev() {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        let j = (state >> 33) as usize % (i + 1);
        order.swap(i, j);
    }
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); g];
    for (i, dim) in order.into_iter().enumerate() {
        groups[i % g].push(dim);
    }
    groups.retain(|grp| !grp.is_empty());
    groups
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(vals: &[i64]) -> Rule {
        Rule::from_values(
            vals.iter()
                .map(|&v| if v < 0 { WILDCARD } else { v as u32 })
                .collect(),
        )
    }

    #[test]
    fn fig_2_1_lattice_of_single_tuple() {
        // (Fri, SF, London) has the 8 ancestors shown in Figure 2.1.
        let base = r(&[0, 1, 2]);
        let anc = ancestors(&base);
        assert_eq!(anc.len(), 8);
        for expected in [
            r(&[0, 1, 2]),
            r(&[0, 1, -1]),
            r(&[0, -1, 2]),
            r(&[-1, 1, 2]),
            r(&[0, -1, -1]),
            r(&[-1, 1, -1]),
            r(&[-1, -1, 2]),
            r(&[-1, -1, -1]),
        ] {
            assert!(anc.contains(&expected), "missing {expected:?}");
        }
    }

    #[test]
    fn ancestors_of_partial_rule() {
        let base = r(&[-1, 1, 2]);
        let anc = ancestors(&base);
        assert_eq!(anc.len(), 4);
        assert!(anc.contains(&r(&[-1, -1, -1])));
        assert!(anc.contains(&base));
    }

    #[test]
    fn all_ancestors_are_ancestors_and_distinct() {
        let base = r(&[3, 1, 4, 1]);
        let anc = ancestors(&base);
        assert_eq!(anc.len(), 16);
        let mut seen = std::collections::HashSet::new();
        for a in &anc {
            assert!(a.is_ancestor_of(&base));
            assert!(seen.insert(a.clone()), "duplicate {a:?}");
        }
    }

    #[test]
    fn restricted_generation_covers_one_group() {
        // §4.3 example: (Fri,SF,London) with G1={Day,Origin}: the generated
        // ancestors wildcard only positions 0 and 1.
        let base = r(&[0, 1, 2]);
        let g1 = ancestors_restricted(&base, &[0, 1]);
        assert_eq!(g1.len(), 4);
        assert!(g1.contains(&r(&[0, 1, 2])));
        assert!(g1.contains(&r(&[-1, 1, 2])));
        assert!(g1.contains(&r(&[0, -1, 2])));
        assert!(g1.contains(&r(&[-1, -1, 2])));
    }

    #[test]
    fn two_stage_generation_equals_single_stage() {
        // Appendix A, property 1: stage-wise expansion covers exactly the
        // full ancestor set.
        let base = r(&[0, 1, 2]);
        let mut staged: Vec<Rule> = Vec::new();
        for first in ancestors_restricted(&base, &[0, 1]) {
            staged.extend(ancestors_restricted(&first, &[2]));
        }
        let mut full = ancestors(&base);
        staged.sort_by(|a, b| a.values().cmp(b.values()));
        staged.dedup();
        full.sort_by(|a, b| a.values().cmp(b.values()));
        assert_eq!(staged, full);
        // Appendix A uniqueness: no duplicates before dedup either.
        let mut staged2: Vec<Rule> = Vec::new();
        for first in ancestors_restricted(&base, &[0, 1]) {
            staged2.extend(ancestors_restricted(&first, &[2]));
        }
        assert_eq!(staged2.len(), full.len());
    }

    #[test]
    fn restricted_skips_wildcard_positions() {
        let base = r(&[-1, 1, 2]);
        let anc = ancestors_restricted(&base, &[0, 1]);
        // Position 0 is already a wildcard; only position 1 expands.
        assert_eq!(anc.len(), 2);
    }

    #[test]
    fn packed_expansion_mirrors_rule_expansion() {
        use crate::rule::RuleLayout;
        let layout = RuleLayout::from_cardinalities(&[6, 3, 300, 2]);
        let masks = layout.masks::<u64>();
        for rule in [r(&[3, 1, 250, 0]), r(&[-1, 1, -1, 0]), r(&[-1, -1, -1, -1])] {
            let code: u64 = layout.pack(rule.values());
            let mut live = Vec::new();
            packed_live_dims(code, &masks, &mut live);
            assert_eq!(live, rule.constant_positions());
            let expanded: Vec<Rule> = (0..(1u32 << live.len()))
                .map(|subset| layout.unpack(packed_ancestor(code, &masks, &live, subset)))
                .collect();
            // Same ancestors in the same subset order as the Rule-keyed path.
            assert_eq!(expanded, ancestors(&rule));
        }
    }

    #[test]
    fn parents_are_immediate() {
        let base = r(&[0, 1, -1]);
        let p = parents(&base);
        assert_eq!(p.len(), 2);
        for parent in &p {
            assert_eq!(parent.num_constants(), base.num_constants() - 1);
            assert!(parent.is_ancestor_of(&base));
        }
    }

    #[test]
    fn ancestor_count_matches() {
        assert_eq!(ancestor_count(&r(&[0, 1, 2])), 8);
        assert_eq!(ancestor_count(&r(&[-1, -1, -1])), 1);
    }

    #[test]
    fn column_groups_partition_all_dims() {
        for g in 1..=5 {
            let groups = column_groups(9, g, 42);
            let mut all: Vec<usize> = groups.iter().flatten().copied().collect();
            all.sort_unstable();
            assert_eq!(all, (0..9).collect::<Vec<_>>(), "g={g}");
            assert_eq!(groups.len(), g.min(9));
        }
        // Deterministic in the seed.
        assert_eq!(column_groups(9, 2, 7), column_groups(9, 2, 7));
    }

    #[test]
    fn column_groups_clamp_to_dims() {
        let groups = column_groups(3, 10, 1);
        assert_eq!(groups.len(), 3);
    }

    #[test]
    #[should_panic(expected = "refusing to expand")]
    fn oversized_expansion_panics() {
        let base = Rule::from_values((0..30).collect());
        let _ = ancestors(&base);
    }
}
