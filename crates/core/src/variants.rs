//! The named SIRUM variants of Table 4.2, each toggling exactly one
//! Chapter-4 optimization over the baseline (plus Naive and Optimized).

use crate::error::SirumError;
use crate::miner::{CandidateStrategy, SirumConfig};
use crate::multirule::MultiRuleConfig;
use std::fmt;
use std::str::FromStr;

/// A row of Table 4.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// Naive SIRUM: sample-based pruning but shuffle joins — the
    /// distributed equivalent of El Gebaly et al. \[16\] (§3.1, §5.6.1).
    Naive,
    /// Baseline / BJ SIRUM: Naive + broadcast joins (§3.2).
    Baseline,
    /// Baseline + Rule Coverage Table (§4.1).
    Rct,
    /// Baseline + fast candidate pruning via inverted index (§4.2).
    FastPruning,
    /// Baseline + multi-stage ancestor generation with 2 column groups
    /// (§4.3).
    FastAncestor,
    /// Baseline + 2 rules per iteration (§4.4).
    MultiRule,
    /// All optimizations combined.
    Optimized,
}

impl Variant {
    /// All variants, in Table 4.2 order.
    pub const ALL: [Variant; 7] = [
        Variant::Naive,
        Variant::Baseline,
        Variant::Rct,
        Variant::FastPruning,
        Variant::FastAncestor,
        Variant::MultiRule,
        Variant::Optimized,
    ];

    /// Display name matching the paper's terminology.
    pub fn name(&self) -> &'static str {
        match self {
            Variant::Naive => "Naive",
            Variant::Baseline => "Baseline",
            Variant::Rct => "RCT",
            Variant::FastPruning => "FastPruning",
            Variant::FastAncestor => "FastAncestor",
            Variant::MultiRule => "Multi-rule",
            Variant::Optimized => "Optimized",
        }
    }

    /// Canonical CLI spelling (`naive`, `baseline`, `rct`, `fast-pruning`,
    /// `fast-ancestor`, `multi-rule`, `optimized`); round-trips through
    /// [`Variant::from_str`].
    pub fn cli_name(&self) -> &'static str {
        match self {
            Variant::Naive => "naive",
            Variant::Baseline => "baseline",
            Variant::Rct => "rct",
            Variant::FastPruning => "fast-pruning",
            Variant::FastAncestor => "fast-ancestor",
            Variant::MultiRule => "multi-rule",
            Variant::Optimized => "optimized",
        }
    }

    /// Build the configuration for this variant with the given `k` and
    /// sample size `|s|`.
    pub fn config(&self, k: usize, sample_size: usize) -> SirumConfig {
        // Every Table 4.2 row models one of the thesis's staged platform
        // pipelines, so the fused gain sweep (an extension, not a paper
        // variant) is off for all of them except Optimized, which collects
        // every optimization this reproduction has.
        let base = SirumConfig {
            k,
            strategy: CandidateStrategy::SampleLca { sample_size },
            broadcast_join: true,
            rct: false,
            fast_pruning: false,
            column_groups: 1,
            multirule: MultiRuleConfig::default(),
            gain_sweep: false,
            ..SirumConfig::default()
        };
        match self {
            Variant::Naive => SirumConfig {
                broadcast_join: false,
                ..base
            },
            Variant::Baseline => base,
            Variant::Rct => SirumConfig { rct: true, ..base },
            Variant::FastPruning => SirumConfig {
                fast_pruning: true,
                ..base
            },
            Variant::FastAncestor => SirumConfig {
                column_groups: 2,
                ..base
            },
            Variant::MultiRule => SirumConfig {
                multirule: MultiRuleConfig::l_rules(2),
                ..base
            },
            Variant::Optimized => SirumConfig {
                rct: true,
                fast_pruning: true,
                column_groups: 2,
                multirule: MultiRuleConfig::l_rules(2),
                gain_sweep: true,
                ..base
            },
        }
    }
}

impl fmt::Display for Variant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.cli_name())
    }
}

impl FromStr for Variant {
    type Err = SirumError;

    /// Parse the CLI spelling of a variant. Unknown spellings map to
    /// [`SirumError::InvalidConfig`] with the valid names listed.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Variant::ALL
            .iter()
            .copied()
            .find(|v| v.cli_name() == s)
            .ok_or_else(|| {
                let names: Vec<&str> = Variant::ALL.iter().map(|v| v.cli_name()).collect();
                SirumError::invalid_config(
                    "variant",
                    format!(
                        "unknown variant {s:?} (expected one of: {})",
                        names.join(", ")
                    ),
                )
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cli_names_parse_round_trip() {
        for v in Variant::ALL {
            assert_eq!(v.cli_name().parse::<Variant>().unwrap(), v);
            assert_eq!(v.to_string(), v.cli_name());
        }
        assert!(matches!(
            "turbo".parse::<Variant>(),
            Err(SirumError::InvalidConfig {
                field: "variant",
                ..
            })
        ));
    }

    #[test]
    fn baseline_has_only_broadcast_join() {
        let c = Variant::Baseline.config(10, 64);
        assert!(c.broadcast_join);
        assert!(!c.rct);
        assert!(!c.fast_pruning);
        assert_eq!(c.column_groups, 1);
        assert_eq!(c.multirule.rules_per_iter, 1);
    }

    #[test]
    fn naive_disables_broadcast() {
        assert!(!Variant::Naive.config(10, 64).broadcast_join);
    }

    #[test]
    fn each_single_optimization_variant_toggles_one_knob() {
        assert!(Variant::Rct.config(5, 16).rct);
        assert!(Variant::FastPruning.config(5, 16).fast_pruning);
        assert_eq!(Variant::FastAncestor.config(5, 16).column_groups, 2);
        assert_eq!(Variant::MultiRule.config(5, 16).multirule.rules_per_iter, 2);
    }

    #[test]
    fn optimized_enables_everything() {
        let c = Variant::Optimized.config(20, 128);
        assert!(c.broadcast_join && c.rct && c.fast_pruning);
        assert_eq!(c.column_groups, 2);
        assert_eq!(c.multirule.rules_per_iter, 2);
        assert_eq!(c.k, 20);
        assert_eq!(
            c.strategy,
            crate::miner::CandidateStrategy::SampleLca { sample_size: 128 }
        );
    }

    #[test]
    fn names_are_distinct() {
        let mut names: Vec<&str> = Variant::ALL.iter().map(Variant::name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 7);
    }
}
