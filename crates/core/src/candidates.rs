//! Candidate rule generation: exhaustive cube enumeration (the MIR
//! reference), sample-based candidate pruning via LCAs (§3.1.1), and the
//! inverted-index fast pruning of §4.2.

use crate::cancel::CancellationToken;
use crate::lattice::ancestors;
use crate::rule::{PackedCode, PackedMasks, Rule, WILDCARD};
use crate::sweep::CANCEL_POLL_ROWS;
use sirum_dataflow::hash::FxHashMap;
use sirum_table::Table;

/// Aggregates carried per candidate rule through the data-cube pipeline:
/// `(Σ t[m], Σ t[mhat], contributing pair count)`.
pub type Agg = (f64, f64, u64);

/// Merge two aggregates (the shuffle combiner).
#[inline]
pub fn merge_agg(a: &mut Agg, b: Agg) {
    a.0 += b.0;
    a.1 += b.1;
    a.2 += b.2;
}

/// Exhaustive candidate aggregation: every tuple contributes `(m, mhat, 1)`
/// to all `2^d` elements of its cube lattice. This enumerates exactly the
/// rules with non-empty support — rules with empty support have zero gain
/// (Eq 2.2) and can never be selected, so this is equivalent to exhaustive
/// candidate exploration for selection purposes.
///
/// Used as the ground truth against which sample-based pruning is tested,
/// and as the candidate strategy for data-cube exploration (§5.6.2, which
/// does not use pruning).
///
/// Polls `cancel` every [`CANCEL_POLL_ROWS`] rows and returns `None` when
/// it fires — the scan is `O(2^d · n)` and must not pin a worker past its
/// job's cancellation.
pub fn exhaustive_candidates(
    table: &Table,
    mhat: &[f64],
    cancel: Option<&CancellationToken>,
) -> Option<FxHashMap<Rule, Agg>> {
    // lint:allow(SL001) — reference helper; callers build the parallel mhat column themselves
    assert_eq!(mhat.len(), table.num_rows());
    let mut out: FxHashMap<Rule, Agg> = FxHashMap::default();
    for (i, row) in table.rows().enumerate() {
        if i.is_multiple_of(CANCEL_POLL_ROWS) && cancel.is_some_and(CancellationToken::is_cancelled)
        {
            return None;
        }
        let base = Rule::from_tuple(row);
        for anc in ancestors(&base) {
            let agg = out.entry(anc).or_insert((0.0, 0.0, 0));
            agg.0 += table.measure(i);
            agg.1 += mhat[i];
            agg.2 += 1;
        }
    }
    Some(out)
}

/// The set of LCAs of every (sample tuple, data tuple) pair, with their
/// pair-level aggregates (the first stage of sample-based pruning).
/// `measures` must be the transformed measure column.
///
/// Polls `cancel` every [`CANCEL_POLL_ROWS`] rows (`None` when it fires),
/// like [`exhaustive_candidates`] — the `|s| · n` pair scan dominates the
/// centralized baseline's iteration time.
pub fn lca_aggregates(
    table: &Table,
    measures: &[f64],
    mhat: &[f64],
    sample: &[Box<[u32]>],
    cancel: Option<&CancellationToken>,
) -> Option<FxHashMap<Rule, Agg>> {
    let mut out: FxHashMap<Rule, Agg> = FxHashMap::default();
    for (i, row) in table.rows().enumerate() {
        if i.is_multiple_of(CANCEL_POLL_ROWS) && cancel.is_some_and(CancellationToken::is_cancelled)
        {
            return None;
        }
        for s in sample {
            let lca = Rule::lca(s, row);
            let agg = out.entry(lca).or_insert((0.0, 0.0, 0));
            agg.0 += measures[i];
            agg.1 += mhat[i];
            agg.2 += 1;
        }
    }
    Some(out)
}

/// Inverted index over the sample `s` (§4.2): for each dimension attribute,
/// a map from value code to the sample rows carrying it. Lets a mapper
/// compute all `|s|` LCAs of a tuple with index lookups instead of
/// attribute-by-attribute comparison.
pub struct SampleIndex {
    rows: Vec<Box<[u32]>>,
    cols: Vec<FxHashMap<u32, Vec<u32>>>,
    /// Posting lists as bitsets over sample rows (`MASK_WORDS × 64` rows
    /// max), for O(#constants) match counting.
    mask_cols: Vec<FxHashMap<u32, SampleMask>>,
    full_mask: SampleMask,
    d: usize,
}

/// Fixed-width bitset over sample rows (up to 256 — well beyond the
/// paper's largest |s|).
type SampleMask = [u64; 4];

/// Maximum sample size the index supports.
pub const MAX_SAMPLE: usize = 256;

#[inline]
fn mask_set(mask: &mut SampleMask, i: usize) {
    mask[i / 64] |= 1u64 << (i % 64);
}

#[inline]
fn mask_and(a: &mut SampleMask, b: &SampleMask) {
    for (x, y) in a.iter_mut().zip(b) {
        *x &= y;
    }
}

#[inline]
fn mask_count(mask: &SampleMask) -> u64 {
    mask.iter().map(|w| u64::from(w.count_ones())).sum()
}

impl SampleIndex {
    /// Build the index (one pass over the sample).
    ///
    /// # Panics
    /// Panics if the sample exceeds [`MAX_SAMPLE`] rows.
    pub fn build(rows: Vec<Box<[u32]>>, d: usize) -> SampleIndex {
        // lint:allow(SL001) — unreachable via Miner (typed InvalidConfig on oversized effective samples) and via StreamingMiner (reservoir capped at MAX_SAMPLE)
        assert!(rows.len() <= MAX_SAMPLE, "sample too large for the index");
        let mut cols: Vec<FxHashMap<u32, Vec<u32>>> =
            (0..d).map(|_| FxHashMap::default()).collect();
        let mut mask_cols: Vec<FxHashMap<u32, SampleMask>> =
            (0..d).map(|_| FxHashMap::default()).collect();
        let mut full_mask = [0u64; 4];
        // lint:allow(SL002) — bounded scan: the index caps the sample at MAX_SAMPLE (256) rows
        for (i, row) in rows.iter().enumerate() {
            // lint:allow(SL001) — sample rows come from the table being mined; arity is fixed at encode time
            assert_eq!(row.len(), d);
            mask_set(&mut full_mask, i);
            for (col, &v) in row.iter().enumerate() {
                cols[col].entry(v).or_default().push(i as u32);
                mask_set(mask_cols[col].entry(v).or_insert([0u64; 4]), i);
            }
        }
        SampleIndex {
            rows,
            cols,
            mask_cols,
            full_mask,
            d,
        }
    }

    /// Sample size `|s|`.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the sample is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The sample rows.
    pub fn rows(&self) -> &[Box<[u32]>] {
        &self.rows
    }

    /// Approximate serialized size (for broadcast accounting).
    pub fn bytes_hint(&self) -> u64 {
        (self.rows.len() * self.d * 8) as u64
    }

    /// Compute the `|s|` LCAs of `tuple` with one index probe per attribute:
    /// initialize every LCA to all-wildcards, then overwrite position `col`
    /// with the constant for exactly the sample rows whose value matches
    /// (§4.2's optimization — fewer than `d` comparisons per LCA when
    /// values usually differ).
    ///
    /// `scratch` is reused across calls to avoid reallocation; it is resized
    /// to `|s|` rows of `d` values. Returns the scratch buffer content as
    /// `&[u32]` chunks of length `d`, one per sample row (in sample order).
    pub fn lcas_into<'a>(&self, tuple: &[u32], scratch: &'a mut Vec<u32>) -> &'a [u32] {
        debug_assert_eq!(tuple.len(), self.d);
        scratch.clear();
        scratch.resize(self.rows.len() * self.d, WILDCARD);
        for (col, &v) in tuple.iter().enumerate() {
            if let Some(hits) = self.cols[col].get(&v) {
                for &row in hits {
                    scratch[row as usize * self.d + col] = v;
                }
            }
        }
        scratch
    }

    /// As [`Self::lcas_into`], but reading the tuple's attribute values
    /// straight out of columnar storage (`cols[j][row]`) instead of a
    /// gathered row slice — the zero-copy data path's probe. Produces
    /// byte-identical scratch content to `lcas_into` over the gathered row.
    pub fn lcas_into_cols<'a>(
        &self,
        cols: &[&[u32]],
        row: usize,
        scratch: &'a mut Vec<u32>,
    ) -> &'a [u32] {
        debug_assert_eq!(cols.len(), self.d);
        scratch.clear();
        scratch.resize(self.rows.len() * self.d, WILDCARD);
        for (col, values) in cols.iter().enumerate() {
            let v = values[row];
            if let Some(hits) = self.cols[col].get(&v) {
                for &r in hits {
                    scratch[r as usize * self.d + col] = v;
                }
            }
        }
        scratch
    }

    /// As [`Self::lcas_into`], but producing *packed* LCA codes: every LCA
    /// starts as the all-wildcards code and the matching sample rows get
    /// their field overwritten in place — one shift-or per posting-list
    /// hit, no `d`-wide slices anywhere. Entry `j` of the result packs
    /// exactly the values `lcas_into` writes for sample row `j`.
    pub fn packed_lcas_into<'a, C: PackedCode>(
        &self,
        masks: &PackedMasks<C>,
        tuple: &[u32],
        scratch: &'a mut Vec<C>,
    ) -> &'a [C] {
        debug_assert_eq!(tuple.len(), self.d);
        debug_assert_eq!(masks.num_dims(), self.d);
        scratch.clear();
        scratch.resize(self.rows.len(), masks.all_wild());
        for (col, &v) in tuple.iter().enumerate() {
            if let Some(hits) = self.cols[col].get(&v) {
                for &row in hits {
                    let slot = &mut scratch[row as usize];
                    *slot = masks.with_constant(*slot, col, v);
                }
            }
        }
        scratch
    }

    /// As [`Self::packed_lcas_into`], reading the tuple straight out of
    /// columnar storage (the packed twin of [`Self::lcas_into_cols`]).
    pub fn packed_lcas_into_cols<'a, C: PackedCode>(
        &self,
        masks: &PackedMasks<C>,
        cols: &[&[u32]],
        row: usize,
        scratch: &'a mut Vec<C>,
    ) -> &'a [C] {
        debug_assert_eq!(cols.len(), self.d);
        debug_assert_eq!(masks.num_dims(), self.d);
        scratch.clear();
        scratch.resize(self.rows.len(), masks.all_wild());
        for (col, values) in cols.iter().enumerate() {
            let v = values[row];
            if let Some(hits) = self.cols[col].get(&v) {
                for &r in hits {
                    let slot = &mut scratch[r as usize];
                    *slot = masks.with_constant(*slot, col, v);
                }
            }
        }
        scratch
    }

    /// Number of sample tuples matching `rule` (the aggregate-adjustment
    /// divisor of §3.1.1): an intersection of the per-constant posting
    /// bitsets — O(#constants) instead of a scan of the sample.
    pub fn match_count(&self, rule: &Rule) -> u64 {
        let mut mask = self.full_mask;
        for (col, &v) in rule.values().iter().enumerate() {
            if v == WILDCARD {
                continue;
            }
            match self.mask_cols[col].get(&v) {
                Some(bits) => mask_and(&mut mask, bits),
                None => return 0,
            }
        }
        mask_count(&mask)
    }
}

/// Adjust candidate aggregates for sample multiplicity (§3.1.1): a data
/// tuple contributed once per matching sample tuple, so divide every
/// aggregate by the candidate's sample match count. Returns candidates with
/// exact `(Σ m, Σ mhat, |S_D(r)|)` over their true support sets.
///
/// # Panics
/// Panics if a candidate matches no sample tuple — impossible for rules
/// generated from LCAs (every ancestor of `lca(s, t)` covers `s`).
pub fn adjust_for_sample<I: IntoIterator<Item = (Rule, Agg)>>(
    candidates: I,
    index: &SampleIndex,
) -> Vec<(Rule, f64, f64, u64)> {
    let mut out = Vec::new();
    for (rule, (sum_m, sum_mhat, pairs)) in candidates {
        let c = index.match_count(&rule);
        // lint:allow(SL001) — documented invariant: every ancestor of lca(s, t) covers s
        assert!(c > 0, "candidate {rule:?} matches no sample tuple");
        debug_assert_eq!(pairs % c, 0, "pair multiplicity must be uniform");
        out.push((rule, sum_m / c as f64, sum_mhat / c as f64, pairs / c));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::ancestors as all_ancestors;
    use sirum_table::generators::flights;

    fn sample_rows(table: &Table, idx: &[usize]) -> Vec<Box<[u32]>> {
        idx.iter()
            .map(|&i| table.row(i).to_vec().into_boxed_slice())
            .collect()
    }

    #[test]
    fn paper_example_candidate_set() {
        // §3.1.1: sampling t4=(Sun,Chicago,London) and t9=(Thu,SF,Frankfurt)
        // yields 15 candidate rules vs 73 possible rules.
        let t = flights();
        let sample = sample_rows(&t, &[3, 8]);
        let lcas =
            lca_aggregates(&t, t.measures(), &[1.0; 14], &sample, None).expect("uncancelled");
        let mut cands: FxHashMap<Rule, Agg> = FxHashMap::default();
        for (rule, agg) in &lcas {
            for anc in all_ancestors(rule) {
                merge_agg(cands.entry(anc).or_insert((0.0, 0.0, 0)), *agg);
            }
        }
        assert_eq!(cands.len(), 15, "paper counts 15 candidates");
        // The paper compares against "73 possible rules"; the exact count
        // of distinct supported cube-lattice elements of Table 1.1 is 74
        // (an off-by-one in the thesis text). Either way the pruning cuts
        // the candidate space by ~5×.
        let supported = exhaustive_candidates(&t, &[1.0; 14], None)
            .expect("uncancelled")
            .len();
        assert_eq!(supported, 74);
        // The 9 LCAs listed in the thesis text:
        let named = [
            "(*, *, *)",
            "(*, *, London)",
            "(*, *, Frankfurt)",
            "(*, Chicago, *)",
            "(*, SF, *)",
            "(Sun, *, *)",
            "(*, SF, Frankfurt)",
            "(Sun, Chicago, London)",
            "(Thu, SF, Frankfurt)",
        ];
        assert_eq!(lcas.len(), 9);
        for n in named {
            assert!(lcas.keys().any(|r| r.display(&t) == n), "missing LCA {n}");
        }
    }

    #[test]
    fn candidate_scans_poll_cancellation() {
        // Regression for the SL002 findings this PR fixed: both candidate
        // scans used to run to completion no matter what, pinning a worker
        // for the whole O(2^d·n) (or |s|·n) pass after its job was
        // cancelled.
        let t = flights();
        let sample = sample_rows(&t, &[3, 8]);
        let token = CancellationToken::new();
        token.cancel();
        assert!(exhaustive_candidates(&t, &[1.0; 14], Some(&token)).is_none());
        assert!(lca_aggregates(&t, t.measures(), &[1.0; 14], &sample, Some(&token)).is_none());
        // An armed-but-unfired token does not perturb the result.
        let fresh = CancellationToken::new();
        assert_eq!(
            exhaustive_candidates(&t, &[1.0; 14], Some(&fresh)),
            exhaustive_candidates(&t, &[1.0; 14], None)
        );
        assert_eq!(
            lca_aggregates(&t, t.measures(), &[1.0; 14], &sample, Some(&fresh)),
            lca_aggregates(&t, t.measures(), &[1.0; 14], &sample, None)
        );
    }

    #[test]
    fn candidate_scans_notice_mid_scan_cancellation_within_one_window() {
        // Deterministic mid-scan latency bound: arm a poll-budget token so
        // the second poll — one CANCEL_POLL_ROWS window into the scan —
        // self-cancels, and require both scans to abandon there rather
        // than finish the remaining rows.
        use sirum_table::generators::income_like;
        let t = income_like(CANCEL_POLL_ROWS * 2 + 7, 42);
        let mhat = vec![1.0; t.num_rows()];
        let token = CancellationToken::new();
        token.cancel_after_polls(2);
        assert!(exhaustive_candidates(&t, &mhat, Some(&token)).is_none());
        let sample = sample_rows(&t, &[0]);
        let token = CancellationToken::new();
        token.cancel_after_polls(2);
        assert!(lca_aggregates(&t, t.measures(), &mhat, &sample, Some(&token)).is_none());
    }

    #[test]
    fn sample_adjustment_recovers_exact_sums() {
        // After dividing by sample multiplicity, candidate aggregates equal
        // the exact sums over their support sets.
        let t = flights();
        let sample = sample_rows(&t, &[3, 8, 0]);
        let index = SampleIndex::build(sample.clone(), 3);
        let mhat = vec![1.5; 14];
        let lcas = lca_aggregates(&t, t.measures(), &mhat, &sample, None).expect("uncancelled");
        let mut cands: FxHashMap<Rule, Agg> = FxHashMap::default();
        for (rule, agg) in &lcas {
            for anc in all_ancestors(rule) {
                merge_agg(cands.entry(anc).or_insert((0.0, 0.0, 0)), *agg);
            }
        }
        let adjusted = adjust_for_sample(cands, &index);
        for (rule, sum_m, sum_mhat, count) in adjusted {
            let mut exp = (0.0, 0.0, 0u64);
            for (i, row) in t.rows().enumerate() {
                if rule.matches(row) {
                    exp.0 += t.measure(i);
                    exp.1 += mhat[i];
                    exp.2 += 1;
                }
            }
            assert!((sum_m - exp.0).abs() < 1e-9, "{rule:?}");
            assert!((sum_mhat - exp.1).abs() < 1e-9, "{rule:?}");
            assert_eq!(count, exp.2, "{rule:?}");
        }
    }

    #[test]
    fn candidates_are_subset_of_exhaustive() {
        let t = flights();
        let mhat = vec![1.0; 14];
        let exhaustive = exhaustive_candidates(&t, &mhat, None).expect("uncancelled");
        let sample = sample_rows(&t, &[0, 5]);
        let index = SampleIndex::build(sample.clone(), 3);
        let lcas = lca_aggregates(&t, t.measures(), &mhat, &sample, None).expect("uncancelled");
        let mut cands: FxHashMap<Rule, Agg> = FxHashMap::default();
        for (rule, agg) in &lcas {
            for anc in all_ancestors(rule) {
                merge_agg(cands.entry(anc).or_insert((0.0, 0.0, 0)), *agg);
            }
        }
        let adjusted = adjust_for_sample(cands, &index);
        for (rule, sum_m, _mh, count) in adjusted {
            let (em, _emh, ec) = exhaustive[&rule];
            assert!((sum_m - em).abs() < 1e-9);
            assert_eq!(count, ec);
        }
    }

    #[test]
    fn exhaustive_includes_every_supported_rule() {
        let t = flights();
        let cands = exhaustive_candidates(&t, &[1.0; 14], None).expect("uncancelled");
        // (*,*,London) supported by 4 tuples with Σm = 61.
        let london = t.dict(2).code("London").unwrap();
        let rule = Rule::from_values(vec![WILDCARD, WILDCARD, london]);
        let (sum_m, _mh, count) = cands[&rule];
        assert_eq!(count, 4);
        assert!((sum_m - 61.0).abs() < 1e-9);
        // The all-wildcards rule aggregates everything.
        let (tot, _mh, n) = cands[&Rule::all_wildcards(3)];
        assert_eq!(n, 14);
        assert!((tot - 145.0).abs() < 1e-9);
    }

    #[test]
    fn index_lcas_match_naive_lcas() {
        let t = flights();
        let sample = sample_rows(&t, &[3, 8, 11]);
        let index = SampleIndex::build(sample.clone(), 3);
        let mut scratch = Vec::new();
        for row in t.rows() {
            let fast = index.lcas_into(row, &mut scratch).to_vec();
            for (j, s) in sample.iter().enumerate() {
                let naive = Rule::lca(s, row);
                let via_index = &fast[j * 3..(j + 1) * 3];
                assert_eq!(naive.values(), via_index);
            }
        }
    }

    #[test]
    fn columnar_lcas_match_row_lcas() {
        let t = flights();
        let sample = sample_rows(&t, &[3, 8, 11]);
        let index = SampleIndex::build(sample, 3);
        let frame = sirum_table::Frame::from_table(&t);
        let cols: Vec<&[u32]> = (0..3).map(|j| frame.col(j)).collect();
        let (mut a, mut b) = (Vec::new(), Vec::new());
        for (i, row) in t.rows().enumerate() {
            let via_row = index.lcas_into(row, &mut a).to_vec();
            let via_cols = index.lcas_into_cols(&cols, i, &mut b);
            assert_eq!(via_row, via_cols, "row {i}");
        }
    }

    #[test]
    fn packed_lcas_match_unpacked_lcas() {
        use crate::rule::RuleLayout;
        let t = flights();
        let sample = sample_rows(&t, &[3, 8, 11]);
        let index = SampleIndex::build(sample, 3);
        let cards: Vec<u32> = t.cardinalities().iter().map(|&c| c as u32).collect();
        let layout = RuleLayout::from_cardinalities(&cards);
        let masks = layout.masks::<u64>();
        let frame = sirum_table::Frame::from_table(&t);
        let cols: Vec<&[u32]> = (0..3).map(|j| frame.col(j)).collect();
        let (mut plain, mut packed, mut packed_cols) = (Vec::new(), Vec::new(), Vec::new());
        for (i, row) in t.rows().enumerate() {
            let want: Vec<u64> = index
                .lcas_into(row, &mut plain)
                .chunks_exact(3)
                .map(|lca| layout.pack(lca))
                .collect();
            assert_eq!(index.packed_lcas_into(&masks, row, &mut packed), want);
            assert_eq!(
                index.packed_lcas_into_cols(&masks, &cols, i, &mut packed_cols),
                want,
                "row {i}"
            );
        }
    }

    #[test]
    fn index_match_count() {
        let t = flights();
        let sample = sample_rows(&t, &[0, 1, 2, 3]);
        let index = SampleIndex::build(sample, 3);
        assert_eq!(index.match_count(&Rule::all_wildcards(3)), 4);
        let fri = t.dict(0).code("Fri").unwrap();
        let rule = Rule::from_values(vec![fri, WILDCARD, WILDCARD]);
        assert_eq!(index.match_count(&rule), 2); // t1, t2 are Friday flights
    }

    #[test]
    #[should_panic(expected = "matches no sample tuple")]
    fn adjustment_rejects_unsupported_candidates() {
        let t = flights();
        let index = SampleIndex::build(sample_rows(&t, &[0]), 3);
        let mut cands: FxHashMap<Rule, Agg> = FxHashMap::default();
        // A rule disjoint from the single sample tuple.
        let mon = t.dict(0).code("Mon").unwrap();
        cands.insert(
            Rule::from_values(vec![mon, WILDCARD, WILDCARD]),
            (1.0, 1.0, 1),
        );
        let _ = adjust_for_sample(cands, &index);
    }
}
