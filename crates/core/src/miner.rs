//! The SIRUM miner: the greedy informative-rule loop (Algorithm 2) executed
//! on the dataflow engine, with every optimization of Chapter 4 behind a
//! configuration switch so each variant of Table 4.2 can be instantiated.

use crate::cancel::CancellationToken;
use crate::candidates::{adjust_for_sample, merge_agg, Agg, SampleIndex, MAX_SAMPLE};
use crate::data::MiningData;
use crate::error::SirumError;
use crate::gain::{kl_from_parts, rule_gain, rule_gain_two_sided};
use crate::lattice::{ancestors_restricted, column_groups, MAX_EXPAND_BITS};
use crate::multirule::{select_rules, MultiRuleConfig, ScoredCandidate};
use crate::prepared::PreparedTable;
use crate::rct::{iterative_scaling_rct, Rct, MAX_RULES};
use crate::rule::{Rule, RuleLayout};
use crate::scaling::{relative_diff, ScalingConfig};
use crate::sweep::{SweepOptions, SweepOutcome};
use sirum_dataflow::{Dataset, Engine};
use sirum_table::Table;
use std::collections::HashSet;
use std::time::Instant;

/// A tuple flowing through the engine: `(dimension codes, transformed
/// measure m′, current estimate m̂, rule-coverage bit array)`.
pub type Tup = (Box<[u32]>, f64, f64, u64);

/// Scored candidates kept per partition for selection: the selection step
/// needs at most the global top 1% (multi-rule rank limit), so shipping
/// every candidate to the driver — millions for wide datasets like SUSY —
/// would only burn memory. The true candidate count still reaches the
/// driver for the rank-limit denominator. Both candidate-evaluation paths
/// (the fused sweep and the legacy staged pipeline) honor the same
/// `TOP_PER_PARTITION × partitions` driver budget.
const TOP_PER_PARTITION: usize = 4096;

/// How candidate rules are generated each iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CandidateStrategy {
    /// Sample-based candidate pruning (§3.1.1): candidates are the LCAs of
    /// `s × D` and their ancestors.
    SampleLca {
        /// Sample size `|s|` (paper default 64).
        sample_size: usize,
    },
    /// Exhaustive cube enumeration over the tuples' lattices — every
    /// supported rule is a candidate. Used by the data-cube-exploration
    /// comparator (§5.6.2), which predates sample pruning.
    FullCube,
}

/// Full configuration of a SIRUM run (one row of Table 4.2 plus the
/// evaluation knobs).
#[derive(Debug, Clone)]
pub struct SirumConfig {
    /// Number of rules to mine *in addition to* the all-wildcards rule.
    pub k: usize,
    /// Candidate generation strategy.
    pub strategy: CandidateStrategy,
    /// Iterative-scaling tolerance and iteration cap.
    pub scaling: ScalingConfig,
    /// Use broadcast (map-side) joins for `s ⋈ D` (§3.2). When false the
    /// data set is re-shuffled before the join, as Naive SIRUM does.
    pub broadcast_join: bool,
    /// Use the Rule Coverage Table for iterative scaling (§4.1).
    pub rct: bool,
    /// Use the inverted sample index for LCA computation (§4.2).
    pub fast_pruning: bool,
    /// Number of column groups for multi-stage ancestor generation (§4.3);
    /// 1 = single-stage (emit all ancestors at once).
    pub column_groups: usize,
    /// Multi-rule insertion policy (§4.4).
    pub multirule: MultiRuleConfig,
    /// Reset all multipliers to 1 whenever rules are inserted, re-deriving
    /// the model from scratch — the strategy of Sarawagi \[29\] (§5.6.2).
    pub reset_lambdas_on_insert: bool,
    /// Keep mining past `k` rules until the KL divergence drops to this
    /// target (the `l-rule*` mode of §5.5), subject to [`Self::max_rules`].
    pub target_kl: Option<f64>,
    /// Hard cap on mined rules when `target_kl` is set (default `4·k`).
    pub max_rules: Option<usize>,
    /// Score candidates with the symmetrized two-sided gain
    /// ([`rule_gain_two_sided`]), which also rewards *over*estimated
    /// regions — useful for data-cleansing style queries hunting for
    /// unusually low-measure subsets. The paper's selection loop uses the
    /// one-sided Eq 2.2 gain (the default, `false`).
    pub two_sided_gain: bool,
    /// Evaluate each iteration's candidate frontier with the fused,
    /// partition-parallel gain sweep ([`crate::sweep`]): one scan over the
    /// partitioned data folds every tuple into per-partition
    /// `(Σm, Σm̂)` accumulators for all live candidates at once, merged
    /// with a deterministic partition-ordered reduction (default `true`).
    ///
    /// When `false`, candidates are scored by the legacy staged pipeline
    /// that emulates the paper's per-platform jobs (LCA emit → shuffle →
    /// per-column-group ancestor stages → shuffle → adjust + gain); the
    /// Table 4.2 [`crate::Variant`]s use that path so their relative
    /// timings keep modeling the thesis experiments. The sweep fuses those
    /// stages, so [`Self::broadcast_join`], [`Self::fast_pruning`] and
    /// [`Self::column_groups`] have no effect while it is active.
    pub gain_sweep: bool,
    /// Scan `D` in columnar form (default `true`): partitions are
    /// [`sirum_table::FrameView`] range views over the prepared table's
    /// `Arc`-shared dimension columns ([`crate::block::TupleBlock`]), so
    /// scaling rewrites carry the codes forward by reference instead of
    /// re-boxing every row, and per-row codes are gathered into a scratch
    /// buffer only at the LCA-probe boundary.
    ///
    /// When `false`, `D` is distributed as per-row boxed tuples — the
    /// pre-columnar data path, kept as a reference. The mining output is
    /// **bit-identical** between the two representations for every
    /// variant, partition count, worker count and cancellation point
    /// (proptested), so this knob trades only speed, never results.
    pub columnar: bool,
    /// Intern rules as dense packed integer codes on the gain-sweep hot
    /// path (default `true`): each dimension gets a bit-field sized by
    /// its dictionary cardinality ([`crate::rule::RuleLayout`]), so LCA
    /// combining probes a `u64`/`u128`-keyed map (integer hash + compare
    /// instead of slice hashing) and ancestor expansion is bit surgery.
    /// Falls back to the `Rule`-keyed maps automatically when the summed
    /// widths exceed 128 bits; only meaningful while
    /// [`Self::gain_sweep`] is active. The mining output is
    /// **bit-identical** either way (proptested), so this knob trades
    /// only speed, never results.
    pub packed_codes: bool,
    /// Seed for sampling and column-group shuffling.
    pub seed: u64,
}

impl Default for SirumConfig {
    /// Optimized SIRUM defaults (all Chapter-4 optimizations on, one rule
    /// per iteration).
    fn default() -> Self {
        SirumConfig {
            k: 10,
            strategy: CandidateStrategy::SampleLca { sample_size: 64 },
            scaling: ScalingConfig::default(),
            broadcast_join: true,
            rct: true,
            fast_pruning: true,
            column_groups: 2,
            multirule: MultiRuleConfig::default(),
            reset_lambdas_on_insert: false,
            target_kl: None,
            max_rules: None,
            two_sided_gain: false,
            gain_sweep: true,
            columnar: true,
            packed_codes: true,
            seed: 42,
        }
    }
}

impl SirumConfig {
    /// Validate every strategy/variant/column-group/multirule invariant,
    /// naming the offending field. [`Miner::try_mine`] calls this before
    /// touching the data, so invalid combinations fail at request time
    /// rather than as mid-mine assertions.
    pub fn validate(&self) -> Result<(), SirumError> {
        if let CandidateStrategy::SampleLca { sample_size: 0 } = self.strategy {
            return Err(SirumError::invalid_config(
                "strategy.sample_size",
                "must be ≥ 1 (an empty sample prunes every candidate)",
            ));
        }
        if self.column_groups == 0 {
            return Err(SirumError::invalid_config(
                "column_groups",
                "must be ≥ 1 (1 = single-stage ancestor generation)",
            ));
        }
        if self.multirule.rules_per_iter == 0 {
            return Err(SirumError::invalid_config(
                "multirule.rules_per_iter",
                "must be ≥ 1",
            ));
        }
        if !(self.multirule.top_fraction > 0.0 && self.multirule.top_fraction <= 1.0) {
            return Err(SirumError::invalid_config(
                "multirule.top_fraction",
                format!("must be in (0, 1], got {}", self.multirule.top_fraction),
            ));
        }
        if !(0.0..=1.0).contains(&self.multirule.min_gain_fraction) {
            return Err(SirumError::invalid_config(
                "multirule.min_gain_fraction",
                format!(
                    "must be in [0, 1], got {}",
                    self.multirule.min_gain_fraction
                ),
            ));
        }
        if !(self.scaling.epsilon > 0.0 && self.scaling.epsilon.is_finite()) {
            return Err(SirumError::invalid_config(
                "scaling.epsilon",
                format!(
                    "must be a positive finite tolerance, got {}",
                    self.scaling.epsilon
                ),
            ));
        }
        if self.scaling.max_iterations == 0 {
            return Err(SirumError::invalid_config(
                "scaling.max_iterations",
                "must be ≥ 1",
            ));
        }
        if let Some(t) = self.target_kl {
            if !(t >= 0.0 && t.is_finite()) {
                return Err(SirumError::invalid_config(
                    "target_kl",
                    format!("must be a finite KL value ≥ 0, got {t}"),
                ));
            }
        }
        if let Some(m) = self.max_rules {
            if m == 0 {
                return Err(SirumError::invalid_config("max_rules", "must be ≥ 1"));
            }
        }
        Ok(())
    }

    /// The run's rule budget: wildcard + priors + mined rules (`k`, or
    /// `max_rules` when mining to a KL target).
    fn rule_budget(&self, priors: usize) -> usize {
        1 + priors + self.max_rules.unwrap_or(4 * self.k).max(self.k)
    }
}

/// A progress snapshot delivered to the [`Miner`]'s observer after each
/// rule-generation iteration (see [`Miner::with_observer`]).
#[derive(Debug, Clone, Copy)]
pub struct IterationEvent {
    /// 1-based index of the iteration that just completed.
    pub iteration: usize,
    /// Rules mined so far, beyond the all-wildcards rule and any priors.
    pub rules_mined: usize,
    /// Total rules in the model (wildcard + priors + mined).
    pub rules_total: usize,
    /// KL divergence after this iteration's scaling pass.
    pub kl: f64,
    /// Wall-clock seconds since the run started.
    pub elapsed_secs: f64,
}

/// What an observer wants the miner to do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IterationDecision {
    /// Keep mining.
    Continue,
    /// Stop after this iteration and return the rules mined so far; the
    /// result is marked [`MiningResult::cancelled`].
    Stop,
}

/// Observer callback type: called after every mining iteration.
pub type IterationObserver = dyn Fn(&IterationEvent) -> IterationDecision + Send + Sync;

/// One mined rule with its reporting aggregates (a row of Table 1.2).
#[derive(Debug, Clone)]
pub struct MinedRule {
    /// The rule.
    pub rule: Rule,
    /// `AVG(m)` over the rule's support set, in the *original* measure scale.
    pub avg_measure: f64,
    /// `COUNT(*)` — support-set size.
    pub count: u64,
    /// Information gain at selection time (0 for the seed rules).
    pub gain: f64,
}

/// Wall-clock breakdown of a mining run by pipeline step (the quantities
/// profiled in Figs 3.1 and 3.2).
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseTimings {
    /// Candidate pruning: computing `LCA(s, D)` (or the tuple-rule stage).
    /// Zero when the fused gain sweep is active.
    pub candidate_pruning: f64,
    /// Ancestor generation along the cube lattice. Zero when the fused
    /// gain sweep is active.
    pub ancestor_generation: f64,
    /// Gain computation, sample adjustment and selection.
    pub gain_computation: f64,
    /// The fused partition-parallel gain sweep ([`crate::sweep`]), which
    /// performs pruning, ancestor generation and aggregate computation in
    /// one pass; zero on the legacy staged path.
    pub gain_sweep: f64,
    /// Iterative scaling (including BA/RCT maintenance and write-out).
    pub iterative_scaling: f64,
    /// Whole run.
    pub total: f64,
}

impl PhaseTimings {
    /// Total rule-generation time (the paper's "Rule Generation" bar).
    pub fn rule_generation(&self) -> f64 {
        self.candidate_pruning + self.ancestor_generation + self.gain_computation + self.gain_sweep
    }
}

/// Everything a mining run produces.
#[derive(Debug, Clone)]
pub struct MiningResult {
    /// Mined rules in insertion order, beginning with `(*, …, *)` (and any
    /// prior-knowledge rules that seeded the run).
    pub rules: Vec<MinedRule>,
    /// KL divergence after the seed rules and after every mining iteration.
    pub kl_trace: Vec<f64>,
    /// Wall-clock phase breakdown.
    pub timings: PhaseTimings,
    /// Iterative-scaling λ-update counts, one entry per scaling run.
    pub scaling_iterations: Vec<usize>,
    /// Total candidate-rule key-value pairs emitted by ancestor-generation
    /// mappers (the quantity of Fig 5.8).
    pub ancestors_emitted: u64,
    /// Number of rule-generation iterations executed.
    pub iterations: usize,
    /// Measure-transform shift applied before mining.
    pub transform_shift: f64,
    /// True when an [`IterationObserver`] stopped the run early; the rules
    /// mined up to that point are still returned.
    pub cancelled: bool,
}

impl MiningResult {
    /// Final KL divergence of the rule set (the seed KL is always present).
    pub fn final_kl(&self) -> f64 {
        self.kl_trace.last().copied().unwrap_or(f64::NAN)
    }

    /// Information gain as defined in §5.1: KL with only the all-wildcards
    /// rule minus KL with the full rule set.
    pub fn information_gain(&self) -> f64 {
        self.kl_trace[0] - self.final_kl()
    }

    /// Render the rule list like Table 1.2.
    pub fn render(&self, table: &Table) -> String {
        let mut out = String::new();
        out.push_str("Rule ID | Rule | AVG(m) | count\n");
        for (i, r) in self.rules.iter().enumerate() {
            out.push_str(&format!(
                "{} | {} | {:.4} | {}\n",
                i + 1,
                r.rule.display(table),
                r.avg_measure,
                r.count
            ));
        }
        out
    }
}

/// The SIRUM mining driver, bound to a dataflow engine.
pub struct Miner {
    engine: Engine,
    config: SirumConfig,
    observer: Option<Box<IterationObserver>>,
    cancellation: Option<CancellationToken>,
}

impl Miner {
    /// Create a miner.
    pub fn new(engine: Engine, config: SirumConfig) -> Self {
        Miner {
            engine,
            config,
            observer: None,
            cancellation: None,
        }
    }

    /// Attach a progress observer, called after every mining iteration with
    /// an [`IterationEvent`]. Returning [`IterationDecision::Stop`] cancels
    /// the run gracefully: the rules mined so far are returned and the
    /// result is marked [`MiningResult::cancelled`].
    pub fn with_observer(
        mut self,
        observer: impl Fn(&IterationEvent) -> IterationDecision + Send + Sync + 'static,
    ) -> Self {
        self.observer = Some(Box::new(observer));
        self
    }

    /// Attach a [`CancellationToken`]: the miner polls it at every
    /// iteration boundary and stops gracefully once it is cancelled,
    /// returning the rules mined so far with [`MiningResult::cancelled`]
    /// set. This is the thread-safe complement of an observer returning
    /// [`IterationDecision::Stop`] — any thread holding a clone of the
    /// token can cancel the run.
    pub fn with_cancellation(mut self, token: CancellationToken) -> Self {
        self.cancellation = Some(token);
        self
    }

    /// The miner's configuration.
    pub fn config(&self) -> &SirumConfig {
        &self.config
    }

    /// The underlying engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Mine `k` informative rules from `table` (Algorithm 2), validating
    /// the configuration and dataset first.
    pub fn try_mine(&self, table: &Table) -> Result<MiningResult, SirumError> {
        self.try_mine_with_prior(table, &[])
    }

    /// Mine with prior-knowledge rules already in the model (the data-cube
    /// exploration setting of §5.6.2 / Table 1.3): the seed rule set is
    /// `{(*,…,*)} ∪ prior`, and `k` additional rules are mined.
    ///
    /// # Errors
    /// * [`SirumError::EmptyDataset`] — `table` has no rows.
    /// * [`SirumError::InvalidConfig`] — a configuration invariant fails
    ///   (see [`SirumConfig::validate`]) or the rule budget exceeds the
    ///   bit-array capacity.
    /// * [`SirumError::InvalidMeasure`] — non-finite measure values.
    /// * [`SirumError::Dataflow`] — the engine hit a spill-I/O failure
    ///   mid-run.
    pub fn try_mine_with_prior(
        &self,
        table: &Table,
        prior: &[Rule],
    ) -> Result<MiningResult, SirumError> {
        // Config is validated before the data so error precedence matches
        // the pre-`PreparedTable` behavior (config errors win).
        self.config.validate()?;
        let prepared = PreparedTable::try_new(table)?;
        self.try_mine_prepared(&prepared, prior)
    }

    /// Mine from a [`PreparedTable`] — the same run as
    /// [`Self::try_mine_with_prior`], minus the per-request validation,
    /// measure-transform fit and row re-encoding, which the caller paid
    /// once at preparation time. This is the hot path of the service
    /// layer's shared catalog: repeated requests against one registered
    /// table reuse its preparation.
    ///
    /// # Errors
    /// As [`Self::try_mine_with_prior`], except the data errors
    /// ([`SirumError::EmptyDataset`], [`SirumError::InvalidMeasure`]) were
    /// already surfaced by [`PreparedTable::try_new`].
    pub fn try_mine_prepared(
        &self,
        prepared: &PreparedTable,
        prior: &[Rule],
    ) -> Result<MiningResult, SirumError> {
        let run_start = Instant::now();
        let cfg = &self.config;
        cfg.validate()?;
        let d = prepared.num_dims();
        let n = prepared.num_rows();
        let rule_budget = cfg.rule_budget(prior.len());
        if rule_budget > MAX_RULES {
            return Err(SirumError::invalid_config(
                "k/max_rules",
                format!(
                    "rule budget {rule_budget} (1 + {} priors + mined rules) exceeds \
                     the {MAX_RULES}-rule bit-array limit",
                    prior.len()
                ),
            ));
        }
        if let Some(bad) = prior.iter().find(|r| r.arity() != d) {
            return Err(SirumError::invalid_config(
                "prior",
                format!(
                    "prior rule has {} dimensions but the table has {d}",
                    bad.arity()
                ),
            ));
        }
        // Any candidate pass ultimately materializes the full lattice of
        // every LCA: a sample tuple always pairs with itself, so a
        // d-constant LCA — and hence 2^d candidates — is guaranteed under
        // sample pruning (and FullCube expands each tuple's own 2^d).
        // Column grouping only stages that emission; it does not shrink
        // the candidate set. Past MAX_EXPAND_BITS the run is unaffordable
        // on either evaluation path, so reject up front instead of
        // asserting (sweep) or grinding unboundedly (staged).
        if d > MAX_EXPAND_BITS {
            return Err(SirumError::invalid_config(
                "table.dims",
                format!(
                    "{d} dimension attributes imply 2^{d} candidate rules per \
                     tuple lattice, beyond the 2^{MAX_EXPAND_BITS} expansion \
                     limit; project the table first"
                ),
            ));
        }
        // The inverted sample index is a fixed-width bitset over sample
        // rows; an effective sample beyond its capacity would panic inside
        // the build. (The sample is clamped to the row count, so only the
        // post-clamp size matters.)
        if let CandidateStrategy::SampleLca { sample_size } = cfg.strategy {
            if sample_size.min(n) > MAX_SAMPLE {
                return Err(SirumError::invalid_config(
                    "strategy.sample_size",
                    format!(
                        "effective sample size {} exceeds the {MAX_SAMPLE}-row \
                         index limit",
                        sample_size.min(n)
                    ),
                ));
            }
        }

        let transform = prepared.transform();
        let mut timings = PhaseTimings::default();
        let mut scaling_iterations = Vec::new();
        let mut ancestors_emitted = 0u64;

        // Packed-code layout for the sweep hot path, derived once from the
        // dictionary cardinalities the prepared frame carries. Oversized
        // layouts (> 128 bits) fall back to Rule-keyed maps inside the
        // sweep dispatch, so this is always safe to hand over.
        let sweep_opts = if cfg.packed_codes {
            SweepOptions::packed(RuleLayout::from_cardinalities(prepared.frame().cards()))
        } else {
            SweepOptions::rule_keyed()
        };

        // Distribute D and cache it: columnar blocks over the prepared
        // table's shared columns (the default), or per-row boxed tuples on
        // the row-major reference path.
        let mut data =
            self.cache_swap(None, MiningData::seed(&self.engine, prepared, cfg.columnar));

        // Seed rule set: all-wildcards first (required by §2.2), then priors.
        let mut rules: Vec<Rule> = Vec::with_capacity(rule_budget);
        rules.push(Rule::all_wildcards(d));
        rules.extend(prior.iter().cloned());
        let mut lambdas = vec![1.0f64; rules.len()];
        let (mut m_sums, counts) = data.rule_sums(&rules);
        let mut mined: Vec<MinedRule> = rules
            .iter()
            .zip(m_sums.iter().zip(&counts))
            .map(|(rule, (&sum, &count))| MinedRule {
                rule: rule.clone(),
                avg_measure: transform.invert_avg(sum / count.max(1) as f64),
                count,
                gain: 0.0,
            })
            .collect();

        // Fit the seed model.
        let new_range = 0..rules.len();
        data = self.run_scaling(
            data,
            &rules,
            &m_sums,
            &mut lambdas,
            new_range,
            &mut timings,
            &mut scaling_iterations,
        );
        let mut kl_trace = vec![self.compute_kl(&data)];
        if let Err(e) = self.engine.health() {
            data.free();
            return Err(e.into());
        }

        // Draw the candidate-pruning sample once (§3.1.1) and build its
        // inverted index (§4.2); the index is also what adjusts aggregates.
        let index = match cfg.strategy {
            CandidateStrategy::SampleLca { sample_size } => {
                let rows: Vec<Box<[u32]>> = data.sample_dims(sample_size, cfg.seed);
                let idx = SampleIndex::build(rows, d);
                let hint = idx.bytes_hint();
                Some(self.engine.broadcast_sized(idx, hint))
            }
            CandidateStrategy::FullCube => None,
        };

        // Greedy loop (Algorithm 2).
        let mut iterations = 0usize;
        let mut cancelled = false;
        loop {
            // Cooperative cancellation: polled at every iteration boundary,
            // before the next candidate-generation pass is launched.
            if self
                .cancellation
                .as_ref()
                .is_some_and(CancellationToken::is_cancelled)
            {
                cancelled = true;
                break;
            }
            let mined_so_far = rules.len() - 1 - prior.len();
            let done_k = mined_so_far >= cfg.k;
            let done = match cfg.target_kl {
                None => done_k,
                Some(target) => {
                    let cap = cfg.max_rules.unwrap_or(4 * cfg.k).max(cfg.k);
                    (done_k && kl_trace.last().copied().unwrap_or(f64::MAX) <= target)
                        || mined_so_far >= cap
                }
            };
            if done {
                break;
            }

            let remaining = match cfg.target_kl {
                None => cfg.k - mined_so_far,
                Some(_) => cfg.max_rules.unwrap_or(4 * cfg.k).max(cfg.k) - mined_so_far,
            };
            let (mut candidates, candidate_total, sweep_cancelled) = self.generate_candidates(
                &data,
                index.as_deref(),
                &rules,
                &sweep_opts,
                &mut timings,
                &mut ancestors_emitted,
            );
            if sweep_cancelled {
                // The cancellation token flipped mid-sweep (polled at
                // partition boundaries): abandon the iteration without
                // selecting from partial aggregates.
                cancelled = true;
                break;
            }
            let select_cfg = MultiRuleConfig {
                rules_per_iter: cfg.multirule.rules_per_iter.min(remaining).max(1),
                ..cfg.multirule
            };
            let t_sel = Instant::now();
            let picked = select_rules(&mut candidates, &select_cfg, candidate_total as usize);
            timings.gain_computation += t_sel.elapsed().as_secs_f64();
            if picked.is_empty() {
                break; // estimates already explain D: no positive-gain rule
            }

            let first_new = rules.len();
            for c in &picked {
                rules.push(c.rule.clone());
                lambdas.push(1.0);
                m_sums.push(c.sum_m);
                mined.push(MinedRule {
                    rule: c.rule.clone(),
                    avg_measure: transform.invert_avg(c.sum_m / c.count.max(1) as f64),
                    count: c.count,
                    gain: c.gain,
                });
            }
            data = self.run_scaling(
                data,
                &rules,
                &m_sums,
                &mut lambdas,
                first_new..rules.len(),
                &mut timings,
                &mut scaling_iterations,
            );
            kl_trace.push(self.compute_kl(&data));
            iterations += 1;
            if let Err(e) = self.engine.health() {
                data.free();
                return Err(e.into());
            }
            if let Some(observer) = &self.observer {
                let event = IterationEvent {
                    iteration: iterations,
                    rules_mined: rules.len() - 1 - prior.len(),
                    rules_total: rules.len(),
                    kl: kl_trace.last().copied().unwrap_or(f64::NAN),
                    elapsed_secs: run_start.elapsed().as_secs_f64(),
                };
                if observer(&event) == IterationDecision::Stop {
                    cancelled = true;
                    break;
                }
            }
        }

        data.free();
        timings.total = run_start.elapsed().as_secs_f64();
        Ok(MiningResult {
            rules: mined,
            kl_trace,
            timings,
            scaling_iterations,
            ancestors_emitted,
            iterations,
            transform_shift: transform.shift(),
            cancelled,
        })
    }

    /// Cache a freshly produced dataset (except in DiskMr mode, whose stage
    /// outputs are already disk-materialized) and free its predecessor.
    fn cache_swap(&self, old: Option<MiningData>, new: MiningData) -> MiningData {
        let cached = new.cached(self.engine.mode());
        if let Some(old) = old {
            old.free();
        }
        cached
    }

    /// One KL evaluation pass (Eq in §2.3, assembled from aggregates).
    fn compute_kl(&self, data: &MiningData) -> f64 {
        let (s1, sum_m, sum_mhat) = data.kl_parts();
        kl_from_parts(s1, sum_m, sum_mhat)
    }

    /// Run iterative scaling after appending rules `new` to the model,
    /// returning the dataset with updated estimates (and bit arrays when
    /// the RCT path is active).
    #[allow(clippy::too_many_arguments)]
    fn run_scaling(
        &self,
        mut data: MiningData,
        rules: &[Rule],
        m_sums: &[f64],
        lambdas: &mut [f64],
        new: std::ops::Range<usize>,
        timings: &mut PhaseTimings,
        scaling_iterations: &mut Vec<usize>,
    ) -> MiningData {
        let start = Instant::now();
        let cfg = &self.config;

        if cfg.reset_lambdas_on_insert {
            // Sarawagi [29]: re-derive the whole model from scratch.
            lambdas.iter_mut().for_each(|l| *l = 1.0);
            let reset = data.reset_mhat();
            data = self.cache_swap(Some(data), reset);
        }

        // Pass 1 (both scaling paths): update bit arrays for the newly
        // added rules. The RCT groups by them; Algorithm 1 reads them as
        // precomputed rule coverage — `scaling_sums` walks each row's set
        // bits and `scale_mhat` tests one bit instead of re-matching rules
        // against dimension codes on every pass. The rule budget is
        // capped at the bit-array width for every run (see
        // `try_mine_prepared`), so indices always fit the mask word.
        let new_rules: Vec<(usize, Rule)> = new.clone().map(|i| (i, rules[i].clone())).collect();
        let updated = data.update_ba(new_rules);
        data = self.cache_swap(Some(data), updated);

        if cfg.rct {
            // Pass 2: group by BA to build the RCT (small, driver-resident).
            let mut rct = Rct::from_partials(data.build_rct_partials());

            // Scaling runs entirely on the RCT.
            let outcome =
                iterative_scaling_rct(&mut rct, rules.len(), m_sums, lambdas, &cfg.scaling);
            scaling_iterations.push(outcome.iterations);

            // Pass 3: write the converged estimates back to D.
            let written = data.write_mhat(lambdas.to_vec());
            data = self.cache_swap(Some(data), written);
        } else {
            // Algorithm 1 against the distributed dataset: every loop pays
            // one sums pass and (if not converged) one update pass over D.
            let mut iterations = 0usize;
            loop {
                let mhat_sums = data.scaling_sums(rules.len());
                let mut next = usize::MAX;
                let mut worst = 0.0f64;
                for i in 0..rules.len() {
                    let diff = relative_diff(m_sums[i], mhat_sums[i]);
                    if diff > worst {
                        worst = diff;
                        next = i;
                    }
                }
                if next == usize::MAX
                    || worst <= cfg.scaling.epsilon
                    || iterations >= cfg.scaling.max_iterations
                {
                    break;
                }
                iterations += 1;
                let factor = m_sums[next] / mhat_sums[next];
                lambdas[next] *= factor;
                let updated = data.scale_mhat(next, factor);
                data = self.cache_swap(Some(data), updated);
            }
            scaling_iterations.push(iterations);
        }

        timings.iterative_scaling += start.elapsed().as_secs_f64();
        data
    }

    /// Candidate generation for one iteration. On the default path this is
    /// one fused, partition-parallel gain sweep ([`crate::sweep`]); with
    /// [`SirumConfig::gain_sweep`] off it is the legacy staged pipeline —
    /// LCA join (or tuple stage), staged ancestor generation, sample
    /// adjustment, gain scoring — that emulates the paper's platform jobs.
    ///
    /// Returns the scored candidates, the true candidate count (for the
    /// multi-rule rank limit) and whether a cancellation token stopped the
    /// pass mid-sweep.
    fn generate_candidates(
        &self,
        data: &MiningData,
        index: Option<&SampleIndex>,
        rules: &[Rule],
        sweep_opts: &SweepOptions,
        timings: &mut PhaseTimings,
        ancestors_emitted: &mut u64,
    ) -> (Vec<ScoredCandidate>, u64, bool) {
        let cfg = &self.config;
        let d = rules[0].arity();
        let gain_fn: fn(f64, f64) -> f64 = if cfg.two_sided_gain {
            rule_gain_two_sided
        } else {
            rule_gain
        };

        if cfg.gain_sweep {
            let t0 = Instant::now();
            let SweepOutcome {
                candidates,
                distinct_candidates,
                pairs_emitted,
                cancelled,
            } = data.sweep(d, index, self.cancellation.as_ref(), sweep_opts);
            *ancestors_emitted += pairs_emitted;
            let existing: HashSet<&Rule> = rules.iter().collect();
            let mut result: Vec<ScoredCandidate> = candidates
                .into_iter()
                .filter(|(rule, _, _, _)| !existing.contains(rule))
                .map(|(rule, sum_m, sum_mhat, count)| ScoredCandidate {
                    gain: gain_fn(sum_m, sum_mhat),
                    rule,
                    sum_m,
                    count,
                })
                .collect();
            // Same driver-memory guard as the staged path's per-partition
            // truncation: selection only ever reads the top rank-limit
            // candidates, so cap what reaches it (millions for wide
            // full-cube datasets otherwise). The stable gain sort keeps
            // tie order — and therefore the selected sequence —
            // deterministic.
            let keep = TOP_PER_PARTITION * data.num_partitions().max(1);
            if result.len() > keep {
                result.sort_by(|a, b| b.gain.total_cmp(&a.gain));
                result.truncate(keep);
            }
            timings.gain_sweep += t0.elapsed().as_secs_f64();
            return (result, distinct_candidates, cancelled);
        }

        let partitions = self.engine.config().partitions;

        // ---- Candidate pruning: LCA(s, D) (§3.1.1 / §4.2) ----------------
        let t0 = Instant::now();
        let mut cand =
            data.lca_candidates(partitions, index, d, cfg.broadcast_join, cfg.fast_pruning);
        timings.candidate_pruning += t0.elapsed().as_secs_f64();

        // ---- Ancestor generation (§3.1.1 single-stage / §4.3 grouped) ----
        let t1 = Instant::now();
        let stages_before = self.engine.metrics().stage_count();
        let groups = column_groups(d, cfg.column_groups.max(1), cfg.seed);
        for (gi, group) in groups.iter().enumerate() {
            let group = group.clone();
            let label = format!("ancestors-g{gi}");
            let expanded: Dataset<(Rule, Agg)> =
                cand.flat_map(&label, move |(rule, agg): &(Rule, Agg)| {
                    let agg = *agg;
                    ancestors_restricted(rule, &group)
                        .into_iter()
                        .map(move |a| (a, agg))
                });
            let reduced = expanded.reduce_by_key(&format!("anc-agg-g{gi}"), partitions, merge_agg);
            expanded.free();
            cand.free();
            cand = reduced;
        }
        // Count emitted ancestor pairs (Fig 5.8) from the stage records.
        for stage in self
            .engine
            .metrics()
            .stages()
            .iter()
            .skip(stages_before)
            .filter(|s| s.label.starts_with("ancestors-g"))
        {
            *ancestors_emitted += stage.records_out();
        }
        timings.ancestor_generation += t1.elapsed().as_secs_f64();

        // ---- Sample adjustment + gain computation (§3.1.1, Eq 2.2) -------
        // Each reducer keeps only its top candidates by gain, honoring the
        // TOP_PER_PARTITION driver budget (see the constant's docs).
        let t2 = Instant::now();
        let scored_ds: Dataset<(Rule, f64, f64, u64)> =
            cand.map_partitions("adjust+gain", move |_, items: &[(Rule, Agg)]| {
                let mut scored: Vec<(Rule, f64, f64, u64)> = match index {
                    Some(idx) => adjust_for_sample(items.iter().cloned(), idx)
                        .into_iter()
                        .map(|(rule, sm, smh, cnt)| (rule, gain_fn(sm, smh), sm, cnt))
                        .collect(),
                    None => items
                        .iter()
                        .map(|(rule, (sm, smh, cnt))| (rule.clone(), gain_fn(*sm, *smh), *sm, *cnt))
                        .collect(),
                };
                if scored.len() > TOP_PER_PARTITION {
                    scored.sort_by(|a, b| b.1.total_cmp(&a.1));
                    scored.truncate(TOP_PER_PARTITION);
                }
                scored
            });
        // Total candidates = records entering the adjust+gain stage.
        let candidate_total: u64 = self
            .engine
            .metrics()
            .stages()
            .last()
            .map(|s| s.tasks.iter().map(|t| t.records_in).sum())
            .unwrap_or(0);
        let scored = scored_ds.collect();
        scored_ds.free();
        cand.free();
        let existing: HashSet<&Rule> = rules.iter().collect();
        let result: Vec<ScoredCandidate> = scored
            .into_iter()
            .filter(|(rule, _, _, _)| !existing.contains(rule))
            .map(|(rule, gain, sum_m, count)| ScoredCandidate {
                rule,
                gain,
                sum_m,
                count,
            })
            .collect();
        timings.gain_computation += t2.elapsed().as_secs_f64();
        (result, candidate_total, false)
    }
}
