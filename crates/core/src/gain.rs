//! Information gain (Eq 2.2) and Kullback–Leibler divergence (§2.3):
//! the scoring functions of informative rule mining.

/// Information gain of a candidate rule (Eq 2.2):
/// `gain(r) = Σ_{t⊨r} t[m] · log(Σ_{t⊨r} t[m] / Σ_{t⊨r} t[mhat])`.
///
/// Rules whose support-set measure is underestimated get positive gain;
/// rules already in `R` get (numerically) zero gain because their sums are
/// constrained equal. Empty or zero-mass supports score zero.
#[inline]
pub fn rule_gain(sum_m: f64, sum_mhat: f64) -> f64 {
    if sum_m <= 0.0 || sum_mhat <= 0.0 {
        return 0.0;
    }
    sum_m * (sum_m / sum_mhat).ln()
}

/// Two-sided gain variant (extension; see DESIGN.md): also rewards rules
/// whose support is *over*estimated, symmetrizing Eq 2.2 the way the
/// binary-measure formulation of El Gebaly et al. does. Not used by the
/// paper's selection loop, but useful for data-cleansing style queries that
/// look for unusually *low* measure regions.
///
/// Semantics at the boundary match [`rule_gain`]: a support with no true
/// mass (`Σm ≤ 0`) carries no information in either direction, and a
/// zero/negative estimate sum (`Σm̂ ≤ 0`) cannot be scored against — both
/// score exactly `0.0`, never a sign-flipped or absolute variant of some
/// other formula. Otherwise the score is `|Eq 2.2|`.
#[inline]
pub fn rule_gain_two_sided(sum_m: f64, sum_mhat: f64) -> f64 {
    if sum_m <= 0.0 || sum_mhat <= 0.0 {
        return 0.0;
    }
    (sum_m * (sum_m / sum_mhat).ln()).abs()
}

/// KL divergence between the (normalized) true measure distribution and the
/// (normalized) estimated distribution: `Σ p log(p/q)` with
/// `p = m/Σm`, `q = mhat/Σmhat`. Tuples with `m = 0` contribute zero.
///
/// Total over all float *values*, with saturating semantics at the edges
/// (these are reachable from user data — e.g. an all-zero measure column —
/// through [`crate::evaluate`]):
///
/// * `Σm ≤ 0` — the true distribution has no mass, so there is nothing to
///   diverge from: returns `0.0`;
/// * some tuple has `m > 0` but `mhat ≤ 0` (or `Σm̂ ≤ 0`) — the model
///   assigns zero/negative density where the data has mass, the supremum
///   of divergence: returns `f64::INFINITY`.
///
/// # Panics
/// Panics when the slices differ in length: every caller builds `mhat` as
/// a parallel array over the same tuples as `m`, so a mismatch is driver
/// corruption that must fail loudly, not score quietly.
pub fn kl_divergence(m: &[f64], mhat: &[f64]) -> f64 {
    // lint:allow(SL001) — parallel-array contract; a length mismatch is a caller logic error, not user data
    assert_eq!(m.len(), mhat.len());
    let sum_m: f64 = m.iter().sum();
    let sum_mhat: f64 = mhat.iter().sum();
    if sum_m <= 0.0 {
        return 0.0;
    }
    if sum_mhat <= 0.0 {
        return f64::INFINITY;
    }
    let mut s1 = 0.0;
    for (&mi, &qi) in m.iter().zip(mhat) {
        if mi > 0.0 {
            if qi <= 0.0 {
                return f64::INFINITY;
            }
            s1 += mi * (mi / qi).ln();
        }
    }
    kl_from_parts(s1, sum_m, sum_mhat)
}

/// Assemble KL divergence from one-pass aggregates:
/// `s1 = Σ_{m>0} m·ln(m/mhat)`, `sum_m = Σ m`, `sum_mhat = Σ mhat`.
///
/// Derivation: with `p = m/M`, `q = mhat/Q`,
/// `Σ p·ln(p/q) = s1/M + ln(Q/M)`.
#[inline]
pub fn kl_from_parts(s1: f64, sum_m: f64, sum_mhat: f64) -> f64 {
    let kl = s1 / sum_m + (sum_mhat / sum_m).ln();
    // Numerical noise can push a converged KL slightly negative.
    kl.max(0.0)
}

/// Binary-measure KL divergence in the style of El Gebaly et al. \[16\]
/// (§2.4, §5.6.1): treats each tuple's measure as a Bernoulli outcome with
/// estimated success probability `mhat` (clamped to `(ε, 1-ε)`), and sums
/// the per-tuple Bernoulli divergences.
pub fn binary_kl(m: &[f64], mhat: &[f64]) -> f64 {
    const EPS: f64 = 1e-9;
    // lint:allow(SL001) — parallel-array contract; a length mismatch is a caller logic error, not user data
    assert_eq!(m.len(), mhat.len());
    let mut total = 0.0;
    for (&mi, &qi) in m.iter().zip(mhat) {
        debug_assert!(mi == 0.0 || mi == 1.0, "binary measure expected");
        let q = qi.clamp(EPS, 1.0 - EPS);
        total += if mi >= 0.5 {
            (1.0 / q).ln()
        } else {
            (1.0 / (1.0 - q)).ln()
        };
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gain_positive_iff_underestimated() {
        assert!(rule_gain(10.0, 5.0) > 0.0);
        assert!(rule_gain(5.0, 10.0) < 0.0);
        assert_eq!(rule_gain(5.0, 5.0), 0.0);
        assert_eq!(rule_gain(0.0, 5.0), 0.0);
        assert_eq!(rule_gain(5.0, 0.0), 0.0);
    }

    #[test]
    fn gain_grows_with_support_mass() {
        // Same ratio, more mass → more gain (big supports matter more).
        assert!(rule_gain(20.0, 10.0) > rule_gain(10.0, 5.0));
    }

    #[test]
    fn two_sided_gain_rewards_both_directions() {
        assert!(rule_gain_two_sided(5.0, 10.0) > 0.0);
        assert!(rule_gain_two_sided(10.0, 5.0) > 0.0);
        assert_eq!(
            rule_gain_two_sided(10.0, 5.0),
            rule_gain(10.0, 5.0),
            "underestimated case equals the one-sided gain"
        );
        assert_eq!(rule_gain_two_sided(5.0, 5.0), 0.0);
        assert_eq!(
            rule_gain_two_sided(5.0, 10.0),
            -rule_gain(5.0, 10.0),
            "overestimated case is the mirrored one-sided gain"
        );
    }

    #[test]
    fn two_sided_gain_boundary_matches_one_sided() {
        // Zero-mass or unscoreable supports are worth exactly zero in both
        // scoring modes — never an |NaN| or a sign flip of something else.
        for (sm, smh) in [(0.0, 5.0), (5.0, 0.0), (0.0, 0.0), (-3.0, 5.0), (5.0, -3.0)] {
            assert_eq!(rule_gain_two_sided(sm, smh), 0.0, "({sm}, {smh})");
            assert_eq!(rule_gain(sm, smh), 0.0, "({sm}, {smh})");
        }
    }

    #[test]
    fn kl_zero_iff_equal() {
        let m = [1.0, 2.0, 3.0];
        assert_eq!(kl_divergence(&m, &m), 0.0);
        // Scaled estimates normalize away.
        let scaled = [2.0, 4.0, 6.0];
        assert!(kl_divergence(&m, &scaled) < 1e-12);
    }

    #[test]
    fn kl_positive_when_different() {
        let m = [1.0, 2.0, 3.0];
        let q = [2.0, 2.0, 2.0];
        let kl = kl_divergence(&m, &q);
        assert!(kl > 0.0);
    }

    #[test]
    fn kl_matches_textbook_formula() {
        // p = (0.5, 0.5), q = (0.9, 0.1): KL = .5 ln(.5/.9) + .5 ln(.5/.1)
        let m = [0.5, 0.5];
        let q = [0.9, 0.1];
        let expected = 0.5 * (0.5f64 / 0.9).ln() + 0.5 * (0.5f64 / 0.1).ln();
        assert!((kl_divergence(&m, &q) - expected).abs() < 1e-12);
    }

    #[test]
    fn kl_from_parts_matches_slice_version() {
        let m = [1.0f64, 0.0, 3.0, 2.0];
        let q = [0.5f64, 1.0, 2.0, 2.5];
        let s1: f64 = m
            .iter()
            .zip(&q)
            .filter(|(&mi, _)| mi > 0.0)
            .map(|(&mi, &qi)| mi * (mi / qi).ln())
            .sum();
        let a = kl_divergence(&m, &q);
        let b = kl_from_parts(s1, m.iter().sum(), q.iter().sum());
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn kl_ignores_zero_mass_tuples() {
        let m = [0.0, 1.0];
        let q = [5.0, 1.0];
        // Only the second tuple carries p-mass; p=(0,1), q=(5/6,1/6).
        let expected = (1.0f64 / (1.0 / 6.0)).ln();
        assert!((kl_divergence(&m, &q) - expected).abs() < 1e-12);
    }

    #[test]
    fn binary_kl_zero_for_perfect_estimates() {
        let m = [1.0, 0.0, 1.0];
        let close = [1.0 - 1e-9, 1e-9, 1.0 - 1e-9];
        assert!(binary_kl(&m, &close) < 1e-6);
        let uniform = [0.5, 0.5, 0.5];
        assert!(binary_kl(&m, &uniform) > 1.0);
    }

    #[test]
    fn binary_kl_clamps_out_of_range_estimates() {
        // Maximum-entropy products can exceed 1; must not produce NaN/inf.
        let m = [1.0, 0.0];
        let q = [1.7, -0.2];
        let kl = binary_kl(&m, &q);
        assert!(kl.is_finite());
    }

    #[test]
    fn kl_is_total_and_saturates_on_degenerate_inputs() {
        // m-mass where the model has none: the divergence supremum.
        assert_eq!(kl_divergence(&[1.0, 1.0], &[0.0, 1.0]), f64::INFINITY);
        assert_eq!(kl_divergence(&[1.0], &[-2.0]), f64::INFINITY);
        assert_eq!(kl_divergence(&[1.0, 1.0], &[0.0, 0.0]), f64::INFINITY);
        // No true mass at all (reachable from an all-zero measure column
        // via evaluate): nothing to diverge from.
        assert_eq!(kl_divergence(&[0.0, 0.0], &[1.0, 2.0]), 0.0);
        assert_eq!(kl_divergence(&[], &[]), 0.0);
    }
}
