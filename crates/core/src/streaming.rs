//! Streaming SIRUM (the thesis's §7 future work): incrementally maintain an
//! informative rule set as new data arrives.
//!
//! The maintainer keeps the dataset in compact columnar form together with
//! per-tuple rule-coverage bit arrays and the sufficient statistics of the
//! Rule Coverage Table. Ingesting a batch:
//!
//! 1. computes the new tuples' bit arrays against the current rules and
//!    folds them into the RCT groups (no rescan of old data),
//! 2. updates the constraint targets `Σ_{t⊨r} m`, and
//! 3. re-runs RCT iterative scaling from the *current* multipliers — the
//!    warm start means a handful of λ updates instead of a full re-fit.
//!
//! When the model drifts (KL grows), [`StreamingMiner::mine_more`] mines
//! additional rules over the accumulated data with the standard candidate
//! machinery, again warm-starting from the existing multipliers.

use crate::candidates::{adjust_for_sample, merge_agg, Agg, SampleIndex};
use crate::gain::{kl_from_parts, rule_gain};
use crate::lattice::ancestors;
use crate::multirule::{select_rules, MultiRuleConfig, ScoredCandidate};
use crate::rct::{iterative_scaling_rct, mhat_for_mask, Rct, RctGroup, MAX_RULES};
use crate::rule::Rule;
use crate::scaling::{ScalingConfig, ScalingOutcome};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sirum_dataflow::hash::FxHashMap;
use sirum_table::Table;
use std::collections::BTreeMap;

/// Configuration of the streaming maintainer.
#[derive(Debug, Clone)]
pub struct StreamingConfig {
    /// Size of the reservoir sample used for candidate pruning when mining
    /// additional rules.
    pub reservoir: usize,
    /// Iterative-scaling parameters.
    pub scaling: ScalingConfig,
    /// Reservoir-sampling seed.
    pub seed: u64,
}

impl Default for StreamingConfig {
    fn default() -> Self {
        StreamingConfig {
            reservoir: 64,
            scaling: ScalingConfig::default(),
            seed: 42,
        }
    }
}

/// Incremental informative-rule maintainer.
///
/// Measures must be nonnegative (the streaming setting cannot retroactively
/// re-shift history; apply a [`crate::transform::MeasureTransform`] upstream
/// if your measure can go negative).
pub struct StreamingMiner {
    d: usize,
    cfg: StreamingConfig,
    rules: Vec<Rule>,
    lambdas: Vec<f64>,
    m_sums: Vec<f64>,
    // Columnar history (struct-of-arrays, matching the batch miner's
    // Frame layout): one contiguous code column per dimension attribute,
    // plus the measure and bit-array columns.
    cols: Vec<Vec<u32>>,
    measures: Vec<f64>,
    masks: Vec<u64>,
    // RCT sufficient statistics, maintained incrementally. `sum_mlnm`
    // additionally enables exact KL computation from group stats alone.
    // BTreeMap, not a hash map: group order feeds Rct::from_partials and
    // must not depend on mask insertion history (SL007).
    groups: BTreeMap<u64, (RctGroup, f64)>,
    reservoir: Vec<Box<[u32]>>,
    seen: u64,
    rng: StdRng,
}

impl StreamingMiner {
    /// Start a maintainer over `d` dimension attributes. The model begins
    /// with just the all-wildcards rule.
    ///
    /// The reservoir size is silently capped at
    /// [`crate::candidates::MAX_SAMPLE`] — the inverted sample index
    /// [`Self::mine_more`] builds over the reservoir cannot address more
    /// rows, and a larger pruning sample has no quality benefit (the
    /// paper's default is 64).
    pub fn new(d: usize, mut cfg: StreamingConfig) -> Self {
        cfg.reservoir = cfg.reservoir.min(crate::candidates::MAX_SAMPLE);
        let rng = StdRng::seed_from_u64(cfg.seed);
        StreamingMiner {
            d,
            cfg,
            rules: vec![Rule::all_wildcards(d)],
            lambdas: vec![1.0],
            m_sums: vec![0.0],
            cols: (0..d).map(|_| Vec::new()).collect(),
            measures: Vec::new(),
            masks: Vec::new(),
            groups: BTreeMap::new(),
            reservoir: Vec::new(),
            seen: 0,
            rng,
        }
    }

    /// Current rule list (all-wildcards first).
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Current multipliers (aligned with [`Self::rules`]).
    pub fn lambdas(&self) -> &[f64] {
        &self.lambdas
    }

    /// Rows ingested so far.
    pub fn len(&self) -> usize {
        self.measures.len()
    }

    /// True before any row arrives.
    pub fn is_empty(&self) -> bool {
        self.measures.is_empty()
    }

    /// Ingest one batch of rows and re-fit the model (warm start).
    /// Returns the scaling outcome of the re-fit.
    ///
    /// # Panics
    /// Panics on arity mismatch or negative measures.
    pub fn ingest(&mut self, rows: &[(&[u32], f64)]) -> ScalingOutcome {
        for (row, m) in rows {
            // lint:allow(SL001) — documented contract; the service IngestHandle validates with typed errors first
            assert_eq!(row.len(), self.d, "arity mismatch");
            // lint:allow(SL001) — documented contract; the service IngestHandle validates with typed errors first
            assert!(*m >= 0.0 && m.is_finite(), "measure must be ≥ 0");
            // Bit array against the current rules; estimate from current λ.
            let mut mask = 0u64;
            for (i, rule) in self.rules.iter().enumerate() {
                if rule.matches(row) {
                    mask |= 1 << i;
                    self.m_sums[i] += m;
                }
            }
            let mhat = mhat_for_mask(mask, &self.lambdas);
            let entry = self.groups.entry(mask).or_insert((
                RctGroup {
                    mask,
                    count: 0,
                    sum_m: 0.0,
                    sum_mhat: 0.0,
                },
                0.0,
            ));
            entry.0.count += 1;
            entry.0.sum_m += m;
            entry.0.sum_mhat += mhat;
            if *m > 0.0 {
                entry.1 += m * m.ln();
            }
            // History (columnar: one push per dimension column).
            for (col, &v) in self.cols.iter_mut().zip(row.iter()) {
                col.push(v);
            }
            self.measures.push(*m);
            self.masks.push(mask);
            // Reservoir sample for future candidate generation.
            self.seen += 1;
            if self.reservoir.len() < self.cfg.reservoir {
                self.reservoir.push(row.to_vec().into_boxed_slice());
            } else {
                let j = self.rng.gen_range(0..self.seen);
                if (j as usize) < self.reservoir.len() {
                    self.reservoir[j as usize] = row.to_vec().into_boxed_slice();
                }
            }
        }
        self.refit()
    }

    /// Ingest all rows of a table (dimension dictionaries must be
    /// compatible with previous batches — i.e. produced by the same
    /// encoding pipeline).
    pub fn ingest_table(&mut self, table: &Table) -> ScalingOutcome {
        // lint:allow(SL001) — documented contract; streams are seeded from the catalog table itself
        assert_eq!(table.num_dims(), self.d);
        let rows: Vec<(&[u32], f64)> = (0..table.num_rows())
            .map(|i| (table.row(i), table.measure(i)))
            .collect();
        self.ingest(&rows)
    }

    /// Re-run RCT scaling from the current multipliers.
    fn refit(&mut self) -> ScalingOutcome {
        let mut rct = Rct::from_partials(self.groups.values().map(|(g, _)| *g));
        let before = self.lambdas.clone();
        let outcome = iterative_scaling_rct(
            &mut rct,
            self.rules.len(),
            &self.m_sums,
            &mut self.lambdas,
            &self.cfg.scaling,
        );
        // Push the converged group estimates back into our statistics.
        for g in rct.groups() {
            if let Some((entry, _)) = self.groups.get_mut(&g.mask) {
                entry.sum_mhat = g.sum_mhat;
            }
        }
        let _ = before;
        outcome
    }

    /// Exact KL divergence of the current model, computed purely from the
    /// maintained group statistics (tuples in one group share an estimate).
    pub fn kl(&self) -> f64 {
        let mut s1 = 0.0;
        let mut sum_m = 0.0;
        let mut sum_mhat = 0.0;
        for (g, mlnm) in self.groups.values() {
            let q = mhat_for_mask(g.mask, &self.lambdas);
            debug_assert!(q > 0.0);
            s1 += mlnm - g.sum_m * q.ln();
            sum_m += g.sum_m;
            sum_mhat += g.sum_mhat;
        }
        if sum_m <= 0.0 {
            return 0.0;
        }
        kl_from_parts(s1, sum_m, sum_mhat)
    }

    /// Per-tuple estimate of historical row `i`.
    pub fn estimate(&self, i: usize) -> f64 {
        mhat_for_mask(self.masks[i], &self.lambdas)
    }

    /// Mine up to `k` additional rules over the accumulated data, using the
    /// reservoir for candidate pruning and warm-starting the scaling.
    /// Returns the newly added rules with their gains at selection time.
    pub fn mine_more(&mut self, k: usize) -> Vec<(Rule, f64)> {
        // lint:allow(SL001) — documented contract; the service IngestHandle checks the budget with a typed error first
        assert!(
            self.rules.len() + k <= MAX_RULES,
            "rule budget exceeds bit-array capacity"
        );
        let mut added = Vec::new();
        for _ in 0..k {
            if self.reservoir.is_empty() || self.measures.is_empty() {
                break;
            }
            // Estimates for every historical tuple under the current model.
            let mhat: Vec<f64> = self.masks.iter().map(|&m| self.estimate_of(m)).collect();
            let index = SampleIndex::build(self.reservoir.clone(), self.d);
            // LCA(s, D) + ancestors, in memory (same path as the
            // centralized miner): scan the code columns, gathering each
            // row into a reusable scratch buffer only at the LCA probe.
            let mut lcas: FxHashMap<Rule, Agg> = FxHashMap::default();
            let mut row = Vec::with_capacity(self.d);
            for (i, (&m, &mh)) in self.measures.iter().zip(&mhat).enumerate() {
                self.gather_row(i, &mut row);
                for s in &self.reservoir {
                    let lca = Rule::lca(s, &row);
                    merge_agg(lcas.entry(lca).or_insert((0.0, 0.0, 0)), (m, mh, 1));
                }
            }
            let mut cands: FxHashMap<Rule, Agg> = FxHashMap::default();
            for (rule, agg) in &lcas {
                for anc in ancestors(rule) {
                    merge_agg(cands.entry(anc).or_insert((0.0, 0.0, 0)), *agg);
                }
            }
            let mut scored: Vec<ScoredCandidate> = adjust_for_sample(cands, &index)
                .into_iter()
                .filter(|(rule, _, _, _)| !self.rules.contains(rule))
                .map(|(rule, sum_m, sum_mhat, count)| ScoredCandidate {
                    gain: rule_gain(sum_m, sum_mhat),
                    rule,
                    sum_m,
                    count,
                })
                .collect();
            let n = scored.len();
            let picked = select_rules(&mut scored, &MultiRuleConfig::default(), n);
            let Some(best) = picked.into_iter().next() else {
                break;
            };
            self.add_rule(best.rule.clone(), best.sum_m);
            added.push((best.rule, best.gain));
        }
        added
    }

    fn estimate_of(&self, mask: u64) -> f64 {
        mhat_for_mask(mask, &self.lambdas)
    }

    /// Append a rule to the model: update every historical tuple's bit
    /// array (one scan — unavoidable, the rule is new), rebuild the group
    /// statistics, and re-fit with warm multipliers.
    fn add_rule(&mut self, rule: Rule, sum_m: f64) {
        let w = self.rules.len();
        let bit = 1u64 << w;
        self.rules.push(rule);
        self.lambdas.push(1.0);
        self.m_sums.push(sum_m);
        let mut groups: BTreeMap<u64, (RctGroup, f64)> = BTreeMap::new();
        let rule = self.rules[w].clone();
        // Columnar coverage test: only the rule's constant columns are read.
        let consts: Vec<(usize, u32)> = rule.constants().collect();
        for i in 0..self.measures.len() {
            if consts.iter().all(|&(j, v)| self.cols[j][i] == v) {
                self.masks[i] |= bit;
            }
            let mask = self.masks[i];
            let m = self.measures[i];
            let mhat = mhat_for_mask(mask, &self.lambdas);
            let entry = groups.entry(mask).or_insert((
                RctGroup {
                    mask,
                    count: 0,
                    sum_m: 0.0,
                    sum_mhat: 0.0,
                },
                0.0,
            ));
            entry.0.count += 1;
            entry.0.sum_m += m;
            entry.0.sum_mhat += mhat;
            if m > 0.0 {
                entry.1 += m * m.ln();
            }
        }
        self.groups = groups;
        self.refit();
    }

    /// Copy historical row `i`'s codes out of the columns (cleared first).
    fn gather_row(&self, i: usize, buf: &mut Vec<u32>) {
        buf.clear();
        buf.extend(self.cols.iter().map(|col| col[i]));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sirum_table::generators;

    fn tight() -> StreamingConfig {
        StreamingConfig {
            scaling: ScalingConfig {
                epsilon: 1e-8,
                max_iterations: 100_000,
            },
            ..Default::default()
        }
    }

    #[test]
    fn oversized_reservoir_is_capped_not_panicking() {
        // Regression (ISSUE 4 assert audit): a reservoir beyond the sample
        // index's capacity used to panic inside SampleIndex::build once
        // mine_more ran over a full reservoir; it is now capped at
        // MAX_SAMPLE up front.
        let t = generators::income_like(600, 11);
        let mut miner = StreamingMiner::new(
            t.num_dims(),
            StreamingConfig {
                reservoir: 10_000,
                ..tight()
            },
        );
        miner.ingest_table(&t);
        assert!(miner.reservoir.len() <= crate::candidates::MAX_SAMPLE);
        let added = miner.mine_more(1);
        assert!(added.len() <= 1);
    }

    #[test]
    fn batched_ingest_matches_bulk_ingest() {
        let t = generators::income_like(2_000, 3);
        let mut bulk = StreamingMiner::new(t.num_dims(), tight());
        bulk.ingest_table(&t);
        let mut batched = StreamingMiner::new(t.num_dims(), tight());
        for chunk_start in (0..t.num_rows()).step_by(300) {
            let rows: Vec<(&[u32], f64)> = (chunk_start..(chunk_start + 300).min(t.num_rows()))
                .map(|i| (t.row(i), t.measure(i)))
                .collect();
            batched.ingest(&rows);
        }
        assert_eq!(bulk.len(), batched.len());
        // Same model (single rule → λ is the global average).
        assert!((bulk.lambdas()[0] - batched.lambdas()[0]).abs() < 1e-6);
        assert!((bulk.kl() - batched.kl()).abs() < 1e-6);
    }

    #[test]
    fn row_order_does_not_change_the_model() {
        // Regression (SL007): `groups` was a hash map, so the RCT group
        // order Rct::from_partials saw depended on mask insertion
        // history — reordered rows could converge through a different
        // group ordering and even break mining ties differently. The
        // group order is now sorted by mask; only the ulp-level noise of
        // within-group accumulation order may remain.
        let rows: Vec<(Vec<u32>, f64)> = (0..240)
            .map(|i| (vec![i % 4, i % 3, i % 5], f64::from(1 + i % 7)))
            .collect();
        let forward: Vec<(&[u32], f64)> = rows.iter().map(|(r, m)| (r.as_slice(), *m)).collect();
        let mut reversed = forward.clone();
        reversed.reverse();
        let mut a = StreamingMiner::new(3, tight());
        a.ingest(&forward);
        a.mine_more(2);
        let mut b = StreamingMiner::new(3, tight());
        b.ingest(&reversed);
        b.mine_more(2);
        assert_eq!(a.rules(), b.rules());
        for (la, lb) in a.lambdas().iter().zip(b.lambdas()) {
            assert!((la - lb).abs() < 1e-9, "{la} vs {lb}");
        }
        assert!((a.kl() - b.kl()).abs() < 1e-9, "{} vs {}", a.kl(), b.kl());
    }

    #[test]
    fn kl_matches_direct_computation() {
        let t = generators::gdelt_like(800, 5);
        let mut sm = StreamingMiner::new(t.num_dims(), tight());
        sm.ingest_table(&t);
        sm.mine_more(2);
        // Direct KL from per-tuple estimates.
        let mhat: Vec<f64> = (0..t.num_rows()).map(|i| sm.estimate(i)).collect();
        let direct = crate::gain::kl_divergence(t.measures(), &mhat);
        assert!((sm.kl() - direct).abs() < 1e-9, "{} vs {}", sm.kl(), direct);
    }

    #[test]
    fn mine_more_reduces_kl() {
        let t = generators::income_like(2_000, 11);
        let mut sm = StreamingMiner::new(t.num_dims(), tight());
        sm.ingest_table(&t);
        let before = sm.kl();
        let added = sm.mine_more(3);
        assert!(!added.is_empty());
        assert!(sm.kl() < before);
        for (_, gain) in &added {
            assert!(*gain > 0.0);
        }
    }

    #[test]
    fn warm_start_refits_cheaply_on_similar_batches() {
        let t = generators::income_like(4_000, 13);
        let mut sm = StreamingMiner::new(t.num_dims(), StreamingConfig::default());
        let half = t.num_rows() / 2;
        let rows: Vec<(&[u32], f64)> = (0..half).map(|i| (t.row(i), t.measure(i))).collect();
        sm.ingest(&rows);
        sm.mine_more(3);
        // Second half is statistically identical: the warm re-fit should
        // need very few λ updates.
        let rows2: Vec<(&[u32], f64)> = (half..t.num_rows())
            .map(|i| (t.row(i), t.measure(i)))
            .collect();
        let outcome = sm.ingest(&rows2);
        assert!(outcome.converged);
        // A cold re-fit of the same model from λ = 1 needs strictly more
        // λ updates than the warm continuation.
        let rules: Vec<Rule> = sm.rules().to_vec();
        let mut cold = StreamingMiner::new(t.num_dims(), StreamingConfig::default());
        cold.ingest_table(&t);
        let mut cold_iters = 0usize;
        for r in rules.iter().skip(1) {
            let sum: f64 = (0..t.num_rows())
                .filter(|&i| r.matches(t.row(i)))
                .map(|i| t.measure(i))
                .sum();
            cold.add_rule(r.clone(), sum);
            cold_iters += 1; // at least one refit per insertion
        }
        let _ = cold_iters;
        assert!(
            outcome.iterations <= 30,
            "warm start took {} iterations",
            outcome.iterations
        );
    }

    #[test]
    fn detects_concept_drift() {
        // First phase: uniform measure. Second phase: a planted pattern.
        let mut sm = StreamingMiner::new(2, tight());
        let phase1: Vec<(Vec<u32>, f64)> = (0..500u32).map(|i| (vec![i % 4, i % 3], 1.0)).collect();
        let rows1: Vec<(&[u32], f64)> = phase1.iter().map(|(r, m)| (r.as_slice(), *m)).collect();
        sm.ingest(&rows1);
        assert!(sm.mine_more(2).is_empty(), "uniform data needs no rules");
        let kl_flat = sm.kl();
        assert!(kl_flat < 1e-9);
        // Drift: value 0 of attribute 0 now carries 5× the measure.
        let phase2: Vec<(Vec<u32>, f64)> = (0..500u32)
            .map(|i| {
                let v = i % 4;
                (vec![v, i % 3], if v == 0 { 5.0 } else { 1.0 })
            })
            .collect();
        let rows2: Vec<(&[u32], f64)> = phase2.iter().map(|(r, m)| (r.as_slice(), *m)).collect();
        sm.ingest(&rows2);
        assert!(sm.kl() > kl_flat, "drift must raise KL");
        let kl_drifted = sm.kl();
        let added = sm.mine_more(1);
        assert_eq!(added.len(), 1);
        let rule = &added[0].0;
        assert_eq!(rule.get(0), 0, "must localize the drifted value: {rule:?}");
        // The rule explains a large share of the drift (the remainder is
        // temporal variance within the (0, *) group, which no value-based
        // rule can capture).
        assert!(
            sm.kl() < 0.6 * kl_drifted,
            "rule must reduce drift KL: {} -> {}",
            kl_drifted,
            sm.kl()
        );
    }

    #[test]
    #[should_panic(expected = "measure must be")]
    fn rejects_negative_measures() {
        let mut sm = StreamingMiner::new(2, StreamingConfig::default());
        sm.ingest(&[(&[0u32, 0][..], -1.0)]);
    }
}
