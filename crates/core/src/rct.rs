//! The Rule Coverage Table (§4.1, Algorithm 3): fast iterative scaling.
//!
//! Every tuple carries a bit array `BA` whose `i`-th bit records `t ⊨ rᵢ`.
//! Tuples with identical bit arrays match exactly the same rules and hence
//! share the same maximum-entropy estimate `∏ λ(rᵢ)`; grouping by `BA`
//! yields a tiny table (the RCT) over which iterative scaling can run
//! without touching `D`. `D` is accessed only twice per mining iteration:
//! once to update the bit arrays / build the RCT, and once to write the
//! converged estimates back.
//!
//! Bit arrays are `u64` masks; the paper caps `|R|` at 50 rules
//! ("interpretable by human beings"), comfortably below the 64-bit limit,
//! which [`MAX_RULES`] enforces.

use crate::scaling::{relative_diff, ScalingConfig, ScalingOutcome};
use sirum_dataflow::hash::FxHashMap;

/// Maximum number of rules a `u64` bit array can track.
pub const MAX_RULES: usize = 64;

/// One row of the Rule Coverage Table: the set of tuples sharing bit array
/// `mask` (cf. Table 4.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RctGroup {
    /// Shared bit array: bit `i` set ⇔ the tuples match rule `rᵢ`.
    pub mask: u64,
    /// `COUNT(*)` of the group.
    pub count: u64,
    /// `SUM(t[m])` over the group (transformed measure).
    pub sum_m: f64,
    /// `SUM(t[mhat])` over the group — updated in place during scaling.
    pub sum_mhat: f64,
}

/// The Rule Coverage Table: pairwise-disjoint tuple groups keyed by bit
/// array (Fig 4.1), small enough to replicate to every worker.
#[derive(Debug, Clone, Default)]
pub struct Rct {
    groups: Vec<RctGroup>,
}

impl Rct {
    /// Group tuples by bit array (line 6 of Algorithm 3), given parallel
    /// columns of masks, transformed measures and current estimates.
    pub fn build(masks: &[u64], m: &[f64], mhat: &[f64]) -> Rct {
        // lint:allow(SL001) — driver-built parallel arrays
        assert_eq!(masks.len(), m.len());
        // lint:allow(SL001) — driver-built parallel arrays
        assert_eq!(masks.len(), mhat.len());
        let mut map: FxHashMap<u64, RctGroup> = FxHashMap::default();
        for i in 0..masks.len() {
            let g = map.entry(masks[i]).or_insert(RctGroup {
                mask: masks[i],
                count: 0,
                sum_m: 0.0,
                sum_mhat: 0.0,
            });
            g.count += 1;
            g.sum_m += m[i];
            g.sum_mhat += mhat[i];
        }
        let mut groups: Vec<RctGroup> = map.into_values().collect();
        groups.sort_by_key(|g| g.mask);
        Rct { groups }
    }

    /// Assemble from pre-aggregated groups (the distributed build path:
    /// each partition aggregates locally, then partial groups are merged).
    pub fn from_partials<I: IntoIterator<Item = RctGroup>>(partials: I) -> Rct {
        let mut map: FxHashMap<u64, RctGroup> = FxHashMap::default();
        for p in partials {
            let g = map.entry(p.mask).or_insert(RctGroup {
                mask: p.mask,
                count: 0,
                sum_m: 0.0,
                sum_mhat: 0.0,
            });
            g.count += p.count;
            g.sum_m += p.sum_m;
            g.sum_mhat += p.sum_mhat;
        }
        let mut groups: Vec<RctGroup> = map.into_values().collect();
        groups.sort_by_key(|g| g.mask);
        Rct { groups }
    }

    /// The groups, sorted by mask.
    pub fn groups(&self) -> &[RctGroup] {
        &self.groups
    }

    /// Number of groups (rows of the RCT) — bounded by `min(n, 2^|R|)` and
    /// in practice tiny (§4.1 space analysis).
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// True if the RCT has no groups.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// `(Σ m, Σ mhat, Σ count)` over groups covering rule `i` (line 10).
    pub fn rule_sums(&self, i: usize) -> (f64, f64, u64) {
        let bit = 1u64 << i;
        let mut sums = (0.0, 0.0, 0u64);
        for g in &self.groups {
            if g.mask & bit != 0 {
                sums.0 += g.sum_m;
                sums.1 += g.sum_mhat;
                sums.2 += g.count;
            }
        }
        sums
    }

    /// Scale `SUM(t[mhat])` of every group covering rule `i` (lines 17-21).
    pub fn scale(&mut self, i: usize, factor: f64) {
        let bit = 1u64 << i;
        for g in &mut self.groups {
            if g.mask & bit != 0 {
                g.sum_mhat *= factor;
            }
        }
    }

    /// Total estimated mass (Σ over all groups).
    pub fn total_mhat(&self) -> f64 {
        self.groups.iter().map(|g| g.sum_mhat).sum()
    }

    /// Total true mass.
    pub fn total_m(&self) -> f64 {
        self.groups.iter().map(|g| g.sum_m).sum()
    }

    /// Total tuple count.
    pub fn total_count(&self) -> u64 {
        self.groups.iter().map(|g| g.count).sum()
    }
}

/// Iterative scaling over the RCT (Algorithm 3, lines 7-28): identical
/// fixed point to Algorithm 1 but touching only the RCT's groups.
/// `m_sums[i] = Σ_{t⊨rᵢ} t[m]` as usual; `lambdas` are updated in place.
pub fn iterative_scaling_rct(
    rct: &mut Rct,
    num_rules: usize,
    m_sums: &[f64],
    lambdas: &mut [f64],
    cfg: &ScalingConfig,
) -> ScalingOutcome {
    // lint:allow(SL001) — miner enforces the rule budget before any scaling run
    assert!(num_rules <= MAX_RULES);
    // lint:allow(SL001) — driver-built parallel arrays
    assert_eq!(m_sums.len(), num_rules);
    // lint:allow(SL001) — driver-built parallel arrays
    assert_eq!(lambdas.len(), num_rules);
    let mut iterations = 0;
    loop {
        let mut next = usize::MAX;
        let mut worst = 0.0f64;
        for (i, &target) in m_sums.iter().enumerate() {
            let (_m, mhat, _c) = rct.rule_sums(i);
            let diff = relative_diff(target, mhat);
            if diff > worst {
                worst = diff;
                next = i;
            }
        }
        if next == usize::MAX || worst <= cfg.epsilon {
            return ScalingOutcome {
                iterations,
                converged: true,
            };
        }
        if iterations >= cfg.max_iterations {
            return ScalingOutcome {
                iterations,
                converged: false,
            };
        }
        iterations += 1;
        let (_m, mhat, _c) = rct.rule_sums(next);
        let factor = m_sums[next] / mhat;
        debug_assert!(factor.is_finite() && factor > 0.0);
        lambdas[next] *= factor;
        rct.scale(next, factor);
    }
}

/// Per-tuple estimate implied by a bit array: `∏_{i ∈ mask} λᵢ` (the
/// write-out step, lines 23-25 of Algorithm 3).
#[inline]
pub fn mhat_for_mask(mask: u64, lambdas: &[f64]) -> f64 {
    let mut product = 1.0;
    let mut bits = mask;
    while bits != 0 {
        let i = bits.trailing_zeros() as usize;
        product *= lambdas[i];
        bits &= bits - 1;
    }
    product
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::{Rule, WILDCARD};
    use crate::scaling::{iterative_scaling, rule_measure_sums, TableBackend};
    use sirum_table::generators::flights;

    /// Bit arrays for the flight table against rules r1..r3 of Table 1.2.
    fn flight_masks() -> (sirum_table::Table, Vec<Rule>, Vec<u64>) {
        let t = flights();
        let london = t.dict(2).code("London").unwrap();
        let fri = t.dict(0).code("Fri").unwrap();
        let rules = vec![
            Rule::all_wildcards(3),
            Rule::from_values(vec![WILDCARD, WILDCARD, london]),
            Rule::from_values(vec![fri, WILDCARD, WILDCARD]),
        ];
        let masks: Vec<u64> = t
            .rows()
            .map(|row| {
                let mut mask = 0u64;
                for (i, r) in rules.iter().enumerate() {
                    if r.matches(row) {
                        mask |= 1 << i;
                    }
                }
                mask
            })
            .collect();
        (t, rules, masks)
    }

    #[test]
    fn table_4_1_groups() {
        // After the third rule, the RCT has the four groups of Table 4.1:
        // 1000(9 tuples, Σm=68), 1100(3, 41), 1010(1, 16), 1110(1, 20).
        // (The paper writes bit arrays left-to-right; our bit 0 is r1.)
        let (t, _rules, masks) = flight_masks();
        let mhat2: Vec<f64> = {
            // Column mhat2 of Table 1.1: 15.25 for London-bound, 8.4 others
            // (paper rounds 15.25 to 15.3).
            let london = t.dict(2).code("London").unwrap();
            t.rows()
                .map(|row| if row[2] == london { 15.3 } else { 8.4 })
                .collect()
        };
        let rct = Rct::build(&masks, t.measures(), &mhat2);
        assert_eq!(rct.len(), 4);
        let get = |mask: u64| rct.groups().iter().find(|g| g.mask == mask).unwrap();
        let g1 = get(0b001); // paper's BA 1000
        assert_eq!(g1.count, 9);
        assert!((g1.sum_m - 68.0).abs() < 1e-9);
        assert!((g1.sum_mhat - 9.0 * 8.4).abs() < 1e-9); // paper: 75.6
        let g2 = get(0b011); // paper's BA 1100
        assert_eq!(g2.count, 3);
        assert!((g2.sum_m - 41.0).abs() < 1e-9);
        let g3 = get(0b101); // paper's BA 1010 — tuple 2 only
        assert_eq!(g3.count, 1);
        assert!((g3.sum_m - 16.0).abs() < 1e-9);
        assert!((g3.sum_mhat - 8.4).abs() < 1e-9);
        let g4 = get(0b111); // paper's BA 1110 — tuple 1
        assert_eq!(g4.count, 1);
        assert!((g4.sum_m - 20.0).abs() < 1e-9);
        assert!((g4.sum_mhat - 15.3).abs() < 1e-9); // paper: 15.3
    }

    #[test]
    fn groups_partition_the_dataset() {
        let (t, _rules, masks) = flight_masks();
        let rct = Rct::build(&masks, t.measures(), &[1.0; 14]);
        assert_eq!(rct.total_count(), 14);
        assert!((rct.total_m() - 145.0).abs() < 1e-9);
        // Masks are distinct (disjoint groups, Fig 4.1).
        let mut masks: Vec<u64> = rct.groups().iter().map(|g| g.mask).collect();
        masks.dedup();
        assert_eq!(masks.len(), rct.len());
    }

    #[test]
    fn rct_scaling_matches_naive_scaling() {
        // Algorithm 3 must reach the same fixed point as Algorithm 1.
        let (t, rules, masks) = flight_masks();
        let sums = rule_measure_sums(&t, t.measures(), &rules);
        let m_sums: Vec<f64> = sums.iter().map(|s| s.0).collect();
        let cfg = ScalingConfig {
            epsilon: 1e-10,
            max_iterations: 100_000,
        };

        // Naive (Algorithm 1).
        let mut naive_lambdas = vec![1.0; rules.len()];
        let mut backend = TableBackend::new(&t);
        let naive_out = iterative_scaling(&mut backend, &rules, &m_sums, &mut naive_lambdas, &cfg);
        assert!(naive_out.converged);

        // RCT (Algorithm 3), starting from mhat = 1.
        let mut rct = Rct::build(&masks, t.measures(), &[1.0; 14]);
        let mut rct_lambdas = vec![1.0; rules.len()];
        let rct_out = iterative_scaling_rct(&mut rct, rules.len(), &m_sums, &mut rct_lambdas, &cfg);
        assert!(rct_out.converged);

        for (a, b) in naive_lambdas.iter().zip(&rct_lambdas) {
            assert!((a - b).abs() < 1e-6, "{naive_lambdas:?} vs {rct_lambdas:?}");
        }
        // Same per-tuple estimates after write-out.
        for (i, &mask) in masks.iter().enumerate() {
            let via_rct = mhat_for_mask(mask, &rct_lambdas);
            assert!((via_rct - backend.mhat()[i]).abs() < 1e-6);
        }
        // Same number of λ updates (the algorithms pick the same sequence).
        assert_eq!(naive_out.iterations, rct_out.iterations);
    }

    #[test]
    fn rct_satisfies_constraints_at_convergence() {
        let (t, rules, masks) = flight_masks();
        let sums = rule_measure_sums(&t, t.measures(), &rules);
        let m_sums: Vec<f64> = sums.iter().map(|s| s.0).collect();
        let mut rct = Rct::build(&masks, t.measures(), &[1.0; 14]);
        let mut lambdas = vec![1.0; rules.len()];
        let cfg = ScalingConfig {
            epsilon: 1e-9,
            max_iterations: 100_000,
        };
        let out = iterative_scaling_rct(&mut rct, rules.len(), &m_sums, &mut lambdas, &cfg);
        assert!(out.converged);
        for (i, &target) in m_sums.iter().enumerate() {
            let (_m, mhat, _c) = rct.rule_sums(i);
            assert!(relative_diff(target, mhat) <= 1e-9, "rule {i}");
        }
    }

    #[test]
    fn from_partials_merges_groups() {
        let a = RctGroup {
            mask: 0b01,
            count: 2,
            sum_m: 3.0,
            sum_mhat: 2.0,
        };
        let b = RctGroup {
            mask: 0b01,
            count: 1,
            sum_m: 1.0,
            sum_mhat: 1.0,
        };
        let c = RctGroup {
            mask: 0b11,
            count: 5,
            sum_m: 10.0,
            sum_mhat: 5.0,
        };
        let rct = Rct::from_partials([a, b, c]);
        assert_eq!(rct.len(), 2);
        let merged = rct.groups().iter().find(|g| g.mask == 0b01).unwrap();
        assert_eq!(merged.count, 3);
        assert!((merged.sum_m - 4.0).abs() < 1e-12);
    }

    #[test]
    fn mhat_for_mask_multiplies_matched_lambdas() {
        let lambdas = [2.0, 3.0, 5.0];
        assert_eq!(mhat_for_mask(0b000, &lambdas), 1.0);
        assert_eq!(mhat_for_mask(0b001, &lambdas), 2.0);
        assert_eq!(mhat_for_mask(0b101, &lambdas), 10.0);
        assert_eq!(mhat_for_mask(0b111, &lambdas), 30.0);
    }

    #[test]
    fn rct_is_small_relative_to_data() {
        // 14 tuples, 3 rules → at most 2^3 = 8 groups; actually 4.
        let (t, _rules, masks) = flight_masks();
        let rct = Rct::build(&masks, t.measures(), &[1.0; 14]);
        assert!(rct.len() <= 8);
        assert!(rct.len() < t.num_rows());
    }
}
