//! Iterative scaling (Algorithm 1): fit the maximum-entropy multipliers
//! `λ(r)` so that `Σ_{t⊨r} t[mhat] = Σ_{t⊨r} t[m]` for every rule in `R`.
//!
//! The algorithm is written against a [`ScalingBackend`] so the same control
//! loop drives the in-memory reference implementation (used for tests,
//! evaluation, and the centralized prior-work comparator) and the
//! dataset-based distributed implementation in the miner.

use crate::rule::Rule;
use sirum_table::Table;

/// Convergence parameters for iterative scaling.
#[derive(Debug, Clone, Copy)]
pub struct ScalingConfig {
    /// Relative tolerance ε on `|m(r) − mhat(r)| / |m(r)|` (paper default
    /// 0.01).
    pub epsilon: f64,
    /// Safety cap on scaling loop iterations.
    pub max_iterations: usize,
}

impl Default for ScalingConfig {
    fn default() -> Self {
        ScalingConfig {
            epsilon: 0.01,
            max_iterations: 10_000,
        }
    }
}

/// Result of one scaling run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScalingOutcome {
    /// Scaling-loop iterations executed (λ updates).
    pub iterations: usize,
    /// Whether all constraints converged within ε.
    pub converged: bool,
}

/// Storage abstraction over "the tuples and their current estimates".
pub trait ScalingBackend {
    /// Current `Σ_{t⊨rᵢ} t[mhat]` for every rule (one full pass over `D` —
    /// the access the RCT optimization eliminates).
    fn mhat_sums(&self, rules: &[Rule]) -> Vec<f64>;

    /// Multiply `t[mhat]` by `factor` for every tuple matching `rule`
    /// (the second per-iteration access to `D` in Algorithm 1).
    fn scale_matching(&mut self, rule: &Rule, factor: f64);
}

/// Algorithm 1. `m_sums[i]` is the constraint target `Σ_{t⊨rᵢ} t[m]`;
/// `lambdas` are updated in place (λ accumulates across calls as rules are
/// added, per the carry-over strategy §5.6.2 credits for SIRUM's speed).
///
/// Note the convergence test on averages `|m(r)−mhat(r)|/|m(r)|` equals the
/// same ratio on sums (the support counts cancel), so backends only report
/// sums.
pub fn iterative_scaling<B: ScalingBackend>(
    backend: &mut B,
    rules: &[Rule],
    m_sums: &[f64],
    lambdas: &mut [f64],
    cfg: &ScalingConfig,
) -> ScalingOutcome {
    // lint:allow(SL001) — driver-built parallel arrays
    assert_eq!(rules.len(), m_sums.len());
    // lint:allow(SL001) — driver-built parallel arrays
    assert_eq!(rules.len(), lambdas.len());
    let mut iterations = 0;
    loop {
        let mhat_sums = backend.mhat_sums(rules);
        let mut next = usize::MAX;
        let mut worst = 0.0f64;
        for i in 0..rules.len() {
            let diff = relative_diff(m_sums[i], mhat_sums[i]);
            if diff > worst {
                worst = diff;
                next = i;
            }
        }
        if next == usize::MAX || worst <= cfg.epsilon {
            return ScalingOutcome {
                iterations,
                converged: true,
            };
        }
        if iterations >= cfg.max_iterations {
            return ScalingOutcome {
                iterations,
                converged: false,
            };
        }
        iterations += 1;
        let factor = m_sums[next] / mhat_sums[next];
        debug_assert!(factor.is_finite() && factor > 0.0, "factor {factor}");
        lambdas[next] *= factor;
        backend.scale_matching(&rules[next], factor);
    }
}

/// `|m − mhat| / |m|`, with a zero-target falling back to the absolute error
/// (a rule whose support has zero true mass forces its estimates toward 0).
#[inline]
pub fn relative_diff(m_sum: f64, mhat_sum: f64) -> f64 {
    if m_sum == 0.0 {
        mhat_sum.abs()
    } else {
        (m_sum - mhat_sum).abs() / m_sum.abs()
    }
}

/// In-memory reference backend: a table plus a dense `mhat` column. This is
/// the centralized implementation the paper's prior work [16, 29] runs; it
/// re-tests `t ⊨ r` attribute-by-attribute on every pass, exactly the cost
/// Algorithm 3 (RCT) removes.
pub struct TableBackend<'a> {
    table: &'a Table,
    mhat: Vec<f64>,
}

impl<'a> TableBackend<'a> {
    /// Start with all estimates at 1 (the state before any rule is added).
    pub fn new(table: &'a Table) -> Self {
        TableBackend {
            table,
            mhat: vec![1.0; table.num_rows()],
        }
    }

    /// Resume from existing estimates.
    pub fn with_mhat(table: &'a Table, mhat: Vec<f64>) -> Self {
        // lint:allow(SL001) — driver-built parallel arrays
        assert_eq!(mhat.len(), table.num_rows());
        TableBackend { table, mhat }
    }

    /// Current estimates.
    pub fn mhat(&self) -> &[f64] {
        &self.mhat
    }

    /// Take ownership of the estimates.
    pub fn into_mhat(self) -> Vec<f64> {
        self.mhat
    }

    /// Reset all estimates to 1 and all multipliers to 1 (the Sarawagi \[29\]
    /// strategy that re-fits from scratch whenever a rule is added).
    pub fn reset(&mut self, lambdas: &mut [f64]) {
        self.mhat.iter_mut().for_each(|v| *v = 1.0);
        lambdas.iter_mut().for_each(|v| *v = 1.0);
    }
}

impl ScalingBackend for TableBackend<'_> {
    fn mhat_sums(&self, rules: &[Rule]) -> Vec<f64> {
        let mut sums = vec![0.0; rules.len()];
        // lint:allow(SL002) — reference backend for tests/baselines; production scaling runs on ScalingVectors, which polls
        for (i, row) in self.table.rows().enumerate() {
            let mh = self.mhat[i];
            for (j, rule) in rules.iter().enumerate() {
                if rule.matches(row) {
                    sums[j] += mh;
                }
            }
        }
        sums
    }

    fn scale_matching(&mut self, rule: &Rule, factor: f64) {
        // lint:allow(SL002) — reference backend for tests/baselines; production scaling runs on ScalingVectors, which polls
        for (i, row) in self.table.rows().enumerate() {
            if rule.matches(row) {
                self.mhat[i] *= factor;
            }
        }
    }
}

/// Compute the constraint targets `Σ_{t⊨r} t[m]` and support counts for a
/// rule list by one scan of the table (with an already-transformed measure
/// column `m_prime`).
pub fn rule_measure_sums(table: &Table, m_prime: &[f64], rules: &[Rule]) -> Vec<(f64, u64)> {
    let mut out = vec![(0.0, 0u64); rules.len()];
    // lint:allow(SL002) — one bounded scan per mined rule (k ≤ rule budget), used by the centralized baseline only
    for (i, row) in table.rows().enumerate() {
        for (j, rule) in rules.iter().enumerate() {
            if rule.matches(row) {
                out[j].0 += m_prime[i];
                out[j].1 += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::WILDCARD;
    use sirum_table::generators::flights;

    fn rules_r1_r2(table: &Table) -> Vec<Rule> {
        let london = table.dict(2).code("London").unwrap();
        vec![
            Rule::all_wildcards(3),
            Rule::from_values(vec![WILDCARD, WILDCARD, london]),
        ]
    }

    #[test]
    fn single_rule_sets_global_average() {
        // §2.2 running example, step 1: after r1, every estimate is 10.4
        // (well, 145/14) and λ(r1) ≈ that value.
        let t = flights();
        let rules = vec![Rule::all_wildcards(3)];
        let m_sums = vec![t.sum_measure()];
        let mut lambdas = vec![1.0];
        let mut backend = TableBackend::new(&t);
        let cfg = ScalingConfig {
            epsilon: 1e-9,
            ..Default::default()
        };
        let out = iterative_scaling(&mut backend, &rules, &m_sums, &mut lambdas, &cfg);
        assert!(out.converged);
        assert_eq!(out.iterations, 1);
        let expect = 145.0 / 14.0;
        for &mh in backend.mhat() {
            assert!((mh - expect).abs() < 1e-6);
        }
    }

    #[test]
    fn paper_running_example_two_rules() {
        // §2.2 step 2: after r2 = (*,*,London), estimates settle at ≈15.25
        // for London-bound flights and ≈8.4 for the rest (column mhat2 of
        // Table 1.1, which rounds to 15.3/8.4).
        let t = flights();
        let rules = rules_r1_r2(&t);
        let sums = rule_measure_sums(&t, t.measures(), &rules);
        let m_sums: Vec<f64> = sums.iter().map(|s| s.0).collect();
        assert_eq!(sums[1].1, 4, "four London-bound flights");
        assert!((m_sums[1] - 61.0).abs() < 1e-9); // 20+15+19+7
        let mut lambdas = vec![1.0; 2];
        let mut backend = TableBackend::new(&t);
        let cfg = ScalingConfig {
            epsilon: 1e-10,
            max_iterations: 100_000,
        };
        let out = iterative_scaling(&mut backend, &rules, &m_sums, &mut lambdas, &cfg);
        assert!(out.converged);
        let london = t.dict(2).code("London").unwrap();
        for (i, row) in t.rows().enumerate() {
            let expect = if row[2] == london { 61.0 / 4.0 } else { 8.4 };
            assert!(
                (backend.mhat()[i] - expect).abs() < 1e-3,
                "row {i}: {} vs {expect}",
                backend.mhat()[i]
            );
        }
        // λ(r1) ≈ 8.4, λ(r2) ≈ 15.25/8.4 ≈ 1.815 (paper quotes 8.4, 1.8).
        assert!((lambdas[0] - 8.4).abs() < 1e-2, "λ1 = {}", lambdas[0]);
        assert!(
            (lambdas[1] - 61.0 / 4.0 / 8.4).abs() < 1e-2,
            "λ2 = {}",
            lambdas[1]
        );
    }

    #[test]
    fn estimates_are_products_of_lambdas() {
        let t = flights();
        let rules = rules_r1_r2(&t);
        let sums = rule_measure_sums(&t, t.measures(), &rules);
        let m_sums: Vec<f64> = sums.iter().map(|s| s.0).collect();
        let mut lambdas = vec![1.0; 2];
        let mut backend = TableBackend::new(&t);
        let cfg = ScalingConfig {
            epsilon: 1e-12,
            max_iterations: 100_000,
        };
        iterative_scaling(&mut backend, &rules, &m_sums, &mut lambdas, &cfg);
        for (i, row) in t.rows().enumerate() {
            let product: f64 = rules
                .iter()
                .zip(&lambdas)
                .filter(|(r, _)| r.matches(row))
                .map(|(_, &l)| l)
                .product();
            assert!((backend.mhat()[i] - product).abs() < 1e-9);
        }
    }

    #[test]
    fn constraints_hold_at_convergence() {
        let t = flights();
        let fri = t.dict(0).code("Fri").unwrap();
        let rules = {
            let mut r = rules_r1_r2(&t);
            r.push(Rule::from_values(vec![fri, WILDCARD, WILDCARD]));
            r
        };
        let sums = rule_measure_sums(&t, t.measures(), &rules);
        let m_sums: Vec<f64> = sums.iter().map(|s| s.0).collect();
        let mut lambdas = vec![1.0; rules.len()];
        let mut backend = TableBackend::new(&t);
        let cfg = ScalingConfig {
            epsilon: 1e-8,
            max_iterations: 100_000,
        };
        let out = iterative_scaling(&mut backend, &rules, &m_sums, &mut lambdas, &cfg);
        assert!(out.converged);
        let mhat_sums = backend.mhat_sums(&rules);
        for (i, (&ms, &mhs)) in m_sums.iter().zip(&mhat_sums).enumerate() {
            assert!(
                relative_diff(ms, mhs) <= 1e-8,
                "rule {i}: m={ms} mhat={mhs}"
            );
        }
    }

    #[test]
    fn carry_over_converges_faster_than_reset() {
        // §5.6.2: Sarawagi's reset strategy re-derives all multipliers after
        // every insertion; carrying λ forward needs fewer iterations.
        let t = flights();
        let rules = rules_r1_r2(&t);
        let sums = rule_measure_sums(&t, t.measures(), &rules);
        let m_sums: Vec<f64> = sums.iter().map(|s| s.0).collect();
        let cfg = ScalingConfig::default();

        // Carry-over: fit r1, then add r2 keeping λ.
        let mut lambdas = vec![1.0];
        let mut backend = TableBackend::new(&t);
        iterative_scaling(&mut backend, &rules[..1], &m_sums[..1], &mut lambdas, &cfg);
        lambdas.push(1.0);
        let carry = iterative_scaling(&mut backend, &rules, &m_sums, &mut lambdas, &cfg).iterations;

        // Reset: start over from scratch on both rules.
        let mut lambdas2 = vec![1.0; 2];
        let mut backend2 = TableBackend::new(&t);
        let reset =
            iterative_scaling(&mut backend2, &rules, &m_sums, &mut lambdas2, &cfg).iterations;
        assert!(carry <= reset, "carry {carry} vs reset {reset}");
    }

    #[test]
    fn max_iterations_is_respected() {
        let t = flights();
        let rules = rules_r1_r2(&t);
        let m_sums = vec![145.0, 61.0];
        let mut lambdas = vec![1.0; 2];
        let mut backend = TableBackend::new(&t);
        let cfg = ScalingConfig {
            epsilon: 0.0, // unreachable tolerance
            max_iterations: 3,
        };
        let out = iterative_scaling(&mut backend, &rules, &m_sums, &mut lambdas, &cfg);
        assert!(!out.converged);
        assert_eq!(out.iterations, 3);
    }

    #[test]
    fn relative_diff_handles_zero_target() {
        assert_eq!(relative_diff(0.0, 0.5), 0.5);
        assert_eq!(relative_diff(10.0, 9.0), 0.1);
    }
}
