//! Partition-parallel candidate gain sweep.
//!
//! The legacy candidate pipeline of [`crate::miner`] stages the work the
//! way the paper's MapReduce/Spark jobs do: emit one `(rule, aggregate)`
//! pair per (sample tuple, data tuple) LCA, shuffle, expand ancestors in
//! one stage per column group, shuffle again, then adjust and score. That
//! reproduces the platform economics of Chapter 3, but on a single machine
//! every shuffle is pure overhead: the same numbers fall out of **one scan
//! over the partitioned data** that folds every tuple's contributions into
//! per-partition `(Σm, Σm̂, pairs)` accumulators for *all* live candidates
//! at once — the group-by-style aggregation El Gebaly et al.'s explanation
//! tables use to stay competitive.
//!
//! The sweep runs as two shuffle-free, partition-parallel stages on the
//! existing [`sirum_dataflow::Engine`] thread pool
//! ([`Dataset::aggregate_partitions`]):
//!
//! 1. **Combine** — each data partition folds its `(sample tuple, data
//!    tuple)` LCAs into a local `LCA → (Σm, Σm̂, pairs)` map; the maps are
//!    merged in partition order into the globally distinct LCA frontier;
//! 2. **Expand** — the frontier is split over the same number of
//!    partitions and each task expands its LCAs' cube lattices once,
//!    folding the combined aggregates into every ancestor; the candidate
//!    maps are again merged in partition order.
//!
//! Determinism argument (see DESIGN.md "Partition-parallel gain sweep"
//! for the full version):
//!
//! 1. every partition task is a pure function of its partition's input
//!    (row order within a partition is fixed by the original encoding
//!    order);
//! 2. [`Dataset::aggregate_partitions`] returns task outputs in partition
//!    order regardless of which worker ran which task, and the driver folds
//!    them front-to-back — so each candidate's floating-point sums are
//!    accumulated in exactly the same order for 1 worker or N;
//! 3. every intermediate map's iteration order depends only on its
//!    insertion sequence, which is itself partition-ordered — so stage 2's
//!    frontier chunking is a pure function of stage 1's result.
//!
//! Hence the sweep's per-candidate sums — and everything derived from them
//! (gains, the selected rule sequence) — are **bit-identical to the
//! sequential reference** ([`sweep_gains_reference`]) for any worker
//! count. A proptest in `crates/core/tests/properties.rs` pins this across
//! random tables, partition counts and thread counts.
//!
//! Cancellation is polled at every partition boundary, every
//! [`CANCEL_POLL_ROWS`] data rows inside the combine stage, and every
//! [`CANCEL_POLL_ROWS`] ancestor folds inside the expand stage (a single
//! LCA's lattice can dwarf the frontier, so the expansion budget counts
//! folds, not entries); a cancelled sweep returns an empty candidate list
//! with [`SweepOutcome::cancelled`] set, and the miner abandons the
//! iteration without selecting from partial sums.

use crate::block::TupleBlock;
use crate::cancel::CancellationToken;
use crate::candidates::{adjust_for_sample, SampleIndex};
use crate::lattice::MAX_EXPAND_BITS;
use crate::miner::Tup;
use crate::rule::{Rule, WILDCARD};
use sirum_dataflow::hash::FxHashMap;
use sirum_dataflow::{Dataset, Engine};

/// Per-candidate aggregate carried by the sweep: `(Σm, Σm̂, pair count)` —
/// the same triple the legacy shuffle pipeline reduces by key.
type Agg = (f64, f64, u64);

/// How many units of work — data rows in the combine stage, ancestor
/// folds in the expand stage — a partition task processes between
/// cancellation polls (in addition to the poll at every partition
/// boundary).
pub const CANCEL_POLL_ROWS: usize = 4096;

/// One partition's fold state: a rule-keyed accumulator map plus the pair
/// counter (the Fig 5.8 "ancestors emitted" quantity, counted by the
/// expansion stage only) and the cancellation flag. Used for both sweep
/// stages — LCA combining over the data and ancestor expansion over the
/// frontier.
struct PartitionSweep {
    map: FxHashMap<Rule, Agg>,
    pairs: u64,
    cancelled: bool,
}

impl PartitionSweep {
    fn new() -> Self {
        PartitionSweep {
            map: FxHashMap::default(),
            pairs: 0,
            cancelled: false,
        }
    }

    /// Pre-sized accumulator: rehashing a tens-of-thousands-entry map
    /// several times while it grows costs a measurable slice of the hot
    /// loop, so tasks seed their maps from a workload-derived hint.
    fn with_capacity(capacity: usize) -> Self {
        PartitionSweep {
            map: FxHashMap::with_capacity_and_hasher(capacity, Default::default()),
            pairs: 0,
            cancelled: false,
        }
    }

    /// Fold `other` into `self`. Callers merge partitions **in partition
    /// order**, so each candidate's float sums accumulate deterministically.
    fn merge(&mut self, other: PartitionSweep) {
        self.pairs += other.pairs;
        self.cancelled |= other.cancelled;
        for (rule, agg) in other.map {
            match self.map.get_mut(rule.values()) {
                Some(a) => {
                    a.0 += agg.0;
                    a.1 += agg.1;
                    a.2 += agg.2;
                }
                None => {
                    self.map.insert(rule, agg);
                }
            }
        }
    }
}

/// What one full sweep over the data produces.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// Exact per-candidate aggregates over their true support sets:
    /// `(rule, Σm, Σm̂, |support|)`, already adjusted for sample
    /// multiplicity when an index was supplied. Deterministically ordered
    /// (partition-ordered merge; see the module docs). Empty when
    /// [`Self::cancelled`].
    pub candidates: Vec<(Rule, f64, f64, u64)>,
    /// Distinct candidate rules seen by the sweep (the rank-limit
    /// denominator of multi-rule selection).
    pub distinct_candidates: u64,
    /// Total (candidate, tuple-contribution) pairs folded — the quantity
    /// the legacy pipeline's ancestor-generation mappers would have
    /// emitted (Fig 5.8).
    pub pairs_emitted: u64,
    /// True when a cancellation token stopped the sweep at a partition
    /// boundary (or an intra-partition poll); `candidates` is empty.
    pub cancelled: bool,
}

#[inline]
fn is_cancelled(cancel: Option<&CancellationToken>) -> bool {
    cancel.is_some_and(CancellationToken::is_cancelled)
}

/// Fold a combined aggregate into every ancestor of `values` (the cube
/// lattice above one distinct LCA or tuple): `2^w` entries for `w`
/// constants. A single lattice can be huge (up to `2^MAX_EXPAND_BITS`
/// folds), so the cancellation token is polled every
/// [`CANCEL_POLL_ROWS`] folds *inside* the subset loop too; returns
/// `true` when the expansion was abandoned mid-lattice.
fn accumulate_ancestors(
    acc: &mut PartitionSweep,
    values: &[u32],
    agg: Agg,
    live: &mut Vec<usize>,
    buf: &mut Vec<u32>,
    cancel: Option<&CancellationToken>,
) -> bool {
    live.clear();
    live.extend((0..values.len()).filter(|&i| values[i] != WILDCARD));
    let w = live.len();
    // Unreachable through the miner, which rejects tables with more than
    // MAX_EXPAND_BITS dimensions up front (typed InvalidConfig).
    // lint:allow-assert — internal expansion-size invariant, not user-reachable
    assert!(w <= MAX_EXPAND_BITS, "refusing to expand 2^{w} ancestors");
    buf.clear();
    buf.extend_from_slice(values);
    for subset in 0..(1u32 << w) {
        for (bit, &pos) in live.iter().enumerate() {
            buf[pos] = if subset & (1 << bit) != 0 {
                WILDCARD
            } else {
                values[pos]
            };
        }
        acc.pairs += 1;
        if acc.pairs.is_multiple_of(CANCEL_POLL_ROWS as u64) && is_cancelled(cancel) {
            return true;
        }
        // Probe by borrowed slice first (no Rule allocation on hits).
        match acc.map.get_mut(buf.as_slice()) {
            Some(a) => {
                a.0 += agg.0;
                a.1 += agg.1;
                a.2 += agg.2;
            }
            None => {
                acc.map.insert(Rule::from_tuple(buf), agg);
            }
        }
    }
    false
}

/// Fold one data row's LCA contributions into the partition map. Probing
/// with a borrowed `&[u32]` LCA key (see `Borrow<[u32]> for Rule`) keeps
/// the hot loop allocation-free on hits and lets the map stay keyed by
/// *rules*, which stays small — one entry per distinct LCA, not per
/// (sample row, LCA) pair.
#[inline]
fn fold_lca(map: &mut FxHashMap<Rule, Agg>, key: &[u32], m: f64, mh: f64) {
    match map.get_mut(key) {
        Some(a) => {
            a.0 += m;
            a.1 += mh;
            a.2 += 1;
        }
        None => {
            map.insert(Rule::from_tuple(key), (m, mh, 1));
        }
    }
}

/// Stage 1, one partition: combine every `(sample tuple, data tuple)` LCA
/// (or the tuple itself when no index is given — the full-cube strategy)
/// into a partition-local `LCA → (Σm, Σm̂, pairs)` map. This is the
/// **single pass over the partitioned data**; pure function of the
/// partition's rows.
fn combine_partition(
    rows: &[Tup],
    d: usize,
    index: Option<&SampleIndex>,
    cancel: Option<&CancellationToken>,
) -> PartitionSweep {
    let mut acc = PartitionSweep::with_capacity(rows.len());
    if is_cancelled(cancel) {
        acc.cancelled = true;
        return acc;
    }
    let mut scratch = Vec::new();
    for (i, (dims, m, mh, _ba)) in rows.iter().enumerate() {
        if i > 0 && i % CANCEL_POLL_ROWS == 0 && is_cancelled(cancel) {
            acc.cancelled = true;
            return acc;
        }
        match index {
            Some(idx) => {
                let chunks = idx.lcas_into(dims, &mut scratch);
                for chunk in chunks.chunks_exact(d) {
                    fold_lca(&mut acc.map, chunk, *m, *mh);
                }
            }
            None => fold_lca(&mut acc.map, dims, *m, *mh),
        }
    }
    acc
}

/// Stage 1 over a columnar partition ([`TupleBlock`]): identical fold,
/// identical accumulator capacity and identical cancellation poll points
/// as [`combine_partition`] — the LCA probe reads attribute values
/// directly from the shared columns, and a row-shaped key is materialized
/// into a reusable scratch buffer only where a contiguous row is
/// unavoidable (the full-cube fold), so the per-candidate float sums are
/// **bit-identical** to the row-major path's for the same partitioning.
fn combine_partition_blocks(
    blocks: &[TupleBlock],
    d: usize,
    index: Option<&SampleIndex>,
    cancel: Option<&CancellationToken>,
) -> PartitionSweep {
    let rows: usize = blocks.iter().map(TupleBlock::len).sum();
    let mut acc = PartitionSweep::with_capacity(rows);
    if is_cancelled(cancel) {
        acc.cancelled = true;
        return acc;
    }
    let mut scratch = Vec::new();
    let mut row_buf = Vec::with_capacity(d);
    let mut at = 0usize;
    for block in blocks {
        let (m_col, mhat_col) = (block.m(), block.mhat());
        // The sample-index probe reads attribute values straight from the
        // columns (`lcas_into_cols`); only the full-cube fold needs a
        // contiguous row key and pays the gather.
        let cols: Vec<&[u32]> = (0..d).map(|j| block.dims().col(j)).collect();
        for i in 0..block.len() {
            if at > 0 && at.is_multiple_of(CANCEL_POLL_ROWS) && is_cancelled(cancel) {
                acc.cancelled = true;
                return acc;
            }
            at += 1;
            match index {
                Some(idx) => {
                    let chunks = idx.lcas_into_cols(&cols, i, &mut scratch);
                    for chunk in chunks.chunks_exact(d) {
                        fold_lca(&mut acc.map, chunk, m_col[i], mhat_col[i]);
                    }
                }
                None => {
                    block.gather(i, &mut row_buf);
                    fold_lca(&mut acc.map, &row_buf, m_col[i], mhat_col[i]);
                }
            }
        }
    }
    acc
}

/// Stage 2, one partition of the **frontier**: expand each globally
/// distinct LCA's cube lattice once, folding its combined aggregate into
/// every ancestor. Doing this after the global (partition-ordered) LCA
/// merge performs the `2^w` lattice work exactly once per distinct LCA —
/// the same complexity as the legacy pipeline's post-reduce expansion —
/// while staying shuffle-free.
fn expand_partition(
    frontier: &[(Rule, Agg)],
    cancel: Option<&CancellationToken>,
) -> PartitionSweep {
    let mut acc = PartitionSweep::with_capacity(frontier.len() * 4);
    if is_cancelled(cancel) {
        acc.cancelled = true;
        return acc;
    }
    let d = frontier.first().map_or(0, |(r, _)| r.arity());
    let mut live = Vec::with_capacity(d);
    let mut buf = Vec::with_capacity(d);
    for (lca, agg) in frontier {
        // The fold-budget poll lives inside accumulate_ancestors: one
        // lattice can dwarf the whole frontier, so counting entries here
        // would not bound the time to observe a cancellation.
        if accumulate_ancestors(&mut acc, lca.values(), *agg, &mut live, &mut buf, cancel) {
            acc.cancelled = true;
            return acc;
        }
    }
    acc
}

/// Turn the merged accumulator into the final outcome, dividing by sample
/// multiplicity when an index was used (§3.1.1) so every candidate carries
/// exact sums over its true support set.
fn finish(acc: PartitionSweep, index: Option<&SampleIndex>) -> SweepOutcome {
    if acc.cancelled {
        return SweepOutcome {
            candidates: Vec::new(),
            distinct_candidates: 0,
            pairs_emitted: acc.pairs,
            cancelled: true,
        };
    }
    let distinct = acc.map.len() as u64;
    let candidates = match index {
        Some(idx) => adjust_for_sample(acc.map, idx),
        None => acc
            .map
            .into_iter()
            .map(|(rule, (sm, smh, cnt))| (rule, sm, smh, cnt))
            .collect(),
    };
    SweepOutcome {
        candidates,
        distinct_candidates: distinct,
        pairs_emitted: acc.pairs,
        cancelled: false,
    }
}

/// Distribute the globally distinct LCA frontier over the same number of
/// partitions as the data, so stage 2's chunking (and therefore its
/// float-fold order) is a pure function of the stage-1 result.
fn frontier_dataset(
    engine: &Engine,
    partitions: usize,
    combined: PartitionSweep,
) -> Dataset<(Rule, Agg)> {
    let frontier: Vec<(Rule, Agg)> = combined.map.into_iter().collect();
    engine.parallelize(frontier, partitions.max(1))
}

/// Stage 2 + finish, shared by every stage-1 source (row-major or
/// columnar, parallel or sequential reference): expand the merged frontier
/// on the engine thread pool and assemble the outcome.
fn expand_merged(
    engine: &Engine,
    partitions: usize,
    combined: PartitionSweep,
    index: Option<&SampleIndex>,
    cancel: Option<&CancellationToken>,
) -> SweepOutcome {
    if combined.cancelled {
        return finish(combined, index);
    }
    let frontier = frontier_dataset(engine, partitions, combined);
    let acc = frontier.aggregate_partitions(
        "gain-sweep-expand",
        PartitionSweep::new,
        |_, lcas| expand_partition(lcas, cancel),
        PartitionSweep::merge,
    );
    finish(acc, index)
}

/// As [`expand_merged`], but expanding inline on the calling thread (the
/// sequential reference's stage 2).
fn expand_merged_reference(
    engine: &Engine,
    partitions: usize,
    combined: PartitionSweep,
    index: Option<&SampleIndex>,
    cancel: Option<&CancellationToken>,
) -> SweepOutcome {
    if combined.cancelled {
        return finish(combined, index);
    }
    let frontier = frontier_dataset(engine, partitions, combined);
    let mut expand = (0..frontier.num_partitions()).map(|i| {
        let part = frontier.part(i);
        expand_partition(&part, cancel)
    });
    let mut acc = expand.next().unwrap_or_else(PartitionSweep::new);
    for out in expand {
        acc.merge(out);
    }
    finish(acc, index)
}

/// Run the sweep as per-partition tasks on the dataset's engine thread
/// pool, merged with the partition-ordered reduction of
/// [`Dataset::aggregate_partitions`]: one scan over the partitioned data
/// combines the LCA frontier, one pass over the distinct frontier expands
/// the cube lattice — no shuffle in either stage. `d` is the table's
/// dimension count; `index` enables the sample-LCA strategy (`None` =
/// full cube).
///
/// Bit-identical to [`sweep_gains_reference`] for every worker count (see
/// the module docs for the argument), and to [`sweep_gains_blocks`] over
/// the same partitioning.
pub fn sweep_gains(
    data: &Dataset<Tup>,
    d: usize,
    index: Option<&SampleIndex>,
    cancel: Option<&CancellationToken>,
) -> SweepOutcome {
    let combined = data.aggregate_partitions(
        "gain-sweep-combine",
        PartitionSweep::new,
        |_, rows| combine_partition(rows, d, index, cancel),
        PartitionSweep::merge,
    );
    expand_merged(
        data.engine(),
        data.num_partitions(),
        combined,
        index,
        cancel,
    )
}

/// The sweep over the **columnar** dataset (one [`TupleBlock`] per
/// partition): the default data path. Stage 1 scans the shared dimension
/// columns, gathering each row into a scratch buffer only for the LCA
/// probe; stage 2 is shared with the row-major sweep. Bit-identical to
/// [`sweep_gains`] over the same partitioning — proptested in
/// `crates/core/tests/properties.rs`.
pub fn sweep_gains_blocks(
    data: &Dataset<TupleBlock>,
    d: usize,
    index: Option<&SampleIndex>,
    cancel: Option<&CancellationToken>,
) -> SweepOutcome {
    let combined = data.aggregate_partitions(
        "gain-sweep-combine",
        PartitionSweep::new,
        |_, blocks| combine_partition_blocks(blocks, d, index, cancel),
        PartitionSweep::merge,
    );
    expand_merged(
        data.engine(),
        data.num_partitions(),
        combined,
        index,
        cancel,
    )
}

/// The sequential reference: identical per-partition work and identical
/// partition-ordered merges, executed inline on the calling thread without
/// the engine's thread pool. This is the "1-thread path" the proptests
/// compare the parallel sweep against.
pub fn sweep_gains_reference(
    data: &Dataset<Tup>,
    d: usize,
    index: Option<&SampleIndex>,
    cancel: Option<&CancellationToken>,
) -> SweepOutcome {
    // Mirror aggregate_partitions' fold exactly: the first partition's
    // accumulator *is* the fold seed (not an empty map merged with it),
    // so map insertion orders — and therefore the frontier's chunking —
    // match the parallel path bit for bit.
    let mut combine = (0..data.num_partitions()).map(|i| {
        let part = data.part(i);
        combine_partition(&part, d, index, cancel)
    });
    let mut combined = combine.next().unwrap_or_else(PartitionSweep::new);
    for acc in combine {
        combined.merge(acc);
    }
    expand_merged_reference(
        data.engine(),
        data.num_partitions(),
        combined,
        index,
        cancel,
    )
}

/// Sequential reference over the columnar dataset (see
/// [`sweep_gains_reference`]).
pub fn sweep_gains_blocks_reference(
    data: &Dataset<TupleBlock>,
    d: usize,
    index: Option<&SampleIndex>,
    cancel: Option<&CancellationToken>,
) -> SweepOutcome {
    let mut combine = (0..data.num_partitions()).map(|i| {
        let part = data.part(i);
        combine_partition_blocks(&part, d, index, cancel)
    });
    let mut combined = combine.next().unwrap_or_else(PartitionSweep::new);
    for acc in combine {
        combined.merge(acc);
    }
    expand_merged_reference(
        data.engine(),
        data.num_partitions(),
        combined,
        index,
        cancel,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::exhaustive_candidates;
    use sirum_dataflow::{Engine, EngineConfig};
    use sirum_table::generators::flights;

    fn tuples(table: &sirum_table::Table) -> Vec<Tup> {
        (0..table.num_rows())
            .map(|i| {
                (
                    table.row(i).to_vec().into_boxed_slice(),
                    table.measure(i),
                    1.0,
                    0u64,
                )
            })
            .collect()
    }

    #[test]
    fn full_cube_sweep_matches_exhaustive_reference() {
        let t = flights();
        let engine = Engine::new(EngineConfig::in_memory().with_workers(2));
        let data = engine.parallelize(tuples(&t), 4);
        let out = sweep_gains(&data, 3, None, None);
        let exhaustive = exhaustive_candidates(&t, &[1.0; 14]);
        assert_eq!(out.candidates.len(), exhaustive.len());
        assert_eq!(out.distinct_candidates, exhaustive.len() as u64);
        for (rule, sm, smh, cnt) in &out.candidates {
            let (em, emh, ec) = exhaustive[rule];
            assert!((sm - em).abs() < 1e-9, "{rule:?}");
            assert!((smh - emh).abs() < 1e-9, "{rule:?}");
            assert_eq!(*cnt, ec, "{rule:?}");
        }
        // One pair per (tuple, lattice ancestor): 14 tuples × 2^3.
        assert_eq!(out.pairs_emitted, 14 * 8);
    }

    #[test]
    fn sample_sweep_recovers_exact_support_sums() {
        let t = flights();
        let sample: Vec<Box<[u32]>> = [3usize, 8, 0]
            .iter()
            .map(|&i| t.row(i).to_vec().into_boxed_slice())
            .collect();
        let index = SampleIndex::build(sample, 3);
        let engine = Engine::new(EngineConfig::in_memory().with_workers(2));
        let data = engine.parallelize(tuples(&t), 3);
        let out = sweep_gains(&data, 3, Some(&index), None);
        for (rule, sm, smh, cnt) in &out.candidates {
            let mut exp = (0.0, 0.0, 0u64);
            for (i, row) in t.rows().enumerate() {
                if rule.matches(row) {
                    exp.0 += t.measure(i);
                    exp.1 += 1.0;
                    exp.2 += 1;
                }
            }
            assert!((sm - exp.0).abs() < 1e-9, "{rule:?}");
            assert!((smh - exp.1).abs() < 1e-9, "{rule:?}");
            assert_eq!(*cnt, exp.2, "{rule:?}");
        }
    }

    #[test]
    fn parallel_and_reference_paths_are_bit_identical() {
        let t = flights();
        let canon = |mut v: Vec<(Rule, f64, f64, u64)>| -> Vec<(Rule, u64, u64, u64)> {
            v.sort_by(|a, b| a.0.values().cmp(b.0.values()));
            v.into_iter()
                .map(|(r, a, b, c)| (r, a.to_bits(), b.to_bits(), c))
                .collect()
        };
        for workers in [1, 2, 4] {
            let engine = Engine::new(EngineConfig::in_memory().with_workers(workers));
            let data = engine.parallelize(tuples(&t), 5);
            let par = sweep_gains(&data, 3, None, None);
            let seq = sweep_gains_reference(&data, 3, None, None);
            assert_eq!(par.pairs_emitted, seq.pairs_emitted);
            assert_eq!(canon(par.candidates), canon(seq.candidates));
        }
    }

    #[test]
    fn columnar_blocks_sweep_is_bit_identical_to_the_row_sweep() {
        use sirum_table::Frame;
        let t = flights();
        let engine = Engine::new(EngineConfig::in_memory().with_workers(2));
        let rows = engine.parallelize(tuples(&t), 4);
        let frame = Frame::from_table(&t);
        let m: sirum_table::ColSlice<f64> = t.measures().to_vec().into();
        let blocks: Vec<TupleBlock> = frame
            .partition_views(4)
            .into_iter()
            .map(|v| TupleBlock::seed(v.clone(), m.slice(v.start(), v.len())))
            .collect();
        let block_ds = Dataset::from_partitioned(&engine, blocks);
        let canon = |out: SweepOutcome| -> Vec<(Rule, u64, u64, u64)> {
            out.candidates
                .into_iter()
                .map(|(r, a, b, c)| (r, a.to_bits(), b.to_bits(), c))
                .collect()
        };
        let sample: Vec<Box<[u32]>> = [3usize, 8]
            .iter()
            .map(|&i| t.row(i).to_vec().into_boxed_slice())
            .collect();
        let index = SampleIndex::build(sample, 3);
        for idx in [None, Some(&index)] {
            let row_out = sweep_gains(&rows, 3, idx, None);
            let blk_out = sweep_gains_blocks(&block_ds, 3, idx, None);
            let blk_ref = sweep_gains_blocks_reference(&block_ds, 3, idx, None);
            assert_eq!(row_out.pairs_emitted, blk_out.pairs_emitted);
            assert_eq!(row_out.distinct_candidates, blk_out.distinct_candidates);
            // Same partitioning ⇒ identical fold orders ⇒ identical bits,
            // including the deterministic candidate ORDER.
            let row_bits = canon(row_out);
            assert_eq!(row_bits, canon(blk_out));
            assert_eq!(row_bits, canon(blk_ref));
        }
    }

    #[test]
    fn cancelled_token_stops_the_sweep_without_partial_candidates() {
        let t = flights();
        let engine = Engine::new(EngineConfig::in_memory().with_workers(2));
        let data = engine.parallelize(tuples(&t), 2);
        let token = CancellationToken::new();
        token.cancel();
        let out = sweep_gains(&data, 3, None, Some(&token));
        assert!(out.cancelled);
        assert!(out.candidates.is_empty());
        assert_eq!(out.distinct_candidates, 0);
    }
}
