//! Partition-parallel candidate gain sweep.
//!
//! The legacy candidate pipeline of [`crate::miner`] stages the work the
//! way the paper's MapReduce/Spark jobs do: emit one `(rule, aggregate)`
//! pair per (sample tuple, data tuple) LCA, shuffle, expand ancestors in
//! one stage per column group, shuffle again, then adjust and score. That
//! reproduces the platform economics of Chapter 3, but on a single machine
//! every shuffle is pure overhead: the same numbers fall out of **one scan
//! over the partitioned data** that folds every tuple's contributions into
//! per-partition `(Σm, Σm̂, pairs)` accumulators for *all* live candidates
//! at once — the group-by-style aggregation El Gebaly et al.'s explanation
//! tables use to stay competitive.
//!
//! The sweep runs as two shuffle-free, partition-parallel stages on the
//! existing [`sirum_dataflow::Engine`] thread pool
//! ([`Dataset::aggregate_partitions`]):
//!
//! 1. **Combine** — each data partition folds its `(sample tuple, data
//!    tuple)` LCAs into a local `LCA → (Σm, Σm̂, pairs)` map; the maps are
//!    merged in partition order into the globally distinct LCA frontier;
//! 2. **Expand** — the frontier is split over the same number of
//!    partitions and each task expands its LCAs' cube lattices once,
//!    folding the combined aggregates into every ancestor; the candidate
//!    maps are again merged in partition order.
//!
//! ## Packed rule codes
//!
//! On the hot path rules are interned as dense integer codes
//! ([`crate::rule::RuleLayout`]): each dimension gets a bit-field sized by
//! its dictionary cardinality (wildcard = the reserved all-ones slot), so
//! an LCA key is one `u64`/`u128` instead of a `&[u32]` slice — the
//! combine probe becomes an integer hash plus an integer compare, and
//! ancestor expansion is a couple of ORs per ancestor instead of slice
//! rewrites. When the summed widths exceed 128 bits the sweep falls back
//! to the original `Rule`-keyed maps; [`SweepOptions`] picks the path.
//! Each combine partition also chooses **how** to aggregate via
//! [`sirum_dataflow::cost::choose_combine`]: probe-or-insert into the
//! hash map, or radix-scatter `(code, m, m̂)` triples into 256 hash
//! lanes and fold each lane through its own cache-resident map (better
//! once the distinct working set outgrows the cache). Both are
//! bit-identical by construction — a code's emissions all land in one
//! lane in emission order, so its float sums add in the same sequence.
//!
//! Determinism argument (see DESIGN.md "Partition-parallel gain sweep"
//! and "Packed rule codes" for the full version):
//!
//! 1. every partition task is a pure function of its partition's input
//!    (row order within a partition is fixed by the original encoding
//!    order);
//! 2. [`Dataset::aggregate_partitions`] returns task outputs in partition
//!    order regardless of which worker ran which task, and the driver folds
//!    them front-to-back — so each candidate's floating-point sums are
//!    accumulated in exactly the same order for 1 worker or N;
//! 3. the merged stage-1 frontier is sorted into **canonical rule order**
//!    before stage-2 chunking (packed codes are order-isomorphic to
//!    lexicographic `Rule::values` order, so every key representation
//!    sorts identically), and the final candidate list is sorted the same
//!    way — no intermediate hash map's iteration order reaches the output.
//!
//! Hence the sweep's per-candidate sums — and everything derived from them
//! (gains, the selected rule sequence) — are **bit-identical to the
//! sequential reference** ([`sweep_gains_reference`]) for any worker
//! count, and across the packed/`Rule`-keyed, hash/radix-group and
//! row-major/columnar variants. Proptests in
//! `crates/core/tests/properties.rs` pin this across random tables,
//! partition counts and thread counts.
//!
//! Cancellation is polled at every partition boundary and every
//! [`CANCEL_POLL_ROWS`] **work units** inside both stages — a work unit is
//! one LCA fold (or scanned row) in the combine stage and one ancestor
//! fold in the expand stage, so the latency to observe a cancellation is
//! bounded even across stretches that emit nothing (a row whose LCAs all
//! hit existing entries still counts work). A cancelled sweep returns an
//! empty candidate list with [`SweepOutcome::cancelled`] set, and the
//! miner abandons the iteration without selecting from partial sums.

use crate::block::TupleBlock;
use crate::cancel::CancellationToken;
use crate::candidates::{adjust_for_sample, SampleIndex};
use crate::lattice::{packed_live_dims, MAX_EXPAND_BITS};
use crate::miner::Tup;
use crate::rule::{PackedCode, PackedMasks, Rule, RuleLayout, WILDCARD};
use sirum_dataflow::cost::{choose_combine, CombineStrategy};
use sirum_dataflow::hash::{fx_hash_one, FxHashMap};
use sirum_dataflow::{Dataset, Engine};

/// Per-candidate aggregate carried by the sweep: `(Σm, Σm̂, pair count)` —
/// the same triple the legacy shuffle pipeline reduces by key.
type Agg = (f64, f64, u64);

/// How many units of work — LCA folds or scanned rows in the combine
/// stage, ancestor folds in the expand stage — a partition task processes
/// between cancellation polls (in addition to the poll at every partition
/// boundary). Counting *folds* rather than emitted pairs bounds the poll
/// latency even through long stretches that emit nothing new.
pub const CANCEL_POLL_ROWS: usize = 4096;

/// How the sweep keys its hot-path accumulators, chosen once per sweep
/// from the table's dictionary cardinalities (see the module docs).
#[derive(Debug, Clone, Default)]
pub struct SweepOptions {
    layout: Option<RuleLayout>,
    combine: Option<CombineStrategy>,
}

impl SweepOptions {
    /// The original `Rule`-keyed accumulators (also the automatic fallback
    /// when a packed layout overflows 128 bits).
    pub fn rule_keyed() -> SweepOptions {
        SweepOptions::default()
    }

    /// Packed integer codes laid out by `layout`; falls back to
    /// `Rule`-keyed maps automatically when the layout does not fit 128
    /// bits.
    pub fn packed(layout: RuleLayout) -> SweepOptions {
        SweepOptions {
            layout: Some(layout),
            combine: None,
        }
    }

    /// Force every combine partition onto one [`CombineStrategy`] instead
    /// of the per-partition cost-model choice (benchmarks and the
    /// bit-identity tests use this; the mining output is identical either
    /// way).
    pub fn with_combine(mut self, strategy: CombineStrategy) -> SweepOptions {
        self.combine = Some(strategy);
        self
    }

    /// The packed code width this sweep will run with (64 or 128), or
    /// `None` when it runs `Rule`-keyed (no layout, or fallback).
    pub fn packed_bits(&self) -> Option<u32> {
        let layout = self.layout.as_ref()?;
        if layout.fits::<u64>() {
            Some(64)
        } else if layout.fits::<u128>() {
            Some(128)
        } else {
            None
        }
    }

    /// The forced combine strategy, if any.
    pub fn combine_override(&self) -> Option<CombineStrategy> {
        self.combine
    }
}

/// What one full sweep over the data produces.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// Exact per-candidate aggregates over their true support sets:
    /// `(rule, Σm, Σm̂, |support|)`, already adjusted for sample
    /// multiplicity when an index was supplied. Sorted in canonical rule
    /// order (lexicographic on values, wildcards last), which is identical
    /// across every sweep variant. Empty when [`Self::cancelled`].
    pub candidates: Vec<(Rule, f64, f64, u64)>,
    /// Distinct candidate rules seen by the sweep (the rank-limit
    /// denominator of multi-rule selection).
    pub distinct_candidates: u64,
    /// Total (candidate, tuple-contribution) pairs folded — the quantity
    /// the legacy pipeline's ancestor-generation mappers would have
    /// emitted (Fig 5.8).
    pub pairs_emitted: u64,
    /// True when a cancellation token stopped the sweep at a partition
    /// boundary (or an intra-partition poll); `candidates` is empty.
    pub cancelled: bool,
}

#[inline]
fn is_cancelled(cancel: Option<&CancellationToken>) -> bool {
    cancel.is_some_and(CancellationToken::is_cancelled)
}

/// One partition's fold state, generic over the accumulator key (a packed
/// code or a [`Rule`]). Used for both sweep stages — LCA combining over
/// the data and ancestor expansion over the frontier.
struct PartitionSweep<K> {
    map: FxHashMap<K, Agg>,
    /// Ancestor folds performed (the Fig 5.8 "ancestors emitted" quantity,
    /// counted by the expansion stage only).
    pairs: u64,
    /// Work units since the task started — the cancellation poll clock
    /// (never part of the output).
    work: u64,
    cancelled: bool,
}

impl<K: Eq + std::hash::Hash> PartitionSweep<K> {
    fn new() -> Self {
        PartitionSweep {
            map: FxHashMap::default(),
            pairs: 0,
            work: 0,
            cancelled: false,
        }
    }

    /// Pre-sized accumulator: rehashing a tens-of-thousands-entry map
    /// several times while it grows costs a measurable slice of the hot
    /// loop, so tasks seed their maps from a workload-derived hint.
    fn with_capacity(capacity: usize) -> Self {
        PartitionSweep {
            map: FxHashMap::with_capacity_and_hasher(capacity, Default::default()),
            pairs: 0,
            work: 0,
            cancelled: false,
        }
    }

    /// Count one unit of work and poll the cancellation token on the
    /// budget boundary. Returns `true` when the task should abandon.
    #[inline]
    fn tick(&mut self, cancel: Option<&CancellationToken>) -> bool {
        self.work += 1;
        if self.work.is_multiple_of(CANCEL_POLL_ROWS as u64) && is_cancelled(cancel) {
            self.cancelled = true;
            return true;
        }
        false
    }

    /// Fold `other` into `self`. Callers merge partitions **in partition
    /// order**, so each candidate's float sums accumulate deterministically.
    fn merge(&mut self, other: PartitionSweep<K>) {
        self.pairs += other.pairs;
        self.work += other.work;
        self.cancelled |= other.cancelled;
        for (key, agg) in other.map {
            match self.map.get_mut(&key) {
                Some(a) => {
                    a.0 += agg.0;
                    a.1 += agg.1;
                    a.2 += agg.2;
                }
                None => {
                    self.map.insert(key, agg);
                }
            }
        }
    }

    /// Probe-or-insert one full aggregate (both stages' hash inner fold:
    /// the combine stage passes `(m, m̂, 1)`, the expand stage the merged
    /// LCA aggregate).
    #[inline]
    fn fold_agg(&mut self, key: K, agg: Agg)
    where
        K: Copy,
    {
        match self.map.get_mut(&key) {
            Some(a) => {
                a.0 += agg.0;
                a.1 += agg.1;
                a.2 += agg.2;
            }
            None => {
                self.map.insert(key, agg);
            }
        }
    }
}

/// How many scatter lanes the [`CombineStrategy::RadixGroup`] combine path
/// uses (indexed by the top byte of the key's Fx hash).
const RADIX_LANES: usize = 256;

/// Radix-bucketed emission log for the [`CombineStrategy::RadixGroup`]
/// combine path. Emissions scatter into [`RADIX_LANES`] lanes by the high
/// byte of their key's Fx hash — a purely sequential append — and each
/// lane then folds through one small reused map holding ~1/256 of the
/// distinct keys, which stays cache-resident even when a single flat
/// accumulator would spill every probe to DRAM.
///
/// Bit-identity with the probe-or-insert path: a key's emissions all hash
/// to the same lane and the scatter is stable, so each key's float sums
/// accumulate in the original emission order. Entries land in the output
/// map lane by lane, an ordering the canonical frontier sort later erases
/// anyway.
struct RadixBuckets<K> {
    lanes: Vec<Vec<(K, f64, f64)>>,
}

impl<K: Eq + std::hash::Hash + Copy> RadixBuckets<K> {
    /// Lanes pre-sized for `records` total emissions split evenly.
    fn with_capacity(records: usize) -> Self {
        let per_lane = records / RADIX_LANES + 1;
        RadixBuckets {
            lanes: (0..RADIX_LANES)
                .map(|_| Vec::with_capacity(per_lane))
                .collect(),
        }
    }

    /// Append one emission to its key's lane.
    #[inline]
    fn push(&mut self, key: K, m: f64, mh: f64) {
        let lane = (fx_hash_one(&key) >> 56) as usize;
        self.lanes[lane].push((key, m, mh));
    }

    /// Fold every lane into the accumulator map, one lane at a time.
    fn group_into(self, acc: &mut PartitionSweep<K>) {
        let mut lane_map: FxHashMap<K, Agg> = FxHashMap::default();
        for lane in self.lanes {
            lane_map.reserve(lane.len());
            for (key, m, mh) in lane {
                match lane_map.get_mut(&key) {
                    Some(a) => {
                        a.0 += m;
                        a.1 += mh;
                        a.2 += 1;
                    }
                    None => {
                        lane_map.insert(key, (m, mh, 1));
                    }
                }
            }
            // Each key lives in exactly one lane, so these inserts never
            // collide with an existing entry.
            for (key, agg) in lane_map.drain() {
                acc.map.insert(key, agg);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Packed-code stages
// ---------------------------------------------------------------------------

/// Pick the combine strategy for one partition: the forced override, or
/// the cost model fed with this partition's emission volume (`rows × |s|`
/// pairs). The same count doubles as the distinct-code ceiling hint —
/// every pair can in principle yield a fresh LCA, and real workloads land
/// close enough to that bound (tens of thousands of distinct codes from a
/// few thousand rows) that hinting `rows` alone kept the model in the
/// cache-hit regime while the actual accumulator was spilling to DRAM.
fn partition_strategy(
    rows: usize,
    index: Option<&SampleIndex>,
    force: Option<CombineStrategy>,
) -> CombineStrategy {
    force.unwrap_or_else(|| {
        let s = index.map_or(1, SampleIndex::len).max(1);
        let records = rows as u64 * s as u64;
        choose_combine(records, records)
    })
}

/// Stage 1, one row-major partition, packed keys: combine every
/// `(sample tuple, data tuple)` LCA (or the packed tuple itself when no
/// index is given — the full-cube strategy) into a partition-local
/// `code → (Σm, Σm̂, pairs)` map.
fn combine_rows_packed<C: PackedCode>(
    rows: &[Tup],
    layout: &RuleLayout,
    masks: &PackedMasks<C>,
    index: Option<&SampleIndex>,
    cancel: Option<&CancellationToken>,
    force: Option<CombineStrategy>,
) -> PartitionSweep<C> {
    let mut acc = PartitionSweep::with_capacity(rows.len());
    if is_cancelled(cancel) {
        acc.cancelled = true;
        return acc;
    }
    let strategy = partition_strategy(rows.len(), index, force);
    let mut scratch: Vec<C> = Vec::new();
    let mut buckets = if strategy == CombineStrategy::RadixGroup {
        let s = index.map_or(1, SampleIndex::len).max(1);
        RadixBuckets::with_capacity(rows.len() * s)
    } else {
        RadixBuckets { lanes: Vec::new() }
    };
    // All-wild fast path: a (sample, data) pair with no shared constants
    // yields the `(*, …, *)` LCA — usually the most frequent code by far.
    // Its contributions touch no other key, so a register accumulator adds
    // them in exactly the emission order the map entry would have seen
    // (bit-identical), skipping one hash probe per such pair.
    let aw = masks.all_wild();
    let mut wild: Agg = (0.0, 0.0, 0);
    for (dims, m, mh, _ba) in rows {
        match index {
            Some(idx) => {
                for &code in idx.packed_lcas_into(masks, dims, &mut scratch) {
                    if acc.tick(cancel) {
                        return acc;
                    }
                    if code == aw {
                        wild.0 += *m;
                        wild.1 += *mh;
                        wild.2 += 1;
                    } else {
                        match strategy {
                            CombineStrategy::HashProbe => acc.fold_agg(code, (*m, *mh, 1)),
                            CombineStrategy::RadixGroup => buckets.push(code, *m, *mh),
                        }
                    }
                }
            }
            None => {
                if acc.tick(cancel) {
                    return acc;
                }
                let code: C = layout.pack(dims);
                match strategy {
                    CombineStrategy::HashProbe => acc.fold_agg(code, (*m, *mh, 1)),
                    CombineStrategy::RadixGroup => buckets.push(code, *m, *mh),
                }
            }
        }
    }
    if strategy == CombineStrategy::RadixGroup {
        buckets.group_into(&mut acc);
    }
    if wild.2 > 0 {
        acc.fold_agg(aw, wild);
    }
    acc
}

/// Stage 1 over a columnar partition ([`TupleBlock`]), packed keys:
/// identical fold order and identical cancellation poll points as
/// [`combine_rows_packed`] — the LCA probe reads attribute values directly
/// from the shared columns.
fn combine_blocks_packed<C: PackedCode>(
    blocks: &[TupleBlock],
    d: usize,
    layout: &RuleLayout,
    masks: &PackedMasks<C>,
    index: Option<&SampleIndex>,
    cancel: Option<&CancellationToken>,
    force: Option<CombineStrategy>,
) -> PartitionSweep<C> {
    let rows: usize = blocks.iter().map(TupleBlock::len).sum();
    let mut acc = PartitionSweep::with_capacity(rows);
    if is_cancelled(cancel) {
        acc.cancelled = true;
        return acc;
    }
    let strategy = partition_strategy(rows, index, force);
    let mut scratch: Vec<C> = Vec::new();
    let mut row_buf = Vec::with_capacity(d);
    let mut buckets = if strategy == CombineStrategy::RadixGroup {
        let s = index.map_or(1, SampleIndex::len).max(1);
        RadixBuckets::with_capacity(rows * s)
    } else {
        RadixBuckets { lanes: Vec::new() }
    };
    // Same all-wild register accumulator as [`combine_rows_packed`] — see
    // the bit-identity note there.
    let aw = masks.all_wild();
    let mut wild: Agg = (0.0, 0.0, 0);
    let mut dim_scratch = sirum_table::ColScratch::new();
    for block in blocks {
        let (m_col, mhat_col) = (block.m(), block.mhat());
        let dims = block.dims();
        // Morsel-driven: raw blocks scan as one whole-range morsel (the
        // direct column borrows of the pre-compression path), compressed
        // blocks decode segment-aligned morsels into reusable scratch. The
        // row visit order — and every tick/fold position — is unchanged.
        for (ms, ml) in dims.morsel_bounds() {
            let cols = dims.morsel_cols(ms, ml, &mut dim_scratch);
            for li in 0..ml {
                let i = ms + li;
                match index {
                    Some(idx) => {
                        for &code in idx.packed_lcas_into_cols(masks, &cols, li, &mut scratch) {
                            if acc.tick(cancel) {
                                return acc;
                            }
                            if code == aw {
                                wild.0 += m_col[i];
                                wild.1 += mhat_col[i];
                                wild.2 += 1;
                            } else {
                                match strategy {
                                    CombineStrategy::HashProbe => {
                                        acc.fold_agg(code, (m_col[i], mhat_col[i], 1));
                                    }
                                    CombineStrategy::RadixGroup => {
                                        buckets.push(code, m_col[i], mhat_col[i]);
                                    }
                                }
                            }
                        }
                    }
                    None => {
                        if acc.tick(cancel) {
                            return acc;
                        }
                        row_buf.clear();
                        row_buf.extend(cols.iter().map(|c| c[li]));
                        let code: C = layout.pack(&row_buf);
                        match strategy {
                            CombineStrategy::HashProbe => {
                                acc.fold_agg(code, (m_col[i], mhat_col[i], 1));
                            }
                            CombineStrategy::RadixGroup => {
                                buckets.push(code, m_col[i], mhat_col[i]);
                            }
                        }
                    }
                }
            }
        }
    }
    if strategy == CombineStrategy::RadixGroup {
        buckets.group_into(&mut acc);
    }
    if wild.2 > 0 {
        acc.fold_agg(aw, wild);
    }
    acc
}

/// Stage 2, one partition of the packed **frontier**: expand each globally
/// distinct LCA's cube lattice once — two ORs per ancestor — folding its
/// combined aggregate into every ancestor.
fn expand_packed<C: PackedCode>(
    frontier: &[(C, Agg)],
    masks: &PackedMasks<C>,
    cancel: Option<&CancellationToken>,
) -> PartitionSweep<C> {
    let mut acc = PartitionSweep::with_capacity(frontier.len() * 4);
    if is_cancelled(cancel) {
        acc.cancelled = true;
        return acc;
    }
    let mut live = Vec::with_capacity(masks.num_dims());
    let mut deltas: Vec<C> = Vec::with_capacity(masks.num_dims());
    for &(code, agg) in frontier {
        packed_live_dims(code, masks, &mut live);
        let w = live.len();
        // Unreachable through the miner, which rejects tables with more
        // than MAX_EXPAND_BITS dimensions up front (typed InvalidConfig).
        // lint:allow(SL001) — internal expansion-size invariant, not user-reachable
        assert!(w <= MAX_EXPAND_BITS, "refusing to expand 2^{w} ancestors");
        // Walk the lattice in binary-reflected Gray order: each step
        // toggles one live field between its value and all-ones, so every
        // ancestor is a single XOR from the previous one. Enumeration
        // order within a lattice is free to differ from the rule-keyed
        // path's 0..2^w order — subsets of distinct live dims yield
        // distinct codes, so each ancestor key still receives exactly one
        // fold per lattice and cross-variant sums are unchanged.
        deltas.clear();
        deltas.extend(live.iter().map(|&j| masks.wild(j).bitand(code.not())));
        let mut anc = code;
        for step in 0..(1u32 << w) {
            if step != 0 {
                anc = anc.bitxor(deltas[step.trailing_zeros() as usize]);
            }
            acc.pairs += 1;
            // One lattice can dwarf the whole frontier, so the poll clock
            // counts folds, not frontier entries.
            if acc.tick(cancel) {
                return acc;
            }
            acc.fold_agg(anc, agg);
        }
    }
    acc
}

// ---------------------------------------------------------------------------
// Rule-keyed stages (the >128-bit fallback and the historical reference)
// ---------------------------------------------------------------------------

/// Fold a combined aggregate into every ancestor of `values` (the cube
/// lattice above one distinct LCA or tuple): `2^w` entries for `w`
/// constants. A single lattice can be huge (up to `2^MAX_EXPAND_BITS`
/// folds), so the work clock ticks every fold *inside* the subset loop
/// too; returns `true` when the expansion was abandoned mid-lattice.
fn accumulate_ancestors(
    acc: &mut PartitionSweep<Rule>,
    values: &[u32],
    agg: Agg,
    live: &mut Vec<usize>,
    buf: &mut Vec<u32>,
    cancel: Option<&CancellationToken>,
) -> bool {
    live.clear();
    live.extend((0..values.len()).filter(|&i| values[i] != WILDCARD));
    let w = live.len();
    // Unreachable through the miner, which rejects tables with more than
    // MAX_EXPAND_BITS dimensions up front (typed InvalidConfig).
    // lint:allow(SL001) — internal expansion-size invariant, not user-reachable
    assert!(w <= MAX_EXPAND_BITS, "refusing to expand 2^{w} ancestors");
    buf.clear();
    buf.extend_from_slice(values);
    for subset in 0..(1u32 << w) {
        for (bit, &pos) in live.iter().enumerate() {
            buf[pos] = if subset & (1 << bit) != 0 {
                WILDCARD
            } else {
                values[pos]
            };
        }
        acc.pairs += 1;
        if acc.tick(cancel) {
            return true;
        }
        // Probe by borrowed slice first (no Rule allocation on hits).
        match acc.map.get_mut(buf.as_slice()) {
            Some(a) => {
                a.0 += agg.0;
                a.1 += agg.1;
                a.2 += agg.2;
            }
            None => {
                acc.map.insert(Rule::from_tuple(buf), agg);
            }
        }
    }
    false
}

/// Fold one data row's LCA contributions into the partition map. Probing
/// with a borrowed `&[u32]` LCA key (see `Borrow<[u32]> for Rule`) keeps
/// the hot loop allocation-free on hits and lets the map stay keyed by
/// *rules*, which stays small — one entry per distinct LCA, not per
/// (sample row, LCA) pair.
#[inline]
fn fold_lca(map: &mut FxHashMap<Rule, Agg>, key: &[u32], m: f64, mh: f64) {
    match map.get_mut(key) {
        Some(a) => {
            a.0 += m;
            a.1 += mh;
            a.2 += 1;
        }
        None => {
            map.insert(Rule::from_tuple(key), (m, mh, 1));
        }
    }
}

/// Stage 1, one partition: combine every `(sample tuple, data tuple)` LCA
/// (or the tuple itself when no index is given — the full-cube strategy)
/// into a partition-local `LCA → (Σm, Σm̂, pairs)` map. This is the
/// **single pass over the partitioned data**; pure function of the
/// partition's rows.
fn combine_partition(
    rows: &[Tup],
    d: usize,
    index: Option<&SampleIndex>,
    cancel: Option<&CancellationToken>,
) -> PartitionSweep<Rule> {
    let mut acc = PartitionSweep::with_capacity(rows.len());
    if is_cancelled(cancel) {
        acc.cancelled = true;
        return acc;
    }
    let mut scratch = Vec::new();
    for (dims, m, mh, _ba) in rows {
        match index {
            Some(idx) => {
                let chunks = idx.lcas_into(dims, &mut scratch);
                for chunk in chunks.chunks_exact(d) {
                    if acc.tick(cancel) {
                        return acc;
                    }
                    fold_lca(&mut acc.map, chunk, *m, *mh);
                }
            }
            None => {
                if acc.tick(cancel) {
                    return acc;
                }
                fold_lca(&mut acc.map, dims, *m, *mh);
            }
        }
    }
    acc
}

/// Stage 1 over a columnar partition ([`TupleBlock`]): identical fold,
/// identical accumulator capacity and identical cancellation poll points
/// as [`combine_partition`] — the LCA probe reads attribute values
/// directly from the shared columns, and a row-shaped key is materialized
/// into a reusable scratch buffer only where a contiguous row is
/// unavoidable (the full-cube fold), so the per-candidate float sums are
/// **bit-identical** to the row-major path's for the same partitioning.
fn combine_partition_blocks(
    blocks: &[TupleBlock],
    d: usize,
    index: Option<&SampleIndex>,
    cancel: Option<&CancellationToken>,
) -> PartitionSweep<Rule> {
    let rows: usize = blocks.iter().map(TupleBlock::len).sum();
    let mut acc = PartitionSweep::with_capacity(rows);
    if is_cancelled(cancel) {
        acc.cancelled = true;
        return acc;
    }
    let mut scratch = Vec::new();
    let mut row_buf = Vec::with_capacity(d);
    let mut dim_scratch = sirum_table::ColScratch::new();
    for block in blocks {
        let (m_col, mhat_col) = (block.m(), block.mhat());
        let dims = block.dims();
        // Morsel-driven (see combine_blocks_packed): the sample-index probe
        // reads attribute values straight from the morsel columns
        // (`lcas_into_cols`); only the full-cube fold needs a contiguous
        // row key and pays the per-row assembly.
        for (ms, ml) in dims.morsel_bounds() {
            let cols = dims.morsel_cols(ms, ml, &mut dim_scratch);
            for li in 0..ml {
                let i = ms + li;
                match index {
                    Some(idx) => {
                        let chunks = idx.lcas_into_cols(&cols, li, &mut scratch);
                        for chunk in chunks.chunks_exact(d) {
                            if acc.tick(cancel) {
                                return acc;
                            }
                            fold_lca(&mut acc.map, chunk, m_col[i], mhat_col[i]);
                        }
                    }
                    None => {
                        if acc.tick(cancel) {
                            return acc;
                        }
                        row_buf.clear();
                        row_buf.extend(cols.iter().map(|c| c[li]));
                        fold_lca(&mut acc.map, &row_buf, m_col[i], mhat_col[i]);
                    }
                }
            }
        }
    }
    acc
}

/// Stage 2, one partition of the **frontier**: expand each globally
/// distinct LCA's cube lattice once, folding its combined aggregate into
/// every ancestor. Doing this after the global (partition-ordered) LCA
/// merge performs the `2^w` lattice work exactly once per distinct LCA —
/// the same complexity as the legacy pipeline's post-reduce expansion —
/// while staying shuffle-free.
fn expand_partition(
    frontier: &[(Rule, Agg)],
    cancel: Option<&CancellationToken>,
) -> PartitionSweep<Rule> {
    let mut acc = PartitionSweep::with_capacity(frontier.len() * 4);
    if is_cancelled(cancel) {
        acc.cancelled = true;
        return acc;
    }
    let d = frontier.first().map_or(0, |(r, _)| r.arity());
    let mut live = Vec::with_capacity(d);
    let mut buf = Vec::with_capacity(d);
    for (lca, agg) in frontier {
        // The fold-budget poll lives inside accumulate_ancestors: one
        // lattice can dwarf the whole frontier, so counting entries here
        // would not bound the time to observe a cancellation.
        if accumulate_ancestors(&mut acc, lca.values(), *agg, &mut live, &mut buf, cancel) {
            acc.cancelled = true;
            return acc;
        }
    }
    acc
}

// ---------------------------------------------------------------------------
// Shared driver plumbing
// ---------------------------------------------------------------------------

fn cancelled_outcome<K>(acc: &PartitionSweep<K>) -> SweepOutcome {
    SweepOutcome {
        candidates: Vec::new(),
        distinct_candidates: 0,
        pairs_emitted: acc.pairs,
        cancelled: true,
    }
}

/// Turn the merged accumulator into the final outcome, dividing by sample
/// multiplicity when an index was used (§3.1.1) so every candidate carries
/// exact sums over its true support set. Candidates are sorted into
/// canonical rule order first, so the output order is identical across
/// every sweep variant.
fn finish(acc: PartitionSweep<Rule>, index: Option<&SampleIndex>) -> SweepOutcome {
    if acc.cancelled {
        return cancelled_outcome(&acc);
    }
    let distinct = acc.map.len() as u64;
    let pairs = acc.pairs;
    let mut entries: Vec<(Rule, Agg)> = acc.map.into_iter().collect();
    entries.sort_unstable_by(|a, b| a.0.values().cmp(b.0.values()));
    let candidates = match index {
        Some(idx) => adjust_for_sample(entries, idx),
        None => entries
            .into_iter()
            .map(|(rule, (sm, smh, cnt))| (rule, sm, smh, cnt))
            .collect(),
    };
    SweepOutcome {
        candidates,
        distinct_candidates: distinct,
        pairs_emitted: pairs,
        cancelled: false,
    }
}

/// [`finish`], packed: unpack codes back into rules after the canonical
/// sort (packed integer order *is* canonical rule order, so sorting before
/// unpacking is both cheaper and identical).
fn finish_packed<C: PackedCode>(
    acc: PartitionSweep<C>,
    layout: &RuleLayout,
    index: Option<&SampleIndex>,
) -> SweepOutcome {
    if acc.cancelled {
        return cancelled_outcome(&acc);
    }
    let distinct = acc.map.len() as u64;
    let pairs = acc.pairs;
    let mut entries: Vec<(C, Agg)> = acc.map.into_iter().collect();
    entries.sort_unstable_by_key(|e| e.0);
    let rules = entries
        .into_iter()
        .map(|(code, agg)| (layout.unpack(code), agg));
    let candidates = match index {
        Some(idx) => adjust_for_sample(rules, idx),
        None => rules
            .map(|(rule, (sm, smh, cnt))| (rule, sm, smh, cnt))
            .collect(),
    };
    SweepOutcome {
        candidates,
        distinct_candidates: distinct,
        pairs_emitted: pairs,
        cancelled: false,
    }
}

/// Distribute the globally distinct LCA frontier over the same number of
/// partitions as the data, in **canonical order** — sorted by key, so the
/// stage-2 chunking (and therefore its float-fold order) is independent of
/// any hash map's iteration order and identical across sweep variants.
fn frontier_dataset<K>(
    engine: &Engine,
    partitions: usize,
    map: FxHashMap<K, Agg>,
    sort_key: impl Fn(&K, &K) -> std::cmp::Ordering,
) -> Dataset<(K, Agg)>
where
    (K, Agg): sirum_dataflow::Record,
{
    let mut frontier: Vec<(K, Agg)> = map.into_iter().collect();
    frontier.sort_unstable_by(|a, b| sort_key(&a.0, &b.0));
    engine.parallelize(frontier, partitions.max(1))
}

/// Stage 2 + finish for the `Rule`-keyed path, shared by every stage-1
/// source: expand the canonically ordered frontier (on the engine thread
/// pool, or inline for the sequential reference) and assemble the outcome.
fn expand_merged(
    engine: &Engine,
    partitions: usize,
    combined: PartitionSweep<Rule>,
    index: Option<&SampleIndex>,
    cancel: Option<&CancellationToken>,
    parallel: bool,
) -> SweepOutcome {
    if combined.cancelled {
        return finish(combined, index);
    }
    let pairs_so_far = combined.pairs;
    let frontier = frontier_dataset(engine, partitions, combined.map, |a, b| {
        a.values().cmp(b.values())
    });
    let mut acc = if parallel {
        frontier.aggregate_partitions(
            "gain-sweep-expand",
            PartitionSweep::new,
            |_, lcas| expand_partition(lcas, cancel),
            PartitionSweep::merge,
        )
    } else {
        // Mirror aggregate_partitions' fold exactly: the first partition's
        // accumulator *is* the fold seed (not an empty map merged with it).
        let mut expand = (0..frontier.num_partitions()).map(|i| {
            let part = frontier.part(i);
            expand_partition(&part, cancel)
        });
        let mut acc = expand.next().unwrap_or_else(PartitionSweep::new);
        for out in expand {
            acc.merge(out);
        }
        acc
    };
    acc.pairs += pairs_so_far;
    finish(acc, index)
}

/// [`expand_merged`], packed. Rebuilds the (cheap, layout-derived) field
/// masks locally rather than threading them through as another parameter.
fn expand_merged_packed<C: PackedCode>(
    engine: &Engine,
    partitions: usize,
    combined: PartitionSweep<C>,
    layout: &RuleLayout,
    index: Option<&SampleIndex>,
    cancel: Option<&CancellationToken>,
    parallel: bool,
) -> SweepOutcome {
    if combined.cancelled {
        return finish_packed(combined, layout, index);
    }
    let masks: PackedMasks<C> = layout.masks();
    let pairs_so_far = combined.pairs;
    let frontier = frontier_dataset(engine, partitions, combined.map, Ord::cmp);
    let mut acc = if parallel {
        frontier.aggregate_partitions(
            "gain-sweep-expand",
            PartitionSweep::new,
            |_, lcas| expand_packed(lcas, &masks, cancel),
            PartitionSweep::merge,
        )
    } else {
        let mut expand = (0..frontier.num_partitions()).map(|i| {
            let part = frontier.part(i);
            expand_packed(&part, &masks, cancel)
        });
        let mut acc = expand.next().unwrap_or_else(PartitionSweep::new);
        for out in expand {
            acc.merge(out);
        }
        acc
    };
    acc.pairs += pairs_so_far;
    finish_packed(acc, layout, index)
}

/// Which packed width (if any) a [`SweepOptions`] resolves to.
enum Dispatch<'a> {
    U64(&'a RuleLayout),
    U128(&'a RuleLayout),
    RuleKeyed,
}

fn dispatch(opts: &SweepOptions) -> Dispatch<'_> {
    match (&opts.layout, opts.packed_bits()) {
        (Some(layout), Some(64)) => Dispatch::U64(layout),
        (Some(layout), Some(_)) => Dispatch::U128(layout),
        _ => Dispatch::RuleKeyed,
    }
}

// ---------------------------------------------------------------------------
// Public entry points
// ---------------------------------------------------------------------------

/// Run the sweep as per-partition tasks on the dataset's engine thread
/// pool, merged with the partition-ordered reduction of
/// [`Dataset::aggregate_partitions`]: one scan over the partitioned data
/// combines the LCA frontier, one pass over the distinct frontier expands
/// the cube lattice — no shuffle in either stage. `d` is the table's
/// dimension count; `index` enables the sample-LCA strategy (`None` =
/// full cube); `opts` selects packed codes vs `Rule` keys (see
/// [`SweepOptions`]).
///
/// Bit-identical to [`sweep_gains_reference`] for every worker count (see
/// the module docs for the argument), to [`sweep_gains_blocks`] over the
/// same partitioning, and across every [`SweepOptions`] choice.
pub fn sweep_gains(
    data: &Dataset<Tup>,
    d: usize,
    index: Option<&SampleIndex>,
    cancel: Option<&CancellationToken>,
    opts: &SweepOptions,
) -> SweepOutcome {
    match dispatch(opts) {
        Dispatch::U64(layout) => sweep_rows_packed::<u64>(data, layout, index, cancel, opts, true),
        Dispatch::U128(layout) => {
            sweep_rows_packed::<u128>(data, layout, index, cancel, opts, true)
        }
        Dispatch::RuleKeyed => sweep_rows_rulekey(data, d, index, cancel, true),
    }
}

/// The sweep over the **columnar** dataset (one [`TupleBlock`] per
/// partition): the default data path. Stage 1 scans the shared dimension
/// columns; stage 2 is shared with the row-major sweep. Bit-identical to
/// [`sweep_gains`] over the same partitioning — proptested in
/// `crates/core/tests/properties.rs`.
pub fn sweep_gains_blocks(
    data: &Dataset<TupleBlock>,
    d: usize,
    index: Option<&SampleIndex>,
    cancel: Option<&CancellationToken>,
    opts: &SweepOptions,
) -> SweepOutcome {
    match dispatch(opts) {
        Dispatch::U64(layout) => {
            sweep_blocks_packed::<u64>(data, d, layout, index, cancel, opts, true)
        }
        Dispatch::U128(layout) => {
            sweep_blocks_packed::<u128>(data, d, layout, index, cancel, opts, true)
        }
        Dispatch::RuleKeyed => sweep_blocks_rulekey(data, d, index, cancel, true),
    }
}

/// The sequential reference: identical per-partition work and identical
/// partition-ordered merges, executed inline on the calling thread without
/// the engine's thread pool. This is the "1-thread path" the proptests
/// compare the parallel sweep against.
pub fn sweep_gains_reference(
    data: &Dataset<Tup>,
    d: usize,
    index: Option<&SampleIndex>,
    cancel: Option<&CancellationToken>,
    opts: &SweepOptions,
) -> SweepOutcome {
    match dispatch(opts) {
        Dispatch::U64(layout) => sweep_rows_packed::<u64>(data, layout, index, cancel, opts, false),
        Dispatch::U128(layout) => {
            sweep_rows_packed::<u128>(data, layout, index, cancel, opts, false)
        }
        Dispatch::RuleKeyed => sweep_rows_rulekey(data, d, index, cancel, false),
    }
}

/// Sequential reference over the columnar dataset (see
/// [`sweep_gains_reference`]).
pub fn sweep_gains_blocks_reference(
    data: &Dataset<TupleBlock>,
    d: usize,
    index: Option<&SampleIndex>,
    cancel: Option<&CancellationToken>,
    opts: &SweepOptions,
) -> SweepOutcome {
    match dispatch(opts) {
        Dispatch::U64(layout) => {
            sweep_blocks_packed::<u64>(data, d, layout, index, cancel, opts, false)
        }
        Dispatch::U128(layout) => {
            sweep_blocks_packed::<u128>(data, d, layout, index, cancel, opts, false)
        }
        Dispatch::RuleKeyed => sweep_blocks_rulekey(data, d, index, cancel, false),
    }
}

fn sweep_rows_rulekey(
    data: &Dataset<Tup>,
    d: usize,
    index: Option<&SampleIndex>,
    cancel: Option<&CancellationToken>,
    parallel: bool,
) -> SweepOutcome {
    let combined = if parallel {
        data.aggregate_partitions(
            "gain-sweep-combine",
            PartitionSweep::new,
            |_, rows| combine_partition(rows, d, index, cancel),
            PartitionSweep::merge,
        )
    } else {
        // Mirror aggregate_partitions' fold exactly: the first partition's
        // accumulator *is* the fold seed (not an empty map merged with it),
        // so per-key float sums match the parallel path bit for bit.
        let mut combine = (0..data.num_partitions()).map(|i| {
            let part = data.part(i);
            combine_partition(&part, d, index, cancel)
        });
        let mut combined = combine.next().unwrap_or_else(PartitionSweep::new);
        for acc in combine {
            combined.merge(acc);
        }
        combined
    };
    expand_merged(
        data.engine(),
        data.num_partitions(),
        combined,
        index,
        cancel,
        parallel,
    )
}

fn sweep_blocks_rulekey(
    data: &Dataset<TupleBlock>,
    d: usize,
    index: Option<&SampleIndex>,
    cancel: Option<&CancellationToken>,
    parallel: bool,
) -> SweepOutcome {
    let combined = if parallel {
        data.aggregate_partitions(
            "gain-sweep-combine",
            PartitionSweep::new,
            |_, blocks| combine_partition_blocks(blocks, d, index, cancel),
            PartitionSweep::merge,
        )
    } else {
        let mut combine = (0..data.num_partitions()).map(|i| {
            let part = data.part(i);
            combine_partition_blocks(&part, d, index, cancel)
        });
        let mut combined = combine.next().unwrap_or_else(PartitionSweep::new);
        for acc in combine {
            combined.merge(acc);
        }
        combined
    };
    expand_merged(
        data.engine(),
        data.num_partitions(),
        combined,
        index,
        cancel,
        parallel,
    )
}

fn sweep_rows_packed<C: PackedCode>(
    data: &Dataset<Tup>,
    layout: &RuleLayout,
    index: Option<&SampleIndex>,
    cancel: Option<&CancellationToken>,
    opts: &SweepOptions,
    parallel: bool,
) -> SweepOutcome {
    let masks: PackedMasks<C> = layout.masks();
    let force = opts.combine_override();
    let combined = if parallel {
        data.aggregate_partitions(
            "gain-sweep-combine",
            PartitionSweep::new,
            |_, rows| combine_rows_packed(rows, layout, &masks, index, cancel, force),
            PartitionSweep::merge,
        )
    } else {
        let mut combine = (0..data.num_partitions()).map(|i| {
            let part = data.part(i);
            combine_rows_packed(&part, layout, &masks, index, cancel, force)
        });
        let mut combined = combine.next().unwrap_or_else(PartitionSweep::new);
        for acc in combine {
            combined.merge(acc);
        }
        combined
    };
    expand_merged_packed(
        data.engine(),
        data.num_partitions(),
        combined,
        layout,
        index,
        cancel,
        parallel,
    )
}

fn sweep_blocks_packed<C: PackedCode>(
    data: &Dataset<TupleBlock>,
    d: usize,
    layout: &RuleLayout,
    index: Option<&SampleIndex>,
    cancel: Option<&CancellationToken>,
    opts: &SweepOptions,
    parallel: bool,
) -> SweepOutcome {
    let masks: PackedMasks<C> = layout.masks();
    let force = opts.combine_override();
    let combined = if parallel {
        data.aggregate_partitions(
            "gain-sweep-combine",
            PartitionSweep::new,
            |_, blocks| combine_blocks_packed(blocks, d, layout, &masks, index, cancel, force),
            PartitionSweep::merge,
        )
    } else {
        let mut combine = (0..data.num_partitions()).map(|i| {
            let part = data.part(i);
            combine_blocks_packed(&part, d, layout, &masks, index, cancel, force)
        });
        let mut combined = combine.next().unwrap_or_else(PartitionSweep::new);
        for acc in combine {
            combined.merge(acc);
        }
        combined
    };
    expand_merged_packed(
        data.engine(),
        data.num_partitions(),
        combined,
        layout,
        index,
        cancel,
        parallel,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::exhaustive_candidates;
    use sirum_dataflow::{Engine, EngineConfig};
    use sirum_table::generators::flights;

    fn tuples(table: &sirum_table::Table) -> Vec<Tup> {
        (0..table.num_rows())
            .map(|i| {
                (
                    table.row(i).to_vec().into_boxed_slice(),
                    table.measure(i),
                    1.0,
                    0u64,
                )
            })
            .collect()
    }

    fn packed_opts(table: &sirum_table::Table) -> SweepOptions {
        let cards: Vec<u32> = table.cardinalities().iter().map(|&c| c as u32).collect();
        SweepOptions::packed(RuleLayout::from_cardinalities(&cards))
    }

    fn all_variants(table: &sirum_table::Table) -> Vec<SweepOptions> {
        let packed = packed_opts(table);
        vec![
            SweepOptions::rule_keyed(),
            packed.clone(),
            packed.clone().with_combine(CombineStrategy::HashProbe),
            packed.with_combine(CombineStrategy::RadixGroup),
        ]
    }

    #[test]
    fn full_cube_sweep_matches_exhaustive_reference() {
        let t = flights();
        let engine = Engine::new(EngineConfig::in_memory().with_workers(2));
        let data = engine.parallelize(tuples(&t), 4);
        for opts in all_variants(&t) {
            let out = sweep_gains(&data, 3, None, None, &opts);
            let exhaustive = exhaustive_candidates(&t, &[1.0; 14], None).expect("uncancelled");
            assert_eq!(out.candidates.len(), exhaustive.len());
            assert_eq!(out.distinct_candidates, exhaustive.len() as u64);
            for (rule, sm, smh, cnt) in &out.candidates {
                let (em, emh, ec) = exhaustive[rule];
                assert!((sm - em).abs() < 1e-9, "{rule:?}");
                assert!((smh - emh).abs() < 1e-9, "{rule:?}");
                assert_eq!(*cnt, ec, "{rule:?}");
            }
            // One pair per (tuple, lattice ancestor): 14 tuples × 2^3.
            assert_eq!(out.pairs_emitted, 14 * 8);
        }
    }

    #[test]
    fn sample_sweep_recovers_exact_support_sums() {
        let t = flights();
        let sample: Vec<Box<[u32]>> = [3usize, 8, 0]
            .iter()
            .map(|&i| t.row(i).to_vec().into_boxed_slice())
            .collect();
        let index = SampleIndex::build(sample, 3);
        let engine = Engine::new(EngineConfig::in_memory().with_workers(2));
        let data = engine.parallelize(tuples(&t), 3);
        for opts in all_variants(&t) {
            let out = sweep_gains(&data, 3, Some(&index), None, &opts);
            for (rule, sm, smh, cnt) in &out.candidates {
                let mut exp = (0.0, 0.0, 0u64);
                for (i, row) in t.rows().enumerate() {
                    if rule.matches(row) {
                        exp.0 += t.measure(i);
                        exp.1 += 1.0;
                        exp.2 += 1;
                    }
                }
                assert!((sm - exp.0).abs() < 1e-9, "{rule:?}");
                assert!((smh - exp.1).abs() < 1e-9, "{rule:?}");
                assert_eq!(*cnt, exp.2, "{rule:?}");
            }
        }
    }

    fn bits(out: SweepOutcome) -> Vec<(Rule, u64, u64, u64)> {
        out.candidates
            .into_iter()
            .map(|(r, a, b, c)| (r, a.to_bits(), b.to_bits(), c))
            .collect()
    }

    #[test]
    fn parallel_and_reference_paths_are_bit_identical() {
        let t = flights();
        for workers in [1, 2, 4] {
            let engine = Engine::new(EngineConfig::in_memory().with_workers(workers));
            let data = engine.parallelize(tuples(&t), 5);
            for opts in all_variants(&t) {
                let par = sweep_gains(&data, 3, None, None, &opts);
                let seq = sweep_gains_reference(&data, 3, None, None, &opts);
                assert_eq!(par.pairs_emitted, seq.pairs_emitted);
                // Canonical ordering: identical bits AND identical order.
                assert_eq!(bits(par), bits(seq));
            }
        }
    }

    #[test]
    fn every_key_representation_is_bit_identical() {
        let t = flights();
        let engine = Engine::new(EngineConfig::in_memory().with_workers(2));
        let data = engine.parallelize(tuples(&t), 4);
        let sample: Vec<Box<[u32]>> = [3usize, 8]
            .iter()
            .map(|&i| t.row(i).to_vec().into_boxed_slice())
            .collect();
        let index = SampleIndex::build(sample, 3);
        for idx in [None, Some(&index)] {
            let baseline = bits(sweep_gains(
                &data,
                3,
                idx,
                None,
                &SweepOptions::rule_keyed(),
            ));
            for opts in all_variants(&t) {
                assert_eq!(baseline, bits(sweep_gains(&data, 3, idx, None, &opts)));
            }
        }
    }

    #[test]
    fn u128_layouts_take_the_wide_path_and_agree() {
        // Inflated cardinalities force total_bits into (64, 128]; codes
        // still round-trip and the sweep output matches the rule-keyed one.
        let t = flights();
        let layout = RuleLayout::from_cardinalities(&[1 << 30, 1 << 30, 1 << 30]);
        assert!(!layout.fits::<u64>() && layout.fits::<u128>());
        let opts = SweepOptions::packed(layout);
        assert_eq!(opts.packed_bits(), Some(128));
        let engine = Engine::new(EngineConfig::in_memory().with_workers(2));
        let data = engine.parallelize(tuples(&t), 4);
        let wide = sweep_gains(&data, 3, None, None, &opts);
        let narrow = sweep_gains(&data, 3, None, None, &SweepOptions::rule_keyed());
        assert_eq!(bits(wide), bits(narrow));
    }

    #[test]
    fn oversized_layouts_fall_back_to_rule_keys() {
        let layout = RuleLayout::from_cardinalities(&[u32::MAX; 5]);
        let opts = SweepOptions::packed(layout);
        assert_eq!(opts.packed_bits(), None);
        let t = flights();
        let engine = Engine::new(EngineConfig::in_memory().with_workers(2));
        let data = engine.parallelize(tuples(&t), 2);
        // 3-dim data under a 5-dim layout would be an arity error on the
        // packed path; the fallback dispatch never touches the layout.
        let out = sweep_gains(&data, 3, None, None, &opts);
        let baseline = sweep_gains(&data, 3, None, None, &SweepOptions::rule_keyed());
        assert_eq!(out.distinct_candidates, baseline.distinct_candidates);
        assert_eq!(bits(out), bits(baseline));
    }

    #[test]
    fn columnar_blocks_sweep_is_bit_identical_to_the_row_sweep() {
        use sirum_table::Frame;
        let t = flights();
        let engine = Engine::new(EngineConfig::in_memory().with_workers(2));
        let rows = engine.parallelize(tuples(&t), 4);
        let frame = Frame::from_table(&t);
        let m: sirum_table::ColSlice<f64> = t.measures().to_vec().into();
        let blocks: Vec<TupleBlock> = frame
            .partition_views(4)
            .into_iter()
            .map(|v| TupleBlock::seed(v.clone(), m.slice(v.start(), v.len())))
            .collect();
        let block_ds = Dataset::from_partitioned(&engine, blocks);
        let sample: Vec<Box<[u32]>> = [3usize, 8]
            .iter()
            .map(|&i| t.row(i).to_vec().into_boxed_slice())
            .collect();
        let index = SampleIndex::build(sample, 3);
        for opts in all_variants(&t) {
            for idx in [None, Some(&index)] {
                let row_out = sweep_gains(&rows, 3, idx, None, &opts);
                let blk_out = sweep_gains_blocks(&block_ds, 3, idx, None, &opts);
                let blk_ref = sweep_gains_blocks_reference(&block_ds, 3, idx, None, &opts);
                assert_eq!(row_out.pairs_emitted, blk_out.pairs_emitted);
                assert_eq!(row_out.distinct_candidates, blk_out.distinct_candidates);
                // Same partitioning ⇒ identical fold orders ⇒ identical
                // bits, including the deterministic candidate ORDER.
                let row_bits = bits(row_out);
                assert_eq!(row_bits, bits(blk_out));
                assert_eq!(row_bits, bits(blk_ref));
            }
        }
    }

    #[test]
    fn cancelled_token_stops_the_sweep_without_partial_candidates() {
        let t = flights();
        let engine = Engine::new(EngineConfig::in_memory().with_workers(2));
        let data = engine.parallelize(tuples(&t), 2);
        for opts in all_variants(&t) {
            let token = CancellationToken::new();
            token.cancel();
            let out = sweep_gains(&data, 3, None, Some(&token), &opts);
            assert!(out.cancelled);
            assert!(out.candidates.is_empty());
            assert_eq!(out.distinct_candidates, 0);
        }
    }

    #[test]
    fn combine_polls_cancellation_through_zero_pair_stretches() {
        // Regression (ISSUE 6 satellite): the combine stage emits zero
        // "pairs" by definition — pairs count ancestor folds in stage 2 —
        // so a poll clock driven by the pair counter would never fire
        // during a long combine scan and cancel latency would be unbounded.
        // Arm a poll-budget token that self-cancels mid-combine and require
        // the sweep to notice within one CANCEL_POLL_ROWS window.
        let n = CANCEL_POLL_ROWS * 4;
        let rows: Vec<Tup> = (0..n)
            .map(|i| {
                (
                    vec![(i % 7) as u32, (i % 3) as u32].into_boxed_slice(),
                    1.0,
                    1.0,
                    0u64,
                )
            })
            .collect();
        let engine = Engine::new(EngineConfig::single_thread());
        let data = engine.parallelize(rows, 1);
        let layout = RuleLayout::from_cardinalities(&[7, 3]);
        for opts in [
            SweepOptions::rule_keyed(),
            SweepOptions::packed(layout.clone()),
            SweepOptions::packed(layout.clone()).with_combine(CombineStrategy::RadixGroup),
        ] {
            let token = CancellationToken::new();
            // Self-cancel once the combine scan is mid-partition: after
            // the partition-boundary poll plus one work-budget poll.
            token.cancel_after_polls(2);
            let out = sweep_gains(&data, 2, None, Some(&token), &opts);
            assert!(out.cancelled, "combine scan never polled ({opts:?})");
            assert!(out.candidates.is_empty());
            // The second poll happens one work window in — long before
            // the scan ends — so no expansion pairs were ever folded.
            assert_eq!(out.pairs_emitted, 0);
        }
    }
}
