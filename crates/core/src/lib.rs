//! # sirum-core
//!
//! SIRUM — **S**calable **I**nformative **RU**le **M**ining — reproduced
//! from Guoyao Feng's 2016 thesis. Given a multidimensional dataset with
//! categorical dimension attributes and a numeric measure attribute, SIRUM
//! greedily mines a small list of rules (value patterns with wildcards)
//! that provide the most information about the measure's distribution under
//! a maximum-entropy model scored by KL divergence.
//!
//! The crate implements the full pipeline on the [`sirum_dataflow`] engine:
//!
//! * rule / cube-lattice algebra ([`rule`], [`lattice`]),
//! * maximum-entropy estimation via iterative scaling ([`scaling`]) and its
//!   Rule-Coverage-Table acceleration ([`rct`], §4.1),
//! * information gain and KL scoring ([`gain`]),
//! * sample-based candidate pruning with an inverted-index fast path
//!   ([`candidates`], §3.1.1/§4.2),
//! * multi-stage ancestor generation (§4.3) and multi-rule insertion
//!   ([`multirule`], §4.4),
//! * the mining driver and the Table 4.2 variants ([`miner`], [`variants`]),
//! * data-cube exploration ([`explore`](mod@explore)) and
//!   SIRUM-on-sample-data ([`sample_data`]), and offline rule-set
//!   evaluation ([`evaluate`]).
//!
//! ## Quickstart
//!
//! Mining is fallible: configuration and data problems surface as typed
//! [`SirumError`] values rather than panics.
//!
//! ```
//! use sirum_core::{Miner, SirumConfig, CandidateStrategy, SirumError};
//! use sirum_dataflow::Engine;
//! use sirum_table::generators;
//!
//! let engine = Engine::in_memory();
//! let flights = generators::flights();
//! let config = SirumConfig {
//!     k: 3,
//!     strategy: CandidateStrategy::SampleLca { sample_size: 14 },
//!     ..SirumConfig::default()
//! };
//! let result = Miner::new(engine, config).try_mine(&flights)?;
//! assert_eq!(result.rules.len(), 4); // (*,*,*) + 3 mined rules
//! assert!(result.final_kl() < result.kl_trace[0]);
//! # Ok::<(), SirumError>(())
//! ```

#![warn(missing_docs)]
#![allow(clippy::must_use_candidate)]

pub mod block;
pub mod cancel;
pub mod candidates;
mod data;
pub mod error;
pub mod evaluate;
pub mod explore;
pub mod gain;
pub mod lattice;
pub mod miner;
pub mod multirule;
pub mod prepared;
pub mod rct;
pub mod rule;
pub mod sample_data;
pub mod scaling;
pub mod streaming;
pub mod sweep;
pub mod transform;
pub mod variants;

pub use block::TupleBlock;
pub use cancel::CancellationToken;
pub use error::SirumError;
pub use evaluate::{
    evaluate_rules, try_evaluate_rules, try_evaluate_rules_prepared, RuleSetEvaluation,
};
pub use explore::{explore, try_explore, ExploreResult};
pub use miner::{
    CandidateStrategy, IterationDecision, IterationEvent, IterationObserver, MinedRule, Miner,
    MiningResult, PhaseTimings, SirumConfig,
};
pub use multirule::MultiRuleConfig;
pub use prepared::PreparedTable;
pub use rule::{PackedCode, PackedMasks, Rule, RuleLayout, WILDCARD};
pub use sample_data::{mine_on_sample, try_mine_on_sample, SampleDataResult};
pub use scaling::ScalingConfig;
pub use streaming::{StreamingConfig, StreamingMiner};
pub use sweep::{
    sweep_gains, sweep_gains_blocks, sweep_gains_blocks_reference, sweep_gains_reference,
    SweepOptions, SweepOutcome,
};
pub use variants::Variant;
