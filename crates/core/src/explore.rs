//! Smart data-cube exploration (§1 Table 1.3, §5.6.2): the user has already
//! examined some group-by results; SIRUM recommends the `k` cells (rules)
//! carrying the most additional information.

use crate::error::SirumError;
use crate::miner::{CandidateStrategy, Miner, MiningResult, SirumConfig};
use crate::rule::{Rule, WILDCARD};
use sirum_dataflow::Engine;
use sirum_table::Table;

/// Result of a data-cube exploration run.
#[derive(Debug, Clone)]
pub struct ExploreResult {
    /// The mining result; `rules` begins with the all-wildcards rule and
    /// the prior-knowledge rules, followed by the recommendations.
    pub result: MiningResult,
    /// The prior-knowledge rules derived from the examined group-bys.
    pub prior: Vec<Rule>,
}

/// The prior knowledge of §5.6.2: the user has examined the results of the
/// `num_groupbys` single-attribute group-by queries with the lowest
/// cardinality. Each examined group is one rule (a constant on that
/// attribute, wildcards elsewhere). Only values that actually occur are
/// included (active domains).
pub fn prior_rules_from_groupbys(table: &Table, num_groupbys: usize) -> Vec<Rule> {
    let d = table.num_dims();
    let mut attrs: Vec<usize> = (0..d).collect();
    attrs.sort_by_key(|&a| table.dict(a).cardinality());
    let mut prior = Vec::new();
    for &a in attrs.iter().take(num_groupbys) {
        for (code, _value) in table.dict(a).iter() {
            let mut values = vec![WILDCARD; d];
            values[a] = code;
            prior.push(Rule::from_values(values));
        }
    }
    prior
}

/// Run data-cube exploration: seed the model with the prior-knowledge rules
/// and mine `config.k` recommendations. Candidate generation is exhaustive
/// (no sample pruning), matching the original technique of Sarawagi \[29\];
/// set `config.reset_lambdas_on_insert = true` to also reproduce that
/// paper's from-scratch iterative scaling.
///
/// # Panics
/// Panics on invalid input; use [`try_explore`] on untrusted data.
pub fn explore(engine: &Engine, table: &Table, config: SirumConfig) -> ExploreResult {
    match try_explore(engine, table, config) {
        Ok(result) => result,
        Err(e) => crate::error::fail(e),
    }
}

/// Fallible form of [`explore`].
pub fn try_explore(
    engine: &Engine,
    table: &Table,
    mut config: SirumConfig,
) -> Result<ExploreResult, SirumError> {
    config.strategy = CandidateStrategy::FullCube;
    let prior = prior_rules_from_groupbys(table, 2);
    let miner = Miner::new(engine.clone(), config);
    let result = miner.try_mine_with_prior(table, &prior)?;
    Ok(ExploreResult { result, prior })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sirum_table::generators::flights;

    #[test]
    fn prior_rules_cover_smallest_domains() {
        let t = flights();
        // Cardinalities: Day 7, Origin 6, Destination 7 → two smallest are
        // Origin (6) and Day or Destination (7, tie broken by index: Day).
        let prior = prior_rules_from_groupbys(&t, 2);
        assert_eq!(prior.len(), 13); // 6 + 7
        for r in &prior {
            assert_eq!(r.num_constants(), 1);
        }
        // Each prior rule covers at least one tuple (active domain).
        for r in &prior {
            assert!(t.rows().any(|row| r.matches(row)), "{r:?} has no support");
        }
    }

    #[test]
    fn one_groupby_only() {
        let t = flights();
        let prior = prior_rules_from_groupbys(&t, 1);
        assert_eq!(prior.len(), 6); // Origin has the smallest domain
        let col: Vec<usize> = prior.iter().map(|r| r.constant_positions()[0]).collect();
        assert!(col.iter().all(|&c| c == col[0]), "single attribute");
    }

    #[test]
    fn explore_recommends_new_rules() {
        let t = flights();
        let engine = Engine::in_memory();
        let config = SirumConfig {
            k: 2,
            ..SirumConfig::default()
        };
        let out = explore(&engine, &t, config);
        // Seed = 1 (wildcards) + priors; then 2 recommendations.
        assert_eq!(out.result.rules.len(), 1 + out.prior.len() + 2);
        // Recommendations must not repeat the prior knowledge.
        let recs = &out.result.rules[1 + out.prior.len()..];
        for rec in recs {
            assert!(!out.prior.contains(&rec.rule));
            assert!(rec.gain > 0.0);
        }
        // KL decreases as recommendations are added.
        let trace = &out.result.kl_trace;
        assert!(trace.last().unwrap() <= trace.first().unwrap());
    }
}
