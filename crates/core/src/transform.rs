//! Measure transforms (§2.2): the maximum-entropy machinery requires
//! `t[m] ≥ 0` for all tuples and `Σ t[m] ≠ 0`; arbitrary numeric measures
//! are shifted to satisfy this, and reported averages are shifted back.

use crate::error::SirumError;

/// An affine shift applied to the measure column so the maximum-entropy
/// optimization problem (Formulation 2.1 with the relaxed sum constraint)
/// is well-posed. Since SIRUM always selects the all-wildcards rule first,
/// `Σ t[m'] = C ≠ 0` suffices — no normalization to 1 is needed (§2.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasureTransform {
    shift: f64,
}

impl MeasureTransform {
    /// Fit a transform to the measure column and return the transformed
    /// values `m' = m + shift`:
    ///
    /// 1. If any value is negative, shift by `-min` so all values are ≥ 0.
    /// 2. If the shifted sum is zero (all-zero column), add `1/|D|` to every
    ///    value so the sum becomes 1.
    ///
    /// # Panics
    /// Panics on an empty or non-finite measure column; use
    /// [`MeasureTransform::try_fit`] on untrusted data.
    pub fn fit(measures: &[f64]) -> (MeasureTransform, Vec<f64>) {
        match Self::try_fit(measures) {
            Ok(fitted) => fitted,
            Err(e) => crate::error::fail(e),
        }
    }

    /// Fallible form of [`MeasureTransform::fit`]: rejects an empty column
    /// ([`SirumError::EmptyDataset`]) and non-finite values
    /// ([`SirumError::InvalidMeasure`], naming the offending row).
    pub fn try_fit(measures: &[f64]) -> Result<(MeasureTransform, Vec<f64>), SirumError> {
        if measures.is_empty() {
            return Err(SirumError::EmptyDataset);
        }
        if let Some(i) = measures.iter().position(|m| !m.is_finite()) {
            return Err(SirumError::InvalidMeasure {
                reason: format!("row {i}: value {} is not finite", measures[i]),
            });
        }
        let min = measures.iter().copied().fold(f64::INFINITY, f64::min);
        let mut shift = if min < 0.0 { -min } else { 0.0 };
        let sum: f64 = measures.iter().map(|m| m + shift).sum();
        if sum == 0.0 {
            shift += 1.0 / measures.len() as f64;
        }
        let transformed = measures.iter().map(|m| m + shift).collect();
        Ok((MeasureTransform { shift }, transformed))
    }

    /// The additive shift this transform applies.
    pub fn shift(&self) -> f64 {
        self.shift
    }

    /// Transform one original value.
    pub fn apply(&self, m: f64) -> f64 {
        m + self.shift
    }

    /// Map an average of transformed values back to the original scale
    /// (averages commute with the shift).
    pub fn invert_avg(&self, avg_transformed: f64) -> f64 {
        avg_transformed - self.shift
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nonnegative_column_is_untouched() {
        let (t, m) = MeasureTransform::fit(&[1.0, 0.0, 2.5]);
        assert_eq!(t.shift(), 0.0);
        assert_eq!(m, vec![1.0, 0.0, 2.5]);
        assert_eq!(t.invert_avg(1.0), 1.0);
    }

    #[test]
    fn negative_values_are_shifted() {
        let (t, m) = MeasureTransform::fit(&[-2.0, 1.0, 3.0]);
        assert_eq!(t.shift(), 2.0);
        assert_eq!(m, vec![0.0, 3.0, 5.0]);
        assert!(m.iter().all(|&v| v >= 0.0));
        // avg' = 8/3 maps back to avg = 2/3.
        assert!((t.invert_avg(8.0 / 3.0) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn all_zero_column_gets_uniform_mass() {
        let (t, m) = MeasureTransform::fit(&[0.0, 0.0, 0.0, 0.0]);
        assert_eq!(m, vec![0.25; 4]);
        assert!((m.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((t.invert_avg(0.25) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn zero_sum_mixed_column() {
        // min = -1 → shift 1 → values [0, 2, 0, ... wait: [-1, 1] → [0, 2],
        // sum 2 ≠ 0, no extra shift.
        let (t, m) = MeasureTransform::fit(&[-1.0, 1.0]);
        assert_eq!(t.shift(), 1.0);
        assert_eq!(m, vec![0.0, 2.0]);
    }

    #[test]
    fn constant_negative_column() {
        // [-3,-3] → shift 3 → [0,0], sum 0 → add 1/2 each.
        let (t, m) = MeasureTransform::fit(&[-3.0, -3.0]);
        assert_eq!(m, vec![0.5, 0.5]);
        assert!((t.invert_avg(0.5) + 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan() {
        let _ = MeasureTransform::fit(&[1.0, f64::NAN]);
    }

    #[test]
    fn try_fit_returns_typed_errors() {
        assert!(matches!(
            MeasureTransform::try_fit(&[]),
            Err(SirumError::EmptyDataset)
        ));
        assert!(matches!(
            MeasureTransform::try_fit(&[1.0, f64::INFINITY]),
            Err(SirumError::InvalidMeasure { reason }) if reason.contains("row 1")
        ));
    }
}
