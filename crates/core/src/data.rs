//! The mining dataset behind the greedy driver, in one of two
//! representations:
//!
//! * **Columnar** (the default): one [`TupleBlock`] per partition — a
//!   [`sirum_table::FrameView`] range over the table's shared dimension
//!   columns plus per-partition `m̂`/bit-array state. Scans walk
//!   contiguous columns; scaling rewrites allocate two arrays per
//!   partition; per-row codes are gathered into a reusable scratch buffer
//!   only at the LCA-probe boundary.
//! * **Row-major** (the reference): per-row [`Tup`] tuples with boxed
//!   dimension codes — the pre-columnar data path, kept selectable
//!   (`SirumConfig::columnar = false`) so proptests and benches can pin
//!   the columnar path bit-identical to it and measure the difference.
//!
//! Every primitive here preserves, between the two arms, the exact
//! per-partition row order, accumulator capacities and partition-ordered
//! float-fold sequence — which is what makes the mining output (selected
//! rules, gains, KL traces, counts) **bit-identical** across
//! representations for every variant, partition count, worker count and
//! cancellation point. The proptests in `crates/core/tests/properties.rs`
//! pin this.

use crate::block::TupleBlock;
use crate::cancel::CancellationToken;
use crate::candidates::{merge_agg, Agg, SampleIndex};
use crate::miner::Tup;
use crate::prepared::PreparedTable;
use crate::rct::{mhat_for_mask, RctGroup};
use crate::rule::Rule;
use crate::sweep::{sweep_gains, sweep_gains_blocks, SweepOptions, SweepOutcome};
use sirum_dataflow::hash::FxHashMap;
use sirum_dataflow::{Dataset, Engine, EngineMode};

/// The distributed dataset a mining run scans, in either representation.
pub(crate) enum MiningData {
    /// Per-row boxed tuples (the row-major reference path).
    Rows(Dataset<Tup>),
    /// One columnar block per partition (the default path).
    Blocks(Dataset<TupleBlock>),
}

/// Visit (in ascending row order) every row of `block` the rule covers,
/// touching only the rule's constant columns — decoded morsel-by-morsel
/// into `scratch` when the block's columns are compressed, borrowed
/// directly when raw (a raw block scans as one whole-range morsel).
fn for_rule_rows<F: FnMut(usize)>(
    rule: &Rule,
    block: &TupleBlock,
    scratch: &mut sirum_table::ColScratch,
    mut f: F,
) {
    let idxs: Vec<usize> = rule.constants().map(|(j, _)| j).collect();
    let vals: Vec<u32> = rule.constants().map(|(_, v)| v).collect();
    let dims = block.dims();
    for (ms, ml) in dims.morsel_bounds() {
        let cols = dims.morsel_cols_indexed(&idxs, ms, ml, scratch);
        for li in 0..ml {
            if cols.iter().zip(&vals).all(|(c, &v)| c[li] == v) {
                f(ms + li);
            }
        }
    }
}

impl MiningData {
    /// Distribute `D` from its preparation: columnar blocks over the shared
    /// frame columns (zero copies), or gathered row tuples for the
    /// reference path. Both use the engine's default partition count and
    /// identical row→partition placement.
    pub(crate) fn seed(engine: &Engine, prepared: &PreparedTable, columnar: bool) -> MiningData {
        let partitions = engine.config().partitions;
        if columnar {
            let m = prepared.m_prime_slice();
            let blocks: Vec<TupleBlock> = prepared
                .frame()
                .partition_views(partitions)
                .into_iter()
                .map(|view| {
                    let window = m.slice(view.start(), view.len());
                    TupleBlock::seed(view, window)
                })
                .collect();
            MiningData::Blocks(Dataset::from_partitioned(engine, blocks))
        } else {
            let frame = prepared.frame();
            let m_prime = prepared.m_prime();
            let mut buf = Vec::with_capacity(frame.num_dims());
            let mut tuples: Vec<Tup> = Vec::with_capacity(frame.num_rows());
            for (i, &mp) in m_prime.iter().enumerate() {
                frame.gather_row(i, &mut buf);
                tuples.push((buf.clone().into_boxed_slice(), mp, 1.0, 0u64));
            }
            MiningData::Rows(engine.parallelize(tuples, partitions))
        }
    }

    /// Number of partitions.
    pub(crate) fn num_partitions(&self) -> usize {
        match self {
            MiningData::Rows(d) => d.num_partitions(),
            MiningData::Blocks(d) => d.num_partitions(),
        }
    }

    /// Persist in the block store (except in DiskMr mode, whose stage
    /// outputs are already disk-materialized).
    pub(crate) fn cached(self, mode: EngineMode) -> MiningData {
        if mode == EngineMode::DiskMr {
            return self;
        }
        match self {
            MiningData::Rows(d) => MiningData::Rows(d.cache()),
            MiningData::Blocks(d) => MiningData::Blocks(d.cache()),
        }
    }

    /// Release any block-store blocks.
    pub(crate) fn free(self) {
        match self {
            MiningData::Rows(d) => d.free(),
            MiningData::Blocks(d) => d.free(),
        }
    }

    /// `Σ_{t⊨r} m′` and support counts for a rule list, one pass over `D`.
    /// Both arms accumulate each rule's sum over rows in ascending row
    /// order per partition, merged in partition order — identical float
    /// sequences.
    pub(crate) fn rule_sums(&self, rules: &[Rule]) -> (Vec<f64>, Vec<u64>) {
        match self {
            MiningData::Rows(data) => data.aggregate(
                "rule-m-sums",
                || (vec![0.0f64; rules.len()], vec![0u64; rules.len()]),
                |(sums, counts), (dims, m, _mh, _mask)| {
                    for (j, rule) in rules.iter().enumerate() {
                        if rule.matches(dims) {
                            sums[j] += *m;
                            counts[j] += 1;
                        }
                    }
                },
                |(s1, c1), (s2, c2)| {
                    for (a, b) in s1.iter_mut().zip(s2) {
                        *a += b;
                    }
                    for (a, b) in c1.iter_mut().zip(c2) {
                        *a += b;
                    }
                },
            ),
            MiningData::Blocks(data) => data.aggregate_partitions(
                "rule-m-sums",
                || (vec![0.0f64; rules.len()], vec![0u64; rules.len()]),
                |_, blocks| {
                    let mut sums = vec![0.0f64; rules.len()];
                    let mut counts = vec![0u64; rules.len()];
                    let mut scratch = sirum_table::ColScratch::new();
                    for block in blocks {
                        let m = block.m();
                        for (j, rule) in rules.iter().enumerate() {
                            for_rule_rows(rule, block, &mut scratch, |i| {
                                sums[j] += m[i];
                                counts[j] += 1;
                            });
                        }
                    }
                    (sums, counts)
                },
                |(s1, c1), (s2, c2)| {
                    for (a, b) in s1.iter_mut().zip(s2) {
                        *a += b;
                    }
                    for (a, b) in c1.iter_mut().zip(c2) {
                        *a += b;
                    }
                },
            ),
        }
    }

    /// One KL evaluation pass: `(Σ m·ln(m/m̂), Σ m, Σ m̂)`.
    pub(crate) fn kl_parts(&self) -> (f64, f64, f64) {
        let comb = |a: &mut (f64, f64, f64), b: (f64, f64, f64)| {
            a.0 += b.0;
            a.1 += b.1;
            a.2 += b.2;
        };
        match self {
            MiningData::Rows(data) => data.aggregate(
                "kl",
                || (0.0f64, 0.0f64, 0.0f64),
                |(s1, sm, smh), (_dims, m, mh, _mask)| {
                    if *m > 0.0 {
                        *s1 += m * (m / mh).ln();
                    }
                    *sm += m;
                    *smh += mh;
                },
                comb,
            ),
            MiningData::Blocks(data) => data.aggregate_partitions(
                "kl",
                || (0.0f64, 0.0f64, 0.0f64),
                |_, blocks| {
                    let mut acc = (0.0f64, 0.0f64, 0.0f64);
                    for block in blocks {
                        let (m, mh) = (block.m(), block.mhat());
                        for i in 0..block.len() {
                            if m[i] > 0.0 {
                                acc.0 += m[i] * (m[i] / mh[i]).ln();
                            }
                            acc.1 += m[i];
                            acc.2 += mh[i];
                        }
                    }
                    acc
                },
                comb,
            ),
        }
    }

    /// Reset every estimate to 1 (Sarawagi's from-scratch re-derivation).
    pub(crate) fn reset_mhat(&self) -> MiningData {
        match self {
            MiningData::Rows(data) => {
                MiningData::Rows(data.map("reset-mhat", |(dims, m, _mh, mask)| {
                    (dims.clone(), *m, 1.0, *mask)
                }))
            }
            MiningData::Blocks(data) => MiningData::Blocks(data.map("reset-mhat", |block| {
                block.with_mhat(vec![1.0; block.len()])
            })),
        }
    }

    /// Set bit `i` of every covered tuple's bit array, for each newly
    /// added `(i, rule)`.
    pub(crate) fn update_ba(&self, new_rules: Vec<(usize, Rule)>) -> MiningData {
        match self {
            MiningData::Rows(data) => {
                MiningData::Rows(data.map("update-ba", move |(dims, m, mh, mask)| {
                    let mut mask = *mask;
                    for (i, rule) in &new_rules {
                        if rule.matches(dims) {
                            mask |= 1u64 << i;
                        }
                    }
                    (dims.clone(), *m, *mh, mask)
                }))
            }
            MiningData::Blocks(data) => MiningData::Blocks(data.map("update-ba", move |block| {
                let mut mask = block.mask().to_vec();
                let mut scratch = sirum_table::ColScratch::new();
                for (i, rule) in &new_rules {
                    let bit = 1u64 << i;
                    for_rule_rows(rule, block, &mut scratch, |r| mask[r] |= bit);
                }
                block.with_mask(mask)
            })),
        }
    }

    /// Group tuples by bit array into partial RCT groups (first-occurrence
    /// order per partition, merged in partition order — both arms
    /// identical). Groups are located through a per-partition `mask →
    /// slot` hash index: the old linear probe was O(rows × groups), which
    /// on a table with hundreds of distinct bit arrays dominated the RCT
    /// build; the index keeps the push order (and therefore the partial
    /// stream) exactly the same.
    pub(crate) fn build_rct_partials(&self) -> Vec<RctGroup> {
        fn fold(
            groups: &mut Vec<RctGroup>,
            slots: &mut FxHashMap<u64, usize>,
            mask: u64,
            m: f64,
            mh: f64,
        ) {
            match slots.get(&mask) {
                Some(&at) => {
                    let g = &mut groups[at];
                    g.count += 1;
                    g.sum_m += m;
                    g.sum_mhat += mh;
                }
                None => {
                    slots.insert(mask, groups.len());
                    groups.push(RctGroup {
                        mask,
                        count: 1,
                        sum_m: m,
                        sum_mhat: mh,
                    });
                }
            }
        }
        match self {
            MiningData::Rows(data) => data.aggregate_partitions(
                "build-rct",
                Vec::<RctGroup>::new,
                |_, rows| {
                    let mut groups = Vec::new();
                    let mut slots = FxHashMap::default();
                    for (_dims, m, mh, mask) in rows {
                        fold(&mut groups, &mut slots, *mask, *m, *mh);
                    }
                    groups
                },
                |a, b| a.extend(b),
            ),
            MiningData::Blocks(data) => data.aggregate_partitions(
                "build-rct",
                Vec::<RctGroup>::new,
                |_, blocks| {
                    let mut groups = Vec::new();
                    let mut slots = FxHashMap::default();
                    for block in blocks {
                        let (m, mh, mask) = (block.m(), block.mhat(), block.mask());
                        for i in 0..block.len() {
                            fold(&mut groups, &mut slots, mask[i], m[i], mh[i]);
                        }
                    }
                    groups
                },
                |a, b| a.extend(b),
            ),
        }
    }

    /// Write converged estimates back: `m̂ = ∏_{i ∈ BA} λᵢ`.
    pub(crate) fn write_mhat(&self, lambdas: Vec<f64>) -> MiningData {
        match self {
            MiningData::Rows(data) => {
                MiningData::Rows(data.map("write-mhat", move |(dims, m, _mh, mask)| {
                    (dims.clone(), *m, mhat_for_mask(*mask, &lambdas), *mask)
                }))
            }
            MiningData::Blocks(data) => MiningData::Blocks(data.map("write-mhat", move |block| {
                let mhat: Vec<f64> = block
                    .mask()
                    .iter()
                    .map(|&mask| mhat_for_mask(mask, &lambdas))
                    .collect();
                block.with_mhat(mhat)
            })),
        }
    }

    /// `Σ_{t⊨rⱼ} m̂` per rule (one Algorithm-1 sums pass over `D`), driven
    /// by the per-tuple bit arrays: instead of re-matching every rule
    /// against every tuple (O(rows × rules × d) value compares), each row
    /// walks the set bits of its mask word — coverage was already computed
    /// once by [`Self::update_ba`]. Per rule `j` the covered rows are
    /// visited in the same row order as the old per-rule scan, so the
    /// float sums are bit-identical.
    pub(crate) fn scaling_sums(&self, num_rules: usize) -> Vec<f64> {
        let comb = |a: &mut Vec<f64>, b: Vec<f64>| {
            for (x, y) in a.iter_mut().zip(b) {
                *x += y;
            }
        };
        let fold = |sums: &mut [f64], mask: u64, mh: f64| {
            let mut bits = if num_rules >= 64 {
                mask
            } else {
                mask & ((1u64 << num_rules) - 1)
            };
            while bits != 0 {
                let j = bits.trailing_zeros() as usize;
                sums[j] += mh;
                bits &= bits - 1;
            }
        };
        match self {
            MiningData::Rows(data) => data.aggregate(
                "scaling-sums",
                || vec![0.0f64; num_rules],
                |sums, (_dims, _m, mh, mask)| fold(sums, *mask, *mh),
                comb,
            ),
            MiningData::Blocks(data) => data.aggregate_partitions(
                "scaling-sums",
                || vec![0.0f64; num_rules],
                |_, blocks| {
                    let mut sums = vec![0.0f64; num_rules];
                    for block in blocks {
                        let (mh, mask) = (block.mhat(), block.mask());
                        for i in 0..block.len() {
                            fold(&mut sums, mask[i], mh[i]);
                        }
                    }
                    sums
                },
                comb,
            ),
        }
    }

    /// Scale the estimates of every tuple covered by rule `j` (one
    /// Algorithm-1 update pass) — coverage read from bit `j` of each
    /// tuple's bit array, the same word [`Self::scaling_sums`] summed.
    pub(crate) fn scale_mhat(&self, j: usize, factor: f64) -> MiningData {
        let bit = 1u64 << j;
        match self {
            MiningData::Rows(data) => {
                MiningData::Rows(data.map("scale-mhat", move |(dims, m, mh, mask)| {
                    let mh = if mask & bit != 0 { mh * factor } else { *mh };
                    (dims.clone(), *m, mh, *mask)
                }))
            }
            MiningData::Blocks(data) => MiningData::Blocks(data.map("scale-mhat", move |block| {
                let mask = block.mask();
                let mhat: Vec<f64> = block
                    .mhat()
                    .iter()
                    .enumerate()
                    .map(|(i, &mh)| if mask[i] & bit != 0 { mh * factor } else { mh })
                    .collect();
                block.with_mhat(mhat)
            })),
        }
    }

    /// Draw exactly `min(n, rows)` dimension-code rows uniformly without
    /// replacement, deterministically from `seed` — the candidate-pruning
    /// sample. The blocks arm replays the row-major `take_sample` protocol
    /// (same RNG stream over the same global row indexing), so both
    /// representations draw the *same* sample rows.
    pub(crate) fn sample_dims(&self, n: usize, seed: u64) -> Vec<Box<[u32]>> {
        match self {
            MiningData::Rows(data) => data
                .take_sample(n, seed)
                .into_iter()
                .map(|(dims, _, _, _)| dims)
                .collect(),
            MiningData::Blocks(data) => {
                let parts = data.num_partitions();
                let lens: Vec<usize> = (0..parts)
                    .map(|i| data.part(i).iter().map(TupleBlock::len).sum())
                    .collect();
                let total: usize = lens.iter().sum();
                // One selection protocol for both arms: the row indices
                // `take_sample` would pick, gathered from the columns.
                let chosen = sirum_dataflow::sample_row_indices(total, n, seed);
                let mut out = Vec::with_capacity(chosen.len());
                let mut offset = 0usize;
                let mut cursor = 0usize;
                for (i, &len) in lens.iter().enumerate() {
                    if cursor >= chosen.len() {
                        break;
                    }
                    let part = data.part(i);
                    while cursor < chosen.len() && chosen[cursor] < offset + len {
                        let mut local = chosen[cursor] - offset;
                        for block in part.iter() {
                            if local < block.len() {
                                out.push(block.dims().gather_row_boxed(local));
                                break;
                            }
                            local -= block.len();
                        }
                        cursor += 1;
                    }
                    offset += len;
                }
                out
            }
        }
    }

    /// The fused partition-parallel gain sweep over this dataset. `opts`
    /// picks packed-code vs `Rule`-keyed accumulators (see
    /// [`crate::sweep::SweepOptions`]); the output is bit-identical either
    /// way.
    pub(crate) fn sweep(
        &self,
        d: usize,
        index: Option<&SampleIndex>,
        cancel: Option<&CancellationToken>,
        opts: &SweepOptions,
    ) -> SweepOutcome {
        match self {
            MiningData::Rows(data) => sweep_gains(data, d, index, cancel, opts),
            MiningData::Blocks(data) => sweep_gains_blocks(data, d, index, cancel, opts),
        }
    }

    /// The legacy staged candidate-pruning join: emit one `(rule,
    /// aggregate)` pair per (sample tuple, data tuple) LCA — or per tuple
    /// under full-cube — and reduce by key. With `broadcast_join` off
    /// (Naive SIRUM) the data is re-shuffled first; the columnar arm
    /// materializes row records for that shuffle (that is exactly what a
    /// real shuffle serializes), reusing the row-major join so the pair
    /// stream — and everything downstream — is identical.
    pub(crate) fn lca_candidates(
        &self,
        partitions: usize,
        index: Option<&SampleIndex>,
        d: usize,
        broadcast_join: bool,
        fast_pruning: bool,
    ) -> Dataset<(Rule, Agg)> {
        match self {
            MiningData::Rows(data) => {
                let base = if broadcast_join {
                    data.clone()
                } else {
                    data.repartition(data.num_partitions())
                };
                let pairs = lca_pairs_rows(&base, index, d, fast_pruning);
                let cand = pairs.reduce_by_key("lca-agg", partitions, merge_agg);
                pairs.free();
                if !broadcast_join {
                    base.free();
                }
                cand
            }
            MiningData::Blocks(data) => {
                if broadcast_join {
                    let pairs = lca_pairs_blocks(data, index, d, fast_pruning);
                    let cand = pairs.reduce_by_key("lca-agg", partitions, merge_agg);
                    pairs.free();
                    return cand;
                }
                let rows: Dataset<Tup> = data.map_partitions("materialize-rows", |_, blocks| {
                    let n: usize = blocks.iter().map(TupleBlock::len).sum();
                    let mut out = Vec::with_capacity(n);
                    let mut buf = Vec::new();
                    let mut scratch = sirum_table::ColScratch::new();
                    for block in blocks {
                        let (m, mh, mask) = (block.m(), block.mhat(), block.mask());
                        let dims = block.dims();
                        for (ms, ml) in dims.morsel_bounds() {
                            let cols = dims.morsel_cols(ms, ml, &mut scratch);
                            for li in 0..ml {
                                let i = ms + li;
                                buf.clear();
                                buf.extend(cols.iter().map(|c| c[li]));
                                out.push((buf.clone().into_boxed_slice(), m[i], mh[i], mask[i]));
                            }
                        }
                    }
                    out
                });
                let base = rows.repartition(data.num_partitions());
                rows.free();
                let pairs = lca_pairs_rows(&base, index, d, fast_pruning);
                let cand = pairs.reduce_by_key("lca-agg", partitions, merge_agg);
                pairs.free();
                base.free();
                cand
            }
        }
    }
}

/// The row-major LCA pair emission (§3.1.1 / §4.2): one stage, order-
/// preserving per partition.
fn lca_pairs_rows(
    base: &Dataset<Tup>,
    index: Option<&SampleIndex>,
    d: usize,
    fast_pruning: bool,
) -> Dataset<(Rule, Agg)> {
    match index {
        Some(idx) if fast_pruning => {
            let s = idx.len();
            base.map_partitions("lca-fast", move |_, rows| {
                let mut out = Vec::with_capacity(rows.len() * s);
                let mut scratch = Vec::new();
                for (dims, m, mh, _mask) in rows {
                    let lcas = idx.lcas_into(dims, &mut scratch);
                    for chunk in lcas.chunks_exact(d) {
                        out.push((Rule::from_tuple(chunk), (*m, *mh, 1u64)));
                    }
                }
                out
            })
        }
        Some(idx) => {
            let s = idx.len();
            base.map_partitions("lca-naive", move |_, rows| {
                let mut out = Vec::with_capacity(rows.len() * s);
                for (dims, m, mh, _mask) in rows {
                    for srow in idx.rows() {
                        out.push((Rule::lca(srow, dims), (*m, *mh, 1u64)));
                    }
                }
                out
            })
        }
        None => base.map("tuple-rule", |(dims, m, mh, _mask)| {
            (Rule::from_tuple(dims), (*m, *mh, 1u64))
        }),
    }
}

/// The columnar LCA pair emission: same labels, same per-partition
/// emission order as [`lca_pairs_rows`], gathering each row's codes only
/// for the probe.
fn lca_pairs_blocks(
    data: &Dataset<TupleBlock>,
    index: Option<&SampleIndex>,
    d: usize,
    fast_pruning: bool,
) -> Dataset<(Rule, Agg)> {
    type EmitFn<'f> = Box<dyn FnMut(&[u32], f64, f64, &mut Vec<(Rule, Agg)>) + 'f>;
    let emit = move |blocks: &[TupleBlock], per_row: usize, mut f: EmitFn| -> Vec<(Rule, Agg)> {
        let n: usize = blocks.iter().map(TupleBlock::len).sum();
        let mut out = Vec::with_capacity(n * per_row);
        let mut buf = Vec::with_capacity(d);
        let mut scratch = sirum_table::ColScratch::new();
        for block in blocks {
            let (m, mh) = (block.m(), block.mhat());
            let dims = block.dims();
            for (ms, ml) in dims.morsel_bounds() {
                let cols = dims.morsel_cols(ms, ml, &mut scratch);
                for li in 0..ml {
                    let i = ms + li;
                    buf.clear();
                    buf.extend(cols.iter().map(|c| c[li]));
                    f(&buf, m[i], mh[i], &mut out);
                }
            }
        }
        out
    };
    match index {
        Some(idx) if fast_pruning => {
            let s = idx.len();
            data.map_partitions("lca-fast", move |_, blocks| {
                let mut scratch = Vec::new();
                emit(
                    blocks,
                    s,
                    Box::new(move |dims, m, mh, out| {
                        let lcas = idx.lcas_into(dims, &mut scratch);
                        for chunk in lcas.chunks_exact(d) {
                            out.push((Rule::from_tuple(chunk), (m, mh, 1u64)));
                        }
                    }),
                )
            })
        }
        Some(idx) => {
            let s = idx.len();
            data.map_partitions("lca-naive", move |_, blocks| {
                emit(
                    blocks,
                    s,
                    Box::new(move |dims, m, mh, out| {
                        for srow in idx.rows() {
                            out.push((Rule::lca(srow, dims), (m, mh, 1u64)));
                        }
                    }),
                )
            })
        }
        None => data.map_partitions("tuple-rule", move |_, blocks| {
            emit(
                blocks,
                1,
                Box::new(|dims, m, mh, out| out.push((Rule::from_tuple(dims), (m, mh, 1u64)))),
            )
        }),
    }
}
