//! Offline evaluation of a rule set against a table: fit the
//! maximum-entropy model for the given rules (in memory, via the RCT) and
//! report KL divergence and information gain. Used to score rule sets mined
//! from samples against the full data (§4.5 / §5.7.3) and to compare
//! variants at equal quality (the `Optimized*` runs of §5.6).

use crate::error::SirumError;
use crate::gain::{binary_kl, kl_divergence};
use crate::prepared::PreparedTable;
use crate::rct::{iterative_scaling_rct, mhat_for_mask, Rct, MAX_RULES};
use crate::rule::Rule;
use crate::scaling::ScalingConfig;
use sirum_table::Table;

/// Quality scores of a rule set on a dataset.
#[derive(Debug, Clone, Copy)]
pub struct RuleSetEvaluation {
    /// KL divergence of the fitted model.
    pub kl: f64,
    /// KL divergence with only the all-wildcards rule (the §5.1 baseline).
    pub baseline_kl: f64,
    /// Information gain: `baseline_kl − kl` (§5.1).
    pub information_gain: f64,
    /// Bernoulli KL in the style of \[16\], when the measure is binary.
    pub binary_kl: Option<f64>,
    /// Whether iterative scaling converged within tolerance.
    pub converged: bool,
}

/// Fit and score `rules` on `table`. The first rule must be all-wildcards
/// (SIRUM's invariant, §2.2); at most [`MAX_RULES`] rules.
///
/// # Panics
/// Panics on an invalid rule set or table; use [`try_evaluate_rules`] on
/// untrusted input.
pub fn evaluate_rules(table: &Table, rules: &[Rule], cfg: &ScalingConfig) -> RuleSetEvaluation {
    match try_evaluate_rules(table, rules, cfg) {
        Ok(eval) => eval,
        Err(e) => crate::error::fail(e),
    }
}

/// Fallible form of [`evaluate_rules`], naming the violated invariant.
/// Transposes the table on the way in; callers that already hold a
/// [`PreparedTable`] (e.g. a service catalog entry) should use
/// [`try_evaluate_rules_prepared`] and skip the per-call transpose.
pub fn try_evaluate_rules(
    table: &Table,
    rules: &[Rule],
    cfg: &ScalingConfig,
) -> Result<RuleSetEvaluation, SirumError> {
    validate_rules(rules, table.num_dims())?;
    let prepared = PreparedTable::try_new(table)?;
    Ok(evaluate_prepared(&prepared, rules, cfg))
}

/// As [`try_evaluate_rules`], but scanning an existing preparation's
/// shared columns — no transpose, no re-validation of the data.
pub fn try_evaluate_rules_prepared(
    prepared: &PreparedTable,
    rules: &[Rule],
    cfg: &ScalingConfig,
) -> Result<RuleSetEvaluation, SirumError> {
    validate_rules(rules, prepared.num_dims())?;
    Ok(evaluate_prepared(prepared, rules, cfg))
}

/// The rule-list invariants shared by both entry points.
fn validate_rules(rules: &[Rule], d: usize) -> Result<(), SirumError> {
    if rules.is_empty() {
        return Err(SirumError::invalid_config(
            "rules",
            "need at least the all-wildcards rule",
        ));
    }
    if rules.len() > MAX_RULES {
        return Err(SirumError::invalid_config(
            "rules",
            format!(
                "{} rules exceed the {MAX_RULES}-rule bit-array limit",
                rules.len()
            ),
        ));
    }
    if let Some(bad) = rules.iter().find(|r| r.arity() != d) {
        return Err(SirumError::invalid_config(
            "rules",
            format!("rule has {} dimensions but the table has {d}", bad.arity()),
        ));
    }
    if rules[0] != Rule::all_wildcards(d) {
        return Err(SirumError::invalid_config(
            "rules",
            "the first rule must be (*, …, *)",
        ));
    }
    Ok(())
}

/// The evaluation itself, over a validated rule list and preparation.
fn evaluate_prepared(
    prepared: &PreparedTable,
    rules: &[Rule],
    cfg: &ScalingConfig,
) -> RuleSetEvaluation {
    let frame = prepared.frame();
    let m_prime = prepared.m_prime();
    let n = frame.num_rows();

    // Bit arrays + constraint targets, scanned column-wise: one columnar
    // pass per rule touching only its constant columns (each `m_sums[j]`
    // still accumulates rows in ascending order, so the sums are
    // bit-identical to the old row-major scan).
    let mut masks = vec![0u64; n];
    let mut m_sums = vec![0.0f64; rules.len()];
    let view = frame.view();
    let mut scratch = sirum_table::ColScratch::new();
    for (j, rule) in rules.iter().enumerate() {
        let bit = 1u64 << j;
        let idxs: Vec<usize> = rule.constants().map(|(c, _)| c).collect();
        let vals: Vec<u32> = rule.constants().map(|(_, v)| v).collect();
        for (ms, ml) in view.morsel_bounds() {
            let cols = view.morsel_cols_indexed(&idxs, ms, ml, &mut scratch);
            for li in 0..ml {
                if cols.iter().zip(&vals).all(|(col, &v)| col[li] == v) {
                    let i = ms + li;
                    masks[i] |= bit;
                    m_sums[j] += m_prime[i];
                }
            }
        }
    }

    // Fit via the RCT (fast, exact same fixed point as Algorithm 1).
    let mut rct = Rct::build(&masks, m_prime, &vec![1.0; n]);
    let mut lambdas = vec![1.0; rules.len()];
    let outcome = iterative_scaling_rct(&mut rct, rules.len(), &m_sums, &mut lambdas, cfg);
    let mhat: Vec<f64> = masks.iter().map(|&m| mhat_for_mask(m, &lambdas)).collect();
    let kl = kl_divergence(m_prime, &mhat);

    // Baseline model: the all-wildcards rule alone sets every estimate to
    // the global average, so its KL needs no fitting.
    let avg = m_prime.iter().sum::<f64>() / n as f64;
    let baseline = vec![avg; n];
    let baseline_kl = kl_divergence(m_prime, &baseline);

    // The raw measure column (the frame carries it alongside m′).
    let measures = frame.measures();
    let is_binary = measures.iter().all(|&m| m == 0.0 || m == 1.0);
    let binary = if is_binary {
        Some(binary_kl(measures, &mhat))
    } else {
        None
    };

    RuleSetEvaluation {
        kl,
        baseline_kl,
        information_gain: baseline_kl - kl,
        binary_kl: binary,
        converged: outcome.converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::WILDCARD;
    use sirum_table::generators::{flights, income_like};

    #[test]
    fn wildcard_only_has_zero_information_gain() {
        let t = flights();
        let rules = vec![Rule::all_wildcards(3)];
        let eval = evaluate_rules(&t, &rules, &ScalingConfig::default());
        assert!(eval.converged);
        assert!((eval.kl - eval.baseline_kl).abs() < 1e-9);
        assert!(eval.information_gain.abs() < 1e-9);
    }

    #[test]
    fn paper_kl_values_for_flight_example() {
        // §2.3 quotes KL(m‖mhat₁)=4.1e-3 and KL(m‖mhat₂)=1.4e-3, but those
        // numbers are not reproducible from Table 1.1 under any standard
        // normalization (their ratio 2.93 cannot be matched by rescaling —
        // the exact natural-log KL ratio of this example is 1.396). We pin
        // the exact values: KL₁ = Σ p·ln(p/q) = 0.14604…, KL₂ = 0.10461…;
        // the qualitative claim (adding r2 reduces KL) holds either way.
        let t = flights();
        let r1 = Rule::all_wildcards(3);
        let eval1 = evaluate_rules(&t, std::slice::from_ref(&r1), &ScalingConfig::default());
        assert!((eval1.kl - 0.146043).abs() < 1e-4, "kl1 = {}", eval1.kl);
        let london = t.dict(2).code("London").unwrap();
        let r2 = Rule::from_values(vec![WILDCARD, WILDCARD, london]);
        let eval2 = evaluate_rules(
            &t,
            &[r1, r2],
            &ScalingConfig {
                epsilon: 1e-8,
                max_iterations: 100_000,
            },
        );
        assert!((eval2.kl - 0.104610).abs() < 1e-4, "kl2 = {}", eval2.kl);
        assert!(eval2.kl < eval1.kl, "adding r2 must reduce KL");
        assert!(eval2.information_gain > eval1.information_gain);
    }

    #[test]
    fn more_rules_never_hurt() {
        let t = flights();
        let london = t.dict(2).code("London").unwrap();
        let fri = t.dict(0).code("Fri").unwrap();
        let r1 = Rule::all_wildcards(3);
        let r2 = Rule::from_values(vec![WILDCARD, WILDCARD, london]);
        let r3 = Rule::from_values(vec![fri, WILDCARD, WILDCARD]);
        let cfg = ScalingConfig {
            epsilon: 1e-8,
            max_iterations: 100_000,
        };
        let e1 = evaluate_rules(&t, std::slice::from_ref(&r1), &cfg);
        let e2 = evaluate_rules(&t, &[r1.clone(), r2.clone()], &cfg);
        let e3 = evaluate_rules(&t, &[r1, r2, r3], &cfg);
        assert!(e2.kl <= e1.kl + 1e-9);
        assert!(e3.kl <= e2.kl + 1e-9);
    }

    #[test]
    fn binary_metric_reported_only_for_binary_measures() {
        let income = income_like(500, 3);
        let rules = vec![Rule::all_wildcards(income.num_dims())];
        let eval = evaluate_rules(&income, &rules, &ScalingConfig::default());
        assert!(eval.binary_kl.is_some());
        let numeric = flights();
        let eval2 = evaluate_rules(
            &numeric,
            &[Rule::all_wildcards(3)],
            &ScalingConfig::default(),
        );
        assert!(eval2.binary_kl.is_none());
    }

    #[test]
    #[should_panic(expected = "first rule must be")]
    fn first_rule_must_be_all_wildcards() {
        let t = flights();
        let fri = t.dict(0).code("Fri").unwrap();
        let bad = Rule::from_values(vec![fri, WILDCARD, WILDCARD]);
        let _ = evaluate_rules(&t, &[bad], &ScalingConfig::default());
    }
}
