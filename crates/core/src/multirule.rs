//! Multi-rule insertion (§4.4): select up to `l` mutually disjoint rules per
//! iteration from the top of the gain-sorted candidate list, halving (or
//! better) the number of rule-generation/iterative-scaling rounds.

use crate::rule::Rule;

/// Selection policy for one mining iteration.
#[derive(Debug, Clone, Copy)]
pub struct MultiRuleConfig {
    /// Rules inserted per iteration (`l`; the paper tests 2 and 3 and
    /// recommends 2).
    pub rules_per_iter: usize,
    /// Additional rules must rank within this fraction of the candidate
    /// list (paper: top 1%).
    pub top_fraction: f64,
    /// Additional rules must have at least this fraction of the top rule's
    /// gain (the paper suggests "say, at least half").
    pub min_gain_fraction: f64,
}

impl Default for MultiRuleConfig {
    fn default() -> Self {
        MultiRuleConfig {
            rules_per_iter: 1,
            top_fraction: 0.01,
            min_gain_fraction: 0.0,
        }
    }
}

impl MultiRuleConfig {
    /// The paper's `l`-rule setting with its top-1% constraint.
    pub fn l_rules(l: usize) -> Self {
        MultiRuleConfig {
            rules_per_iter: l.max(1),
            ..Default::default()
        }
    }
}

/// A scored candidate as produced by the gain stage.
#[derive(Debug, Clone)]
pub struct ScoredCandidate {
    /// The candidate rule.
    pub rule: Rule,
    /// Information gain (Eq 2.2) under the current estimates.
    pub gain: f64,
    /// Exact `Σ_{t⊨r} t[m]` over the rule's support set (transformed).
    pub sum_m: f64,
    /// Exact support size `|S_D(r)|`.
    pub count: u64,
}

/// Pick the most informative rule plus up to `l−1` further rules that are
/// (a) mutually disjoint from every already-picked rule — so their
/// constraints cannot invalidate each other's gains (§4.4), (b) within the
/// top `top_fraction` of candidates by gain rank, and (c) at least
/// `min_gain_fraction` of the best gain.
///
/// `candidates` is sorted (descending by gain) in place; it may be a
/// pre-truncated prefix of a larger candidate list, in which case
/// `total_candidates` carries the true list size for the rank limit
/// (pass `candidates.len()` when the list is complete). Returns the chosen
/// candidates in selection order; empty if no candidate has positive gain.
pub fn select_rules(
    candidates: &mut [ScoredCandidate],
    cfg: &MultiRuleConfig,
    total_candidates: usize,
) -> Vec<ScoredCandidate> {
    candidates.sort_by(|a, b| b.gain.total_cmp(&a.gain));
    let Some(top) = candidates.first() else {
        return Vec::new();
    };
    if top.gain <= 0.0 {
        return Vec::new();
    }
    let mut picked: Vec<ScoredCandidate> = vec![top.clone()];
    if cfg.rules_per_iter <= 1 {
        return picked;
    }
    let total = total_candidates.max(candidates.len());
    let rank_limit = ((total as f64 * cfg.top_fraction).ceil() as usize).max(1);
    let gain_floor = top.gain * cfg.min_gain_fraction;
    for cand in candidates.iter().take(rank_limit).skip(1) {
        if picked.len() >= cfg.rules_per_iter {
            break;
        }
        if cand.gain <= 0.0 || cand.gain < gain_floor {
            break; // sorted order: nothing further qualifies
        }
        if picked.iter().all(|p| p.rule.is_disjoint(&cand.rule)) {
            picked.push(cand.clone());
        }
    }
    picked
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::WILDCARD;

    fn cand(vals: &[i64], gain: f64) -> ScoredCandidate {
        ScoredCandidate {
            rule: Rule::from_values(
                vals.iter()
                    .map(|&v| if v < 0 { WILDCARD } else { v as u32 })
                    .collect(),
            ),
            gain,
            sum_m: gain,
            count: 1,
        }
    }

    #[test]
    fn paper_example_disjoint_selection() {
        // §4.4: top = (*, SF, *); second-best (Fri, SF, *) overlaps it, so
        // the disjoint third-best (*, London, *) is chosen instead.
        let mut cands = vec![
            cand(&[-1, 0, -1], 10.0), // (*, SF, *)
            cand(&[1, 0, -1], 9.0),   // (Fri, SF, *) — overlaps
            cand(&[-1, 2, -1], 8.0),  // (*, London, *) — disjoint
        ];
        let cfg = MultiRuleConfig {
            rules_per_iter: 2,
            top_fraction: 1.0,
            min_gain_fraction: 0.0,
        };
        let n = cands.len();
        let picked = select_rules(&mut cands, &cfg, n);
        assert_eq!(picked.len(), 2);
        assert_eq!(picked[0].rule, cand(&[-1, 0, -1], 0.0).rule);
        assert_eq!(picked[1].rule, cand(&[-1, 2, -1], 0.0).rule);
    }

    #[test]
    fn single_rule_mode_ignores_constraints() {
        let mut cands = vec![cand(&[0, -1], 5.0), cand(&[1, -1], 4.0)];
        let n = cands.len();
        let picked = select_rules(&mut cands, &MultiRuleConfig::default(), n);
        assert_eq!(picked.len(), 1);
        assert_eq!(picked[0].gain, 5.0);
    }

    #[test]
    fn no_positive_gain_means_no_selection() {
        let mut cands = vec![cand(&[0, -1], 0.0), cand(&[1, -1], -2.0)];
        let n = cands.len();
        assert!(select_rules(&mut cands, &MultiRuleConfig::l_rules(2), n).is_empty());
        let mut empty: Vec<ScoredCandidate> = Vec::new();
        assert!(select_rules(&mut empty, &MultiRuleConfig::l_rules(2), 0).is_empty());
    }

    #[test]
    fn top_fraction_limits_rank() {
        // 200 candidates, 1% → only the top 2 ranks are eligible extras.
        let mut cands: Vec<ScoredCandidate> = (0..200)
            .map(|i| cand(&[i as i64, -1], 200.0 - i as f64))
            .collect();
        // Rank 0 and 1 overlap each other? They differ in attr 0 → disjoint.
        let cfg = MultiRuleConfig {
            rules_per_iter: 3,
            top_fraction: 0.01,
            min_gain_fraction: 0.0,
        };
        let n = cands.len();
        let picked = select_rules(&mut cands, &cfg, n);
        // ceil(200·0.01)=2 eligible ranks → at most 2 rules selected.
        assert_eq!(picked.len(), 2);
    }

    #[test]
    fn min_gain_fraction_filters_weak_rules() {
        let mut cands = vec![
            cand(&[0, -1], 10.0),
            cand(&[1, -1], 3.0), // disjoint but below half the top gain
        ];
        let cfg = MultiRuleConfig {
            rules_per_iter: 2,
            top_fraction: 1.0,
            min_gain_fraction: 0.5,
        };
        let n = cands.len();
        let picked = select_rules(&mut cands, &cfg, n);
        assert_eq!(picked.len(), 1);
    }

    #[test]
    fn three_rules_mutually_disjoint() {
        let mut cands = vec![
            cand(&[0, -1, -1], 10.0),
            cand(&[-1, 0, -1], 9.0), // overlaps rule 1? no constants clash → overlaps!
            cand(&[1, -1, -1], 8.0), // disjoint from #1, overlaps #2? no clash → overlaps
            cand(&[2, 1, -1], 7.0),  // disjoint from #1 (attr0) — and #2? attr1 0 vs 1 → disjoint
        ];
        let cfg = MultiRuleConfig {
            rules_per_iter: 3,
            top_fraction: 1.0,
            min_gain_fraction: 0.0,
        };
        let n = cands.len();
        let picked = select_rules(&mut cands, &cfg, n);
        // #2 overlaps the top rule (no conflicting constants), so selection
        // is {#1, #3, #4}? #3 vs #4: attr0 1 vs 2 → disjoint. So 3 rules.
        assert_eq!(picked.len(), 3);
        for i in 0..picked.len() {
            for j in (i + 1)..picked.len() {
                assert!(picked[i].rule.is_disjoint(&picked[j].rule));
            }
        }
    }
}
