//! [`TupleBlock`]: one partition of the columnar mining dataset.
//!
//! The row-major data path distributes `D` as per-row tuples
//! `(Box<[u32]>, m′, m̂, BA)` ([`crate::miner::Tup`]) — every scaling pass
//! that rewrites `m̂` re-boxes every row's dimension codes. The columnar
//! path instead keeps **one record per partition**: a [`FrameView`] range
//! over the table's shared dimension columns (immutable for the whole run,
//! an `Arc` bump to carry forward), the partition's window of the shared
//! `m′` column, and two per-partition arrays for the only state that
//! actually changes between iterations — the estimates `m̂` and the
//! rule-coverage bit arrays. A scaling rewrite allocates two fresh arrays
//! per *partition* instead of one boxed slice per *row*.
//!
//! Blocks implement [`Encode`], so columnar partitions spill/round-trip
//! through the block store (DiskMr stage materialization, memory-pressure
//! eviction) exactly like row-major partitions do; a decoded block owns
//! fresh columns with identical values.

use sirum_dataflow::Encode;
use sirum_table::{ColSlice, Frame, FrameView};
use std::sync::Arc;

/// One columnar partition of the mining dataset: shared dimension columns
/// (a [`FrameView`] range), the shared `m′` window, and this partition's
/// estimate / bit-array state. Cloning bumps `Arc`s; no row data moves.
#[derive(Debug, Clone)]
pub struct TupleBlock {
    dims: FrameView,
    m: ColSlice<f64>,
    mhat: Arc<[f64]>,
    mask: Arc<[u64]>,
}

impl TupleBlock {
    /// Seed a block for the start of a run: `m̂ = 1`, empty bit arrays.
    ///
    /// # Panics
    /// Panics if the measure window is not row-aligned with the view.
    pub fn seed(dims: FrameView, m: ColSlice<f64>) -> TupleBlock {
        // lint:allow(SL001) — constructor contract: both windows come from the same partitioning
        assert_eq!(dims.len(), m.len(), "m′ window must align with the view");
        let n = dims.len();
        TupleBlock {
            dims,
            m,
            mhat: vec![1.0; n].into(),
            mask: vec![0u64; n].into(),
        }
    }

    /// The same rows with replaced estimates (dims, `m′` and bit arrays
    /// shared).
    pub(crate) fn with_mhat(&self, mhat: Vec<f64>) -> TupleBlock {
        debug_assert_eq!(mhat.len(), self.len());
        TupleBlock {
            dims: self.dims.clone(),
            m: self.m.clone(),
            mhat: mhat.into(),
            mask: Arc::clone(&self.mask),
        }
    }

    /// The same rows with replaced bit arrays.
    pub(crate) fn with_mask(&self, mask: Vec<u64>) -> TupleBlock {
        debug_assert_eq!(mask.len(), self.len());
        TupleBlock {
            dims: self.dims.clone(),
            m: self.m.clone(),
            mhat: Arc::clone(&self.mhat),
            mask: mask.into(),
        }
    }

    /// Number of rows in this partition.
    pub fn len(&self) -> usize {
        self.dims.len()
    }

    /// True when the partition holds no rows.
    pub fn is_empty(&self) -> bool {
        self.dims.is_empty()
    }

    /// Number of dimension attributes.
    pub fn num_dims(&self) -> usize {
        self.dims.num_dims()
    }

    /// The dimension-column view.
    pub fn dims(&self) -> &FrameView {
        &self.dims
    }

    /// This partition's window of the transformed measure column `m′`.
    pub fn m(&self) -> &[f64] {
        &self.m
    }

    /// Current per-row estimates `m̂`.
    pub fn mhat(&self) -> &[f64] {
        &self.mhat
    }

    /// Current per-row rule-coverage bit arrays.
    pub fn mask(&self) -> &[u64] {
        &self.mask
    }

    /// Copy row `i`'s dimension codes into `buf` (cleared first) — the
    /// gather boundary for row-shaped probes (LCA computation, rule
    /// hashing). Column scans should read [`FrameView::col`] directly.
    pub fn gather(&self, i: usize, buf: &mut Vec<u32>) {
        self.dims.gather_row(i, buf);
    }
}

impl Encode for TupleBlock {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.num_dims() as u64).encode(out);
        (self.len() as u64).encode(out);
        // Dictionary cardinalities travel with the columns so a spilled
        // block decodes to a frame with the same packed-code layout
        // metadata, not observed-max estimates.
        for &card in self.dims.cards() {
            card.encode(out);
        }
        // Raw columns spill their codes verbatim; compressed columns spill
        // their overlapping segments as stored (boundary segments clipped),
        // so a spilled block stays compressed on disk.
        for j in 0..self.num_dims() {
            match self.dims.frame().column(j) {
                sirum_table::Column::Raw(_) => {
                    out.push(0);
                    for &code in self.dims.col(j) {
                        code.encode(out);
                    }
                }
                sirum_table::Column::Compressed(c) => {
                    out.push(1);
                    let segments = c.slice_segments(self.dims.start(), self.dims.len());
                    (segments.len() as u64).encode(out);
                    for seg in &segments {
                        sirum_dataflow::encode_segment(seg, out);
                    }
                }
            }
        }
        for &v in self.m.iter() {
            v.encode(out);
        }
        for &v in self.mhat.iter() {
            v.encode(out);
        }
        for &v in self.mask.iter() {
            v.encode(out);
        }
    }

    fn decode(buf: &mut &[u8]) -> Self {
        let d = u64::decode(buf) as usize;
        let n = u64::decode(buf) as usize;
        let cards: Vec<u32> = (0..d).map(|_| u32::decode(buf)).collect();
        let mut raw_cols: Vec<Vec<u32>> = Vec::new();
        let mut compressed_cols: Vec<sirum_table::CompressedCol> = Vec::new();
        for _ in 0..d {
            let tag = buf[0];
            *buf = &buf[1..];
            if tag == 0 {
                raw_cols.push((0..n).map(|_| u32::decode(buf)).collect());
            } else {
                let segs = u64::decode(buf) as usize;
                compressed_cols.push(sirum_table::CompressedCol::from_segments(
                    (0..segs)
                        .map(|_| sirum_dataflow::decode_segment(buf))
                        .collect(),
                ));
            }
        }
        let m: Vec<f64> = (0..n).map(|_| f64::decode(buf)).collect();
        let mhat: Vec<f64> = (0..n).map(|_| f64::decode(buf)).collect();
        let mask: Vec<u64> = (0..n).map(|_| u64::decode(buf)).collect();
        // The decoded frame's measure column is m′ (the raw measures never
        // cross a spill boundary — mining reads only m′); the block's `m`
        // window shares that Arc rather than copying the column again.
        let frame = if raw_cols.is_empty() && !compressed_cols.is_empty() {
            Frame::from_compressed_columns_with_cards(compressed_cols, m, cards)
        } else {
            // lint:allow(SL001) — framing invariant of this process's own encoder
            assert!(
                compressed_cols.is_empty(),
                "mixed raw/compressed columns in encoded block"
            );
            Frame::from_columns_with_cards(raw_cols, m, cards)
        };
        let m = frame.measure_slice();
        TupleBlock {
            dims: frame.view(),
            m,
            mhat: mhat.into(),
            mask: mask.into(),
        }
    }

    fn size_estimate(&self) -> usize {
        // Compressed dimension columns charge their encoded payload bytes —
        // the block store's budget sees (and rewards) the compression.
        16 + self.num_dims() * 4
            + self
                .dims
                .frame()
                .dim_bytes_in_range(self.dims.start(), self.dims.len())
            + self.len() * 24
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sirum_table::generators;

    fn block() -> TupleBlock {
        let t = generators::flights();
        let frame = Frame::from_table(&t);
        let m: ColSlice<f64> = t.measures().to_vec().into();
        TupleBlock::seed(frame.partition_views(3)[1].clone(), m.slice(5, 5))
    }

    #[test]
    fn seed_state_and_windows() {
        let b = block();
        assert_eq!(b.len(), 5);
        assert_eq!(b.num_dims(), 3);
        assert!(b.mhat().iter().all(|&v| v == 1.0));
        assert!(b.mask().iter().all(|&v| v == 0));
        let t = generators::flights();
        let mut buf = Vec::new();
        for i in 0..b.len() {
            b.gather(i, &mut buf);
            assert_eq!(buf.as_slice(), t.row(5 + i));
            assert_eq!(b.m()[i], t.measure(5 + i));
        }
    }

    #[test]
    fn state_rewrites_share_the_columns() {
        let b = block();
        let b2 = b.with_mhat(vec![2.0; 5]).with_mask(vec![1; 5]);
        assert!(std::ptr::eq(b.dims().col(0), b2.dims().col(0)));
        assert!(std::ptr::eq(b.m(), b2.m()));
        assert_eq!(b2.mhat(), &[2.0; 5]);
        assert_eq!(b2.mask(), &[1; 5]);
    }

    #[test]
    fn encode_round_trips_values() {
        let b = block().with_mhat(vec![0.5, 1.5, 2.5, 3.5, 4.5]);
        let mut buf = Vec::new();
        b.encode(&mut buf);
        // The estimate tracks the encoded footprint to within the per-column
        // format tag bytes.
        assert_eq!(buf.len(), b.size_estimate() + b.num_dims());
        let mut slice = buf.as_slice();
        let back = TupleBlock::decode(&mut slice);
        assert!(slice.is_empty());
        assert_eq!(back.len(), b.len());
        let (mut a, mut c) = (Vec::new(), Vec::new());
        for i in 0..b.len() {
            b.gather(i, &mut a);
            back.gather(i, &mut c);
            assert_eq!(a, c);
        }
        assert_eq!(back.m(), b.m());
        assert_eq!(back.mhat(), b.mhat());
        assert_eq!(back.mask(), b.mask());
        // Dictionary cardinalities survive the spill round-trip, so the
        // decoded frame reproduces the exact packed-code layout.
        assert_eq!(back.dims().cards(), b.dims().cards());
    }

    #[test]
    fn compressed_blocks_spill_compressed_and_round_trip() {
        use sirum_table::Compression;
        let t = generators::income_like(700, 5);
        let raw = Frame::from_table(&t);
        let comp = Frame::from_table_with(&t, Compression::Always);
        let m: ColSlice<f64> = t.measures().to_vec().into();
        // A mid-frame partition whose range does not align with segments.
        let view = comp.view().slice(123, 457);
        let b = TupleBlock::seed(view, m.slice(123, 457)).with_mask(vec![3; 457]);
        let raw_b =
            TupleBlock::seed(raw.view().slice(123, 457), m.slice(123, 457)).with_mask(vec![3; 457]);
        assert!(b.size_estimate() < raw_b.size_estimate());
        let mut buf = Vec::new();
        b.encode(&mut buf);
        let mut slice = buf.as_slice();
        let back = TupleBlock::decode(&mut slice);
        assert!(slice.is_empty());
        assert!(back.dims().frame().is_compressed());
        assert_eq!(back.len(), 457);
        let (mut a, mut c) = (Vec::new(), Vec::new());
        for i in 0..b.len() {
            b.gather(i, &mut a);
            back.gather(i, &mut c);
            assert_eq!(a, c, "row {i}");
        }
        assert_eq!(back.m(), b.m());
        assert_eq!(back.mhat(), b.mhat());
        assert_eq!(back.mask(), b.mask());
        assert_eq!(back.dims().cards(), b.dims().cards());
    }
}
