//! Rules: elements of the multidimensional space
//! `(dom(A₁) ∪ {*}) × ⋯ × (dom(A_d) ∪ {*})` (§2.1 of the thesis), with the
//! match / least-common-ancestor / disjointness relations SIRUM is built on.

use sirum_dataflow::Encode;
use sirum_table::Table;
use std::fmt;

/// Sentinel dimension code meaning "matches every value" (the paper's `*`).
pub const WILDCARD: u32 = u32::MAX;

/// A rule: one dictionary code or [`WILDCARD`] per dimension attribute.
///
/// `Ord` (lexicographic over the value slice, like the derived `Eq`)
/// exists so rules can key ordered containers and sort shuffle output —
/// the dataflow layer orders reduce results by key to keep distributed
/// aggregation independent of hash-iteration order.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Rule {
    values: Box<[u32]>,
}

impl Rule {
    /// The all-wildcards rule `(*, …, *)` over `d` dimensions — always the
    /// first rule SIRUM selects.
    pub fn all_wildcards(d: usize) -> Rule {
        // lint:allow(SL001) — documented constructor contract; zero-dimension rules are meaningless
        assert!(d > 0);
        Rule {
            values: vec![WILDCARD; d].into_boxed_slice(),
        }
    }

    /// Build a rule from explicit per-dimension codes.
    pub fn from_values(values: Vec<u32>) -> Rule {
        // lint:allow(SL001) — documented constructor contract; zero-dimension rules are meaningless
        assert!(!values.is_empty());
        Rule {
            values: values.into_boxed_slice(),
        }
    }

    /// Treat a tuple's dimension codes as the (bottom-of-lattice) rule that
    /// matches exactly that value combination.
    pub fn from_tuple(tuple: &[u32]) -> Rule {
        Rule {
            values: tuple.to_vec().into_boxed_slice(),
        }
    }

    /// Number of dimension attributes.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Per-dimension codes (with [`WILDCARD`] entries).
    pub fn values(&self) -> &[u32] {
        &self.values
    }

    /// Value in dimension `i`.
    pub fn get(&self, i: usize) -> u32 {
        self.values[i]
    }

    /// Whether dimension `i` is a wildcard.
    pub fn is_wildcard(&self, i: usize) -> bool {
        self.values[i] == WILDCARD
    }

    /// Number of non-wildcard positions (the rule's depth in the lattice).
    pub fn num_constants(&self) -> usize {
        self.values.iter().filter(|&&v| v != WILDCARD).count()
    }

    /// Indices of the non-wildcard positions.
    pub fn constant_positions(&self) -> Vec<usize> {
        (0..self.values.len())
            .filter(|&i| self.values[i] != WILDCARD)
            .collect()
    }

    /// The rule's constant positions with their codes, `(dimension, code)`
    /// — the only columns a columnar scan needs to touch. Every columnar
    /// match site (miner data path, evaluator, streaming history) resolves
    /// its column storage from this one iterator.
    pub fn constants(&self) -> impl Iterator<Item = (usize, u32)> + '_ {
        self.values
            .iter()
            .enumerate()
            .filter(|&(_, &v)| v != WILDCARD)
            .map(|(j, &v)| (j, v))
    }

    /// `t ⊨ r`: the tuple matches this rule (every non-wildcard position
    /// agrees). §2.1.
    #[inline]
    pub fn matches(&self, tuple: &[u32]) -> bool {
        debug_assert_eq!(tuple.len(), self.values.len());
        self.values
            .iter()
            .zip(tuple)
            .all(|(&r, &t)| r == WILDCARD || r == t)
    }

    /// Least common ancestor of two tuples (§2.1): keep positions where they
    /// agree, wildcard the rest.
    pub fn lca(a: &[u32], b: &[u32]) -> Rule {
        debug_assert_eq!(a.len(), b.len());
        Rule {
            values: a
                .iter()
                .zip(b)
                .map(|(&x, &y)| if x == y { x } else { WILDCARD })
                .collect(),
        }
    }

    /// `self` is an ancestor of `other` (generalization order, §2.5): every
    /// position is either a wildcard or equal to `other`'s. Every rule is its
    /// own ancestor.
    pub fn is_ancestor_of(&self, other: &Rule) -> bool {
        debug_assert_eq!(self.arity(), other.arity());
        self.values
            .iter()
            .zip(other.values.iter())
            .all(|(&a, &b)| a == WILDCARD || a == b)
    }

    /// Rules are disjoint iff some attribute has two different constants
    /// (§2.1). Disjoint rules have provably disjoint support sets.
    pub fn is_disjoint(&self, other: &Rule) -> bool {
        debug_assert_eq!(self.arity(), other.arity());
        self.values
            .iter()
            .zip(other.values.iter())
            .any(|(&a, &b)| a != WILDCARD && b != WILDCARD && a != b)
    }

    /// Negation of [`Self::is_disjoint`].
    pub fn overlaps(&self, other: &Rule) -> bool {
        !self.is_disjoint(other)
    }

    /// Replace position `i` with a wildcard, producing a parent rule.
    pub fn generalize(&self, i: usize) -> Rule {
        let mut values = self.values.to_vec();
        values[i] = WILDCARD;
        Rule {
            values: values.into_boxed_slice(),
        }
    }

    /// Render with the table's dictionaries, e.g. `(*, *, London)`.
    pub fn display(&self, table: &Table) -> String {
        let mut out = String::from("(");
        for (i, &v) in self.values.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            if v == WILDCARD {
                out.push('*');
            } else {
                out.push_str(table.decode(i, v));
            }
        }
        out.push(')');
        out
    }
}

/// Rules hash and compare exactly like their value slices (the derived
/// `Hash`/`Eq` delegate to `Box<[u32]>`, which delegates to `[u32]`), so a
/// `HashMap<Rule, _>` can be probed with a borrowed `&[u32]` — the gain
/// sweep's per-partition accumulators rely on this to skip a `Rule`
/// allocation on every hit.
impl std::borrow::Borrow<[u32]> for Rule {
    fn borrow(&self) -> &[u32] {
        &self.values
    }
}

impl fmt::Debug for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, &v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            if v == WILDCARD {
                write!(f, "*")?;
            } else {
                write!(f, "{v}")?;
            }
        }
        write!(f, ")")
    }
}

impl Encode for Rule {
    fn encode(&self, out: &mut Vec<u8>) {
        self.values.encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Self {
        Rule {
            values: Box::<[u32]>::decode(buf),
        }
    }
    fn size_estimate(&self) -> usize {
        8 + self.values.len() * 4
    }
}

/// An unsigned integer wide enough to hold a whole rule as one dense code —
/// the gain sweep's hot-path key type (`u64` or `u128`).
///
/// The supertraits are exactly what the sweep accumulators need: map keys
/// (`Eq + Hash`), canonical frontier ordering (`Ord`), spill via the
/// dataflow layer (`Encode`), and cross-thread frontier datasets
/// (`Send + Sync + 'static`).
/// The arithmetic surface is the minimal shift/mask set [`RuleLayout`]
/// packs and unpacks with, kept as named methods so the trait stays
/// object-simple and every call site inlines to single instructions.
pub trait PackedCode:
    Copy + Eq + Ord + std::hash::Hash + std::fmt::Debug + Encode + Send + Sync + 'static
{
    /// Width of the code type in bits.
    const BITS: u32;
    /// The all-zero code.
    const ZERO: Self;
    /// Zero-extend one dimension code into the low field.
    fn from_u32(v: u32) -> Self;
    /// The low 32 bits (a field isolated by shift/mask).
    fn low_u32(self) -> u32;
    /// Left shift by `n < Self::BITS`.
    fn shl(self, n: u32) -> Self;
    /// Right shift by `n < Self::BITS`.
    fn shr(self, n: u32) -> Self;
    /// Bitwise or.
    fn bitor(self, rhs: Self) -> Self;
    /// Bitwise and.
    fn bitand(self, rhs: Self) -> Self;
    /// Bitwise xor.
    fn bitxor(self, rhs: Self) -> Self;
    /// Bitwise complement.
    fn not(self) -> Self;
}

macro_rules! impl_packed_code {
    ($($t:ty),*) => {$(
        impl PackedCode for $t {
            const BITS: u32 = <$t>::BITS;
            const ZERO: Self = 0;
            #[inline]
            fn from_u32(v: u32) -> Self {
                v as $t
            }
            #[inline]
            fn low_u32(self) -> u32 {
                self as u32
            }
            #[inline]
            fn shl(self, n: u32) -> Self {
                self << n
            }
            #[inline]
            fn shr(self, n: u32) -> Self {
                self >> n
            }
            #[inline]
            fn bitor(self, rhs: Self) -> Self {
                self | rhs
            }
            #[inline]
            fn bitand(self, rhs: Self) -> Self {
                self & rhs
            }
            #[inline]
            fn bitxor(self, rhs: Self) -> Self {
                self ^ rhs
            }
            #[inline]
            fn not(self) -> Self {
                !self
            }
        }
    )*};
}

impl_packed_code!(u64, u128);

/// The all-ones field mask of width `w` (`1 ≤ w ≤ C::BITS`) in the low bits.
#[inline]
fn field_mask<C: PackedCode>(w: u32) -> C {
    C::ZERO.not().shr(C::BITS - w)
}

/// Per-dimension bit-widths derived from the table's dictionary
/// cardinalities: the layout that packs a whole rule into one integer code.
///
/// Dimension `j` with cardinality `cⱼ` gets `wⱼ = max(1, bit_length(cⱼ))`
/// bits — wide enough for codes `0..cⱼ` *plus* a reserved all-ones slot
/// encoding the wildcard (`bit_length(c) = ceil(log2(c + 1))`, so
/// `2^wⱼ − 1 ≥ cⱼ` and no real code collides with the slot; for a full
/// 32-bit field the all-ones slot *is* `u32::MAX`, which is exactly
/// [`WILDCARD`]). Fields are laid out with dimension 0 in the most
/// significant bits, which makes the integer order of packed codes
/// identical to the lexicographic order of [`Rule::values`] slices with
/// `WILDCARD` sorting last in each position — so the canonical frontier
/// sort on codes equals the canonical sort on the rules they decode to.
///
/// A layout always constructs; callers check [`RuleLayout::fits`] to pick
/// `u64`, `u128`, or the `Rule`-keyed fallback when `total_bits` exceeds
/// even 128.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleLayout {
    widths: Box<[u32]>,
    /// `shifts[j]` = bits to the right of field `j` (dim 0 is most
    /// significant).
    shifts: Box<[u32]>,
    total_bits: u32,
}

impl RuleLayout {
    /// Derive the layout from per-dimension dictionary cardinalities.
    pub fn from_cardinalities(cards: &[u32]) -> RuleLayout {
        let widths: Box<[u32]> = cards
            .iter()
            .map(|&c| (32 - c.leading_zeros()).max(1))
            .collect();
        let total_bits = widths.iter().sum();
        let mut shifts = vec![0u32; widths.len()].into_boxed_slice();
        let mut acc = 0u32;
        for j in (0..widths.len()).rev() {
            shifts[j] = acc;
            acc += widths[j];
        }
        RuleLayout {
            widths,
            shifts,
            total_bits,
        }
    }

    /// Number of dimension attributes.
    pub fn num_dims(&self) -> usize {
        self.widths.len()
    }

    /// Bits needed to pack one whole rule.
    pub fn total_bits(&self) -> u32 {
        self.total_bits
    }

    /// Bit-width of dimension `j`'s field.
    pub fn width(&self, j: usize) -> u32 {
        self.widths[j]
    }

    /// Whether the layout fits in code type `C`.
    pub fn fits<C: PackedCode>(&self) -> bool {
        self.total_bits <= C::BITS
    }

    /// Pack a rule's value slice (codes and [`WILDCARD`]s) into one code.
    ///
    /// Callers must have checked [`RuleLayout::fits`]; packing into a
    /// too-narrow type would silently drop high fields, so this is guarded
    /// in debug builds.
    #[inline]
    pub fn pack<C: PackedCode>(&self, values: &[u32]) -> C {
        debug_assert_eq!(values.len(), self.widths.len());
        debug_assert!(self.fits::<C>());
        let mut code = C::ZERO;
        for (j, &v) in values.iter().enumerate() {
            let w = self.widths[j];
            let field = if v == WILDCARD {
                field_mask::<C>(w)
            } else {
                debug_assert!(w == 32 || u64::from(v) < (1u64 << w));
                C::from_u32(v)
            };
            code = code.shl(w).bitor(field);
        }
        code
    }

    /// Decode a packed code back into a [`Rule`] (all-ones fields become
    /// wildcards). Inverse of [`RuleLayout::pack`].
    pub fn unpack<C: PackedCode>(&self, code: C) -> Rule {
        let values: Vec<u32> = (0..self.widths.len())
            .map(|j| {
                let w = self.widths[j];
                let mask = field_mask::<C>(w);
                let field = code.shr(self.shifts[j]).bitand(mask);
                if field == mask {
                    WILDCARD
                } else {
                    field.low_u32()
                }
            })
            .collect();
        Rule::from_values(values)
    }

    /// Precompute the in-position field masks for hot-path code surgery.
    pub fn masks<C: PackedCode>(&self) -> PackedMasks<C> {
        debug_assert!(self.fits::<C>());
        let wild: Box<[C]> = (0..self.widths.len())
            .map(|j| field_mask::<C>(self.widths[j]).shl(self.shifts[j]))
            .collect();
        let all_wild = wild.iter().fold(C::ZERO, |acc, &m| acc.bitor(m));
        PackedMasks {
            wild,
            shifts: self.shifts.clone(),
            all_wild,
        }
    }
}

impl Encode for RuleLayout {
    fn encode(&self, out: &mut Vec<u8>) {
        self.widths.encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Self {
        let widths = Box::<[u32]>::decode(buf);
        let total_bits = widths.iter().sum();
        let mut shifts = vec![0u32; widths.len()].into_boxed_slice();
        let mut acc = 0u32;
        for j in (0..widths.len()).rev() {
            shifts[j] = acc;
            acc += widths[j];
        }
        RuleLayout {
            widths,
            shifts,
            total_bits,
        }
    }
    fn size_estimate(&self) -> usize {
        8 + self.widths.len() * 4
    }
}

/// Precomputed in-position field masks for a [`RuleLayout`]: everything the
/// sweep's inner loops need to build LCA codes and widen dimensions without
/// re-deriving shifts.
#[derive(Debug, Clone)]
pub struct PackedMasks<C> {
    /// `wild[j]`: dimension `j`'s all-ones (wildcard) field, in position.
    wild: Box<[C]>,
    shifts: Box<[u32]>,
    all_wild: C,
}

impl<C: PackedCode> PackedMasks<C> {
    /// Number of dimension attributes.
    pub fn num_dims(&self) -> usize {
        self.wild.len()
    }

    /// The all-wildcards rule `(*, …, *)` as a code.
    #[inline]
    pub fn all_wild(&self) -> C {
        self.all_wild
    }

    /// Dimension `j`'s wildcard field mask, in position.
    #[inline]
    pub fn wild(&self, j: usize) -> C {
        self.wild[j]
    }

    /// Whether dimension `j` of `code` is the wildcard (real codes never
    /// fill their field with ones — the layout reserves that slot).
    #[inline]
    pub fn is_wild(&self, code: C, j: usize) -> bool {
        code.bitand(self.wild[j]) == self.wild[j]
    }

    /// `code` with dimension `j` set to the constant `v`.
    #[inline]
    pub fn with_constant(&self, code: C, j: usize, v: u32) -> C {
        code.bitand(self.wild[j].not())
            .bitor(C::from_u32(v).shl(self.shifts[j]))
    }

    /// `code` with dimension `j` generalized to the wildcard.
    #[inline]
    pub fn widen(&self, code: C, j: usize) -> C {
        code.bitor(self.wild[j])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(vals: &[i64]) -> Rule {
        // -1 denotes a wildcard in test shorthand.
        Rule::from_values(
            vals.iter()
                .map(|&v| if v < 0 { WILDCARD } else { v as u32 })
                .collect(),
        )
    }

    #[test]
    fn matches_per_paper_example() {
        // Table 1.1 tuple t6 = (Sat, Frankfurt, London) with codes.
        let t6 = [5u32, 4, 0];
        // r1=(*,*,*), r2=(*,*,London=0), r3=(Fri=0,*,*), r4=(Sat=5,*,*)
        assert!(r(&[-1, -1, -1]).matches(&t6));
        assert!(r(&[-1, -1, 0]).matches(&t6));
        assert!(!r(&[0, -1, -1]).matches(&t6));
        assert!(r(&[5, -1, -1]).matches(&t6));
    }

    #[test]
    fn lca_keeps_agreements() {
        // lca((Fri,SF,London),(Sun,Chicago,London)) = (*,*,London)
        let l = Rule::lca(&[0, 1, 2], &[3, 4, 2]);
        assert_eq!(l, r(&[-1, -1, 2]));
        // lca of identical tuples is the tuple itself.
        assert_eq!(Rule::lca(&[1, 2, 3], &[1, 2, 3]), r(&[1, 2, 3]));
        // lca of fully different tuples is all wildcards.
        assert_eq!(Rule::lca(&[1, 2, 3], &[4, 5, 6]), r(&[-1, -1, -1]));
    }

    #[test]
    fn ancestor_order() {
        let bottom = r(&[0, 1, 2]);
        let mid = r(&[-1, 1, 2]);
        let top = r(&[-1, -1, -1]);
        assert!(top.is_ancestor_of(&mid));
        assert!(mid.is_ancestor_of(&bottom));
        assert!(top.is_ancestor_of(&bottom));
        assert!(!bottom.is_ancestor_of(&mid));
        // Reflexive.
        assert!(mid.is_ancestor_of(&mid));
        // Incomparable rules.
        let other = r(&[0, -1, -1]);
        assert!(!other.is_ancestor_of(&mid));
        assert!(!mid.is_ancestor_of(&other));
    }

    #[test]
    fn disjointness_per_paper_examples() {
        // (Fri, London, LA) vs (*, SF, LA): different Origin → disjoint.
        assert!(r(&[0, 1, 2]).is_disjoint(&r(&[-1, 3, 2])));
        // (Wed, *, *) vs (*, *, London): overlapping by definition even
        // though their support sets in Table 1.1 are disjoint.
        assert!(r(&[6, -1, -1]).overlaps(&r(&[-1, -1, 0])));
        // A rule always overlaps itself and its ancestors.
        let x = r(&[1, -1, 2]);
        assert!(x.overlaps(&x));
        assert!(x.overlaps(&r(&[-1, -1, 2])));
    }

    #[test]
    fn disjoint_rules_have_disjoint_support() {
        // Exhaustive check over a tiny universe: if two rules are disjoint,
        // no tuple matches both.
        let rules: Vec<Rule> = vec![
            r(&[-1, -1]),
            r(&[0, -1]),
            r(&[1, -1]),
            r(&[-1, 0]),
            r(&[0, 0]),
            r(&[1, 1]),
        ];
        for a in &rules {
            for b in &rules {
                if a.is_disjoint(b) {
                    for x in 0..3u32 {
                        for y in 0..3u32 {
                            assert!(
                                !(a.matches(&[x, y]) && b.matches(&[x, y])),
                                "{a:?} and {b:?} both match ({x},{y})"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn generalize_and_counts() {
        let x = r(&[1, 2, 3]);
        assert_eq!(x.num_constants(), 3);
        let g = x.generalize(1);
        assert_eq!(g, r(&[1, -1, 3]));
        assert_eq!(g.num_constants(), 2);
        assert_eq!(g.constant_positions(), vec![0, 2]);
        assert!(g.is_ancestor_of(&x));
    }

    #[test]
    fn encode_round_trip() {
        let x = r(&[1, -1, 3, -1]);
        let mut buf = Vec::new();
        x.encode(&mut buf);
        let mut s = buf.as_slice();
        assert_eq!(Rule::decode(&mut s), x);
        assert!(s.is_empty());
    }

    #[test]
    fn layout_widths_reserve_the_wildcard_slot() {
        let l = RuleLayout::from_cardinalities(&[1, 2, 3, 4, 7, 8, 256]);
        // bit_length(c): room for codes 0..c plus the all-ones wildcard.
        let widths: Vec<u32> = (0..l.num_dims()).map(|j| l.width(j)).collect();
        assert_eq!(widths, vec![1, 2, 2, 3, 3, 4, 9]);
        assert_eq!(l.total_bits(), 24);
        assert!(l.fits::<u64>() && l.fits::<u128>());
        // Zero-cardinality columns still get one (wildcard-only) bit.
        assert_eq!(RuleLayout::from_cardinalities(&[0]).total_bits(), 1);
        // Saturated cardinality (u32::MAX) takes a full 32-bit field whose
        // all-ones slot coincides with the WILDCARD sentinel itself.
        let wide = RuleLayout::from_cardinalities(&[u32::MAX; 4]);
        assert_eq!(wide.total_bits(), 128);
        assert!(!wide.fits::<u64>() && wide.fits::<u128>());
        assert!(!RuleLayout::from_cardinalities(&[u32::MAX; 5]).fits::<u128>());
    }

    #[test]
    fn pack_unpack_round_trips() {
        let l = RuleLayout::from_cardinalities(&[6, 3, 300, 2]);
        for rule in [
            r(&[-1, -1, -1, -1]),
            r(&[5, 2, 299, 1]),
            r(&[0, 0, 0, 0]),
            r(&[-1, 2, -1, 0]),
            r(&[3, -1, 17, -1]),
        ] {
            let c64: u64 = l.pack(rule.values());
            let c128: u128 = l.pack(rule.values());
            assert_eq!(l.unpack(c64), rule);
            assert_eq!(l.unpack(c128), rule);
            assert_eq!(u128::from(c64), c128);
        }
    }

    #[test]
    fn packed_order_is_lexicographic_rule_order() {
        // Integer order of codes == lexicographic order of value slices
        // (wildcard = u32::MAX sorts last in both worlds).
        let l = RuleLayout::from_cardinalities(&[5, 9, 2]);
        let mut rules = Vec::new();
        for a in [0u32, 3, WILDCARD] {
            for b in [0u32, 8, WILDCARD] {
                for c in [0u32, 1, WILDCARD] {
                    rules.push(r(&[
                        if a == WILDCARD { -1 } else { a as i64 },
                        if b == WILDCARD { -1 } else { b as i64 },
                        if c == WILDCARD { -1 } else { c as i64 },
                    ]));
                }
            }
        }
        let mut by_code: Vec<Rule> = rules.clone();
        by_code.sort_by_key(|x| l.pack::<u64>(x.values()));
        let mut by_values = rules;
        by_values.sort_by(|x, y| x.values().cmp(y.values()));
        assert_eq!(by_code, by_values);
    }

    #[test]
    fn masks_do_in_place_code_surgery() {
        let l = RuleLayout::from_cardinalities(&[6, 3, 300]);
        let m = l.masks::<u64>();
        assert_eq!(m.num_dims(), 3);
        assert_eq!(l.unpack::<u64>(m.all_wild()), r(&[-1, -1, -1]));
        let c = m.with_constant(m.all_wild(), 1, 2);
        assert_eq!(l.unpack(c), r(&[-1, 2, -1]));
        assert!(!m.is_wild(c, 1) && m.is_wild(c, 0) && m.is_wild(c, 2));
        let c = m.with_constant(c, 0, 5);
        assert_eq!(l.unpack(c), r(&[5, 2, -1]));
        assert_eq!(l.unpack(m.widen(c, 1)), r(&[5, -1, -1]));
        // Masks agree with pack on a fully-constant tuple.
        let t = [4u32, 1, 123];
        let mut built = m.all_wild();
        for (j, &v) in t.iter().enumerate() {
            built = m.with_constant(built, j, v);
        }
        assert_eq!(built, l.pack::<u64>(&t));
    }

    #[test]
    fn layout_encode_round_trip() {
        let l = RuleLayout::from_cardinalities(&[6, 0, 300, u32::MAX]);
        let mut buf = Vec::new();
        l.encode(&mut buf);
        let mut s = buf.as_slice();
        let back = RuleLayout::decode(&mut s);
        assert!(s.is_empty());
        assert_eq!(back, l);
        let rule = r(&[5, -1, 17, 9]);
        assert_eq!(
            back.pack::<u128>(rule.values()),
            l.pack::<u128>(rule.values())
        );
    }

    #[test]
    fn display_uses_dictionaries() {
        let t = sirum_table::generators::flights();
        let london = t.dict(2).code("London").unwrap();
        let rule = Rule::from_values(vec![WILDCARD, WILDCARD, london]);
        assert_eq!(rule.display(&t), "(*, *, London)");
    }
}
