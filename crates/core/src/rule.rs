//! Rules: elements of the multidimensional space
//! `(dom(A₁) ∪ {*}) × ⋯ × (dom(A_d) ∪ {*})` (§2.1 of the thesis), with the
//! match / least-common-ancestor / disjointness relations SIRUM is built on.

use sirum_dataflow::Encode;
use sirum_table::Table;
use std::fmt;

/// Sentinel dimension code meaning "matches every value" (the paper's `*`).
pub const WILDCARD: u32 = u32::MAX;

/// A rule: one dictionary code or [`WILDCARD`] per dimension attribute.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Rule {
    values: Box<[u32]>,
}

impl Rule {
    /// The all-wildcards rule `(*, …, *)` over `d` dimensions — always the
    /// first rule SIRUM selects.
    pub fn all_wildcards(d: usize) -> Rule {
        // lint:allow-assert — documented constructor contract; zero-dimension rules are meaningless
        assert!(d > 0);
        Rule {
            values: vec![WILDCARD; d].into_boxed_slice(),
        }
    }

    /// Build a rule from explicit per-dimension codes.
    pub fn from_values(values: Vec<u32>) -> Rule {
        // lint:allow-assert — documented constructor contract; zero-dimension rules are meaningless
        assert!(!values.is_empty());
        Rule {
            values: values.into_boxed_slice(),
        }
    }

    /// Treat a tuple's dimension codes as the (bottom-of-lattice) rule that
    /// matches exactly that value combination.
    pub fn from_tuple(tuple: &[u32]) -> Rule {
        Rule {
            values: tuple.to_vec().into_boxed_slice(),
        }
    }

    /// Number of dimension attributes.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Per-dimension codes (with [`WILDCARD`] entries).
    pub fn values(&self) -> &[u32] {
        &self.values
    }

    /// Value in dimension `i`.
    pub fn get(&self, i: usize) -> u32 {
        self.values[i]
    }

    /// Whether dimension `i` is a wildcard.
    pub fn is_wildcard(&self, i: usize) -> bool {
        self.values[i] == WILDCARD
    }

    /// Number of non-wildcard positions (the rule's depth in the lattice).
    pub fn num_constants(&self) -> usize {
        self.values.iter().filter(|&&v| v != WILDCARD).count()
    }

    /// Indices of the non-wildcard positions.
    pub fn constant_positions(&self) -> Vec<usize> {
        (0..self.values.len())
            .filter(|&i| self.values[i] != WILDCARD)
            .collect()
    }

    /// The rule's constant positions with their codes, `(dimension, code)`
    /// — the only columns a columnar scan needs to touch. Every columnar
    /// match site (miner data path, evaluator, streaming history) resolves
    /// its column storage from this one iterator.
    pub fn constants(&self) -> impl Iterator<Item = (usize, u32)> + '_ {
        self.values
            .iter()
            .enumerate()
            .filter(|&(_, &v)| v != WILDCARD)
            .map(|(j, &v)| (j, v))
    }

    /// `t ⊨ r`: the tuple matches this rule (every non-wildcard position
    /// agrees). §2.1.
    #[inline]
    pub fn matches(&self, tuple: &[u32]) -> bool {
        debug_assert_eq!(tuple.len(), self.values.len());
        self.values
            .iter()
            .zip(tuple)
            .all(|(&r, &t)| r == WILDCARD || r == t)
    }

    /// Least common ancestor of two tuples (§2.1): keep positions where they
    /// agree, wildcard the rest.
    pub fn lca(a: &[u32], b: &[u32]) -> Rule {
        debug_assert_eq!(a.len(), b.len());
        Rule {
            values: a
                .iter()
                .zip(b)
                .map(|(&x, &y)| if x == y { x } else { WILDCARD })
                .collect(),
        }
    }

    /// `self` is an ancestor of `other` (generalization order, §2.5): every
    /// position is either a wildcard or equal to `other`'s. Every rule is its
    /// own ancestor.
    pub fn is_ancestor_of(&self, other: &Rule) -> bool {
        debug_assert_eq!(self.arity(), other.arity());
        self.values
            .iter()
            .zip(other.values.iter())
            .all(|(&a, &b)| a == WILDCARD || a == b)
    }

    /// Rules are disjoint iff some attribute has two different constants
    /// (§2.1). Disjoint rules have provably disjoint support sets.
    pub fn is_disjoint(&self, other: &Rule) -> bool {
        debug_assert_eq!(self.arity(), other.arity());
        self.values
            .iter()
            .zip(other.values.iter())
            .any(|(&a, &b)| a != WILDCARD && b != WILDCARD && a != b)
    }

    /// Negation of [`Self::is_disjoint`].
    pub fn overlaps(&self, other: &Rule) -> bool {
        !self.is_disjoint(other)
    }

    /// Replace position `i` with a wildcard, producing a parent rule.
    pub fn generalize(&self, i: usize) -> Rule {
        let mut values = self.values.to_vec();
        values[i] = WILDCARD;
        Rule {
            values: values.into_boxed_slice(),
        }
    }

    /// Render with the table's dictionaries, e.g. `(*, *, London)`.
    pub fn display(&self, table: &Table) -> String {
        let mut out = String::from("(");
        for (i, &v) in self.values.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            if v == WILDCARD {
                out.push('*');
            } else {
                out.push_str(table.decode(i, v));
            }
        }
        out.push(')');
        out
    }
}

/// Rules hash and compare exactly like their value slices (the derived
/// `Hash`/`Eq` delegate to `Box<[u32]>`, which delegates to `[u32]`), so a
/// `HashMap<Rule, _>` can be probed with a borrowed `&[u32]` — the gain
/// sweep's per-partition accumulators rely on this to skip a `Rule`
/// allocation on every hit.
impl std::borrow::Borrow<[u32]> for Rule {
    fn borrow(&self) -> &[u32] {
        &self.values
    }
}

impl fmt::Debug for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, &v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            if v == WILDCARD {
                write!(f, "*")?;
            } else {
                write!(f, "{v}")?;
            }
        }
        write!(f, ")")
    }
}

impl Encode for Rule {
    fn encode(&self, out: &mut Vec<u8>) {
        self.values.encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Self {
        Rule {
            values: Box::<[u32]>::decode(buf),
        }
    }
    fn size_estimate(&self) -> usize {
        8 + self.values.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(vals: &[i64]) -> Rule {
        // -1 denotes a wildcard in test shorthand.
        Rule::from_values(
            vals.iter()
                .map(|&v| if v < 0 { WILDCARD } else { v as u32 })
                .collect(),
        )
    }

    #[test]
    fn matches_per_paper_example() {
        // Table 1.1 tuple t6 = (Sat, Frankfurt, London) with codes.
        let t6 = [5u32, 4, 0];
        // r1=(*,*,*), r2=(*,*,London=0), r3=(Fri=0,*,*), r4=(Sat=5,*,*)
        assert!(r(&[-1, -1, -1]).matches(&t6));
        assert!(r(&[-1, -1, 0]).matches(&t6));
        assert!(!r(&[0, -1, -1]).matches(&t6));
        assert!(r(&[5, -1, -1]).matches(&t6));
    }

    #[test]
    fn lca_keeps_agreements() {
        // lca((Fri,SF,London),(Sun,Chicago,London)) = (*,*,London)
        let l = Rule::lca(&[0, 1, 2], &[3, 4, 2]);
        assert_eq!(l, r(&[-1, -1, 2]));
        // lca of identical tuples is the tuple itself.
        assert_eq!(Rule::lca(&[1, 2, 3], &[1, 2, 3]), r(&[1, 2, 3]));
        // lca of fully different tuples is all wildcards.
        assert_eq!(Rule::lca(&[1, 2, 3], &[4, 5, 6]), r(&[-1, -1, -1]));
    }

    #[test]
    fn ancestor_order() {
        let bottom = r(&[0, 1, 2]);
        let mid = r(&[-1, 1, 2]);
        let top = r(&[-1, -1, -1]);
        assert!(top.is_ancestor_of(&mid));
        assert!(mid.is_ancestor_of(&bottom));
        assert!(top.is_ancestor_of(&bottom));
        assert!(!bottom.is_ancestor_of(&mid));
        // Reflexive.
        assert!(mid.is_ancestor_of(&mid));
        // Incomparable rules.
        let other = r(&[0, -1, -1]);
        assert!(!other.is_ancestor_of(&mid));
        assert!(!mid.is_ancestor_of(&other));
    }

    #[test]
    fn disjointness_per_paper_examples() {
        // (Fri, London, LA) vs (*, SF, LA): different Origin → disjoint.
        assert!(r(&[0, 1, 2]).is_disjoint(&r(&[-1, 3, 2])));
        // (Wed, *, *) vs (*, *, London): overlapping by definition even
        // though their support sets in Table 1.1 are disjoint.
        assert!(r(&[6, -1, -1]).overlaps(&r(&[-1, -1, 0])));
        // A rule always overlaps itself and its ancestors.
        let x = r(&[1, -1, 2]);
        assert!(x.overlaps(&x));
        assert!(x.overlaps(&r(&[-1, -1, 2])));
    }

    #[test]
    fn disjoint_rules_have_disjoint_support() {
        // Exhaustive check over a tiny universe: if two rules are disjoint,
        // no tuple matches both.
        let rules: Vec<Rule> = vec![
            r(&[-1, -1]),
            r(&[0, -1]),
            r(&[1, -1]),
            r(&[-1, 0]),
            r(&[0, 0]),
            r(&[1, 1]),
        ];
        for a in &rules {
            for b in &rules {
                if a.is_disjoint(b) {
                    for x in 0..3u32 {
                        for y in 0..3u32 {
                            assert!(
                                !(a.matches(&[x, y]) && b.matches(&[x, y])),
                                "{a:?} and {b:?} both match ({x},{y})"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn generalize_and_counts() {
        let x = r(&[1, 2, 3]);
        assert_eq!(x.num_constants(), 3);
        let g = x.generalize(1);
        assert_eq!(g, r(&[1, -1, 3]));
        assert_eq!(g.num_constants(), 2);
        assert_eq!(g.constant_positions(), vec![0, 2]);
        assert!(g.is_ancestor_of(&x));
    }

    #[test]
    fn encode_round_trip() {
        let x = r(&[1, -1, 3, -1]);
        let mut buf = Vec::new();
        x.encode(&mut buf);
        let mut s = buf.as_slice();
        assert_eq!(Rule::decode(&mut s), x);
        assert!(s.is_empty());
    }

    #[test]
    fn display_uses_dictionaries() {
        let t = sirum_table::generators::flights();
        let london = t.dict(2).code("London").unwrap();
        let rule = Rule::from_values(vec![WILDCARD, WILDCARD, london]);
        assert_eq!(rule.display(&t), "(*, *, London)");
    }
}
