//! Pre-encoded mining input: the per-request table preparation — the
//! columnar [`Frame`] (one `Arc`-shared code column per dimension), the
//! fitted [`MeasureTransform`] and the transformed measure column — built
//! once and scanned by every request.
//!
//! [`crate::Miner::try_mine_with_prior`] performs this preparation on every
//! call; an interactive workload that re-mines the same table with varied
//! `k`/variant/two-sided settings pays it repeatedly. The service layer's
//! catalog instead builds one [`PreparedTable`] per registered table and
//! feeds it to [`crate::Miner::try_mine_prepared`], so repeated requests
//! skip re-validation, transform fitting and the row-major → columnar
//! transpose — and every concurrent job scans the *same* shared buffers
//! (partitioning hands out [`sirum_table::FrameView`] ranges, never
//! copies).

use crate::error::SirumError;
use crate::transform::MeasureTransform;
use sirum_table::{ColSlice, Compression, Frame, Table};
use std::sync::Arc;

/// A table validated and encoded for mining: the columnar dimension
/// [`Frame`] plus the transformed measure column `m′` and its
/// [`MeasureTransform`].
///
/// Construction checks everything [`crate::Miner`] needs from the data —
/// non-emptiness and finite measures — so a `PreparedTable` can be mined
/// without re-validating per request. Cloning shares the columns (`Arc`
/// bumps).
#[derive(Debug, Clone)]
pub struct PreparedTable {
    frame: Frame,
    m_prime: Arc<[f64]>,
    transform: MeasureTransform,
}

impl PreparedTable {
    /// Validate and encode `table` for repeated mining, under the default
    /// [`Compression::Auto`] policy: small tables keep raw columns,
    /// multi-million-row tables compress so they fit (and mine) inside a
    /// capped block-store budget.
    ///
    /// # Errors
    /// * [`SirumError::EmptyDataset`] — the table has no rows.
    /// * [`SirumError::InvalidMeasure`] — a measure value is not finite.
    pub fn try_new(table: &Table) -> Result<Self, SirumError> {
        Self::try_new_with(table, Compression::default())
    }

    /// [`Self::try_new`] with an explicit columnar [`Compression`] policy
    /// (benches and bit-identity tests force `Always`/`Never`).
    ///
    /// # Errors
    /// Same as [`Self::try_new`].
    pub fn try_new_with(table: &Table, compression: Compression) -> Result<Self, SirumError> {
        if table.num_rows() == 0 {
            return Err(SirumError::EmptyDataset);
        }
        let (transform, m_prime) = MeasureTransform::try_fit(table.measures())?;
        Ok(PreparedTable {
            frame: Frame::from_table_with(table, compression),
            m_prime: Arc::from(m_prime),
            transform,
        })
    }

    /// Number of rows `n`.
    pub fn num_rows(&self) -> usize {
        self.frame.num_rows()
    }

    /// Number of dimension attributes `d`.
    pub fn num_dims(&self) -> usize {
        self.frame.num_dims()
    }

    /// The shared columnar frame (dimension code columns + the raw measure
    /// column), the buffers every mining scan reads.
    pub fn frame(&self) -> &Frame {
        &self.frame
    }

    /// The transformed measure column `m′` (row-aligned with the frame).
    pub fn m_prime(&self) -> &[f64] {
        &self.m_prime
    }

    /// The transformed measure column as a shared slice (an `Arc` bump),
    /// for building partition-aligned column windows.
    pub fn m_prime_slice(&self) -> ColSlice<f64> {
        ColSlice::full(Arc::clone(&self.m_prime))
    }

    /// The fitted measure transform (shift applied to produce `m′`).
    pub fn transform(&self) -> MeasureTransform {
        self.transform
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sirum_table::generators;

    #[test]
    fn preparation_matches_table_contents() {
        let t = generators::flights();
        let p = PreparedTable::try_new(&t).unwrap();
        assert_eq!(p.num_rows(), t.num_rows());
        assert_eq!(p.num_dims(), t.num_dims());
        let mut buf = Vec::new();
        for i in 0..t.num_rows() {
            p.frame().gather_row(i, &mut buf);
            assert_eq!(buf.as_slice(), t.row(i));
            assert_eq!(p.m_prime()[i], p.transform().apply(t.measure(i)));
        }
        assert_eq!(p.frame().fingerprint(), t.fingerprint());
    }

    #[test]
    fn clones_share_the_columns() {
        let t = generators::flights();
        let p = PreparedTable::try_new(&t).unwrap();
        let q = p.clone();
        assert!(std::ptr::eq(p.frame().col(0), q.frame().col(0)));
        assert!(std::ptr::eq(p.m_prime(), q.m_prime()));
    }

    #[test]
    fn rejects_bad_data_up_front() {
        let t = generators::flights().select_rows(&[]);
        assert!(matches!(
            PreparedTable::try_new(&t),
            Err(SirumError::EmptyDataset)
        ));
        let t = generators::flights().with_measure(vec![f64::NAN; 14]);
        assert!(matches!(
            PreparedTable::try_new(&t),
            Err(SirumError::InvalidMeasure { .. })
        ));
    }
}
