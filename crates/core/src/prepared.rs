//! Pre-encoded mining input: the per-request table preparation —
//! row-major dimension codes boxed per tuple, the fitted
//! [`MeasureTransform`] and the transformed measure column — computed once
//! and reused across requests.
//!
//! [`crate::Miner::try_mine_with_prior`] performs this preparation on every
//! call; an interactive workload that re-mines the same table with varied
//! `k`/variant/two-sided settings pays it repeatedly. The service layer's
//! catalog instead builds one [`PreparedTable`] per registered table and
//! feeds it to [`crate::Miner::try_mine_prepared`], so repeated requests
//! skip re-validation, transform fitting and row re-encoding.

use crate::error::SirumError;
use crate::transform::MeasureTransform;
use sirum_table::Table;

/// A table validated and encoded for mining: per-row boxed dimension codes
/// plus the transformed measure column `m′` and its [`MeasureTransform`].
///
/// Construction checks everything [`crate::Miner`] needs from the data —
/// non-emptiness and finite measures — so a `PreparedTable` can be mined
/// without re-validating per request.
#[derive(Debug, Clone)]
pub struct PreparedTable {
    d: usize,
    rows: Vec<Box<[u32]>>,
    m_prime: Vec<f64>,
    transform: MeasureTransform,
}

impl PreparedTable {
    /// Validate and encode `table` for repeated mining.
    ///
    /// # Errors
    /// * [`SirumError::EmptyDataset`] — the table has no rows.
    /// * [`SirumError::InvalidMeasure`] — a measure value is not finite.
    pub fn try_new(table: &Table) -> Result<Self, SirumError> {
        if table.num_rows() == 0 {
            return Err(SirumError::EmptyDataset);
        }
        let (transform, m_prime) = MeasureTransform::try_fit(table.measures())?;
        let rows: Vec<Box<[u32]>> = (0..table.num_rows())
            .map(|i| table.row(i).to_vec().into_boxed_slice())
            .collect();
        Ok(PreparedTable {
            d: table.num_dims(),
            rows,
            m_prime,
            transform,
        })
    }

    /// Number of rows `n`.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of dimension attributes `d`.
    pub fn num_dims(&self) -> usize {
        self.d
    }

    /// The encoded rows (dimension codes, row-major per tuple).
    pub fn rows(&self) -> &[Box<[u32]>] {
        &self.rows
    }

    /// The transformed measure column `m′` (aligned with [`Self::rows`]).
    pub fn m_prime(&self) -> &[f64] {
        &self.m_prime
    }

    /// The fitted measure transform (shift applied to produce `m′`).
    pub fn transform(&self) -> MeasureTransform {
        self.transform
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sirum_table::generators;

    #[test]
    fn preparation_matches_table_contents() {
        let t = generators::flights();
        let p = PreparedTable::try_new(&t).unwrap();
        assert_eq!(p.num_rows(), t.num_rows());
        assert_eq!(p.num_dims(), t.num_dims());
        for i in 0..t.num_rows() {
            assert_eq!(&*p.rows()[i], t.row(i));
            assert_eq!(p.m_prime()[i], p.transform().apply(t.measure(i)));
        }
    }

    #[test]
    fn rejects_bad_data_up_front() {
        let t = generators::flights().select_rows(&[]);
        assert!(matches!(
            PreparedTable::try_new(&t),
            Err(SirumError::EmptyDataset)
        ));
        let t = generators::flights().with_measure(vec![f64::NAN; 14]);
        assert!(matches!(
            PreparedTable::try_new(&t),
            Err(SirumError::InvalidMeasure { .. })
        ));
    }
}
