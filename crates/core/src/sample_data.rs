//! SIRUM on sample data (§4.5): when `D` exceeds the cluster's memory,
//! mine on a random row sample sized to fit, trading a small loss in
//! information gain for the elimination of repeated disk I/O
//! (Figs 4.4, 5.18, 5.19).

use crate::error::SirumError;
use crate::evaluate::{try_evaluate_rules, RuleSetEvaluation};
use crate::miner::{Miner, MiningResult, SirumConfig};
use crate::rule::Rule;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sirum_dataflow::Engine;
use sirum_table::Table;

/// Outcome of a sampled mining run, scored against the *full* dataset.
#[derive(Debug, Clone)]
pub struct SampleDataResult {
    /// The mining result over the sampled rows.
    pub result: MiningResult,
    /// Number of rows actually sampled.
    pub rows_used: usize,
    /// Sampling rate requested.
    pub rate: f64,
    /// Quality of the mined rule set evaluated on the full dataset.
    pub eval: RuleSetEvaluation,
}

/// Draw a Bernoulli row sample of `table` at `rate` (deterministic in
/// `seed`) and return the sampled sub-table.
pub fn sample_table(table: &Table, rate: f64, seed: u64) -> Table {
    // lint:allow(SL001) — documented contract; try_mine_on_sample validates the rate with a typed error first
    assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
    let mut rng = StdRng::seed_from_u64(seed);
    let indices: Vec<usize> = (0..table.num_rows())
        .filter(|_| rng.gen::<f64>() < rate)
        .collect();
    table.select_rows(&indices)
}

/// Mine on a `rate` sample of `table`, then score the resulting rule set on
/// the full table (the §5.7.3 protocol: execution time from the sampled
/// run, information gain from the full data).
///
/// # Panics
/// Panics on invalid input (e.g. a rate that produces an empty sample);
/// use [`try_mine_on_sample`] on untrusted data.
pub fn mine_on_sample(
    engine: &Engine,
    table: &Table,
    rate: f64,
    config: SirumConfig,
) -> SampleDataResult {
    match try_mine_on_sample(engine, table, rate, config) {
        Ok(result) => result,
        Err(e) => crate::error::fail(e),
    }
}

/// Fallible form of [`mine_on_sample`].
///
/// # Errors
/// * [`SirumError::InvalidConfig`] — `rate` outside `[0, 1]`.
/// * [`SirumError::EmptyDataset`] — the sample (or the table) has no rows.
/// * Everything [`Miner::try_mine`] can return.
pub fn try_mine_on_sample(
    engine: &Engine,
    table: &Table,
    rate: f64,
    config: SirumConfig,
) -> Result<SampleDataResult, SirumError> {
    if !(0.0..=1.0).contains(&rate) {
        return Err(SirumError::invalid_config(
            "rate",
            format!("sampling rate must be in [0, 1], got {rate}"),
        ));
    }
    let seed = config.seed;
    let sampled = if rate >= 1.0 {
        table.clone()
    } else {
        sample_table(table, rate, seed)
    };
    if sampled.num_rows() == 0 {
        return Err(SirumError::EmptyDataset);
    }
    let scaling = config.scaling;
    let miner = Miner::new(engine.clone(), config);
    let result = miner.try_mine(&sampled)?;
    let rules: Vec<Rule> = result.rules.iter().map(|r| r.rule.clone()).collect();
    let eval = try_evaluate_rules(table, &rules, &scaling)?;
    Ok(SampleDataResult {
        rows_used: sampled.num_rows(),
        rate,
        result,
        eval,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::miner::CandidateStrategy;
    use sirum_table::generators::income_like;

    fn quick_config(k: usize) -> SirumConfig {
        SirumConfig {
            k,
            strategy: CandidateStrategy::SampleLca { sample_size: 16 },
            ..SirumConfig::default()
        }
    }

    #[test]
    fn sample_table_rate_and_determinism() {
        let t = income_like(5_000, 1);
        let s = sample_table(&t, 0.1, 7);
        assert!(s.num_rows() > 350 && s.num_rows() < 650, "{}", s.num_rows());
        let s2 = sample_table(&t, 0.1, 7);
        assert_eq!(s.num_rows(), s2.num_rows());
        assert_eq!(s.measures(), s2.measures());
        // Full-rate sampling keeps everything.
        assert_eq!(sample_table(&t, 1.0, 7).num_rows(), 5_000);
    }

    #[test]
    fn sampled_mining_retains_most_information_gain() {
        let t = income_like(8_000, 11);
        let engine = Engine::in_memory();
        let full = mine_on_sample(&engine, &t, 1.0, quick_config(4));
        let sampled = mine_on_sample(&engine, &t, 0.25, quick_config(4));
        assert!(full.eval.information_gain > 0.0);
        assert!(sampled.rows_used < 3_000);
        // §5.7.3: the drop in information gain from sampling is small.
        assert!(
            sampled.eval.information_gain > 0.3 * full.eval.information_gain,
            "sampled {} vs full {}",
            sampled.eval.information_gain,
            full.eval.information_gain
        );
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn zero_rate_panics() {
        let t = income_like(100, 1);
        let engine = Engine::in_memory();
        let _ = mine_on_sample(&engine, &t, 0.0, quick_config(2));
    }
}
