//! Cooperative cancellation: a cheap, cloneable token that a driver checks
//! between mining iterations.
//!
//! A [`CancellationToken`] is the concurrency-safe counterpart of returning
//! [`crate::IterationDecision::Stop`] from an observer: any thread holding a
//! clone can flip it, and a [`crate::Miner`] carrying the token (via
//! [`crate::Miner::with_cancellation`]) stops after the iteration in flight,
//! returning the rules mined so far with [`crate::MiningResult::cancelled`]
//! set. Cancellation is level-triggered and sticky — once cancelled, a token
//! stays cancelled.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared cancellation flag. Clones observe the same flag; `Default` and
/// [`CancellationToken::new`] start un-cancelled.
///
/// ```
/// use sirum_core::CancellationToken;
///
/// let token = CancellationToken::new();
/// let watcher = token.clone();
/// assert!(!watcher.is_cancelled());
/// token.cancel();
/// assert!(watcher.is_cancelled());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancellationToken {
    flag: Arc<AtomicBool>,
}

impl CancellationToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation. Idempotent; wakes no threads by itself — the
    /// miner polls the flag at iteration boundaries (cooperative).
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// True once any clone has called [`Self::cancel`].
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let a = CancellationToken::new();
        let b = a.clone();
        assert!(!a.is_cancelled() && !b.is_cancelled());
        b.cancel();
        assert!(a.is_cancelled() && b.is_cancelled());
        b.cancel(); // idempotent
        assert!(a.is_cancelled());
    }

    #[test]
    fn fresh_tokens_are_independent() {
        let a = CancellationToken::new();
        let b = CancellationToken::new();
        a.cancel();
        assert!(!b.is_cancelled());
    }
}
