//! Cooperative cancellation: a cheap, cloneable token that a driver checks
//! between mining iterations.
//!
//! A [`CancellationToken`] is the concurrency-safe counterpart of returning
//! [`crate::IterationDecision::Stop`] from an observer: any thread holding a
//! clone can flip it, and a [`crate::Miner`] carrying the token (via
//! [`crate::Miner::with_cancellation`]) stops after the iteration in flight,
//! returning the rules mined so far with [`crate::MiningResult::cancelled`]
//! set. Cancellation is level-triggered and sticky — once cancelled, a token
//! stays cancelled.

use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::Arc;

/// Sentinel for "no poll budget armed" — [`CancellationToken::is_cancelled`]
/// skips the budget bookkeeping entirely in the common case.
const BUDGET_DISABLED: i64 = i64::MIN;

#[derive(Debug, Default)]
struct Inner {
    flag: AtomicBool,
    /// Remaining [`CancellationToken::is_cancelled`] calls before a
    /// [`CancellationToken::cancel_after_polls`] deadline self-cancels
    /// ([`BUDGET_DISABLED`] when unarmed).
    poll_budget: AtomicI64,
}

/// A shared cancellation flag. Clones observe the same flag; `Default` and
/// [`CancellationToken::new`] start un-cancelled.
///
/// ```
/// use sirum_core::CancellationToken;
///
/// let token = CancellationToken::new();
/// let watcher = token.clone();
/// assert!(!watcher.is_cancelled());
/// token.cancel();
/// assert!(watcher.is_cancelled());
/// ```
#[derive(Debug, Clone)]
pub struct CancellationToken {
    inner: Arc<Inner>,
}

impl Default for CancellationToken {
    fn default() -> Self {
        CancellationToken {
            inner: Arc::new(Inner {
                flag: AtomicBool::new(false),
                poll_budget: AtomicI64::new(BUDGET_DISABLED),
            }),
        }
    }
}

impl CancellationToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation. Idempotent; wakes no threads by itself — the
    /// miner polls the flag at iteration boundaries (cooperative).
    pub fn cancel(&self) {
        self.inner.flag.store(true, Ordering::Release);
    }

    /// Arm the token to self-cancel on the `n`-th [`Self::is_cancelled`]
    /// poll (counted across all clones). A latency test hook: it lets a
    /// single-threaded test cancel *mid-scan* at a deterministic point and
    /// then measure how many further polls a code path takes to notice —
    /// no racing helper thread, no wall-clock flakiness.
    pub fn cancel_after_polls(&self, n: u64) {
        let n = i64::try_from(n).unwrap_or(i64::MAX).max(1);
        self.inner.poll_budget.store(n, Ordering::Release);
    }

    /// True once any clone has called [`Self::cancel`] (or an armed poll
    /// budget has run out).
    pub fn is_cancelled(&self) -> bool {
        if self.inner.flag.load(Ordering::Acquire) {
            return true;
        }
        if self.inner.poll_budget.load(Ordering::Acquire) != BUDGET_DISABLED
            && self.inner.poll_budget.fetch_sub(1, Ordering::AcqRel) <= 1
        {
            self.cancel();
            return true;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let a = CancellationToken::new();
        let b = a.clone();
        assert!(!a.is_cancelled() && !b.is_cancelled());
        b.cancel();
        assert!(a.is_cancelled() && b.is_cancelled());
        b.cancel(); // idempotent
        assert!(a.is_cancelled());
    }

    #[test]
    fn fresh_tokens_are_independent() {
        let a = CancellationToken::new();
        let b = CancellationToken::new();
        a.cancel();
        assert!(!b.is_cancelled());
    }

    #[test]
    fn poll_budget_cancels_at_the_deadline() {
        let t = CancellationToken::new();
        t.cancel_after_polls(3);
        assert!(!t.is_cancelled());
        assert!(!t.is_cancelled());
        assert!(t.is_cancelled(), "third poll hits the deadline");
        // Sticky from then on, across clones.
        assert!(t.clone().is_cancelled());
    }

    #[test]
    fn unarmed_tokens_poll_forever() {
        let t = CancellationToken::new();
        for _ in 0..10_000 {
            assert!(!t.is_cancelled());
        }
    }
}
