//! Cooperative cancellation: a cheap, cloneable token that a driver checks
//! between mining iterations.
//!
//! A [`CancellationToken`] is the concurrency-safe counterpart of returning
//! [`crate::IterationDecision::Stop`] from an observer: any thread holding a
//! clone can flip it, and a [`crate::Miner`] carrying the token (via
//! [`crate::Miner::with_cancellation`]) stops after the iteration in flight,
//! returning the rules mined so far with [`crate::MiningResult::cancelled`]
//! set. Cancellation is level-triggered and sticky — once cancelled, a token
//! stays cancelled.

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Sentinel for "no poll budget armed" — [`CancellationToken::is_cancelled`]
/// skips the budget bookkeeping entirely in the common case.
const BUDGET_DISABLED: i64 = i64::MIN;

/// Sentinel for "no wall-clock deadline armed".
const DEADLINE_DISABLED: u64 = u64::MAX;

#[derive(Debug)]
struct Inner {
    flag: AtomicBool,
    /// Remaining [`CancellationToken::is_cancelled`] calls before a
    /// [`CancellationToken::cancel_after_polls`] deadline self-cancels
    /// ([`BUDGET_DISABLED`] when unarmed).
    poll_budget: AtomicI64,
    /// Token creation time; the wall-clock deadline is stored relative to
    /// it so it fits an atomic.
    epoch: Instant,
    /// Nanoseconds after `epoch` at which the token self-cancels
    /// ([`DEADLINE_DISABLED`] when unarmed).
    deadline_nanos: AtomicU64,
}

/// A shared cancellation flag. Clones observe the same flag; `Default` and
/// [`CancellationToken::new`] start un-cancelled.
///
/// ```
/// use sirum_core::CancellationToken;
///
/// let token = CancellationToken::new();
/// let watcher = token.clone();
/// assert!(!watcher.is_cancelled());
/// token.cancel();
/// assert!(watcher.is_cancelled());
/// ```
#[derive(Debug, Clone)]
pub struct CancellationToken {
    inner: Arc<Inner>,
}

impl Default for CancellationToken {
    fn default() -> Self {
        CancellationToken {
            inner: Arc::new(Inner {
                flag: AtomicBool::new(false),
                poll_budget: AtomicI64::new(BUDGET_DISABLED),
                epoch: Instant::now(),
                deadline_nanos: AtomicU64::new(DEADLINE_DISABLED),
            }),
        }
    }
}

impl CancellationToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation. Idempotent; wakes no threads by itself — the
    /// miner polls the flag at iteration boundaries (cooperative).
    pub fn cancel(&self) {
        self.inner.flag.store(true, Ordering::Release);
    }

    /// Arm the token to self-cancel on the `n`-th [`Self::is_cancelled`]
    /// poll (counted across all clones). A latency test hook: it lets a
    /// single-threaded test cancel *mid-scan* at a deterministic point and
    /// then measure how many further polls a code path takes to notice —
    /// no racing helper thread, no wall-clock flakiness.
    pub fn cancel_after_polls(&self, n: u64) {
        let n = i64::try_from(n).unwrap_or(i64::MAX).max(1);
        self.inner.poll_budget.store(n, Ordering::Release);
    }

    /// Arm the token to self-cancel once `timeout` has elapsed (measured
    /// from *now*, observed at the next [`Self::is_cancelled`] poll — the
    /// deadline wakes no threads by itself, exactly like [`Self::cancel`]).
    /// Repeated arming keeps the *earliest* deadline; cancellation stays
    /// sticky once the deadline passes. This is the per-request deadline
    /// hook serving layers use to bound job runtime without a watchdog
    /// thread.
    pub fn cancel_after(&self, timeout: Duration) {
        let nanos = self
            .inner
            .epoch
            .elapsed()
            .saturating_add(timeout)
            .as_nanos()
            .min(u128::from(DEADLINE_DISABLED - 1)) as u64;
        self.inner.deadline_nanos.fetch_min(nanos, Ordering::AcqRel);
    }

    /// Time left until an armed [`Self::cancel_after`] deadline, `None`
    /// when no deadline is armed. A token past its deadline reports
    /// `Some(Duration::ZERO)`.
    pub fn remaining(&self) -> Option<Duration> {
        let deadline = self.inner.deadline_nanos.load(Ordering::Acquire);
        if deadline == DEADLINE_DISABLED {
            return None;
        }
        let elapsed = self
            .inner
            .epoch
            .elapsed()
            .as_nanos()
            .min(u128::from(u64::MAX)) as u64;
        Some(Duration::from_nanos(deadline.saturating_sub(elapsed)))
    }

    /// True once any clone has called [`Self::cancel`] (or an armed poll
    /// budget has run out).
    pub fn is_cancelled(&self) -> bool {
        if self.inner.flag.load(Ordering::Acquire) {
            return true;
        }
        if self.inner.poll_budget.load(Ordering::Acquire) != BUDGET_DISABLED
            && self.inner.poll_budget.fetch_sub(1, Ordering::AcqRel) <= 1
        {
            self.cancel();
            return true;
        }
        let deadline = self.inner.deadline_nanos.load(Ordering::Acquire);
        if deadline != DEADLINE_DISABLED
            && self.inner.epoch.elapsed().as_nanos() >= u128::from(deadline)
        {
            self.cancel();
            return true;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let a = CancellationToken::new();
        let b = a.clone();
        assert!(!a.is_cancelled() && !b.is_cancelled());
        b.cancel();
        assert!(a.is_cancelled() && b.is_cancelled());
        b.cancel(); // idempotent
        assert!(a.is_cancelled());
    }

    #[test]
    fn fresh_tokens_are_independent() {
        let a = CancellationToken::new();
        let b = CancellationToken::new();
        a.cancel();
        assert!(!b.is_cancelled());
    }

    #[test]
    fn poll_budget_cancels_at_the_deadline() {
        let t = CancellationToken::new();
        t.cancel_after_polls(3);
        assert!(!t.is_cancelled());
        assert!(!t.is_cancelled());
        assert!(t.is_cancelled(), "third poll hits the deadline");
        // Sticky from then on, across clones.
        assert!(t.clone().is_cancelled());
    }

    #[test]
    fn deadline_cancels_after_it_elapses() {
        let t = CancellationToken::new();
        t.cancel_after(Duration::from_millis(20));
        assert!(!t.is_cancelled(), "deadline has not elapsed yet");
        assert!(t.remaining().is_some());
        std::thread::sleep(Duration::from_millis(30));
        assert!(t.is_cancelled(), "deadline elapsed");
        assert!(t.clone().is_cancelled(), "sticky across clones");
    }

    #[test]
    fn earliest_deadline_wins_and_unarmed_reports_none() {
        let t = CancellationToken::new();
        assert_eq!(t.remaining(), None);
        t.cancel_after(Duration::from_secs(3600));
        t.cancel_after(Duration::from_secs(1));
        let remaining = t.remaining().expect("armed");
        assert!(remaining <= Duration::from_secs(1));
        // Re-arming with a later deadline must not extend it.
        t.cancel_after(Duration::from_secs(3600));
        assert!(t.remaining().expect("armed") <= Duration::from_secs(1));
    }

    #[test]
    fn unarmed_tokens_poll_forever() {
        let t = CancellationToken::new();
        for _ in 0..10_000 {
            assert!(!t.is_cancelled());
        }
    }
}
