//! The workspace-wide error hierarchy: every user-input-reachable failure
//! in the mining pipeline — bad data, bad configuration, engine trouble —
//! surfaces as a [`SirumError`] that names the offending field or input.
//!
//! Hand-rolled in the `thiserror` style (the build is offline): `Display`
//! renders one-line human messages, `source` exposes the wrapped layer
//! errors, and `From` impls let `?` lift [`TableError`] and
//! [`DataflowError`] into the hierarchy.

use sirum_dataflow::DataflowError;
use sirum_table::TableError;
use std::fmt;

/// An error raised anywhere in the SIRUM mining pipeline.
#[derive(Debug)]
pub enum SirumError {
    /// The dataset (or a sample of it) contains no rows; SIRUM needs at
    /// least one tuple to seed the all-wildcards rule.
    EmptyDataset,
    /// A [`crate::SirumConfig`] (or request-builder) field holds an
    /// unusable value; `field` names it.
    InvalidConfig {
        /// The offending configuration field.
        field: &'static str,
        /// Why the value is rejected.
        reason: String,
    },
    /// The measure column cannot drive the maximum-entropy model
    /// (non-finite values, for example).
    InvalidMeasure {
        /// What is wrong with the measure.
        reason: String,
    },
    /// A mining request referenced a table name the session has not
    /// registered.
    UnknownTable {
        /// The unknown name.
        name: String,
        /// The names the session does know, for the error message.
        registered: Vec<String>,
    },
    /// A demo-dataset name did not match any built-in generator.
    UnknownDemo {
        /// The unknown name.
        name: String,
    },
    /// A table-layer failure (CSV parsing, schema, dictionaries).
    Table(TableError),
    /// A dataflow-layer failure (engine configuration, spill I/O).
    Dataflow(DataflowError),
    /// A serving-layer failure (job scheduling, handle misuse): the worker
    /// pool shut down before a job ran, or a job result was requested
    /// twice.
    Service {
        /// What went wrong in the serving layer.
        reason: String,
    },
    /// The serving layer's bounded job queue is full and the request was
    /// admitted non-blockingly; shed-load signal — the caller should retry
    /// later (an HTTP front end maps this to `429 Too Many Requests`).
    Overloaded {
        /// The queue bound that was hit.
        queue_capacity: usize,
    },
}

impl fmt::Display for SirumError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SirumError::EmptyDataset => {
                write!(f, "empty dataset: mining needs at least one row")
            }
            SirumError::InvalidConfig { field, reason } => {
                write!(f, "invalid config: {field}: {reason}")
            }
            SirumError::InvalidMeasure { reason } => {
                write!(f, "invalid measure column: {reason}")
            }
            SirumError::UnknownTable { name, registered } => {
                if registered.is_empty() {
                    write!(f, "unknown table {name:?}: no tables are registered")
                } else {
                    write!(
                        f,
                        "unknown table {name:?} (registered: {})",
                        registered.join(", ")
                    )
                }
            }
            SirumError::UnknownDemo { name } => write!(
                f,
                "unknown demo dataset {name:?} (expected flights, income, gdelt, susy, tlc or dirty)"
            ),
            SirumError::Table(e) => write!(f, "table error: {e}"),
            SirumError::Dataflow(e) => write!(f, "dataflow error: {e}"),
            SirumError::Service { reason } => write!(f, "service error: {reason}"),
            SirumError::Overloaded { queue_capacity } => write!(
                f,
                "service overloaded: the job queue is at its {queue_capacity}-job \
                 capacity; retry later"
            ),
        }
    }
}

impl std::error::Error for SirumError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SirumError::Table(e) => Some(e),
            SirumError::Dataflow(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TableError> for SirumError {
    fn from(e: TableError) -> Self {
        SirumError::Table(e)
    }
}

impl From<DataflowError> for SirumError {
    fn from(e: DataflowError) -> Self {
        SirumError::Dataflow(e)
    }
}

impl SirumError {
    /// Shorthand constructor for [`SirumError::InvalidConfig`].
    pub fn invalid_config(field: &'static str, reason: impl Into<String>) -> Self {
        SirumError::InvalidConfig {
            field,
            reason: reason.into(),
        }
    }

    /// Shorthand constructor for [`SirumError::Service`].
    pub fn service(reason: impl Into<String>) -> Self {
        SirumError::Service {
            reason: reason.into(),
        }
    }
}

/// Abort with `err` rendered through its `Display` form — the single panic
/// bridge behind the deprecated infallible entry points (e.g.
/// [`crate::Miner::mine`]) kept for migration.
#[track_caller]
pub(crate) fn fail(err: SirumError) -> ! {
    panic!("{err}") // lint:allow(SL001) — sole bridge for infallible wrappers
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn display_names_fields_and_tables() {
        let e = SirumError::invalid_config("column_groups", "must be ≥ 1");
        assert!(e.to_string().contains("column_groups"));
        let e = SirumError::UnknownTable {
            name: "nope".into(),
            registered: vec!["flights".into()],
        };
        assert!(e.to_string().contains("nope") && e.to_string().contains("flights"));
    }

    #[test]
    fn layer_errors_lift_and_expose_sources() {
        let t: SirumError = TableError::EmptyInput.into();
        assert!(t.source().is_some());
        let d: SirumError = DataflowError::UnknownMode { name: "x".into() }.into();
        assert!(d.source().is_some());
        assert!(d.to_string().contains("dataflow"));
    }
}
