//! Release-mode memory-budget smoke test: the ISSUE 10 acceptance run.
//!
//! A 2M-row TLC-shaped table is mined end-to-end under a block-store
//! budget the raw working set (dimension columns + 24 B/row of float
//! payload ≈ 120 MB) cannot satisfy. The compressed frame's working set
//! must fit under the cap, the raw frame must pay multiples of the
//! compressed spill traffic to get through, and both must produce output
//! bit-identical to an unbudgeted raw-frame reference.
//!
//! Ignored by default: debug-mode scans of 2M rows take minutes. CI runs
//! it release-mode (`cargo test --release -p sirum_core --test
//! memory_budget -- --ignored`), and so should you.

use sirum_core::miner::{CandidateStrategy, Miner, SirumConfig};
use sirum_core::PreparedTable;
use sirum_dataflow::{Engine, EngineConfig};
use sirum_table::{generators, Compression};

const ROWS: usize = 2_000_000;
const BUDGET: usize = 80 << 20;

/// An in-memory engine with a fixed partition/worker shape, so budgeted
/// and unbudgeted runs differ only in eviction churn — never in float
/// accumulation order.
fn engine(budget: Option<usize>, dir: &str) -> Engine {
    let mut config = EngineConfig::in_memory()
        .with_partitions(8)
        .with_workers(4)
        .with_spill_dir(std::env::temp_dir().join(format!("{dir}-{}", std::process::id())));
    config.memory_budget = budget;
    Engine::new(config)
}

fn config() -> SirumConfig {
    SirumConfig {
        k: 2,
        strategy: CandidateStrategy::SampleLca { sample_size: 8 },
        ..SirumConfig::default()
    }
}

/// One mined rule, everything bit-significant: values, gain bits,
/// avg-measure bits, count.
type RuleBits = (Vec<u32>, u64, u64, u64);

/// Everything that must match bit for bit between runs.
fn bits(r: &sirum_core::MiningResult) -> (Vec<RuleBits>, Vec<u64>, usize) {
    (
        r.rules
            .iter()
            .map(|m| {
                (
                    m.rule.values().to_vec(),
                    m.gain.to_bits(),
                    m.avg_measure.to_bits(),
                    m.count,
                )
            })
            .collect(),
        r.kl_trace.iter().map(|k| k.to_bits()).collect(),
        r.iterations,
    )
}

#[test]
#[ignore = "release-mode smoke: 2M-row scans; run via the CI memory-budget job"]
fn two_million_rows_mine_inside_a_budget_raw_columns_cannot_satisfy() {
    let table = generators::tlc_like(ROWS, 2016);
    let raw = PreparedTable::try_new_with(&table, Compression::Never).unwrap();
    let compressed = PreparedTable::try_new_with(&table, Compression::Auto).unwrap();

    // The premise of the cap: the raw working set (dimension columns plus
    // the 24 B/row of m/m̂/mask float payload every block carries)
    // overflows it; compression shrinks the dimension share ~8× and pulls
    // the total under. (Auto must compress at this size — that's the
    // policy the service relies on.)
    assert!(compressed.frame().is_compressed());
    let float_payload = 24 * ROWS;
    assert!(
        raw.frame().dim_bytes() + float_payload > BUDGET,
        "raw working set fits; cap too loose"
    );
    assert!(
        compressed.frame().dim_bytes() + float_payload < BUDGET,
        "compressed working set {} cannot fit under {BUDGET}",
        compressed.frame().dim_bytes() + float_payload,
    );

    let reference = Miner::new(engine(None, "sirum-budget-ref"), config())
        .try_mine_prepared(&raw, &[])
        .unwrap();
    assert!(!reference.rules.is_empty());

    // Compressed under the cap: bit-identical to the unbudgeted raw
    // reference, with the budget enforced throughout.
    let miner = Miner::new(engine(Some(BUDGET), "sirum-budget-c"), config());
    let under_budget = miner.try_mine_prepared(&compressed, &[]).unwrap();
    assert_eq!(bits(&reference), bits(&under_budget));
    let compressed_stats = miner.engine().store().memory_stats();
    eprintln!("compressed under budget: {compressed_stats:?}");
    assert!(compressed_stats.resident_bytes <= BUDGET);

    // Raw under the same cap: still correct (spill/reload is lossless),
    // but only by churning the store — the out-of-core path the
    // compressed layout mostly avoids. Each mining iteration re-caches a
    // generation of blocks, so some compressed spill traffic is expected;
    // the raw format must pay for its 8×-wider dimension payload on every
    // one of those round-trips.
    let miner = Miner::new(engine(Some(BUDGET), "sirum-budget-r"), config());
    let thrashing = miner.try_mine_prepared(&raw, &[]).unwrap();
    assert_eq!(bits(&reference), bits(&thrashing));
    let raw_stats = miner.engine().store().memory_stats();
    eprintln!("raw under budget: {raw_stats:?}");
    assert!(raw_stats.resident_bytes <= BUDGET);
    assert!(raw_stats.evictions > 0, "raw columns fit the cap?");
    assert!(
        raw_stats.spilled_bytes > 2 * compressed_stats.spilled_bytes,
        "raw spill traffic {} should dwarf compressed {}",
        raw_stats.spilled_bytes,
        compressed_stats.spilled_bytes,
    );
}
