//! Property-based tests (proptest) for SIRUM's core invariants: rule
//! algebra, lattice enumeration, sample-pruning exactness, and the
//! equivalence of the RCT scaler with naive iterative scaling.

use proptest::prelude::*;
use sirum_core::candidates::{
    adjust_for_sample, exhaustive_candidates, lca_aggregates, merge_agg, Agg, SampleIndex,
};
use sirum_core::gain::kl_divergence;
use sirum_core::lattice::{ancestors, ancestors_restricted, column_groups};
use sirum_core::miner::{CandidateStrategy, IterationDecision, Miner, SirumConfig, Tup};
use sirum_core::rct::{iterative_scaling_rct, mhat_for_mask, Rct};
use sirum_core::rule::{Rule, RuleLayout, WILDCARD};
use sirum_core::scaling::{
    iterative_scaling, relative_diff, rule_measure_sums, ScalingConfig, TableBackend,
};
use sirum_core::sweep::{sweep_gains, sweep_gains_reference, SweepOptions};
use sirum_core::transform::MeasureTransform;
use sirum_core::{PreparedTable, Variant};
use sirum_dataflow::cost::CombineStrategy;
use sirum_dataflow::hash::FxHashMap;
use sirum_dataflow::{Engine, EngineConfig};
use sirum_table::{Compression, Schema, Table};

const MAX_D: usize = 5;
const MAX_CARD: u32 = 4;

/// Strategy: a random tuple over `d` attributes with small domains.
fn tuple(d: usize) -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(0..MAX_CARD, d)
}

/// Strategy: a random rule (each position constant or wildcard).
fn rule(d: usize) -> impl Strategy<Value = Rule> {
    prop::collection::vec(prop_oneof![Just(WILDCARD), 0..MAX_CARD], d).prop_map(Rule::from_values)
}

/// Strategy: a small random table with nonnegative measures.
fn small_table() -> impl Strategy<Value = Table> {
    (1usize..=MAX_D).prop_flat_map(|d| {
        prop::collection::vec((tuple(d), 0.0f64..10.0), 1..40).prop_map(move |rows| {
            let names: Vec<String> = (0..d).map(|i| format!("a{i}")).collect();
            let mut b = Table::builder(Schema::new(names, "m"));
            for col in 0..d {
                for v in 0..MAX_CARD {
                    b.intern(col, &format!("v{v}"));
                }
            }
            for (codes, m) in rows {
                b.push_coded_row(&codes, m);
            }
            b.build()
        })
    })
}

/// Tuples as the miner distributes them: `(dims, m, m̂, bit array)` with a
/// synthetic non-uniform estimate column.
fn sweep_tuples(table: &Table) -> Vec<Tup> {
    (0..table.num_rows())
        .map(|i| {
            (
                table.row(i).to_vec().into_boxed_slice(),
                table.measure(i),
                0.5 + (i % 7) as f64,
                0u64,
            )
        })
        .collect()
}

/// Every way [`SweepOptions`] can key the sweep's hot-path accumulators
/// for `table`: the `Rule`-keyed maps, packed codes with the
/// cost-model-chosen combine, and packed codes with each combine strategy
/// forced. All must produce bit-identical output.
fn sweep_variants(table: &Table) -> Vec<SweepOptions> {
    let cards: Vec<u32> = table.cardinalities().iter().map(|&c| c as u32).collect();
    let packed = SweepOptions::packed(RuleLayout::from_cardinalities(&cards));
    vec![
        SweepOptions::rule_keyed(),
        packed.clone(),
        packed.clone().with_combine(CombineStrategy::HashProbe),
        packed.with_combine(CombineStrategy::RadixGroup),
    ]
}

/// Canonical, comparable form of a sweep's candidate list: per candidate
/// `(rule values, Σm bits, Σm̂ bits, count)`.
type SweepBits = Vec<(Vec<u32>, u64, u64, u64)>;

/// Canonical, comparable form of a sweep's candidate list: sorted by rule
/// with float sums taken to bits, so equality means *bit* equality.
fn sweep_bits(out: &sirum_core::sweep::SweepOutcome) -> SweepBits {
    let mut v: SweepBits = out
        .candidates
        .iter()
        .map(|(r, sm, smh, c)| (r.values().to_vec(), sm.to_bits(), smh.to_bits(), *c))
        .collect();
    v.sort();
    v
}

/// Everything a mining run produces that must match bit for bit between
/// the columnar and row-major representations: the selected rule sequence
/// with selection-time gains/averages/counts, the KL trace, the λ-update
/// counts, the emitted-pair accounting, the iteration count and the
/// cancellation flag. (Wall-clock timings are excluded by construction.)
type ResultBits = (
    Vec<(Vec<u32>, u64, u64, u64)>,
    Vec<u64>,
    Vec<usize>,
    u64,
    usize,
    bool,
);

fn result_bits(r: &sirum_core::MiningResult) -> ResultBits {
    (
        r.rules
            .iter()
            .map(|m| {
                (
                    m.rule.values().to_vec(),
                    m.gain.to_bits(),
                    m.avg_measure.to_bits(),
                    m.count,
                )
            })
            .collect(),
        r.kl_trace.iter().map(|k| k.to_bits()).collect(),
        r.scaling_iterations.clone(),
        r.ancestors_emitted,
        r.iterations,
        r.cancelled,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn columnar_and_rowmajor_mining_are_bit_identical(
        (table, variant_idx, partitions, workers) in small_table().prop_flat_map(|t| {
            (Just(t), 0usize..Variant::ALL.len(), 1usize..5, 1usize..4)
        })
    ) {
        // The tentpole refactor claim (ISSUE 5): swapping the data
        // representation — zero-copy columnar FrameView partitions vs.
        // boxed per-row tuples — changes NOTHING about the mining output,
        // for every Table 4.2 variant (incl. Naive's repartition path and
        // the staged pipelines), partition count and worker count.
        let variant = Variant::ALL[variant_idx];
        let n = table.num_rows();
        let mine = |columnar: bool| {
            let engine = Engine::new(
                EngineConfig::in_memory()
                    .with_workers(workers)
                    .with_partitions(partitions),
            );
            let mut config = variant.config(2, n.min(4));
            config.columnar = columnar;
            Miner::new(engine, config).try_mine(&table).unwrap()
        };
        prop_assert_eq!(result_bits(&mine(true)), result_bits(&mine(false)));
    }

    #[test]
    fn columnar_and_rowmajor_agree_under_midmine_cancellation(
        (table, stop_after, partitions) in small_table().prop_flat_map(|t| {
            (Just(t), 1usize..3, 1usize..5)
        })
    ) {
        // Cancelling at an iteration boundary must leave the same partial
        // result on every representation — columnar vs row-major data AND
        // packed vs Rule-keyed sweep accumulators: same rules mined so
        // far, same KL trace, same cancelled flag.
        let n = table.num_rows();
        let mine = |columnar: bool, packed_codes: bool| {
            let engine = Engine::new(
                EngineConfig::in_memory()
                    .with_workers(2)
                    .with_partitions(partitions),
            );
            let config = SirumConfig {
                k: 4,
                strategy: CandidateStrategy::SampleLca { sample_size: n.min(5) },
                columnar,
                packed_codes,
                ..SirumConfig::default()
            };
            Miner::new(engine, config)
                .with_observer(move |event| {
                    if event.iteration >= stop_after {
                        IterationDecision::Stop
                    } else {
                        IterationDecision::Continue
                    }
                })
                .try_mine(&table)
                .unwrap()
        };
        let baseline = mine(true, true);
        for (columnar, packed) in [(true, false), (false, true), (false, false)] {
            let other = mine(columnar, packed);
            prop_assert_eq!(baseline.cancelled, other.cancelled);
            prop_assert_eq!(result_bits(&baseline), result_bits(&other));
        }
    }

    #[test]
    fn compressed_and_raw_frame_mining_are_bit_identical(
        (table, variant_idx, partitions, workers) in small_table().prop_flat_map(|t| {
            (Just(t), 0usize..Variant::ALL.len(), 1usize..5, 1usize..4)
        })
    ) {
        // The tentpole claim of ISSUE 10: swapping the frame's physical
        // storage — bit-packed/RLE compressed segments decoded morsel by
        // morsel vs. raw u32 columns — changes NOTHING about the mining
        // output, for every Table 4.2 variant, partition count and worker
        // count. The morsel loops visit rows in the same order the flat
        // scans did, so every float accumulation associates identically.
        let variant = Variant::ALL[variant_idx];
        let n = table.num_rows();
        let mine = |compression: Compression| {
            let engine = Engine::new(
                EngineConfig::in_memory()
                    .with_workers(workers)
                    .with_partitions(partitions),
            );
            let prepared = PreparedTable::try_new_with(&table, compression).unwrap();
            assert_eq!(
                prepared.frame().is_compressed(),
                matches!(compression, Compression::Always)
            );
            let config = variant.config(2, n.min(4));
            Miner::new(engine, config).try_mine_prepared(&prepared, &[]).unwrap()
        };
        prop_assert_eq!(
            result_bits(&mine(Compression::Always)),
            result_bits(&mine(Compression::Never))
        );
    }

    #[test]
    fn compressed_and_raw_frames_agree_under_midmine_cancellation(
        (table, stop_after, partitions, columnar) in small_table().prop_flat_map(|t| {
            (Just(t), 1usize..3, 1usize..5, any::<bool>())
        })
    ) {
        // Cancelling at an iteration boundary must leave the same partial
        // result on compressed and raw frames alike — for the columnar
        // morsel scans AND the row-major gather path (which reads
        // compressed columns value-at-a-time).
        let n = table.num_rows();
        let mine = |compression: Compression| {
            let engine = Engine::new(
                EngineConfig::in_memory()
                    .with_workers(2)
                    .with_partitions(partitions),
            );
            let config = SirumConfig {
                k: 4,
                strategy: CandidateStrategy::SampleLca { sample_size: n.min(5) },
                columnar,
                ..SirumConfig::default()
            };
            let prepared = PreparedTable::try_new_with(&table, compression).unwrap();
            Miner::new(engine, config)
                .with_observer(move |event| {
                    if event.iteration >= stop_after {
                        IterationDecision::Stop
                    } else {
                        IterationDecision::Continue
                    }
                })
                .try_mine_prepared(&prepared, &[])
                .unwrap()
        };
        let compressed = mine(Compression::Always);
        let raw = mine(Compression::Never);
        prop_assert_eq!(compressed.cancelled, raw.cancelled);
        prop_assert_eq!(result_bits(&compressed), result_bits(&raw));
    }

    #[test]
    fn packed_and_rulekey_mining_are_bit_identical(
        (table, partitions, workers, columnar) in small_table().prop_flat_map(|t| {
            (Just(t), 1usize..5, 1usize..4, any::<bool>())
        })
    ) {
        // The tentpole claim of ISSUE 6: interning rules as packed integer
        // codes on the sweep hot path changes NOTHING about the mining
        // output — selected rules, gains, KL trace, pair accounting — for
        // either data representation, any partition count and any worker
        // count.
        let n = table.num_rows();
        let mine = |packed_codes: bool| {
            let engine = Engine::new(
                EngineConfig::in_memory()
                    .with_workers(workers)
                    .with_partitions(partitions),
            );
            let config = SirumConfig {
                k: 3,
                strategy: CandidateStrategy::SampleLca { sample_size: n.min(5) },
                columnar,
                packed_codes,
                ..SirumConfig::default()
            };
            Miner::new(engine, config).try_mine(&table).unwrap()
        };
        prop_assert_eq!(result_bits(&mine(true)), result_bits(&mine(false)));
    }

    #[test]
    fn packed_layout_round_trips_and_preserves_rule_order(
        (cards, seeds) in prop::collection::vec(1u32..(1u32 << 28), 1..10)
            .prop_flat_map(|cards| {
                let d = cards.len();
                let rules = prop::collection::vec(
                    prop::collection::vec(any::<u64>(), d),
                    2..16,
                );
                (Just(cards), rules)
            })
    ) {
        // Random dictionaries: widths span the u64 / u128 / fallback
        // regimes (up to 9 dims × ≤28 bits). Wherever the layout fits,
        // pack → unpack is the identity and packed integer order is
        // exactly lexicographic rule-value order (WILDCARD last), which is
        // what lets the sweep sort codes instead of rules.
        let layout = RuleLayout::from_cardinalities(&cards);
        let total: u32 = cards.iter().map(|&c| (32 - c.leading_zeros()).max(1)).sum();
        prop_assert_eq!(layout.total_bits(), total);
        prop_assert_eq!(layout.fits::<u64>(), total <= 64);
        prop_assert_eq!(layout.fits::<u128>(), total <= 128);
        if layout.fits::<u128>() {
            // Each dim's value drawn from {0..card-1} ∪ {WILDCARD}.
            let rules_vals: Vec<Vec<u32>> = seeds
                .iter()
                .map(|row| {
                    row.iter()
                        .zip(&cards)
                        .map(|(&s, &c)| {
                            let v = (s % (u64::from(c) + 1)) as u32;
                            if v == c { WILDCARD } else { v }
                        })
                        .collect()
                })
                .collect();
            let mut coded: Vec<(u128, Vec<u32>)> = rules_vals
                .iter()
                .map(|v| (layout.pack::<u128>(v), v.clone()))
                .collect();
            for (code, vals) in &coded {
                prop_assert_eq!(layout.unpack(*code).values(), &vals[..]);
            }
            if layout.fits::<u64>() {
                for (code, vals) in &coded {
                    let narrow: u64 = layout.pack(vals);
                    prop_assert_eq!(u128::from(narrow), *code);
                    prop_assert_eq!(layout.unpack(narrow).values(), &vals[..]);
                }
            }
            let by_values = {
                let mut v = coded.clone();
                v.sort_by(|a, b| a.1.cmp(&b.1));
                v.into_iter().map(|(_, vals)| vals).collect::<Vec<_>>()
            };
            coded.sort_by_key(|(code, _)| *code);
            let by_code: Vec<Vec<u32>> = coded.into_iter().map(|(_, vals)| vals).collect();
            prop_assert_eq!(by_code, by_values);
        }
    }

    #[test]
    fn parallel_sweep_is_bit_identical_to_the_sequential_reference(
        (table, picks, partitions, workers) in small_table().prop_flat_map(|t| {
            let n = t.num_rows();
            (
                Just(t),
                prop::collection::vec(0..n, 1..6),
                1usize..7,
                1usize..5,
            )
        })
    ) {
        // The tentpole determinism claim: per-candidate (Σm, Σm̂) from the
        // engine-parallel sweep equal the sequential reference BIT FOR BIT
        // for any table, partition count and worker count — and across
        // every accumulator-key representation (Rule-keyed, packed u64
        // hash-probe, packed radix-group).
        let d = table.num_dims();
        let sample: Vec<Box<[u32]>> = picks
            .iter()
            .map(|&i| table.row(i).to_vec().into_boxed_slice())
            .collect();
        let index = SampleIndex::build(sample, d);
        let engine = Engine::new(EngineConfig::in_memory().with_workers(workers));
        let data = engine.parallelize(sweep_tuples(&table), partitions);
        for idx in [Some(&index), None] {
            let mut baseline: Option<SweepBits> = None;
            for opts in sweep_variants(&table) {
                let par = sweep_gains(&data, d, idx, None, &opts);
                let seq = sweep_gains_reference(&data, d, idx, None, &opts);
                prop_assert_eq!(par.pairs_emitted, seq.pairs_emitted);
                prop_assert_eq!(par.distinct_candidates, seq.distinct_candidates);
                let par_bits = sweep_bits(&par);
                prop_assert_eq!(&par_bits, &sweep_bits(&seq));
                match &baseline {
                    None => baseline = Some(par_bits),
                    Some(b) => prop_assert_eq!(b, &par_bits),
                }
            }
        }
    }

    #[test]
    fn sweep_mining_output_is_thread_invariant(
        (table, partitions) in small_table().prop_flat_map(|t| (Just(t), 1usize..5))
    ) {
        // Selected rule sequence, selection-time gains and the KL trace
        // must be bit-identical between a 1-worker and a 4-worker engine
        // over the same partitioning.
        let n = table.num_rows();
        let mine = |workers: usize| {
            let engine = Engine::new(
                EngineConfig::in_memory()
                    .with_workers(workers)
                    .with_partitions(partitions),
            );
            let config = SirumConfig {
                k: 3,
                strategy: CandidateStrategy::SampleLca {
                    sample_size: n.min(5),
                },
                ..SirumConfig::default()
            };
            Miner::new(engine, config).try_mine(&table).unwrap()
        };
        let seq = mine(1);
        let par = mine(4);
        prop_assert_eq!(seq.rules.len(), par.rules.len());
        for (a, b) in seq.rules.iter().zip(&par.rules) {
            prop_assert_eq!(a.rule.values(), b.rule.values());
            prop_assert_eq!(a.gain.to_bits(), b.gain.to_bits(), "{:?}", a.rule);
            prop_assert_eq!(a.avg_measure.to_bits(), b.avg_measure.to_bits());
            prop_assert_eq!(a.count, b.count);
        }
        let bits = |r: &sirum_core::MiningResult| -> Vec<u64> {
            r.kl_trace.iter().map(|k| k.to_bits()).collect()
        };
        prop_assert_eq!(bits(&seq), bits(&par));
        prop_assert_eq!(seq.ancestors_emitted, par.ancestors_emitted);
    }

    #[test]
    fn sweep_aggregates_equal_the_exhaustive_reference(
        (table, picks) in small_table().prop_flat_map(|t| {
            let n = t.num_rows();
            (Just(t), prop::collection::vec(0..n, 1..6))
        })
    ) {
        // Semantic exactness: the sweep's adjusted sums equal the exact
        // support-set sums of the exhaustive reference aggregation.
        let d = table.num_dims();
        let mhat: Vec<f64> = (0..table.num_rows()).map(|i| 0.5 + (i % 7) as f64).collect();
        let sample: Vec<Box<[u32]>> = picks
            .iter()
            .map(|&i| table.row(i).to_vec().into_boxed_slice())
            .collect();
        let index = SampleIndex::build(sample, d);
        let engine = Engine::new(EngineConfig::in_memory().with_workers(2));
        let data = engine.parallelize(sweep_tuples(&table), 3);
        let exhaustive = exhaustive_candidates(&table, &mhat, None).expect("uncancelled");
        for opts in sweep_variants(&table) {
            let out = sweep_gains(&data, d, Some(&index), None, &opts);
            for (rule, sum_m, sum_mhat, count) in &out.candidates {
                let (em, emh, ec) = exhaustive[rule];
                prop_assert!((sum_m - em).abs() < 1e-6, "{:?}: {} vs {}", rule, sum_m, em);
                prop_assert!((sum_mhat - emh).abs() < 1e-6, "{:?}", rule);
                prop_assert_eq!(*count, ec, "{:?}", rule);
            }
        }
    }

    #[test]
    fn lca_is_a_common_ancestor((a, b) in (1usize..=MAX_D).prop_flat_map(|d| (tuple(d), tuple(d)))) {
        let lca = Rule::lca(&a, &b);
        prop_assert!(lca.matches(&a));
        prop_assert!(lca.matches(&b));
    }

    #[test]
    fn lca_is_least((a, b, r) in (1usize..=MAX_D).prop_flat_map(|d| (tuple(d), tuple(d), rule(d)))) {
        // Any rule covering both tuples is an ancestor of their LCA.
        let lca = Rule::lca(&a, &b);
        if r.matches(&a) && r.matches(&b) {
            prop_assert!(r.is_ancestor_of(&lca), "{r:?} not ancestor of {lca:?}");
        }
    }

    #[test]
    fn ancestor_count_is_two_to_the_constants(r in (1usize..=MAX_D).prop_flat_map(rule)) {
        let anc = ancestors(&r);
        prop_assert_eq!(anc.len(), 1usize << r.num_constants());
        // All distinct, all ancestors, and the rule itself is included.
        let mut seen = std::collections::HashSet::new();
        for a in &anc {
            prop_assert!(a.is_ancestor_of(&r));
            prop_assert!(seen.insert(a.clone()));
        }
        prop_assert!(anc.contains(&r));
        prop_assert!(anc.contains(&Rule::all_wildcards(r.arity())));
    }

    #[test]
    fn ancestors_are_exactly_the_matching_rules(t in (1usize..=3usize).prop_flat_map(tuple)) {
        // For a full tuple, its lattice = every rule that matches it.
        let base = Rule::from_tuple(&t);
        let anc: std::collections::HashSet<Rule> = ancestors(&base).into_iter().collect();
        // Enumerate all rules over the tuple's arity and cross-check.
        let d = t.len();
        let mut all = vec![Vec::<u32>::new()];
        for _ in 0..d {
            let mut next = Vec::new();
            for prefix in &all {
                for v in (0..MAX_CARD).chain([WILDCARD]) {
                    let mut p = prefix.clone();
                    p.push(v);
                    next.push(p);
                }
            }
            all = next;
        }
        for vals in all {
            let r = Rule::from_values(vals);
            prop_assert_eq!(r.matches(&t), anc.contains(&r), "{:?}", r);
        }
    }

    #[test]
    fn staged_generation_equals_single_stage(
        (r, g, seed) in (1usize..=MAX_D).prop_flat_map(|d| (rule(d), 1usize..=d, any::<u64>()))
    ) {
        // Appendix A: column-grouped expansion yields the same set, with
        // each ancestor produced exactly once.
        let d = r.arity();
        let groups = column_groups(d, g, seed);
        let mut staged = vec![r.clone()];
        for group in &groups {
            let mut next = Vec::new();
            for rule in &staged {
                next.extend(ancestors_restricted(rule, group));
            }
            staged = next;
        }
        let mut full = ancestors(&r);
        prop_assert_eq!(staged.len(), full.len(), "uniqueness (Appendix A)");
        staged.sort_by(|a, b| a.values().cmp(b.values()));
        full.sort_by(|a, b| a.values().cmp(b.values()));
        prop_assert_eq!(staged, full);
    }

    #[test]
    fn disjoint_rules_never_share_tuples(
        (a, b, t) in (1usize..=MAX_D).prop_flat_map(|d| (rule(d), rule(d), tuple(d)))
    ) {
        if a.is_disjoint(&b) {
            prop_assert!(!(a.matches(&t) && b.matches(&t)));
        }
    }

    #[test]
    fn disjointness_is_symmetric_and_irreflexive(
        (a, b) in (1usize..=MAX_D).prop_flat_map(|d| (rule(d), rule(d)))
    ) {
        prop_assert_eq!(a.is_disjoint(&b), b.is_disjoint(&a));
        prop_assert!(!a.is_disjoint(&a));
    }

    #[test]
    fn sample_pruned_aggregates_are_exact(
        (table, picks) in small_table().prop_flat_map(|t| {
            let n = t.num_rows();
            (Just(t), prop::collection::vec(0..n, 1..6))
        })
    ) {
        // §3.1.1 multiplicity adjustment: candidate aggregates after
        // division by the sample match count equal exact support sums.
        let d = table.num_dims();
        let mhat: Vec<f64> = (0..table.num_rows()).map(|i| 0.5 + (i % 7) as f64).collect();
        let sample: Vec<Box<[u32]>> = picks
            .iter()
            .map(|&i| table.row(i).to_vec().into_boxed_slice())
            .collect();
        let index = SampleIndex::build(sample.clone(), d);
        let lcas = lca_aggregates(&table, table.measures(), &mhat, &sample, None).expect("uncancelled");
        let mut cands: FxHashMap<Rule, Agg> = FxHashMap::default();
        for (rule, agg) in &lcas {
            for anc in ancestors(rule) {
                merge_agg(cands.entry(anc).or_insert((0.0, 0.0, 0)), *agg);
            }
        }
        let adjusted = adjust_for_sample(cands, &index);
        let exhaustive =
            exhaustive_candidates(&table.with_measure(table.measures().to_vec()), &mhat, None)
                .expect("uncancelled");
        for (rule, sum_m, sum_mhat, count) in adjusted {
            let (em, emh, ec) = exhaustive[&rule];
            prop_assert!((sum_m - em).abs() < 1e-6, "{:?}: {} vs {}", rule, sum_m, em);
            prop_assert!((sum_mhat - emh).abs() < 1e-6);
            prop_assert_eq!(count, ec);
        }
    }

    #[test]
    fn fast_index_lcas_equal_naive_lcas(
        (table, picks) in small_table().prop_flat_map(|t| {
            let n = t.num_rows();
            (Just(t), prop::collection::vec(0..n, 1..6))
        })
    ) {
        let d = table.num_dims();
        let sample: Vec<Box<[u32]>> = picks
            .iter()
            .map(|&i| table.row(i).to_vec().into_boxed_slice())
            .collect();
        let index = SampleIndex::build(sample.clone(), d);
        let mut scratch = Vec::new();
        for row in table.rows() {
            let fast = index.lcas_into(row, &mut scratch);
            for (j, srow) in sample.iter().enumerate() {
                let naive = Rule::lca(srow, row);
                prop_assert_eq!(naive.values(), &fast[j * d..(j + 1) * d]);
            }
        }
    }

    #[test]
    fn rct_and_naive_scaling_agree(table in small_table()) {
        // Build a model from the all-wildcards rule plus up to 3 supported
        // single-constant rules; both scalers must converge to the same
        // multipliers and estimates.
        let d = table.num_dims();
        let (_tr, m_prime) = MeasureTransform::fit(table.measures());
        let mut rules = vec![Rule::all_wildcards(d)];
        'outer: for col in 0..d {
            for code in 0..MAX_CARD {
                if rules.len() >= 4 {
                    break 'outer;
                }
                let mut vals = vec![WILDCARD; d];
                vals[col] = code;
                let r = Rule::from_values(vals);
                // Only rules with positive measure mass are constrainable.
                let mass: f64 = table
                    .rows()
                    .enumerate()
                    .filter(|(_, row)| r.matches(row))
                    .map(|(i, _)| m_prime[i])
                    .sum();
                if mass > 0.0 {
                    rules.push(r);
                }
            }
        }
        let sums = rule_measure_sums(&table, &m_prime, &rules);
        let m_sums: Vec<f64> = sums.iter().map(|s| s.0).collect();
        let cfg = ScalingConfig { epsilon: 1e-9, max_iterations: 200_000 };

        let mut naive_lambdas = vec![1.0; rules.len()];
        let mut backend = TableBackend::new(&table);
        let naive_out = iterative_scaling(&mut backend, &rules, &m_sums, &mut naive_lambdas, &cfg);

        let masks: Vec<u64> = table
            .rows()
            .map(|row| {
                rules.iter().enumerate().fold(0u64, |mask, (i, r)| {
                    if r.matches(row) { mask | (1 << i) } else { mask }
                })
            })
            .collect();
        let mut rct = Rct::build(&masks, &m_prime, &vec![1.0; table.num_rows()]);
        let mut rct_lambdas = vec![1.0; rules.len()];
        let rct_out = iterative_scaling_rct(&mut rct, rules.len(), &m_sums, &mut rct_lambdas, &cfg);

        prop_assert_eq!(naive_out.converged, rct_out.converged);
        if naive_out.converged {
            for (i, &mask) in masks.iter().enumerate() {
                let via_rct = mhat_for_mask(mask, &rct_lambdas);
                prop_assert!(
                    (via_rct - backend.mhat()[i]).abs() < 1e-5,
                    "tuple {}: {} vs {}", i, via_rct, backend.mhat()[i]
                );
            }
        }
    }

    #[test]
    fn scaling_constraints_hold_at_convergence(table in small_table()) {
        let d = table.num_dims();
        let (_tr, m_prime) = MeasureTransform::fit(table.measures());
        let rules = vec![Rule::all_wildcards(d)];
        let sums = rule_measure_sums(&table, &m_prime, &rules);
        let m_sums: Vec<f64> = sums.iter().map(|s| s.0).collect();
        let cfg = ScalingConfig { epsilon: 1e-9, max_iterations: 100_000 };
        let mut lambdas = vec![1.0];
        let mut backend = TableBackend::new(&table);
        let out = iterative_scaling(&mut backend, &rules, &m_sums, &mut lambdas, &cfg);
        prop_assert!(out.converged);
        let mhat_sums = {
            let mut s = 0.0;
            for i in 0..table.num_rows() { s += backend.mhat()[i]; }
            s
        };
        prop_assert!(relative_diff(m_sums[0], mhat_sums) <= 1e-9);
        // KL of the fitted model never exceeds KL of the uniform model.
        let uniform = vec![1.0; table.num_rows()];
        let kl_fit = kl_divergence(&m_prime, backend.mhat());
        let kl_uniform = kl_divergence(&m_prime, &uniform);
        prop_assert!(kl_fit <= kl_uniform + 1e-9);
    }

    #[test]
    fn measure_transform_is_sound(ms in prop::collection::vec(-100.0f64..100.0, 1..50)) {
        let (tr, out) = MeasureTransform::fit(&ms);
        prop_assert!(out.iter().all(|&v| v >= 0.0));
        prop_assert!(out.iter().sum::<f64>() != 0.0);
        // Averages invert exactly.
        let avg_orig: f64 = ms.iter().sum::<f64>() / ms.len() as f64;
        let avg_new: f64 = out.iter().sum::<f64>() / out.len() as f64;
        prop_assert!((tr.invert_avg(avg_new) - avg_orig).abs() < 1e-9);
    }

    #[test]
    fn exhaustive_aggregates_cover_all_mass(table in small_table()) {
        // Each tuple contributes to exactly C(d, l) lattice elements with l
        // constants, so the level-l sum of the exhaustive aggregation must
        // equal C(d, l) × (total mass).
        let n = table.num_rows();
        let mhat = vec![1.0; n];
        let cands = exhaustive_candidates(&table, &mhat, None).expect("uncancelled");
        let total: f64 = table.measures().iter().sum();
        let d = table.num_dims();
        let binom = |n: usize, k: usize| -> f64 {
            let mut v = 1.0;
            for i in 0..k {
                v = v * (n - i) as f64 / (i + 1) as f64;
            }
            v
        };
        for level in 0..=d {
            let level_sum: f64 = cands
                .iter()
                .filter(|(r, _)| r.num_constants() == level)
                .map(|(_, (sm, _, _))| *sm)
                .sum();
            let expect = binom(d, level) * total;
            prop_assert!(
                (level_sum - expect).abs() < 1e-6 * (1.0 + expect.abs()),
                "level {}: {} vs {}", level, level_sum, expect
            );
        }
    }
}

/// A DiskMr engine (every stage round-trips through disk) with a fixed
/// partition/worker shape, so two runs differ only in the cache budget and
/// the frames they scan — never in float accumulation order.
fn disk_engine(budget: Option<usize>, dir: &str) -> Engine {
    let mut config = EngineConfig::disk_mr()
        .with_stage_startup(std::time::Duration::ZERO)
        .with_partitions(4)
        .with_workers(2)
        .with_spill_dir(std::env::temp_dir().join(format!(
            "{dir}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        )));
    config.memory_budget = budget;
    Engine::new(config)
}

#[test]
fn eviction_pressure_reloads_compressed_segments_bit_identically() {
    // Bit-identity must survive real memory pressure: a budget far below
    // the working set forces compressed dimension blocks to evict to disk
    // and decode back mid-mine, and the result must still match an
    // unbudgeted run over raw columns bit for bit (same engine shape, so
    // the only variables are the storage format and the eviction churn).
    let table = sirum_table::generators::income_like(6_000, 23);
    let config = || SirumConfig {
        k: 3,
        strategy: CandidateStrategy::SampleLca { sample_size: 16 },
        ..SirumConfig::default()
    };
    let raw = PreparedTable::try_new_with(&table, Compression::Never).unwrap();
    let reference = Miner::new(disk_engine(None, "sirum-evict-ref"), config())
        .try_mine_prepared(&raw, &[])
        .unwrap();

    let compressed = PreparedTable::try_new_with(&table, Compression::Always).unwrap();
    assert!(compressed.frame().is_compressed());
    let miner = Miner::new(disk_engine(Some(48 << 10), "sirum-evict"), config());
    let starved = miner.try_mine_prepared(&compressed, &[]).unwrap();
    assert_eq!(result_bits(&reference), result_bits(&starved));

    let stats = miner.engine().store().memory_stats();
    assert!(stats.evictions > 0, "budget never forced an eviction");
    assert!(
        stats.spilled_bytes > 0,
        "nothing round-tripped through disk"
    );
}

#[test]
fn spill_io_failure_under_pressure_is_a_typed_error() {
    // Break the store's spill directory after the engine comes up: the
    // first stage that must write through it poisons the store, and the
    // run surfaces a typed dataflow error instead of panicking or silently
    // mining on partial data.
    let root = std::env::temp_dir().join(format!("sirum-evict-poison-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let engine = Engine::new(
        EngineConfig::disk_mr()
            .with_stage_startup(std::time::Duration::ZERO)
            .with_partitions(4)
            .with_memory_budget(48 << 10)
            .with_spill_dir(root.clone()),
    );
    // Replace the per-store subdirectory with a plain file so every
    // subsequent spill write fails with a real I/O error.
    for entry in std::fs::read_dir(&root).unwrap() {
        let path = entry.unwrap().path();
        std::fs::remove_dir_all(&path).unwrap();
        std::fs::write(&path, b"not a directory").unwrap();
    }
    let table = sirum_table::generators::income_like(2_000, 23);
    let prepared = PreparedTable::try_new_with(&table, Compression::Always).unwrap();
    let config = SirumConfig {
        k: 2,
        strategy: CandidateStrategy::SampleLca { sample_size: 8 },
        ..SirumConfig::default()
    };
    let result = Miner::new(engine, config).try_mine_prepared(&prepared, &[]);
    assert!(
        matches!(result, Err(sirum_core::SirumError::Dataflow(_))),
        "{result:?}"
    );
    let _ = std::fs::remove_dir_all(&root);
}
