//! End-to-end tests of the SIRUM miner: the paper's worked example, the
//! equivalence of all optimization variants, and invariance across the
//! three engine modes.

use sirum_core::{
    CandidateStrategy, Miner, MiningResult, MultiRuleConfig, Rule, SirumConfig, Variant, WILDCARD,
};
use sirum_dataflow::{Engine, EngineConfig};
use sirum_table::generators;
use sirum_table::Table;
use std::time::Duration;

fn engine() -> Engine {
    Engine::new(EngineConfig::in_memory().with_workers(2).with_partitions(4))
}

/// Exhaustive-candidate config: deterministic, sample = whole table.
fn full_sample_config(k: usize, n: usize) -> SirumConfig {
    SirumConfig {
        k,
        strategy: CandidateStrategy::SampleLca { sample_size: n },
        ..SirumConfig::default()
    }
}

fn rule_names(result: &MiningResult, table: &Table) -> Vec<String> {
    result.rules.iter().map(|r| r.rule.display(table)).collect()
}

#[test]
fn flight_example_reproduces_table_1_2() {
    // With the sample = the full table, candidate pruning is exact, and the
    // first mined rule must be (*, *, London) — the paper's rule 2, chosen
    // for its large, strongly-deviating support set.
    let t = generators::flights();
    let result = Miner::new(engine(), full_sample_config(3, 14))
        .try_mine(&t)
        .unwrap();
    let names = rule_names(&result, &t);
    assert_eq!(names[0], "(*, *, *)");
    assert_eq!(names[1], "(*, *, London)");
    // Table 1.2 reports AVG 15.3 (=61/4) and count 4 for rule 2.
    let r2 = &result.rules[1];
    assert_eq!(r2.count, 4);
    assert!((r2.avg_measure - 61.0 / 4.0).abs() < 1e-9);
    // The all-wildcards rule reports the global average over 14 tuples.
    let r1 = &result.rules[0];
    assert_eq!(r1.count, 14);
    assert!((r1.avg_measure - 145.0 / 14.0).abs() < 1e-9);
    // Follow-up rules in the paper are (Fri,*,*) and (Sat,*,*); selection
    // order after r2 depends on ε, but Friday must appear among the four.
    assert!(
        names.contains(&"(Fri, *, *)".to_string()),
        "mined: {names:?}"
    );
}

#[test]
fn kl_trace_is_monotone_nonincreasing() {
    let t = generators::income_like(2_000, 5);
    let result = Miner::new(engine(), full_sample_config(5, 32))
        .try_mine(&t)
        .unwrap();
    for w in result.kl_trace.windows(2) {
        assert!(
            w[1] <= w[0] + 1e-6,
            "KL must not increase: {:?}",
            result.kl_trace
        );
    }
    assert!(result.information_gain() >= 0.0);
}

#[test]
fn all_variants_mine_the_same_rules() {
    // Every Table 4.2 variant is a *performance* change; given the same
    // sample seed they must select the same rule set (multi-rule variants
    // may order them differently within an iteration).
    let t = generators::income_like(1_500, 9);
    let reference: Vec<Rule> = {
        let result = Miner::new(engine(), Variant::Baseline.config(4, 32))
            .try_mine(&t)
            .unwrap();
        result.rules.iter().map(|r| r.rule.clone()).collect()
    };
    for variant in [
        Variant::Naive,
        Variant::Rct,
        Variant::FastPruning,
        Variant::FastAncestor,
    ] {
        let result = Miner::new(engine(), variant.config(4, 32))
            .try_mine(&t)
            .unwrap();
        let rules: Vec<Rule> = result.rules.iter().map(|r| r.rule.clone()).collect();
        assert_eq!(rules, reference, "variant {} diverged", variant.name());
    }
}

#[test]
fn rct_scaling_reaches_same_quality_as_naive() {
    let t = generators::gdelt_like(1_500, 3);
    let naive = Miner::new(engine(), Variant::Baseline.config(4, 32))
        .try_mine(&t)
        .unwrap();
    let rct = Miner::new(engine(), Variant::Rct.config(4, 32))
        .try_mine(&t)
        .unwrap();
    assert!((naive.final_kl() - rct.final_kl()).abs() < 1e-3);
    // RCT runs scaling entirely on the driver: same λ-update counts.
    assert_eq!(naive.scaling_iterations, rct.scaling_iterations);
}

#[test]
fn multirule_inserts_disjoint_rules_and_fewer_iterations() {
    let t = generators::income_like(2_000, 13);
    let single = Miner::new(engine(), Variant::Baseline.config(6, 64))
        .try_mine(&t)
        .unwrap();
    let multi = Miner::new(engine(), Variant::MultiRule.config(6, 64))
        .try_mine(&t)
        .unwrap();
    assert_eq!(multi.rules.len(), 7, "r1 + 6 mined rules");
    assert!(
        multi.iterations < single.iterations,
        "multi-rule must need fewer iterations: {} vs {}",
        multi.iterations,
        single.iterations
    );
    // Rules inserted in the same iteration must be mutually disjoint; we
    // can't see iteration boundaries from outside, but consecutive pairs
    // inserted together satisfy it. Weaker check: the recorded scaling runs
    // are fewer than the mined-rule count.
    assert!(multi.scaling_iterations.len() <= single.scaling_iterations.len());
}

#[test]
fn column_grouping_emits_fewer_ancestors() {
    // §4.3 / Fig 5.8: multi-stage generation reduces the intermediate
    // key-value pairs emitted by the mappers.
    let t = generators::susy_like(800, 21).project(12);
    let single = Miner::new(engine(), Variant::Baseline.config(3, 16))
        .try_mine(&t)
        .unwrap();
    let grouped = Miner::new(engine(), Variant::FastAncestor.config(3, 16))
        .try_mine(&t)
        .unwrap();
    assert!(
        grouped.ancestors_emitted < single.ancestors_emitted,
        "grouped {} vs single {}",
        grouped.ancestors_emitted,
        single.ancestors_emitted
    );
}

#[test]
fn gain_sweep_selects_the_same_rules_as_the_staged_pipeline() {
    // The fused sweep computes the same exact per-candidate aggregates as
    // the legacy shuffle pipeline (modulo float association), so given the
    // same sample it must select the same rule set.
    for (table, sample) in [
        (generators::flights(), 14usize),
        (generators::income_like(1_500, 9), 32),
        (generators::gdelt_like(1_200, 3), 24),
    ] {
        let swept = Miner::new(engine(), full_sample_config(4, sample))
            .try_mine(&table)
            .unwrap();
        // column_groups: 1 so the staged path does single-stage ancestor
        // generation — the same lattice work the sweep fuses, making the
        // emitted-pair counts comparable.
        let staged = Miner::new(
            engine(),
            SirumConfig {
                gain_sweep: false,
                column_groups: 1,
                ..full_sample_config(4, sample)
            },
        )
        .try_mine(&table)
        .unwrap();
        // Exact ties between candidates with identical support sets may
        // break differently (the two paths enumerate candidates in a
        // different order), so compare the selection-time gains and the
        // achieved quality, which the ties cannot change, rather than the
        // literal rule identities.
        assert_eq!(swept.rules.len(), staged.rules.len());
        for (a, b) in swept.rules.iter().zip(&staged.rules) {
            assert!(
                (a.gain - b.gain).abs() < 1e-9,
                "{:?} gain {} vs {:?} gain {}",
                a.rule,
                a.gain,
                b.rule,
                b.gain
            );
        }
        assert!((swept.final_kl() - staged.final_kl()).abs() < 1e-9);
        // Both expand each globally distinct LCA's lattice exactly once
        // (the staged path after its reduce, the sweep after its
        // partition-ordered merge): identical emitted-pair counts.
        assert_eq!(swept.ancestors_emitted, staged.ancestors_emitted);
    }
}

#[test]
fn wide_tables_are_rejected_with_a_typed_error_on_both_paths() {
    // 30 dimension attributes guarantee a 30-constant LCA (every sample
    // tuple pairs with itself), i.e. 2^30 candidates — unaffordable on
    // either evaluation path. Both must refuse with InvalidConfig instead
    // of asserting mid-expansion (sweep) or grinding for hours (staged —
    // column grouping stages the emission but cannot shrink the lattice).
    let mut b = Table::builder(sirum_table::Schema::new(
        (0..30).map(|i| format!("c{i}")).collect::<Vec<_>>(),
        "m",
    ));
    for i in 0..12 {
        let vals: Vec<String> = (0..30).map(|c| format!("v{}", (i * (c + 3)) % 3)).collect();
        let refs: Vec<&str> = vals.iter().map(String::as_str).collect();
        b.push_row(&refs, (i % 4) as f64);
    }
    let t = b.build();
    for gain_sweep in [true, false] {
        let result = Miner::new(
            engine(),
            SirumConfig {
                gain_sweep,
                ..full_sample_config(1, 3)
            },
        )
        .try_mine(&t);
        assert!(
            matches!(result, Err(sirum_core::SirumError::InvalidConfig { .. })),
            "30-dim table must be rejected (gain_sweep = {gain_sweep}): {result:?}"
        );
    }
}

#[test]
fn cancellation_token_stops_the_sweep_mid_pass() {
    use sirum_core::CancellationToken;
    let t = generators::income_like(2_000, 11);
    let token = CancellationToken::new();
    token.cancel();
    // Already-cancelled token: the sweep bails at the first partition
    // boundary and the run reports a graceful cancellation with only the
    // seed rule.
    let result = Miner::new(engine(), full_sample_config(5, 32))
        .with_cancellation(token)
        .try_mine(&t)
        .unwrap();
    assert!(result.cancelled);
    assert_eq!(result.rules.len(), 1, "seed rule only");
}

#[test]
fn engine_modes_agree_on_results() {
    let t = generators::income_like(800, 17);
    let cfg = || full_sample_config(3, 16);
    let in_mem = Miner::new(engine(), cfg()).try_mine(&t).unwrap();
    let single = Miner::new(Engine::single_thread(), cfg())
        .try_mine(&t)
        .unwrap();
    let disk = {
        let e = Engine::new(
            EngineConfig::disk_mr()
                .with_stage_startup(Duration::ZERO)
                .with_partitions(4),
        );
        Miner::new(e, cfg()).try_mine(&t).unwrap()
    };
    let names =
        |r: &MiningResult| -> Vec<Rule> { r.rules.iter().map(|x| x.rule.clone()).collect() };
    assert_eq!(names(&in_mem), names(&single));
    assert_eq!(names(&in_mem), names(&disk));
    assert!((in_mem.final_kl() - disk.final_kl()).abs() < 1e-9);
}

#[test]
fn optimized_matches_baseline_quality_on_equal_rule_count() {
    let t = generators::gdelt_like(2_000, 29);
    let baseline = Miner::new(engine(), Variant::Baseline.config(6, 32))
        .try_mine(&t)
        .unwrap();
    let optimized = Miner::new(engine(), Variant::Optimized.config(6, 32))
        .try_mine(&t)
        .unwrap();
    assert_eq!(baseline.rules.len(), optimized.rules.len());
    // Multi-rule selection may pick a slightly different set; §5.5 accepts
    // a modest KL penalty. Allow 25% slack on the achieved KL reduction.
    let b_gain = baseline.information_gain();
    let o_gain = optimized.information_gain();
    assert!(
        o_gain > 0.5 * b_gain,
        "optimized gain {o_gain} vs baseline {b_gain}"
    );
}

#[test]
fn target_kl_keeps_mining_until_reached() {
    let t = generators::income_like(1_500, 31);
    // First run: 6 rules, note the final KL.
    let reference = Miner::new(engine(), full_sample_config(6, 32))
        .try_mine(&t)
        .unwrap();
    let target = reference.final_kl();
    // Second run: k=2 but must continue until it matches the target.
    let cfg = SirumConfig {
        target_kl: Some(target),
        max_rules: Some(12),
        multirule: MultiRuleConfig::l_rules(2),
        ..full_sample_config(2, 32)
    };
    let starred = Miner::new(engine(), cfg).try_mine(&t).unwrap();
    assert!(
        starred.final_kl() <= target * 1.0001 || starred.rules.len() > 12,
        "l-rule* must reach the target KL or the cap: kl={} target={target}",
        starred.final_kl()
    );
    assert!(starred.rules.len() > 3, "needs more than k=2 rules");
}

#[test]
fn timings_are_populated() {
    let t = generators::income_like(500, 41);
    // Default path: the fused sweep does pruning + ancestors + aggregation
    // in one pass, recorded under its own phase.
    let result = Miner::new(engine(), full_sample_config(2, 8))
        .try_mine(&t)
        .unwrap();
    let tm = &result.timings;
    assert!(tm.total > 0.0);
    assert!(tm.iterative_scaling > 0.0);
    assert!(tm.gain_sweep > 0.0);
    assert_eq!(tm.candidate_pruning, 0.0);
    assert_eq!(tm.ancestor_generation, 0.0);
    assert!(tm.rule_generation() + tm.iterative_scaling <= tm.total * 1.01);
    // Legacy staged path: the three classic phase timings.
    let cfg = SirumConfig {
        gain_sweep: false,
        ..full_sample_config(2, 8)
    };
    let result = Miner::new(engine(), cfg).try_mine(&t).unwrap();
    let tm = &result.timings;
    assert!(tm.total > 0.0);
    assert!(tm.iterative_scaling > 0.0);
    assert!(tm.candidate_pruning > 0.0);
    assert!(tm.ancestor_generation > 0.0);
    assert!(tm.gain_computation > 0.0);
    assert_eq!(tm.gain_sweep, 0.0);
    assert!(tm.rule_generation() + tm.iterative_scaling <= tm.total * 1.01);
}

#[test]
fn mined_rule_counts_and_averages_are_exact() {
    // Cross-check every reported (count, avg) against a direct scan.
    let t = generators::gdelt_like(1_000, 43);
    let result = Miner::new(engine(), full_sample_config(4, 24))
        .try_mine(&t)
        .unwrap();
    for mined in &result.rules {
        let mut sum = 0.0;
        let mut count = 0u64;
        for (i, row) in t.rows().enumerate() {
            if mined.rule.matches(row) {
                sum += t.measure(i);
                count += 1;
            }
        }
        assert_eq!(mined.count, count, "{:?}", mined.rule);
        assert!(
            (mined.avg_measure - sum / count as f64).abs() < 1e-6,
            "{:?}: {} vs {}",
            mined.rule,
            mined.avg_measure,
            sum / count as f64
        );
    }
}

#[test]
fn binary_measure_dataset_mines_planted_rule() {
    // The income generator plants Education>=5 and Occupation<=1 boosts;
    // the miner must discover at least one rule touching those columns.
    let t = generators::income_like(4_000, 47);
    let result = Miner::new(engine(), full_sample_config(5, 64))
        .try_mine(&t)
        .unwrap();
    let touches_planted = result
        .rules
        .iter()
        .skip(1)
        .any(|r| !r.rule.is_wildcard(3) || !r.rule.is_wildcard(4));
    assert!(touches_planted, "{}", result.render(&t));
    // All mined rules must have meaningful support.
    for r in result.rules.iter().skip(1) {
        assert!(r.count > 0);
        assert!(r.gain > 0.0);
    }
}

#[test]
fn gdelt_dirty_cleansing_finds_high_average_rules() {
    // Data-cleansing application (Table 1.5): rules highlighting records
    // with missing Actor2 type should surface averages near 1.
    let t = generators::gdelt_dirty(4_000, 53);
    let result = Miner::new(engine(), full_sample_config(4, 64))
        .try_mine(&t)
        .unwrap();
    let base = t.avg_measure();
    let best = result
        .rules
        .iter()
        .skip(1)
        .map(|r| r.avg_measure)
        .fold(0.0f64, f64::max);
    assert!(
        best > base + 0.2,
        "expected a dirty-cluster rule, best avg {best} vs base {base}"
    );
}

#[test]
fn sample_seed_changes_candidates_not_correctness() {
    let t = generators::income_like(1_200, 59);
    let a = Miner::new(
        engine(),
        SirumConfig {
            seed: 1,
            ..full_sample_config(3, 16)
        },
    )
    .try_mine(&t)
    .unwrap();
    let b = Miner::new(
        engine(),
        SirumConfig {
            seed: 2,
            ..full_sample_config(3, 16)
        },
    )
    .try_mine(&t)
    .unwrap();
    // Different samples may mine different rules, but both must reduce KL.
    assert!(a.information_gain() > 0.0);
    assert!(b.information_gain() > 0.0);
}

#[test]
fn wildcard_rule_alone_when_measure_uniform() {
    // A perfectly uniform measure leaves nothing to explain: after r1 the
    // estimates are exact and no candidate has positive gain.
    let mut b = Table::builder(sirum_table::Schema::new(vec!["a", "b"], "m"));
    for i in 0..50 {
        let v0 = format!("x{}", i % 5);
        let v1 = format!("y{}", i % 3);
        b.push_row(&[&v0, &v1], 7.0);
    }
    let t = b.build();
    let result = Miner::new(engine(), full_sample_config(3, 10))
        .try_mine(&t)
        .unwrap();
    assert_eq!(result.rules.len(), 1, "{}", result.render(&t));
    assert!(result.final_kl() < 1e-9);
}

#[test]
fn negative_measures_are_handled_by_the_transform() {
    let mut b = Table::builder(sirum_table::Schema::new(vec!["a", "b"], "m"));
    for i in 0..60 {
        let v0 = format!("x{}", i % 4);
        let v1 = format!("y{}", i % 5);
        // Negative measure with a planted x0 offset.
        let m = if i % 4 == 0 { 5.0 } else { -10.0 };
        b.push_row(&[&v0, &v1], m);
    }
    let t = b.build();
    let result = Miner::new(engine(), full_sample_config(2, 12))
        .try_mine(&t)
        .unwrap();
    assert!(result.transform_shift > 0.0);
    // Reported averages are on the original scale.
    let r1 = &result.rules[0];
    assert!((r1.avg_measure - t.avg_measure()).abs() < 1e-9);
    assert!(r1.avg_measure < 0.0);
}

#[test]
fn prior_rules_are_respected() {
    let t = generators::flights();
    let london = t.dict(2).code("London").unwrap();
    let prior = vec![Rule::from_values(vec![WILDCARD, WILDCARD, london])];
    let result = Miner::new(engine(), full_sample_config(2, 14))
        .try_mine_with_prior(&t, &prior)
        .unwrap();
    // Seed rules: (*,*,*) then the prior; mined rules must differ from both.
    assert_eq!(result.rules[1].rule, prior[0]);
    for mined in &result.rules[2..] {
        assert_ne!(mined.rule, prior[0]);
        assert_ne!(mined.rule, Rule::all_wildcards(3));
    }
}

#[test]
fn columnar_and_rowmajor_agree_in_every_engine_mode() {
    // The columnar blocks round-trip through the block store in DiskMr
    // mode (every stage output is encoded to disk and decoded back); the
    // mining output must still match the row-major reference bit for bit,
    // in all three platform emulations and under full-cube enumeration.
    let t = generators::income_like(200, 3);
    let configs = [
        full_sample_config(3, 16),
        SirumConfig {
            k: 2,
            strategy: CandidateStrategy::FullCube,
            gain_sweep: false,
            ..SirumConfig::default()
        },
    ];
    let engines: [fn() -> Engine; 3] = [
        || Engine::new(EngineConfig::in_memory().with_workers(2).with_partitions(4)),
        || {
            Engine::new(
                EngineConfig::disk_mr()
                    .with_partitions(4)
                    .with_stage_startup(Duration::ZERO),
            )
        },
        || Engine::new(EngineConfig::single_thread().with_partitions(4)),
    ];
    for config in &configs {
        for make_engine in &engines {
            let mine = |columnar: bool| {
                let cfg = SirumConfig {
                    columnar,
                    ..config.clone()
                };
                Miner::new(make_engine(), cfg).try_mine(&t).unwrap()
            };
            let a = mine(true);
            let b = mine(false);
            assert_eq!(a.rules.len(), b.rules.len());
            for (x, y) in a.rules.iter().zip(&b.rules) {
                assert_eq!(x.rule, y.rule);
                assert_eq!(x.gain.to_bits(), y.gain.to_bits());
                assert_eq!(x.avg_measure.to_bits(), y.avg_measure.to_bits());
                assert_eq!(x.count, y.count);
            }
            let bits =
                |r: &MiningResult| -> Vec<u64> { r.kl_trace.iter().map(|k| k.to_bits()).collect() };
            assert_eq!(bits(&a), bits(&b));
            assert_eq!(a.scaling_iterations, b.scaling_iterations);
            assert_eq!(a.ancestors_emitted, b.ancestors_emitted);
        }
    }
}
