//! # sirum-baselines
//!
//! Prior-work comparators for the SIRUM evaluation (§5.6):
//!
//! * [`elgebaly`] — centralized informative rule mining over sampled
//!   candidates (El Gebaly et al., VLDB 2014; the thesis's reference \[16\]).
//!   Its distributed counterpart is SIRUM's `Naive` variant.
//! * [`sarawagi`] — data-cube exploration with exhaustive candidates and
//!   from-scratch iterative scaling (Sarawagi, VLDBJ 2001; reference \[29\]).

#![warn(missing_docs)]
#![allow(clippy::must_use_candidate)]

pub mod elgebaly;
pub mod sarawagi;

pub use elgebaly::{mine_centralized, CentralizedConfig, CentralizedResult, SampleSource};
pub use sarawagi::{sarawagi_explore, SarawagiConfig};
