//! Centralized informative rule mining in the style of El Gebaly et al.,
//! "Interpretable and informative explanations of outcomes" (VLDB 2014) —
//! the prior work \[16\] the thesis builds on.
//!
//! This is a faithful single-machine implementation: sample-based candidate
//! pruning (which that paper introduced), greedy highest-gain selection,
//! and Algorithm-1 iterative scaling with attribute-by-attribute match
//! tests on every pass. Its distributed equivalent is SIRUM's `Naive`
//! variant (§5.6.1: "Naive SIRUM corresponds to the distributed
//! implementations of the techniques from \[16\]"); the centralized version
//! exists (a) as the PostgreSQL-style comparator and (b) as an independent
//! oracle for cross-checking the distributed miner's rule selection.

use sirum_core::candidates::{adjust_for_sample, lca_aggregates, merge_agg, Agg, SampleIndex};
use sirum_core::gain::{kl_divergence, rule_gain};
use sirum_core::lattice::ancestors;
use sirum_core::multirule::{select_rules, MultiRuleConfig, ScoredCandidate};
use sirum_core::rule::Rule;
use sirum_core::scaling::{iterative_scaling, ScalingConfig, TableBackend};
use sirum_core::transform::MeasureTransform;
use sirum_dataflow::hash::FxHashMap;
use sirum_table::Table;

/// Where the candidate-pruning sample comes from.
#[derive(Debug, Clone)]
pub enum SampleSource {
    /// Draw `size` rows uniformly at random with the given seed.
    Seeded {
        /// Sample size `|s|`.
        size: usize,
        /// RNG seed.
        seed: u64,
    },
    /// Use exactly these rows (lets tests share a sample with the
    /// distributed miner for rule-for-rule comparison).
    Explicit(Vec<Box<[u32]>>),
}

/// Configuration of the centralized miner.
#[derive(Debug, Clone)]
pub struct CentralizedConfig {
    /// Rules to mine beyond the all-wildcards rule.
    pub k: usize,
    /// Candidate-pruning sample.
    pub sample: SampleSource,
    /// Iterative-scaling parameters.
    pub scaling: ScalingConfig,
}

impl Default for CentralizedConfig {
    fn default() -> Self {
        CentralizedConfig {
            k: 10,
            sample: SampleSource::Seeded { size: 64, seed: 42 },
            scaling: ScalingConfig::default(),
        }
    }
}

/// One mined rule (same reporting scheme as the distributed miner).
#[derive(Debug, Clone)]
pub struct CentralizedRule {
    /// The rule.
    pub rule: Rule,
    /// Average measure over the support set, original scale.
    pub avg_measure: f64,
    /// Support size.
    pub count: u64,
    /// Gain at selection time.
    pub gain: f64,
}

/// Result of a centralized run.
#[derive(Debug, Clone)]
pub struct CentralizedResult {
    /// Rules in insertion order, all-wildcards first.
    pub rules: Vec<CentralizedRule>,
    /// KL after the seed rule and after every insertion.
    pub kl_trace: Vec<f64>,
}

impl CentralizedResult {
    /// Final KL divergence.
    pub fn final_kl(&self) -> f64 {
        *self.kl_trace.last().expect("non-empty trace")
    }
}

/// Run the centralized greedy miner.
pub fn mine_centralized(table: &Table, cfg: &CentralizedConfig) -> CentralizedResult {
    let d = table.num_dims();
    let n = table.num_rows();
    assert!(n > 0);
    let (transform, m_prime) = MeasureTransform::fit(table.measures());

    // Sample for candidate pruning.
    let sample_rows: Vec<Box<[u32]>> = match &cfg.sample {
        SampleSource::Explicit(rows) => rows.clone(),
        SampleSource::Seeded { size, seed } => {
            use rand::rngs::StdRng;
            use rand::SeedableRng;
            let mut rng = StdRng::seed_from_u64(*seed);
            let chosen = rand::seq::index::sample(&mut rng, n, (*size).min(n));
            chosen
                .iter()
                .map(|i| table.row(i).to_vec().into_boxed_slice())
                .collect()
        }
    };
    let index = SampleIndex::build(sample_rows, d);

    // Seed model: the all-wildcards rule.
    let mut rules = vec![Rule::all_wildcards(d)];
    let mut m_sums = vec![m_prime.iter().sum::<f64>()];
    let mut lambdas = vec![1.0f64];
    let mut backend = TableBackend::new(table);
    iterative_scaling(&mut backend, &rules, &m_sums, &mut lambdas, &cfg.scaling);
    let mut kl_trace = vec![kl_divergence(&m_prime, backend.mhat())];
    let mut mined = vec![CentralizedRule {
        rule: rules[0].clone(),
        avg_measure: transform.invert_avg(m_sums[0] / n as f64),
        count: n as u64,
        gain: 0.0,
    }];

    for _ in 0..cfg.k {
        // Candidate generation: LCA(s, D) and all ancestors, aggregated.
        let lcas =
            lca_aggregates(table, &m_prime, backend.mhat(), index.rows(), None).unwrap_or_default();
        let mut cands: FxHashMap<Rule, Agg> = FxHashMap::default();
        for (rule, agg) in &lcas {
            for anc in ancestors(rule) {
                merge_agg(cands.entry(anc).or_insert((0.0, 0.0, 0)), *agg);
            }
        }
        let adjusted = adjust_for_sample(cands, &index);
        let mut scored: Vec<ScoredCandidate> = adjusted
            .into_iter()
            .filter(|(rule, _, _, _)| !rules.contains(rule))
            .map(|(rule, sum_m, sum_mhat, count)| ScoredCandidate {
                gain: rule_gain(sum_m, sum_mhat),
                rule,
                sum_m,
                count,
            })
            .collect();
        let n = scored.len();
        let picked = select_rules(&mut scored, &MultiRuleConfig::default(), n);
        let Some(best) = picked.into_iter().next() else {
            break;
        };
        mined.push(CentralizedRule {
            rule: best.rule.clone(),
            avg_measure: transform.invert_avg(best.sum_m / best.count.max(1) as f64),
            count: best.count,
            gain: best.gain,
        });
        rules.push(best.rule);
        m_sums.push(best.sum_m);
        lambdas.push(1.0);
        iterative_scaling(&mut backend, &rules, &m_sums, &mut lambdas, &cfg.scaling);
        kl_trace.push(kl_divergence(&m_prime, backend.mhat()));
    }

    CentralizedResult {
        rules: mined,
        kl_trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sirum_table::generators;

    fn all_rows(t: &Table) -> Vec<Box<[u32]>> {
        t.rows().map(|r| r.to_vec().into_boxed_slice()).collect()
    }

    #[test]
    fn flight_example_first_rule_is_london() {
        let t = generators::flights();
        let cfg = CentralizedConfig {
            k: 3,
            sample: SampleSource::Explicit(all_rows(&t)),
            ..Default::default()
        };
        let out = mine_centralized(&t, &cfg);
        assert_eq!(out.rules[1].rule.display(&t), "(*, *, London)");
        assert_eq!(out.rules[1].count, 4);
        assert!((out.rules[1].avg_measure - 15.25).abs() < 1e-9);
    }

    #[test]
    fn kl_decreases_monotonically() {
        let t = generators::income_like(1_500, 7);
        let out = mine_centralized(
            &t,
            &CentralizedConfig {
                k: 5,
                sample: SampleSource::Seeded { size: 32, seed: 1 },
                ..Default::default()
            },
        );
        for w in out.kl_trace.windows(2) {
            assert!(w[1] <= w[0] + 1e-9);
        }
        assert!(out.final_kl() < out.kl_trace[0]);
    }

    #[test]
    fn stops_when_nothing_left_to_explain() {
        let t = {
            let mut b = Table::builder(sirum_table::Schema::new(vec!["a"], "m"));
            for i in 0..20 {
                let v = format!("v{}", i % 4);
                b.push_row(&[&v], 1.0);
            }
            b.build()
        };
        let out = mine_centralized(
            &t,
            &CentralizedConfig {
                k: 5,
                sample: SampleSource::Explicit(all_rows(&t)),
                ..Default::default()
            },
        );
        assert_eq!(out.rules.len(), 1, "uniform data needs no rules");
    }

    #[test]
    fn seeded_sampling_is_deterministic() {
        let t = generators::gdelt_like(800, 3);
        let cfg = CentralizedConfig {
            k: 3,
            sample: SampleSource::Seeded { size: 16, seed: 9 },
            ..Default::default()
        };
        let a = mine_centralized(&t, &cfg);
        let b = mine_centralized(&t, &cfg);
        let names = |r: &CentralizedResult| -> Vec<Rule> {
            r.rules.iter().map(|x| x.rule.clone()).collect()
        };
        assert_eq!(names(&a), names(&b));
    }
}
