//! Data-cube exploration in the style of Sarawagi, "User-cognizant
//! multidimensional analysis" (VLDB Journal 2001) — the prior work \[29\].
//!
//! Differences from SIRUM that §5.6.2 measures:
//!
//! 1. **No candidate pruning** — every supported cube cell is a candidate
//!    (SIRUM keeps this for the exploration application, but accelerates
//!    it with column grouping).
//! 2. **From-scratch iterative scaling** — all multipliers are reset to 1
//!    and re-derived whenever new cells enter the model, instead of being
//!    carried over. This is the main reason the \[29\] baseline spends so
//!    long in iterative scaling (Fig 5.15).

use sirum_core::explore::{prior_rules_from_groupbys, ExploreResult};
use sirum_core::miner::{CandidateStrategy, Miner, SirumConfig};
use sirum_core::multirule::MultiRuleConfig;
use sirum_dataflow::Engine;
use sirum_table::Table;

/// Configuration for the Sarawagi-style baseline run.
#[derive(Debug, Clone)]
pub struct SarawagiConfig {
    /// Number of cells (rules) to recommend.
    pub k: usize,
    /// Scaling parameters.
    pub scaling: sirum_core::ScalingConfig,
    /// Seed for column-group shuffling (candidate generation).
    pub seed: u64,
}

impl Default for SarawagiConfig {
    fn default() -> Self {
        SarawagiConfig {
            k: 10,
            scaling: sirum_core::ScalingConfig::default(),
            seed: 42,
        }
    }
}

/// Run the \[29\]-style exploration baseline: exhaustive candidates,
/// single-stage ancestor generation, λ reset on every insertion, one rule
/// per iteration.
pub fn sarawagi_explore(engine: &Engine, table: &Table, cfg: &SarawagiConfig) -> ExploreResult {
    let config = SirumConfig {
        k: cfg.k,
        strategy: CandidateStrategy::FullCube,
        scaling: cfg.scaling,
        broadcast_join: true,
        rct: false,
        fast_pruning: false,
        column_groups: 1,
        multirule: MultiRuleConfig::default(),
        reset_lambdas_on_insert: true,
        target_kl: None,
        max_rules: None,
        two_sided_gain: false,
        // Comparator fidelity: keep the staged pipeline this baseline's
        // timings were modeled on, not the fused sweep. The columnar scan
        // is representation only (bit-identical output), so it stays on.
        gain_sweep: false,
        columnar: true,
        // No effect with the sweep off, but keep the default for parity.
        packed_codes: true,
        seed: cfg.seed,
    };
    let prior = prior_rules_from_groupbys(table, 2);
    let miner = Miner::new(engine.clone(), config);
    let result = miner
        .try_mine_with_prior(table, &prior)
        .expect("sarawagi baseline: valid config and non-empty table");
    ExploreResult { result, prior }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sirum_core::explore::explore;
    use sirum_core::SirumConfig;
    use sirum_table::generators;

    #[test]
    fn baseline_and_sirum_reach_comparable_quality() {
        let t = generators::gdelt_like(600, 5);
        let engine = Engine::in_memory();
        let cfg = SarawagiConfig {
            k: 3,
            ..Default::default()
        };
        let baseline = sarawagi_explore(&engine, &t, &cfg);
        let sirum = explore(
            &engine,
            &t,
            SirumConfig {
                k: 3,
                rct: true,
                ..SirumConfig::default()
            },
        );
        // Same prior knowledge.
        assert_eq!(baseline.prior, sirum.prior);
        // Both refine the model; quality should be in the same ballpark
        // (they share the selection heuristic, differing in scaling).
        let b = baseline.result.final_kl();
        let s = sirum.result.final_kl();
        assert!(b.is_finite() && s.is_finite());
        assert!(s <= b * 1.5 + 1e-6, "sirum {s} vs baseline {b}");
    }

    #[test]
    fn reset_strategy_needs_more_scaling_iterations() {
        // The λ-reset strategy re-derives all multipliers per insertion, so
        // its total scaling-iteration count must exceed carry-over's.
        let t = generators::income_like(800, 5);
        let engine = Engine::in_memory();
        let baseline = sarawagi_explore(
            &engine,
            &t,
            &SarawagiConfig {
                k: 4,
                ..Default::default()
            },
        );
        let sirum = explore(
            &engine,
            &t,
            SirumConfig {
                k: 4,
                ..SirumConfig::default()
            },
        );
        let total = |r: &ExploreResult| -> usize { r.result.scaling_iterations.iter().sum() };
        assert!(
            total(&baseline) > total(&sirum),
            "reset {} vs carry-over {}",
            total(&baseline),
            total(&sirum)
        );
    }
}
