//! The `sirum-lint` binary.
//!
//! ```text
//! sirum-lint --check [--format human|json] [--stats] [--root DIR]
//!            [--budget-ms N] [--no-cache] [--emit-graphs DIR]
//!            [--list-rules] [--pragmas] [FILE..]
//! ```
//!
//! Exit codes: 0 clean, 1 findings (or time budget exceeded), 2 usage or
//! IO error. `FILE..` are workspace-relative paths; without them the
//! whole tree under `--root` (default `.`) is discovered.
//!
//! Runs are incremental by default: per-file analysis for files whose
//! content hash matches `target/sirum-lint-cache.json` is reused
//! (`--stats` shows the hit rate); `--no-cache` forces a cold run.
//! `--pragmas` prints the suppression inventory — every reasoned
//! `lint:allow` in the tree with its file, line, codes, and stated
//! reason — instead of checking. `--emit-graphs DIR` additionally writes
//! `callgraph.json` and `lock-order.json` (the SL006 evidence) for CI to
//! archive.

use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use sirum_lint::driver;

struct Options {
    format_json: bool,
    stats: bool,
    list_rules: bool,
    pragmas: bool,
    no_cache: bool,
    emit_graphs: Option<PathBuf>,
    root: PathBuf,
    budget_ms: Option<u128>,
    files: Vec<String>,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        format_json: false,
        stats: false,
        list_rules: false,
        pragmas: false,
        no_cache: false,
        emit_graphs: None,
        root: PathBuf::from("."),
        budget_ms: None,
        files: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--check" => {} // checking is the only mode; accepted for clarity
            "--stats" => opts.stats = true,
            "--list-rules" => opts.list_rules = true,
            "--pragmas" => opts.pragmas = true,
            "--no-cache" => opts.no_cache = true,
            "--emit-graphs" => match it.next() {
                Some(dir) => opts.emit_graphs = Some(PathBuf::from(dir)),
                None => return Err("--emit-graphs expects a directory".to_string()),
            },
            "--format" => match it.next().map(String::as_str) {
                Some("human") => opts.format_json = false,
                Some("json") => opts.format_json = true,
                other => {
                    return Err(format!(
                        "--format expects `human` or `json`, got {:?}",
                        other.unwrap_or("nothing")
                    ))
                }
            },
            "--root" => match it.next() {
                Some(dir) => opts.root = PathBuf::from(dir),
                None => return Err("--root expects a directory".to_string()),
            },
            "--budget-ms" => match it.next().map(|v| v.parse::<u128>()) {
                Some(Ok(ms)) => opts.budget_ms = Some(ms),
                _ => return Err("--budget-ms expects a number".to_string()),
            },
            "--help" | "-h" => return Err(USAGE.to_string()),
            flag if flag.starts_with('-') => return Err(format!("unknown flag {flag}\n{USAGE}")),
            file => opts.files.push(file.to_string()),
        }
    }
    Ok(opts)
}

const USAGE: &str = "usage: sirum-lint --check [--format human|json] [--stats] \
[--root DIR] [--budget-ms N] [--no-cache] [--emit-graphs DIR] [--list-rules] \
[--pragmas] [FILE..]";

fn render_pragmas_human(entries: &[driver::PragmaEntry]) -> String {
    let mut out = String::new();
    for e in entries {
        out.push_str(&format!(
            "{}:{}: {} — {}\n",
            e.file,
            e.line,
            e.codes.join("/"),
            e.reason
        ));
    }
    out.push_str(&format!("sirum-lint: {} active pragma(s)\n", entries.len()));
    out
}

fn render_pragmas_json(entries: &[driver::PragmaEntry]) -> String {
    use sirum_lint::jsonio::{n, obj, s, Value};
    let items: Vec<Value> = entries
        .iter()
        .map(|e| {
            obj(vec![
                ("file", s(&e.file)),
                ("line", n(e.line)),
                (
                    "codes",
                    Value::Arr(e.codes.iter().map(|c| s(c.as_str())).collect()),
                ),
                ("reason", s(&e.reason)),
            ])
        })
        .collect();
    let mut json = obj(vec![("pragmas", Value::Arr(items))]).to_json();
    json.push('\n');
    json
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    if opts.list_rules {
        for rule in sirum_lint::rules::all() {
            println!("{}  {}", rule.code(), rule.describe());
        }
        for rule in sirum_lint::rules::workspace_rules() {
            println!("{}  {}", rule.code(), rule.describe());
        }
        return ExitCode::SUCCESS;
    }
    let use_cache = !opts.no_cache;
    let result = if opts.files.is_empty() {
        driver::analyze_tree(&opts.root, use_cache)
    } else {
        driver::analyze_paths(&opts.root, &opts.files, use_cache)
    };
    let analysis = match result {
        Ok(analysis) => analysis,
        Err(msg) => {
            eprintln!("sirum-lint: {msg}");
            return ExitCode::from(2);
        }
    };
    if let Some(note) = &analysis.cache_note {
        eprintln!("sirum-lint: cache not updated: {note}");
    }
    if opts.pragmas {
        if opts.format_json {
            print!("{}", render_pragmas_json(&analysis.pragmas));
        } else {
            print!("{}", render_pragmas_human(&analysis.pragmas));
        }
        return ExitCode::SUCCESS;
    }
    if let Some(dir) = &opts.emit_graphs {
        let write_all = || -> Result<(), String> {
            fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
            let cg = dir.join("callgraph.json");
            fs::write(&cg, &analysis.callgraph_json)
                .map_err(|e| format!("{}: {e}", cg.display()))?;
            let lg = dir.join("lock-order.json");
            fs::write(&lg, &analysis.lock_graph_json).map_err(|e| format!("{}: {e}", lg.display()))
        };
        if let Err(msg) = write_all() {
            eprintln!("sirum-lint: {msg}");
            return ExitCode::from(2);
        }
    }
    let report = &analysis.report;
    if opts.format_json {
        print!("{}", report.to_json());
    } else {
        print!("{}", report.render_human());
    }
    if opts.stats {
        eprint!("{}", report.render_stats());
    }
    let elapsed_ms = report.nanos / 1_000_000;
    if let Some(budget) = opts.budget_ms {
        if elapsed_ms > budget {
            eprintln!("sirum-lint: run took {elapsed_ms} ms, over the {budget} ms budget");
            return ExitCode::from(1);
        }
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
