//! The `sirum-lint` binary.
//!
//! ```text
//! sirum-lint --check [--format human|json] [--stats] [--root DIR]
//!            [--budget-ms N] [--list-rules] [FILE..]
//! ```
//!
//! Exit codes: 0 clean, 1 findings (or time budget exceeded), 2 usage or
//! IO error. `FILE..` are workspace-relative paths; without them the
//! whole tree under `--root` (default `.`) is discovered.

use std::path::PathBuf;
use std::process::ExitCode;

use sirum_lint::driver;

struct Options {
    format_json: bool,
    stats: bool,
    list_rules: bool,
    root: PathBuf,
    budget_ms: Option<u128>,
    files: Vec<String>,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        format_json: false,
        stats: false,
        list_rules: false,
        root: PathBuf::from("."),
        budget_ms: None,
        files: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--check" => {} // checking is the only mode; accepted for clarity
            "--stats" => opts.stats = true,
            "--list-rules" => opts.list_rules = true,
            "--format" => match it.next().map(String::as_str) {
                Some("human") => opts.format_json = false,
                Some("json") => opts.format_json = true,
                other => {
                    return Err(format!(
                        "--format expects `human` or `json`, got {:?}",
                        other.unwrap_or("nothing")
                    ))
                }
            },
            "--root" => match it.next() {
                Some(dir) => opts.root = PathBuf::from(dir),
                None => return Err("--root expects a directory".to_string()),
            },
            "--budget-ms" => match it.next().map(|v| v.parse::<u128>()) {
                Some(Ok(ms)) => opts.budget_ms = Some(ms),
                _ => return Err("--budget-ms expects a number".to_string()),
            },
            "--help" | "-h" => return Err(USAGE.to_string()),
            flag if flag.starts_with('-') => return Err(format!("unknown flag {flag}\n{USAGE}")),
            file => opts.files.push(file.to_string()),
        }
    }
    Ok(opts)
}

const USAGE: &str = "usage: sirum-lint --check [--format human|json] [--stats] \
[--root DIR] [--budget-ms N] [--list-rules] [FILE..]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    if opts.list_rules {
        for rule in sirum_lint::rules::all() {
            println!("{}  {}", rule.code(), rule.describe());
        }
        return ExitCode::SUCCESS;
    }
    let result = if opts.files.is_empty() {
        driver::check_tree(&opts.root)
    } else {
        driver::check_paths(&opts.root, &opts.files)
    };
    let report = match result {
        Ok(report) => report,
        Err(msg) => {
            eprintln!("sirum-lint: {msg}");
            return ExitCode::from(2);
        }
    };
    if opts.format_json {
        print!("{}", report.to_json());
    } else {
        print!("{}", report.render_human());
    }
    if opts.stats {
        eprint!("{}", report.render_stats());
    }
    let elapsed_ms = report.nanos / 1_000_000;
    if let Some(budget) = opts.budget_ms {
        if elapsed_ms > budget {
            eprintln!("sirum-lint: run took {elapsed_ms} ms, over the {budget} ms budget");
            return ExitCode::from(1);
        }
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
