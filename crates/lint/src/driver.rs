//! The driver: file discovery, per-file rule execution, pragma
//! application, pragma hygiene (SL000), and the report CI archives.
//!
//! Suppression contract: a finding on line L is suppressed only by a
//! pragma whose blessed line is L, whose code list names the finding's
//! rule, *and* which carries a `— reason`. Reasonless pragmas suppress
//! nothing — they are themselves diagnosed, as are pragmas citing
//! unknown codes, pragmas that suppress nothing (stale after a fix), and
//! the retired `lint:allow-panic`/`lint:allow-assert` marker forms.

use std::fs;
use std::path::{Path, PathBuf};
use std::time::Instant;

use crate::diag::{finding_json, json_escape, Finding};
use crate::lexer::TokenKind;
use crate::rules;
use crate::syntax::SourceFile;

/// Pragma-hygiene pseudo-rule code. Not suppressible.
pub const HYGIENE: &str = "SL000";

/// Directory names never descended into during discovery.
const SKIP_DIRS: &[&str] = &["target", "fixtures", "vendor"];

/// Per-rule timing and yield across the whole run.
#[derive(Debug, Clone)]
pub struct RuleStat {
    /// Rule code.
    pub code: &'static str,
    /// Wall-clock nanoseconds spent in this rule's `check`.
    pub nanos: u128,
    /// Findings emitted (pre-suppression).
    pub raw_findings: usize,
}

/// Everything one analyzer run produced.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Findings that survived pragma suppression, plus SL000 hygiene
    /// findings, sorted by file/line/col.
    pub findings: Vec<Finding>,
    /// Files analyzed.
    pub files: usize,
    /// Bytes lexed.
    pub bytes: usize,
    /// Tokens produced.
    pub tokens: usize,
    /// Total wall-clock nanoseconds (lex + rules + suppression).
    pub nanos: u128,
    /// Per-rule breakdown.
    pub rule_stats: Vec<RuleStat>,
}

impl Report {
    /// True when no finding survived.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// One `file:line:col: CODE message` line per finding plus a summary
    /// trailer.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&f.render_human());
            out.push('\n');
        }
        out.push_str(&format!(
            "sirum-lint: {} finding(s) in {} file(s)\n",
            self.findings.len(),
            self.files
        ));
        out
    }

    /// The stable JSON shape CI uploads as an artifact.
    pub fn to_json(&self) -> String {
        let findings: Vec<String> = self.findings.iter().map(finding_json).collect();
        let rules: Vec<String> = self
            .rule_stats
            .iter()
            .map(|r| {
                format!(
                    "{{\"code\":\"{}\",\"micros\":{},\"raw_findings\":{}}}",
                    json_escape(r.code),
                    r.nanos / 1_000,
                    r.raw_findings
                )
            })
            .collect();
        format!(
            "{{\"findings\":[{}],\"stats\":{{\"files\":{},\"bytes\":{},\"tokens\":{},\"duration_ms\":{},\"rules\":[{}]}}}}\n",
            findings.join(","),
            self.files,
            self.bytes,
            self.tokens,
            self.nanos / 1_000_000,
            rules.join(",")
        )
    }

    /// The `--stats` block (human form).
    pub fn render_stats(&self) -> String {
        let mut out = format!(
            "files: {}\nbytes: {}\ntokens: {}\nduration: {:.1} ms\n",
            self.files,
            self.bytes,
            self.tokens,
            self.nanos as f64 / 1e6
        );
        for r in &self.rule_stats {
            out.push_str(&format!(
                "  {}: {:.2} ms, {} raw finding(s)\n",
                r.code,
                r.nanos as f64 / 1e6,
                r.raw_findings
            ));
        }
        out
    }
}

/// Discover the workspace's own sources under `root`: `src/` plus every
/// `crates/*/src/`, skipping `target`/`fixtures`/`vendor`. Returned paths are
/// workspace-relative with forward slashes, sorted.
pub fn discover_files(root: &Path) -> Result<Vec<String>, String> {
    let mut rel_paths = Vec::new();
    walk(&root.join("src"), root, &mut rel_paths)?;
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let entries =
            fs::read_dir(&crates_dir).map_err(|e| format!("{}: {e}", crates_dir.display()))?;
        let mut members: Vec<PathBuf> = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| format!("{}: {e}", crates_dir.display()))?;
            members.push(entry.path());
        }
        members.sort();
        for member in members {
            walk(&member.join("src"), root, &mut rel_paths)?;
        }
    }
    rel_paths.sort();
    Ok(rel_paths)
}

fn walk(dir: &Path, root: &Path, out: &mut Vec<String>) -> Result<(), String> {
    if !dir.is_dir() {
        return Ok(());
    }
    let entries = fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let mut paths: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("{}: {e}", dir.display()))?;
        paths.push(entry.path());
    }
    paths.sort();
    for path in paths {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_str()) {
                walk(&path, root, out)?;
            }
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .map_err(|e| format!("{}: {e}", path.display()))?;
            out.push(rel.to_string_lossy().replace('\\', "/"));
        }
    }
    Ok(())
}

/// Analyze `(rel_path, source)` pairs. The pure core — tests feed it
/// fixtures under synthetic in-scope paths.
pub fn check_sources(sources: &[(String, String)]) -> Report {
    let started = Instant::now();
    let rules = rules::all();
    let mut report = Report {
        rule_stats: rules
            .iter()
            .map(|r| RuleStat {
                code: r.code(),
                nanos: 0,
                raw_findings: 0,
            })
            .collect(),
        ..Report::default()
    };
    for (rel_path, src) in sources {
        let file = SourceFile::parse(rel_path, src);
        report.files += 1;
        report.bytes += file.src.len();
        report.tokens += file.tokens.len();
        let mut raw: Vec<Finding> = Vec::new();
        for (ri, rule) in rules.iter().enumerate() {
            if !rule.applies(rel_path) {
                continue;
            }
            let before = raw.len();
            let rule_started = Instant::now();
            rule.check(&file, &mut raw);
            report.rule_stats[ri].nanos += rule_started.elapsed().as_nanos();
            report.rule_stats[ri].raw_findings += raw.len() - before;
        }
        apply_pragmas(&file, raw, &mut report.findings);
        hygiene(&file, &mut report.findings);
    }
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    report.nanos = started.elapsed().as_nanos();
    report
}

/// Analyze a tree on disk: discover under `root`, read, check.
pub fn check_tree(root: &Path) -> Result<Report, String> {
    let rel_paths = discover_files(root)?;
    check_paths(root, &rel_paths)
}

/// Analyze an explicit list of workspace-relative paths under `root`.
pub fn check_paths(root: &Path, rel_paths: &[String]) -> Result<Report, String> {
    let mut sources = Vec::with_capacity(rel_paths.len());
    for rel in rel_paths {
        let abs = root.join(rel);
        let bytes = fs::read(&abs).map_err(|e| format!("{}: {e}", abs.display()))?;
        sources.push((rel.clone(), String::from_utf8_lossy(&bytes).into_owned()));
    }
    Ok(check_sources(&sources))
}

/// Suppress findings blessed by a reasoned pragma; pass the rest through.
fn apply_pragmas(file: &SourceFile, raw: Vec<Finding>, out: &mut Vec<Finding>) {
    let mut used = vec![false; file.pragmas.len()];
    for finding in raw {
        let suppressed = file.pragmas.iter().enumerate().any(|(pi, p)| {
            let hit = p.has_reason
                && p.blessed_line == finding.line
                && p.codes.iter().any(|c| c == finding.rule);
            if hit {
                used[pi] = true;
            }
            hit
        });
        if !suppressed {
            out.push(finding);
        }
    }
    // Stale pragmas: reasoned, well-formed, but suppressing nothing.
    for (pi, p) in file.pragmas.iter().enumerate() {
        if p.has_reason && !p.codes.is_empty() && !used[pi] {
            let (line, col) = file.pos(p.offset);
            out.push(Finding {
                rule: HYGIENE,
                file: file.rel_path.clone(),
                line,
                col,
                message: format!(
                    "unused pragma: no {} finding on line {} to suppress; delete it",
                    p.codes.join("/"),
                    p.blessed_line
                ),
            });
        }
    }
}

/// Pragma-form diagnostics: missing reasons, unknown codes, legacy
/// marker forms.
fn hygiene(file: &SourceFile, out: &mut Vec<Finding>) {
    for p in &file.pragmas {
        let (line, col) = file.pos(p.offset);
        if !p.has_reason {
            out.push(Finding {
                rule: HYGIENE,
                file: file.rel_path.clone(),
                line,
                col,
                message: "pragma has no reason; write `lint:allow(CODE) — <why this is safe>`"
                    .to_string(),
            });
        }
        if !p.unknown_codes.is_empty() {
            out.push(Finding {
                rule: HYGIENE,
                file: file.rel_path.clone(),
                line,
                col,
                message: format!(
                    "pragma cites unknown rule code(s) {}; known codes are SL001..SL005",
                    p.unknown_codes.join(", ")
                ),
            });
        }
    }
    for tok in &file.tokens {
        // Doc comments may legitimately *mention* the legacy markers.
        if !matches!(tok.kind, TokenKind::LineComment { doc: false }) {
            continue;
        }
        let text = tok.text(&file.src);
        if text.contains("lint:allow-panic") || text.contains("lint:allow-assert") {
            let (line, col) = file.pos(tok.start);
            out.push(Finding {
                rule: HYGIENE,
                file: file.rel_path.clone(),
                line,
                col,
                message: "legacy suppression marker; migrate to `lint:allow(SL001) — <reason>`"
                    .to_string(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_one(rel_path: &str, src: &str) -> Report {
        check_sources(&[(rel_path.to_string(), src.to_string())])
    }

    #[test]
    fn reasoned_pragma_suppresses_and_is_not_stale() {
        let src = "fn f() { x.unwrap(); // lint:allow(SL001) — invariant: x set in new()\n}\n";
        let r = check_one("crates/core/src/x.rs", src);
        assert!(r.is_clean(), "unexpected: {:?}", r.findings);
    }

    #[test]
    fn reasonless_pragma_suppresses_nothing_and_is_flagged() {
        let src = "fn f() { x.unwrap(); // lint:allow(SL001)\n}\n";
        let r = check_one("crates/core/src/x.rs", src);
        let rules: Vec<&str> = r.findings.iter().map(|f| f.rule).collect();
        assert!(rules.contains(&"SL001"));
        assert!(rules.contains(&"SL000"));
    }

    #[test]
    fn stale_pragma_is_flagged() {
        let src = "fn f() { fine(); // lint:allow(SL001) — was fixed, pragma left behind\n}\n";
        let r = check_one("crates/core/src/x.rs", src);
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].rule, "SL000");
        assert!(r.findings[0].message.contains("unused pragma"));
    }

    #[test]
    fn legacy_marker_is_flagged() {
        let src = "fn f() { y(); } // lint:allow-panic — old form\n";
        let r = check_one("crates/core/src/x.rs", src);
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].rule, "SL000");
        assert!(r.findings[0].message.contains("legacy"));
    }

    #[test]
    fn out_of_scope_paths_only_get_sl005() {
        let src = "fn f() { x.unwrap(); let p = unsafe { y() }; }\n";
        let r = check_one("crates/bench/src/x.rs", src);
        let rules: Vec<&str> = r.findings.iter().map(|f| f.rule).collect();
        assert_eq!(rules, vec!["SL005"]);
    }

    #[test]
    fn report_json_has_findings_and_stats() {
        let src = "fn f() { panic!(\"no\"); }\n";
        let r = check_one("src/lib.rs", src);
        let json = r.to_json();
        assert!(json.contains("\"rule\":\"SL001\""));
        assert!(json.contains("\"files\":1"));
        assert!(json.contains("\"duration_ms\""));
    }

    #[test]
    fn findings_sorted_by_position() {
        let src = "fn f() { b.unwrap(); }\nfn g() { panic!(\"x\"); }\n";
        let r = check_one("src/lib.rs", src);
        assert_eq!(r.findings.len(), 2);
        assert!(r.findings[0].line < r.findings[1].line);
    }
}
