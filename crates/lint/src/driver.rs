//! The driver: file discovery, the two-phase rule pipeline, the
//! incremental cache, pragma application and hygiene (SL000), and the
//! report CI archives.
//!
//! Phase 1 runs per file: lex → symbol-resolve → per-file rules (SL001–
//! SL005, SL007), producing a serializable [`FileAnalysis`] — raw
//! findings, pragmas, and the [`FileSummary`] digest the workspace layer
//! needs. Phase 2 runs once: summaries → [`Workspace`] (call graph, lock
//! propagation) → workspace rules (SL006, SL008). Suppression and pragma
//! hygiene run last, over the *combined* findings, so a pragma blessing a
//! workspace finding is "used" and a pragma blessing nothing is stale —
//! whether its file was analyzed fresh or served from cache.
//!
//! The cache (`target/sirum-lint-cache.json`) keys each file by an
//! FNV-1a content hash: unchanged files skip lexing and phase 1 entirely,
//! while phase 2 always re-runs from summaries (it is cross-file by
//! nature and cheap by construction). A missing or malformed cache is a
//! cold run, never an error.
//!
//! Suppression contract: a finding on line L is suppressed only by a
//! pragma whose blessed line is L, whose code list names the finding's
//! rule, *and* which carries a `— reason`. Reasonless pragmas suppress
//! nothing — they are themselves diagnosed, as are pragmas citing
//! unknown codes, stale pragmas, and the retired legacy marker forms.

use std::fs;
use std::path::{Path, PathBuf};
use std::time::Instant;

use crate::callgraph::{FileSummary, Workspace};
use crate::diag::{finding_json, json_escape, Finding};
use crate::jsonio::{self, n, obj, s, Value};
use crate::lexer::TokenKind;
use crate::resolve::FileSymbols;
use crate::rules;
use crate::syntax::{Pragma, SourceFile};

/// Pragma-hygiene pseudo-rule code. Not suppressible.
pub const HYGIENE: &str = "SL000";

/// Bump when [`FileAnalysis`] serialization changes shape; old caches
/// are discarded wholesale.
const CACHE_VERSION: u64 = 1;

/// Directory names never descended into during discovery.
const SKIP_DIRS: &[&str] = &["target", "fixtures", "vendor"];

/// Per-rule timing and yield across the whole run.
#[derive(Debug, Clone)]
pub struct RuleStat {
    /// Rule code.
    pub code: &'static str,
    /// Wall-clock nanoseconds spent in this rule's `check` (zero for
    /// per-file rules on cache hits — that is the point of the cache).
    pub nanos: u128,
    /// Findings emitted (pre-suppression).
    pub raw_findings: usize,
}

/// Everything one analyzer run produced.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Findings that survived pragma suppression, plus SL000 hygiene
    /// findings, sorted by file/line/col.
    pub findings: Vec<Finding>,
    /// Files analyzed.
    pub files: usize,
    /// Bytes lexed (cache hits count their recorded size).
    pub bytes: usize,
    /// Tokens produced.
    pub tokens: usize,
    /// Total wall-clock nanoseconds (lex + rules + suppression).
    pub nanos: u128,
    /// Files served from the incremental cache.
    pub cache_hits: usize,
    /// Files analyzed fresh.
    pub cache_misses: usize,
    /// Per-rule breakdown.
    pub rule_stats: Vec<RuleStat>,
}

impl Report {
    /// True when no finding survived.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// One `file:line:col: CODE message` line per finding plus a summary
    /// trailer.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&f.render_human());
            out.push('\n');
        }
        out.push_str(&format!(
            "sirum-lint: {} finding(s) in {} file(s)\n",
            self.findings.len(),
            self.files
        ));
        out
    }

    /// The stable JSON shape CI uploads as an artifact.
    pub fn to_json(&self) -> String {
        let findings: Vec<String> = self.findings.iter().map(finding_json).collect();
        let rules: Vec<String> = self
            .rule_stats
            .iter()
            .map(|r| {
                format!(
                    "{{\"code\":\"{}\",\"micros\":{},\"raw_findings\":{}}}",
                    json_escape(r.code),
                    r.nanos / 1_000,
                    r.raw_findings
                )
            })
            .collect();
        format!(
            "{{\"findings\":[{}],\"stats\":{{\"files\":{},\"bytes\":{},\"tokens\":{},\"duration_ms\":{},\"cache_hits\":{},\"cache_misses\":{},\"rules\":[{}]}}}}\n",
            findings.join(","),
            self.files,
            self.bytes,
            self.tokens,
            self.nanos / 1_000_000,
            self.cache_hits,
            self.cache_misses,
            rules.join(",")
        )
    }

    /// The `--stats` block (human form).
    pub fn render_stats(&self) -> String {
        let looked_up = self.cache_hits + self.cache_misses;
        let hit_rate = if looked_up > 0 {
            self.cache_hits as f64 * 100.0 / looked_up as f64
        } else {
            0.0
        };
        let mut out = format!(
            "files: {}\nbytes: {}\ntokens: {}\nduration: {:.1} ms\ncache: {}/{} hit(s) ({hit_rate:.0}%)\n",
            self.files,
            self.bytes,
            self.tokens,
            self.nanos as f64 / 1e6,
            self.cache_hits,
            looked_up,
        );
        for r in &self.rule_stats {
            out.push_str(&format!(
                "  {}: {:.2} ms, {} raw finding(s)\n",
                r.code,
                r.nanos as f64 / 1e6,
                r.raw_findings
            ));
        }
        out
    }
}

/// One active reasoned pragma, for the `--pragmas` inventory.
#[derive(Debug, Clone)]
pub struct PragmaEntry {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line of the pragma comment.
    pub line: u32,
    /// Rule codes it suppresses.
    pub codes: Vec<String>,
    /// The stated reason.
    pub reason: String,
}

/// A full run: the report plus the workspace artifacts and the pragma
/// inventory.
pub struct Analysis {
    /// The findings report.
    pub report: Report,
    /// Call-graph JSON artifact.
    pub callgraph_json: String,
    /// Lock-order-graph JSON artifact (edges, witnesses, cycles).
    pub lock_graph_json: String,
    /// Every pragma in the tree, file/line ordered.
    pub pragmas: Vec<PragmaEntry>,
    /// Non-fatal cache IO problem, if any (reported, not swallowed).
    pub cache_note: Option<String>,
}

/// The cacheable result of phase 1 on one file.
pub struct FileAnalysis {
    /// Workspace-relative path.
    pub rel_path: String,
    /// FNV-1a 64 content hash, hex.
    pub hash: String,
    /// Source size in bytes.
    pub bytes: usize,
    /// Token count.
    pub tokens: usize,
    /// Raw per-file findings, pre-suppression.
    pub raw: Vec<Finding>,
    /// Parsed pragmas.
    pub pragmas: Vec<Pragma>,
    /// Positions of retired legacy suppression markers.
    pub legacy_markers: Vec<(u32, u32)>,
    /// The workspace-layer digest.
    pub summary: FileSummary,
}

/// FNV-1a 64 — stable, dependency-free content hashing for the cache.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Phase 1: lex, resolve, run per-file rules. `stats` accumulates rule
/// timings (indexed like `rules::all()`).
fn analyze_file(
    rel_path: &str,
    src: &str,
    per_file: &[Box<dyn rules::Rule>],
    stats: &mut [RuleStat],
) -> FileAnalysis {
    let file = SourceFile::parse(rel_path, src);
    let sym = FileSymbols::analyze(&file);
    let mut raw: Vec<Finding> = Vec::new();
    for (ri, rule) in per_file.iter().enumerate() {
        if !rule.applies(rel_path) {
            continue;
        }
        let rule_started = Instant::now();
        rule.check(&file, &sym, &mut raw);
        stats[ri].nanos += rule_started.elapsed().as_nanos();
    }
    let legacy_markers = file
        .tokens
        .iter()
        .filter(|tok| matches!(tok.kind, TokenKind::LineComment { doc: false }))
        .filter(|tok| {
            let text = tok.text(&file.src);
            text.contains("lint:allow-panic") || text.contains("lint:allow-assert")
        })
        .map(|tok| file.pos(tok.start))
        .collect();
    FileAnalysis {
        rel_path: rel_path.to_string(),
        hash: format!("{:016x}", fnv1a(src.as_bytes())),
        bytes: file.src.len(),
        tokens: file.tokens.len(),
        summary: FileSummary::build(&file, &sym),
        pragmas: file.pragmas.clone(),
        legacy_markers,
        raw,
    }
}

/// Phase 2 plus reporting: workspace rules, suppression, hygiene, sort.
fn finish(
    analyses: Vec<FileAnalysis>,
    mut rule_stats: Vec<RuleStat>,
    cache_hits: usize,
    started: Instant,
) -> Analysis {
    let mut report = Report {
        cache_hits,
        cache_misses: analyses.len() - cache_hits,
        ..Report::default()
    };
    // Workspace phase over all summaries (fresh or cached).
    let ws = Workspace::build(analyses.iter().map(|a| a.summary.clone()).collect());
    let mut ws_raw: Vec<Finding> = Vec::new();
    for rule in rules::workspace_rules() {
        let before = ws_raw.len();
        let rule_started = Instant::now();
        rule.check(&ws, &mut ws_raw);
        rule_stats.push(RuleStat {
            code: rule.code(),
            nanos: rule_started.elapsed().as_nanos(),
            raw_findings: ws_raw.len() - before,
        });
    }
    // Per-file raw-finding counts (covers cached files too).
    for a in &analyses {
        for f in &a.raw {
            if let Some(stat) = rule_stats.iter_mut().find(|s| s.code == f.rule) {
                stat.raw_findings += 1;
            }
        }
    }
    // Suppression + hygiene, per file, over combined findings.
    let mut pragmas = Vec::new();
    for a in &analyses {
        report.files += 1;
        report.bytes += a.bytes;
        report.tokens += a.tokens;
        let mut raw = a.raw.clone();
        raw.extend(ws_raw.iter().filter(|f| f.file == a.rel_path).cloned());
        apply_pragmas(a, raw, &mut report.findings);
        hygiene(a, &mut report.findings);
        for p in &a.pragmas {
            if p.has_reason && !p.codes.is_empty() {
                pragmas.push(PragmaEntry {
                    file: a.rel_path.clone(),
                    line: p.line,
                    codes: p.codes.clone(),
                    reason: p.reason.clone(),
                });
            }
        }
    }
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    report.rule_stats = rule_stats;
    report.nanos = started.elapsed().as_nanos();
    let lock_graph = ws.lock_graph();
    Analysis {
        report,
        callgraph_json: ws.callgraph_json(),
        lock_graph_json: lock_graph.to_json(),
        pragmas,
        cache_note: None,
    }
}

fn new_rule_stats(per_file: &[Box<dyn rules::Rule>]) -> Vec<RuleStat> {
    per_file
        .iter()
        .map(|r| RuleStat {
            code: r.code(),
            nanos: 0,
            raw_findings: 0,
        })
        .collect()
}

/// Analyze `(rel_path, source)` pairs, no cache. The pure core — tests
/// feed it fixtures under synthetic in-scope paths.
pub fn check_sources(sources: &[(String, String)]) -> Report {
    analyze_sources(sources).report
}

/// [`check_sources`], returning the full [`Analysis`].
pub fn analyze_sources(sources: &[(String, String)]) -> Analysis {
    let started = Instant::now();
    let per_file = rules::all();
    let mut stats = new_rule_stats(&per_file);
    let analyses = sources
        .iter()
        .map(|(rel_path, src)| analyze_file(rel_path, src, &per_file, &mut stats))
        .collect();
    finish(analyses, stats, 0, started)
}

/// Analyze a tree on disk: discover under `root`, read, check. No cache.
pub fn check_tree(root: &Path) -> Result<Report, String> {
    let rel_paths = discover_files(root)?;
    check_paths(root, &rel_paths)
}

/// Analyze an explicit list of workspace-relative paths. No cache.
pub fn check_paths(root: &Path, rel_paths: &[String]) -> Result<Report, String> {
    Ok(analyze_paths(root, rel_paths, false)?.report)
}

/// The cache file location for a workspace root.
pub fn cache_path(root: &Path) -> PathBuf {
    root.join("target").join("sirum-lint-cache.json")
}

/// Full run over a tree with optional incremental cache.
pub fn analyze_tree(root: &Path, use_cache: bool) -> Result<Analysis, String> {
    let rel_paths = discover_files(root)?;
    analyze_paths(root, &rel_paths, use_cache)
}

/// Full run over explicit paths with optional incremental cache.
pub fn analyze_paths(
    root: &Path,
    rel_paths: &[String],
    use_cache: bool,
) -> Result<Analysis, String> {
    let started = Instant::now();
    let per_file = rules::all();
    let mut stats = new_rule_stats(&per_file);
    let cache_file = cache_path(root);
    let cached = if use_cache {
        load_cache(&cache_file)
    } else {
        Vec::new()
    };
    let mut hits = 0usize;
    let mut analyses = Vec::with_capacity(rel_paths.len());
    for rel in rel_paths {
        let abs = root.join(rel);
        let bytes = fs::read(&abs).map_err(|e| format!("{}: {e}", abs.display()))?;
        let src = String::from_utf8_lossy(&bytes).into_owned();
        let hash = format!("{:016x}", fnv1a(src.as_bytes()));
        if let Some(hit) = cached.iter().find(|c| c.rel_path == *rel && c.hash == hash) {
            hits += 1;
            analyses.push(analysis_from_cache(hit));
        } else {
            analyses.push(analyze_file(rel, &src, &per_file, &mut stats));
        }
    }
    let cache_note = if use_cache {
        store_cache(&cache_file, &analyses).err()
    } else {
        None
    };
    let mut analysis = finish(analyses, stats, hits, started);
    analysis.cache_note = cache_note;
    Ok(analysis)
}

// ---------------------------------------------------------------------
// Cache serialization.

fn analysis_to_value(a: &FileAnalysis) -> Value {
    let raw: Vec<Value> = a
        .raw
        .iter()
        .map(|f| {
            obj(vec![
                ("rule", s(f.rule)),
                ("line", n(f.line)),
                ("col", n(f.col)),
                ("message", s(&f.message)),
            ])
        })
        .collect();
    let pragmas: Vec<Value> = a
        .pragmas
        .iter()
        .map(|p| {
            obj(vec![
                (
                    "codes",
                    Value::Arr(p.codes.iter().map(|c| s(c.as_str())).collect()),
                ),
                (
                    "unknown",
                    Value::Arr(p.unknown_codes.iter().map(|c| s(c.as_str())).collect()),
                ),
                ("has_reason", Value::Bool(p.has_reason)),
                ("reason", s(&p.reason)),
                ("line", n(p.line)),
                ("col", n(p.col)),
                ("blessed_line", n(p.blessed_line)),
            ])
        })
        .collect();
    let legacy: Vec<Value> = a
        .legacy_markers
        .iter()
        .map(|&(line, col)| Value::Arr(vec![n(line), n(col)]))
        .collect();
    obj(vec![
        ("rel_path", s(&a.rel_path)),
        ("hash", s(&a.hash)),
        ("bytes", n(a.bytes as u64)),
        ("tokens", n(a.tokens as u64)),
        ("raw", Value::Arr(raw)),
        ("pragmas", Value::Arr(pragmas)),
        ("legacy", Value::Arr(legacy)),
        ("summary", a.summary.to_value()),
    ])
}

fn analysis_from_value(v: &Value) -> Option<FileAnalysis> {
    let rel_path = v.str_of("rel_path");
    if rel_path.is_empty() {
        return None;
    }
    let mut raw = Vec::new();
    for f in v.get("raw").map(Value::items).unwrap_or(&[]) {
        raw.push(Finding {
            rule: rules::static_code(&f.str_of("rule"))?,
            file: rel_path.clone(),
            line: f.u64_of("line") as u32,
            col: f.u64_of("col") as u32,
            message: f.str_of("message"),
        });
    }
    let strings = |v: &Value, key: &str| -> Vec<String> {
        v.get(key)
            .map(Value::items)
            .unwrap_or(&[])
            .iter()
            .filter_map(Value::as_str)
            .map(String::from)
            .collect()
    };
    let pragmas = v
        .get("pragmas")
        .map(Value::items)
        .unwrap_or(&[])
        .iter()
        .map(|p| Pragma {
            codes: strings(p, "codes"),
            unknown_codes: strings(p, "unknown"),
            has_reason: p.bool_of("has_reason"),
            reason: p.str_of("reason"),
            line: p.u64_of("line") as u32,
            col: p.u64_of("col") as u32,
            blessed_line: p.u64_of("blessed_line") as u32,
        })
        .collect();
    let legacy_markers = v
        .get("legacy")
        .map(Value::items)
        .unwrap_or(&[])
        .iter()
        .filter_map(|pair| {
            let line = pair.items().first()?.as_u64()? as u32;
            let col = pair.items().get(1)?.as_u64()? as u32;
            Some((line, col))
        })
        .collect();
    let summary = v.get("summary").map(FileSummary::from_value)?;
    Some(FileAnalysis {
        rel_path,
        hash: v.str_of("hash"),
        bytes: v.u64_of("bytes") as usize,
        tokens: v.u64_of("tokens") as usize,
        raw,
        pragmas,
        legacy_markers,
        summary,
    })
}

/// Cached entries are immutable once loaded; a hit is cloned into the
/// run's analysis list.
fn analysis_from_cache(c: &FileAnalysis) -> FileAnalysis {
    FileAnalysis {
        rel_path: c.rel_path.clone(),
        hash: c.hash.clone(),
        bytes: c.bytes,
        tokens: c.tokens,
        raw: c.raw.clone(),
        pragmas: c.pragmas.clone(),
        legacy_markers: c.legacy_markers.clone(),
        summary: c.summary.clone(),
    }
}

fn load_cache(path: &Path) -> Vec<FileAnalysis> {
    let Ok(text) = fs::read_to_string(path) else {
        return Vec::new();
    };
    let Some(doc) = jsonio::parse(&text) else {
        return Vec::new();
    };
    if doc.u64_of("version") != CACHE_VERSION {
        return Vec::new();
    }
    doc.get("files")
        .map(Value::items)
        .unwrap_or(&[])
        .iter()
        .filter_map(analysis_from_value)
        .collect()
}

fn store_cache(path: &Path, analyses: &[FileAnalysis]) -> Result<(), String> {
    let doc = obj(vec![
        ("version", n(CACHE_VERSION)),
        (
            "files",
            Value::Arr(analyses.iter().map(analysis_to_value).collect()),
        ),
    ]);
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    }
    fs::write(path, doc.to_json()).map_err(|e| format!("{}: {e}", path.display()))
}

// ---------------------------------------------------------------------
// Discovery.

/// Discover the workspace's own sources under `root`: `src/` plus every
/// `crates/*/src/`, skipping `target`/`fixtures`/`vendor`. Returned paths are
/// workspace-relative with forward slashes, sorted.
pub fn discover_files(root: &Path) -> Result<Vec<String>, String> {
    let mut rel_paths = Vec::new();
    walk(&root.join("src"), root, &mut rel_paths)?;
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let entries =
            fs::read_dir(&crates_dir).map_err(|e| format!("{}: {e}", crates_dir.display()))?;
        let mut members: Vec<PathBuf> = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| format!("{}: {e}", crates_dir.display()))?;
            members.push(entry.path());
        }
        members.sort();
        for member in members {
            walk(&member.join("src"), root, &mut rel_paths)?;
        }
    }
    rel_paths.sort();
    Ok(rel_paths)
}

fn walk(dir: &Path, root: &Path, out: &mut Vec<String>) -> Result<(), String> {
    if !dir.is_dir() {
        return Ok(());
    }
    let entries = fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let mut paths: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("{}: {e}", dir.display()))?;
        paths.push(entry.path());
    }
    paths.sort();
    for path in paths {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_str()) {
                walk(&path, root, out)?;
            }
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .map_err(|e| format!("{}: {e}", path.display()))?;
            out.push(rel.to_string_lossy().replace('\\', "/"));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Suppression.

/// Suppress findings blessed by a reasoned pragma; pass the rest through.
fn apply_pragmas(a: &FileAnalysis, raw: Vec<Finding>, out: &mut Vec<Finding>) {
    let mut used = vec![false; a.pragmas.len()];
    for finding in raw {
        let suppressed = a.pragmas.iter().enumerate().any(|(pi, p)| {
            let hit = p.has_reason
                && p.blessed_line == finding.line
                && p.codes.iter().any(|c| c == finding.rule);
            if hit {
                used[pi] = true;
            }
            hit
        });
        if !suppressed {
            out.push(finding);
        }
    }
    // Stale pragmas: reasoned, well-formed, but suppressing nothing.
    for (pi, p) in a.pragmas.iter().enumerate() {
        if p.has_reason && !p.codes.is_empty() && !used[pi] {
            out.push(Finding {
                rule: HYGIENE,
                file: a.rel_path.clone(),
                line: p.line,
                col: p.col,
                message: format!(
                    "unused pragma: no {} finding on line {} to suppress; delete it",
                    p.codes.join("/"),
                    p.blessed_line
                ),
            });
        }
    }
}

/// Pragma-form diagnostics: missing reasons, unknown codes, legacy
/// marker forms.
fn hygiene(a: &FileAnalysis, out: &mut Vec<Finding>) {
    for p in &a.pragmas {
        if !p.has_reason {
            out.push(Finding {
                rule: HYGIENE,
                file: a.rel_path.clone(),
                line: p.line,
                col: p.col,
                message: "pragma has no reason; write `lint:allow(CODE) — <why this is safe>`"
                    .to_string(),
            });
        }
        if !p.unknown_codes.is_empty() {
            out.push(Finding {
                rule: HYGIENE,
                file: a.rel_path.clone(),
                line: p.line,
                col: p.col,
                message: format!(
                    "pragma cites unknown rule code(s) {}; known codes are SL001..SL008",
                    p.unknown_codes.join(", ")
                ),
            });
        }
    }
    for &(line, col) in &a.legacy_markers {
        out.push(Finding {
            rule: HYGIENE,
            file: a.rel_path.clone(),
            line,
            col,
            message: "legacy suppression marker; migrate to `lint:allow(SL001) — <reason>`"
                .to_string(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_one(rel_path: &str, src: &str) -> Report {
        check_sources(&[(rel_path.to_string(), src.to_string())])
    }

    #[test]
    fn reasoned_pragma_suppresses_and_is_not_stale() {
        let src = "fn f() { x.unwrap(); // lint:allow(SL001) — invariant: x set in new()\n}\n";
        let r = check_one("crates/core/src/x.rs", src);
        assert!(r.is_clean(), "unexpected: {:?}", r.findings);
    }

    #[test]
    fn reasonless_pragma_suppresses_nothing_and_is_flagged() {
        let src = "fn f() { x.unwrap(); // lint:allow(SL001)\n}\n";
        let r = check_one("crates/core/src/x.rs", src);
        let rules: Vec<&str> = r.findings.iter().map(|f| f.rule).collect();
        assert!(rules.contains(&"SL001"));
        assert!(rules.contains(&"SL000"));
    }

    #[test]
    fn stale_pragma_is_flagged() {
        let src = "fn f() { fine(); // lint:allow(SL001) — was fixed, pragma left behind\n}\n";
        let r = check_one("crates/core/src/x.rs", src);
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].rule, "SL000");
        assert!(r.findings[0].message.contains("unused pragma"));
    }

    #[test]
    fn legacy_marker_is_flagged() {
        let src = "fn f() { y(); } // lint:allow-panic — old form\n";
        let r = check_one("crates/core/src/x.rs", src);
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].rule, "SL000");
        assert!(r.findings[0].message.contains("legacy"));
    }

    #[test]
    fn out_of_scope_paths_only_get_sl005() {
        let src = "fn f() { x.unwrap(); let p = unsafe { y() }; }\n";
        let r = check_one("crates/bench/src/x.rs", src);
        let rules: Vec<&str> = r.findings.iter().map(|f| f.rule).collect();
        assert_eq!(rules, vec!["SL005"]);
    }

    #[test]
    fn report_json_has_findings_and_stats() {
        let src = "fn f() { panic!(\"no\"); }\n";
        let r = check_one("src/lib.rs", src);
        let json = r.to_json();
        assert!(json.contains("\"rule\":\"SL001\""));
        assert!(json.contains("\"files\":1"));
        assert!(json.contains("\"duration_ms\""));
        assert!(json.contains("\"cache_hits\":0"));
    }

    #[test]
    fn findings_sorted_by_position() {
        let src = "fn f() { b.unwrap(); }\nfn g() { panic!(\"x\"); }\n";
        let r = check_one("src/lib.rs", src);
        assert_eq!(r.findings.len(), 2);
        assert!(r.findings[0].line < r.findings[1].line);
    }

    #[test]
    fn workspace_findings_flow_through_pragmas() {
        // SL008 is a workspace rule; a reasoned pragma on the discard
        // line must suppress it and count as used.
        let src = "fn f() { let _ = h.join(); // lint:allow(SL008) — best-effort teardown\n}\n";
        let r = check_one("crates/core/src/x.rs", src);
        assert!(r.is_clean(), "unexpected: {:?}", r.findings);
        let bare = "fn f() { let _ = h.join(); }\n";
        let r = check_one("crates/core/src/x.rs", bare);
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].rule, "SL008");
    }

    #[test]
    fn cache_round_trip_reproduces_the_cold_report() {
        let dir =
            std::env::temp_dir().join(format!("sirum-lint-cache-test-{}", std::process::id()));
        let src_dir = dir.join("src");
        fs::create_dir_all(&src_dir).expect("mkdir");
        fs::write(
            src_dir.join("lib.rs"),
            "pub fn f() { x.unwrap(); }\npub fn g() { let _ = h.join(); }\n",
        )
        .expect("write");
        let cold = analyze_tree(&dir, true).expect("cold run");
        assert_eq!(cold.report.cache_hits, 0);
        assert_eq!(cold.report.cache_misses, 1);
        let warm = analyze_tree(&dir, true).expect("warm run");
        assert_eq!(warm.report.cache_hits, 1, "note: {:?}", warm.cache_note);
        assert_eq!(warm.report.cache_misses, 0);
        let render = |r: &Report| {
            r.findings
                .iter()
                .map(Finding::render_human)
                .collect::<Vec<_>>()
        };
        assert_eq!(render(&cold.report), render(&warm.report));
        // Editing the file invalidates its entry.
        fs::write(src_dir.join("lib.rs"), "pub fn f() { ok(); }\n").expect("rewrite");
        let edited = analyze_tree(&dir, true).expect("edited run");
        assert_eq!(edited.report.cache_hits, 0);
        assert!(edited.report.is_clean(), "{:?}", edited.report.findings);
        fs::remove_dir_all(&dir).expect("cleanup");
    }
}
