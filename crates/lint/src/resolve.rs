//! Symbol resolution: the per-file item table the semantic layer is built
//! on. One pass over a [`SourceFile`] yields:
//!
//! * every `fn` with its enclosing `impl` type, return-type shape (does it
//!   yield a `Result`?), test-ness, and the call sites in its body,
//! * `use … as …` aliases and local `type` aliases,
//! * the set of *hash-typed names* (locals, fields, params whose type or
//!   initializer names a `HashMap`/`HashSet`/`FxHashMap`/`FxHashSet`,
//!   directly or through a local `type` alias) — SL007's seed set,
//! * discard sites (`let _ = …;` and terminal `.ok();`) — SL008's seed
//!   set, with the callee recorded for workspace-level return-type lookup.
//!
//! Everything here is name-based token analysis — no type inference. That
//! is exact for this workspace's style (locks and hash containers live in
//! named private fields) and keeps resolution a cheap, total pass: it must
//! never panic, whatever bytes it is fed (proptested).

use std::collections::BTreeSet;

use crate::lexer::TokenKind;
use crate::locks;
use crate::syntax::SourceFile;

/// Container types whose iteration order is hash-dependent.
const HASH_TYPES: &[&str] = &["HashMap", "HashSet", "FxHashMap", "FxHashSet"];

/// Keywords that look like calls when followed by `(`.
const CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "fn", "in", "as", "move", "else", "impl",
    "where", "break",
];

/// One call site inside a fn body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// Callee name (`wait_job` for `self.service.wait_job(…)`).
    pub name: String,
    /// Path qualifier directly before the name (`Rct` for
    /// `Rct::from_partials(…)`, `http` for `http::write_response(…)`).
    pub qualifier: Option<String>,
    /// True for `.name(…)` method calls.
    pub method: bool,
    /// Significant-token index of the callee name.
    pub sig_idx: usize,
    /// 1-based line.
    pub line: u32,
}

/// One `fn` item with everything the workspace layer needs.
#[derive(Debug, Clone)]
pub struct FnSym {
    /// The fn's name.
    pub name: String,
    /// Enclosing `impl` type, when the fn is a method/assoc fn.
    pub impl_type: Option<String>,
    /// Index into [`SourceFile::fns`].
    pub fn_idx: usize,
    /// 1-based line of the name.
    pub line: u32,
    /// Whether the declared return type mentions `Result`.
    pub returns_result: bool,
    /// Whether the fn sits inside a `#[cfg(test)]`/`#[test]` span.
    pub is_test: bool,
    /// Body span (significant-token indices), when present.
    pub body: Option<(usize, usize)>,
    /// Call sites in the body, in token order.
    pub calls: Vec<CallSite>,
    /// Lock acquisitions in the body (identity + guard extent).
    pub locks: Vec<locks::LockAcquisition>,
}

/// A `use path::X as Y;` alias (or local `type Y = …;` alias).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseAlias {
    /// The introduced name.
    pub alias: String,
    /// The last path segment it renames.
    pub target: String,
}

/// What a discard site throws away.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiscardKind {
    /// `let _ = expr;`
    LetUnderscore,
    /// A statement-terminal `.ok();`
    OkDiscard,
}

/// One discarded value (`let _ = …;` / `….ok();`).
#[derive(Debug, Clone)]
pub struct Discard {
    /// Shape of the discard.
    pub kind: DiscardKind,
    /// Last depth-0 callee in the discarded expression, if any.
    pub callee: Option<String>,
    /// The callee's path qualifier (for std-path exemptions).
    pub qualifier: Option<String>,
    /// True when the expression is a `write!`/`writeln!` fmt-to-buffer
    /// macro or a `fmt::Write` call — infallible by construction here.
    pub fmt_exempt: bool,
    /// True inside test code.
    pub is_test: bool,
    /// 1-based position of the discard anchor.
    pub line: u32,
    /// 1-based byte column.
    pub col: u32,
}

/// The per-file symbol table.
#[derive(Debug, Clone, Default)]
pub struct FileSymbols {
    /// Every fn, in source order.
    pub fns: Vec<FnSym>,
    /// Names whose type or initializer is hash-ordered.
    pub hash_names: BTreeSet<String>,
    /// `use … as …` and `type` aliases.
    pub aliases: Vec<UseAlias>,
}

impl FileSymbols {
    /// Build the symbol table for one parsed file.
    pub fn analyze(file: &SourceFile) -> FileSymbols {
        let impls = impl_spans(file);
        let hash_types = local_hash_types(file);
        let mut fns = Vec::new();
        for (fn_idx, info) in file.fns.iter().enumerate() {
            let name = file.sig_text(info.name).to_string();
            let offset = file.sig_offset(info.name);
            let (line, _) = file.pos(offset);
            let impl_type = impls
                .iter()
                .find(|(_, start, end)| info.name > *start && info.name < *end)
                .map(|(ty, _, _)| ty.clone());
            let self_name = impl_type.clone().unwrap_or_default();
            let (calls, locks) = match info.body {
                Some((open, close)) => (
                    call_sites(file, open + 1, close),
                    locks::acquisitions_in(file, open + 1, close, &self_name),
                ),
                None => (Vec::new(), Vec::new()),
            };
            fns.push(FnSym {
                name,
                impl_type,
                fn_idx,
                line,
                returns_result: returns_result(file, info.params.1, info.body),
                is_test: file.in_test(offset),
                body: info.body,
                calls,
                locks,
            });
        }
        FileSymbols {
            fns,
            hash_names: hash_names(file, &hash_types),
            aliases: aliases(file),
        }
    }

    /// Whether `name` is hash-typed in this file.
    pub fn is_hash_name(&self, name: &str) -> bool {
        self.hash_names.contains(name)
    }
}

/// `(type_name, open_brace, close_brace)` of every `impl` block.
fn impl_spans(file: &SourceFile) -> Vec<(String, usize, usize)> {
    let mut spans = Vec::new();
    for i in 0..file.sig.len() {
        if !file.sig_is_ident(i, "impl") {
            continue;
        }
        // Walk the header to its body `{`, tracking the self-type: the
        // path right after `impl` (skipping generics), overridden by the
        // path after a top-level `for` (trait impls).
        let mut j = i + 1;
        let mut angle = 0i32;
        let mut ty: Option<String> = None;
        let mut after_for = false;
        let mut open = None;
        while j < file.sig.len() {
            let text = file.sig_text(j);
            match text {
                "<" => angle += 1,
                ">" => angle -= 1,
                "{" if angle <= 0 => {
                    open = Some(j);
                    break;
                }
                ";" if angle <= 0 => break,
                "for" if angle <= 0 => {
                    after_for = true;
                    ty = None;
                }
                _ => {
                    if ty.is_none()
                        && angle <= 0
                        && matches!(
                            file.sig_kind(j),
                            Some(TokenKind::Ident | TokenKind::RawIdent)
                        )
                        && !matches!(text, "dyn" | "mut" | "const" | "unsafe" | "where")
                    {
                        // Follow `a::b::C` to its last segment.
                        let mut k = j;
                        while file.sig_text(k + 1) == ":"
                            && file.sig_text(k + 2) == ":"
                            && matches!(file.sig_kind(k + 3), Some(TokenKind::Ident))
                        {
                            k += 3;
                        }
                        ty = Some(file.sig_text(k).to_string());
                        let _ = after_for;
                    }
                }
            }
            j += 1;
        }
        if let (Some(ty), Some(open)) = (ty, open) {
            if let Some(close) = file.matching.get(open).copied().flatten() {
                spans.push((ty, open, close));
            }
        }
    }
    spans
}

/// Does the token stretch between the params' `)` and the body carry a
/// `-> … Result … ` return type?
fn returns_result(file: &SourceFile, params_close: usize, body: Option<(usize, usize)>) -> bool {
    let end = body.map(|(open, _)| open).unwrap_or_else(|| {
        let mut k = params_close + 1;
        while k < file.sig.len() && file.sig_text(k) != ";" {
            k += 1;
        }
        k
    });
    let mut saw_arrow = false;
    for j in params_close + 1..end {
        match file.sig_text(j) {
            ">" if file.sig_text(j.wrapping_sub(1)) == "-" => saw_arrow = true,
            "where" => break,
            "Result" if saw_arrow => return true,
            _ => {}
        }
    }
    false
}

/// Call sites in `[start, end)`: `.name(…)` method calls and `name(…)` /
/// `Qual::name(…)` free calls. Macros (`name!(…)`) are not calls.
fn call_sites(file: &SourceFile, start: usize, end: usize) -> Vec<CallSite> {
    let mut out = Vec::new();
    for i in start..end {
        if !matches!(
            file.sig_kind(i),
            Some(TokenKind::Ident | TokenKind::RawIdent)
        ) {
            continue;
        }
        if file.sig_text(i + 1) != "(" {
            continue;
        }
        let name = file.sig_text(i);
        if CALL_KEYWORDS.contains(&name) {
            continue;
        }
        let method = i > 0 && file.sig_text(i - 1) == ".";
        let mut qualifier = None;
        if !method
            && i >= 3
            && file.sig_text(i - 1) == ":"
            && file.sig_text(i - 2) == ":"
            && matches!(file.sig_kind(i - 3), Some(TokenKind::Ident))
        {
            qualifier = Some(file.sig_text(i - 3).to_string());
        }
        let (line, _) = file.pos(file.sig_offset(i));
        out.push(CallSite {
            name: name.to_string(),
            qualifier,
            method,
            sig_idx: i,
            line,
        });
    }
    out
}

/// Local `type X = …;` aliases whose right-hand side names a hash type.
fn local_hash_types(file: &SourceFile) -> BTreeSet<String> {
    let mut out: BTreeSet<String> = BTreeSet::new();
    for i in 0..file.sig.len() {
        if !file.sig_is_ident(i, "type") || !matches!(file.sig_kind(i + 1), Some(TokenKind::Ident))
        {
            continue;
        }
        let alias = file.sig_text(i + 1);
        let mut j = i + 2;
        let mut is_hash = false;
        while j < file.sig.len() && file.sig_text(j) != ";" {
            if HASH_TYPES.contains(&file.sig_text(j)) {
                is_hash = true;
            }
            j += 1;
        }
        if is_hash {
            out.insert(alias.to_string());
        }
    }
    out
}

/// Containers whose iteration order is deterministic. A name annotated
/// with one of these *anywhere* in the file vetoes its membership in
/// `hash_names`: name resolution here is file-scoped, so two structs
/// reusing a field name (one `HashMap`, one `BTreeMap`) would otherwise
/// smear hash-ness onto the ordered one. Ambiguity silences, never
/// flags.
const ORDERED_TYPES: &[&str] = &["BTreeMap", "BTreeSet", "Vec", "VecDeque"];

/// Names whose declared type or initializer is hash-ordered: `name: …
/// HashMap<…>` annotations (let/field/param) and `name = HashMap::new()`
/// style initializers, including file-local aliases. Names *also*
/// declared with an [`ORDERED_TYPES`] container somewhere in the file
/// are excluded as ambiguous.
fn hash_names(file: &SourceFile, local_aliases: &BTreeSet<String>) -> BTreeSet<String> {
    let is_hash_ty = |t: &str| HASH_TYPES.contains(&t) || local_aliases.contains(t);
    let is_ordered_ty = |t: &str| ORDERED_TYPES.contains(&t);
    let mut hashed = BTreeSet::new();
    let mut ordered = BTreeSet::new();
    for i in 0..file.sig.len() {
        if !matches!(
            file.sig_kind(i),
            Some(TokenKind::Ident | TokenKind::RawIdent)
        ) {
            continue;
        }
        // `name : Type` (not `::`). The first container name inside the
        // annotation window decides: `BTreeMap<K, HashSet<V>>` is
        // ordered at the top level, which is what iteration sees.
        if file.sig_text(i + 1) == ":"
            && file.sig_text(i + 2) != ":"
            && (i == 0 || file.sig_text(i - 1) != ":")
        {
            let mut depth = 0i32;
            for j in i + 2..(i + 34).min(file.sig.len()) {
                match file.sig_text(j) {
                    "<" | "(" | "[" => depth += 1,
                    ">" | ")" | "]" => {
                        if depth == 0 {
                            break;
                        }
                        depth -= 1;
                    }
                    ";" | "=" | "{" => break,
                    "," if depth == 0 => break,
                    t if is_hash_ty(t) => {
                        hashed.insert(file.sig_text(i).to_string());
                        break;
                    }
                    t if is_ordered_ty(t) => {
                        ordered.insert(file.sig_text(i).to_string());
                        break;
                    }
                    _ => {}
                }
            }
        }
        // `name = Type::…`.
        if file.sig_text(i + 1) == "=" && file.sig_text(i + 3) == ":" {
            let ty = file.sig_text(i + 2);
            if is_hash_ty(ty) {
                hashed.insert(file.sig_text(i).to_string());
            } else if is_ordered_ty(ty) {
                ordered.insert(file.sig_text(i).to_string());
            }
        }
    }
    &hashed - &ordered
}

/// `use … as …;` aliases plus local `type` aliases.
fn aliases(file: &SourceFile) -> Vec<UseAlias> {
    let mut out = Vec::new();
    for i in 0..file.sig.len() {
        let in_use_or_type = file.sig_is_ident(i, "as")
            && i >= 1
            && matches!(file.sig_kind(i - 1), Some(TokenKind::Ident))
            && matches!(file.sig_kind(i + 1), Some(TokenKind::Ident));
        if !in_use_or_type {
            continue;
        }
        // Only aliases inside `use` items: scan back to the statement
        // start and require the `use` keyword (casts share the `as`
        // keyword but sit in expressions).
        let stmt = locks::statement_start(file, i);
        if !file.sig_is_ident(stmt, "use") && !(file.sig_is_ident(stmt, "pub")) {
            continue;
        }
        if file.sig_is_ident(stmt, "pub") && !file.sig_is_ident(stmt + 1, "use") {
            continue;
        }
        out.push(UseAlias {
            alias: file.sig_text(i + 1).to_string(),
            target: file.sig_text(i - 1).to_string(),
        });
    }
    out
}

/// Extract every discard site in the file (SL008's raw material).
pub fn discards(file: &SourceFile) -> Vec<Discard> {
    let mut out = Vec::new();
    for i in 0..file.sig.len() {
        // `let _ = expr ;`
        if file.sig_is_ident(i, "let") && file.sig_text(i + 1) == "_" && file.sig_text(i + 2) == "="
        {
            let offset = file.sig_offset(i);
            let (line, col) = file.pos(offset);
            let end = locks::forward_to(file, i + 2, ";");
            let mut callee: Option<(String, Option<String>)> = None;
            let mut fmt_exempt = false;
            let mut depth = 0i32;
            for j in i + 3..end {
                match file.sig_text(j) {
                    "(" | "[" | "{" => {
                        depth += 1;
                        continue;
                    }
                    ")" | "]" | "}" => {
                        depth -= 1;
                        continue;
                    }
                    _ => {}
                }
                if depth != 0 {
                    continue;
                }
                if matches!(file.sig_kind(j), Some(TokenKind::Ident)) {
                    let name = file.sig_text(j);
                    if file.sig_text(j + 1) == "!" {
                        if name == "write" || name == "writeln" {
                            fmt_exempt = true;
                        }
                    } else if file.sig_text(j + 1) == "(" && !CALL_KEYWORDS.contains(&name) {
                        let mut qualifier = None;
                        if j >= 3 && file.sig_text(j - 1) == ":" && file.sig_text(j - 2) == ":" {
                            qualifier = Some(file.sig_text(j - 3).to_string());
                        }
                        // `std::fmt::Write::write_fmt` and friends write
                        // into in-memory buffers; treat any `fmt`-path
                        // call as the infallible formatting idiom.
                        if path_mentions_fmt(file, j) {
                            fmt_exempt = true;
                        }
                        callee = Some((name.to_string(), qualifier));
                    }
                }
            }
            let (callee, qualifier) = match callee {
                Some((n, q)) => (Some(n), q),
                None => (None, None),
            };
            out.push(Discard {
                kind: DiscardKind::LetUnderscore,
                callee,
                qualifier,
                fmt_exempt,
                is_test: file.in_test(offset),
                line,
                col,
            });
        }
        // Statement-terminal `.ok();`
        if file.sig_is_ident(i, "ok")
            && i > 0
            && file.sig_text(i - 1) == "."
            && file.sig_text(i + 1) == "("
            && file.sig_text(i + 2) == ")"
            && file.sig_text(i + 3) == ";"
        {
            let offset = file.sig_offset(i);
            let (line, col) = file.pos(offset);
            out.push(Discard {
                kind: DiscardKind::OkDiscard,
                callee: None,
                qualifier: None,
                fmt_exempt: false,
                is_test: file.in_test(offset),
                line,
                col,
            });
        }
    }
    out
}

/// Does the `::`-path ending at the call name `j` mention `fmt` or
/// `Write` (the `std::fmt::Write::write_fmt` idiom)?
fn path_mentions_fmt(file: &SourceFile, j: usize) -> bool {
    let mut k = j;
    while k >= 3 && file.sig_text(k - 1) == ":" && file.sig_text(k - 2) == ":" {
        k -= 3;
        let seg = file.sig_text(k);
        if seg == "fmt" || seg == "Write" {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(src: &str) -> (SourceFile, FileSymbols) {
        let f = SourceFile::parse("crates/core/src/x.rs", src);
        let s = FileSymbols::analyze(&f);
        (f, s)
    }

    #[test]
    fn fns_get_impl_type_and_return_shape() {
        let (_, s) = sym("impl Frame { fn col(&self) -> &[u32] { &self.c } }\n\
             impl Clone for Wide<T> { fn clone(&self) -> Wide<T> { w() } }\n\
             fn free() -> Result<u32, E> { Ok(1) }\n");
        assert_eq!(s.fns.len(), 3);
        assert_eq!(s.fns[0].impl_type.as_deref(), Some("Frame"));
        assert_eq!(s.fns[1].impl_type.as_deref(), Some("Wide"));
        assert_eq!(s.fns[2].impl_type, None);
        assert!(!s.fns[0].returns_result);
        assert!(s.fns[2].returns_result);
    }

    #[test]
    fn call_sites_capture_methods_and_qualified_calls() {
        let (_, s) = sym("fn f(x: T) { x.step(); Rct::from_partials(x); helper(1); go!(2); }\n");
        let calls: Vec<(&str, bool, Option<&str>)> = s.fns[0]
            .calls
            .iter()
            .map(|c| (c.name.as_str(), c.method, c.qualifier.as_deref()))
            .collect();
        assert_eq!(
            calls,
            vec![
                ("step", true, None),
                ("from_partials", false, Some("Rct")),
                ("helper", false, None),
            ]
        );
    }

    #[test]
    fn hash_names_from_annotations_initializers_and_aliases() {
        let (_, s) = sym("type Lanes = FxHashMap<u64, Agg>;\n\
             struct S { groups: HashMap<u64, G>, order: Vec<u64> }\n\
             fn f() { let mut seen = HashSet::new(); let lanes: Lanes = Lanes::default();\n\
                 let inner: Mutex<FxHashMap<K, V>> = m(); let plain: Vec<u32> = v(); }\n");
        for name in ["groups", "seen", "lanes", "inner"] {
            assert!(s.is_hash_name(name), "{name} missing: {:?}", s.hash_names);
        }
        assert!(!s.is_hash_name("order"));
        assert!(!s.is_hash_name("plain"));
    }

    #[test]
    fn ordered_annotation_elsewhere_vetoes_hash_name() {
        // Two structs in one file reuse a field name; the BTreeMap one
        // must not inherit hash-ness from the HashMap one.
        let (_, s) = sym("struct Cache { entries: HashMap<Key, V> }\n\
             struct Registry { entries: BTreeMap<u64, R> }\n\
             struct Only { lanes: HashMap<u64, L> }\n");
        assert!(!s.is_hash_name("entries"), "{:?}", s.hash_names);
        assert!(s.is_hash_name("lanes"));
    }

    #[test]
    fn use_aliases_recorded_and_casts_ignored() {
        let (_, s) = sym("use a::b::Thing as Alias;\nfn f(x: u64) -> u32 { x as u32 }\n");
        assert_eq!(s.aliases.len(), 1);
        assert_eq!(s.aliases[0].alias, "Alias");
        assert_eq!(s.aliases[0].target, "Thing");
    }

    #[test]
    fn discards_classified() {
        let f = SourceFile::parse(
            "crates/core/src/x.rs",
            "fn f() { let _ = handle.join(); let _ = quiet; let _ = write!(s, \"x\");\n\
             let _ = std::fmt::Write::write_fmt(&mut o, args); r.ok(); }\n",
        );
        let d = discards(&f);
        assert_eq!(d.len(), 5);
        assert_eq!(d[0].callee.as_deref(), Some("join"));
        assert!(!d[0].fmt_exempt);
        assert_eq!(d[1].callee, None);
        assert!(d[2].fmt_exempt);
        assert!(d[3].fmt_exempt);
        assert_eq!(d[4].kind, DiscardKind::OkDiscard);
    }
}
