//! sirum-lint: a hand-rolled, zero-dependency static-analysis pass that
//! enforces the workspace's own invariants — panic-freedom in library
//! code (SL001), cancellation polling in data-scale loops (SL002), no
//! lock guard live across blocking calls (SL003), accept-loop purity
//! (SL004), and no `unsafe` (SL005). See DESIGN.md "Enforced invariants"
//! for the rule-by-rule rationale.
//!
//! Pipeline: [`lexer`] (total, tiling Rust lexer) → [`syntax`]
//! (brackets, test spans, fns, loops, pragmas) → [`rules`] (token/
//! structure passes) → [`driver`] (discovery, suppression, report).

pub mod diag;
pub mod driver;
pub mod lexer;
pub mod rules;
pub mod syntax;

pub use diag::Finding;
pub use driver::{check_paths, check_sources, check_tree, discover_files, Report};
pub use syntax::SourceFile;
