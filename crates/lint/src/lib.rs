//! sirum-lint: a hand-rolled, zero-dependency static-analysis pass that
//! enforces the workspace's own invariants — panic-freedom in library
//! code (SL001), cancellation polling in data-scale loops (SL002), no
//! lock guard live across blocking calls (SL003), accept-loop purity
//! (SL004), no `unsafe` (SL005), no lock-order inversion across the
//! call graph (SL006), no nondeterministic hash-order leaking into
//! output (SL007), and no silently discarded `Result` (SL008). See
//! DESIGN.md "Enforced invariants" for the rule-by-rule rationale.
//!
//! Pipeline: [`lexer`] (total, tiling Rust lexer) → [`syntax`]
//! (brackets, test spans, fns, loops, pragmas) → [`resolve`] (per-file
//! symbol table: fns, impls, calls, aliases, hash-typed names) →
//! per-file [`rules`] → [`callgraph`] (workspace assembly: call
//! resolution, lock-set propagation, lock-order graph) → workspace
//! rules → [`driver`] (discovery, incremental cache, suppression,
//! report). [`locks`] holds the guard-liveness classifier shared by
//! SL003 and the lock summaries; [`jsonio`] is the dependency-free JSON
//! reader/writer behind the cache and graph artifacts.

pub mod callgraph;
pub mod diag;
pub mod driver;
pub mod jsonio;
pub mod lexer;
pub mod locks;
pub mod resolve;
pub mod rules;
pub mod syntax;

pub use diag::Finding;
pub use driver::{
    analyze_paths, analyze_sources, analyze_tree, check_paths, check_sources, check_tree,
    discover_files, Analysis, Report,
};
pub use syntax::SourceFile;
