//! Guard-liveness classification and per-function lock summaries.
//!
//! The liveness classifier models edition-2021 temporary scopes — it was
//! born inside SL003 (lock-across-blocking) and is shared verbatim with
//! the cross-file lock-order analysis (SL006), which reuses it to decide
//! *which calls happen while a guard is held*:
//!
//! * `let g = x.lock();` — named guard, live to the end of the enclosing
//!   block (truncated by `drop(g)`).
//! * `let v = x.lock().take();` — the chain leaves guard-land, so the
//!   temporary guard dies at the `;`.
//! * `if let Some(v) = x.lock().take() { … }` — the *temporary guard*
//!   lives to the end of the whole `if let` (ditto `while let`/`match`
//!   scrutinees).
//! * `if x.lock().is_empty() { … }` — plain `if`/`while` conditions drop
//!   temporaries before the block runs.
//!
//! On top of the classifier, [`acquisitions_in`] summarizes a significant-
//! token range (typically one fn body) into [`LockAcquisition`]s: the lock's
//! *identity* (the receiver field feeding `.lock()`/`.read()`/`.write()`)
//! plus the significant-token range the guard stays live. Lock identity is
//! name-based — `self.inner.core.jobs.lock()` acquires lock `jobs` — which
//! is exact for this workspace's private-field locking style and keeps the
//! analysis a token pass (no type inference).

use crate::lexer::TokenKind;
use crate::syntax::SourceFile;

/// Methods that acquire a guard when called with no arguments.
pub const LOCK_METHODS: &[&str] = &["lock", "read", "write"];

/// Chain methods that still yield the guard (parking_lot has no
/// poisoning; std's `lock().unwrap()` / `unwrap_or_else(PoisonError::
/// into_inner)` idioms preserve the guard too).
pub const GUARD_PRESERVING: &[&str] = &["unwrap", "expect", "unwrap_or_else"];

/// How far the guard born at a given acquisition stays live.
pub enum Liveness {
    /// Named binding: to the end of the enclosing block.
    Block,
    /// `if let`/`while let`/`match` scrutinee temporary: to the end of
    /// the construct (including `else` chains).
    Construct,
    /// Plain statement temporary: to the terminating `;`.
    Statement,
    /// Plain `if`/`while` condition temporary: to the body `{`.
    Condition,
}

/// One lock acquisition with its guard's live extent.
#[derive(Debug, Clone)]
pub struct LockAcquisition {
    /// Lock identity: the receiver ident directly feeding the lock call
    /// (`jobs` for `self.inner.core.jobs.lock()`). For a bare
    /// `self.lock()` helper the caller-provided impl-type name is used.
    pub lock: String,
    /// Significant-token index of the `lock`/`read`/`write` ident.
    pub sig_idx: usize,
    /// 1-based line of the acquisition.
    pub line: u32,
    /// Exclusive significant-token end of the guard's live range.
    pub live_end: usize,
}

/// `.lock()` / `.read()` / `.write()` with empty argument parens — socket
/// `read(buf)`/`write(buf)` take arguments and never match.
pub fn is_lock_acquisition(file: &SourceFile, i: usize) -> bool {
    file.sig_kind(i) == Some(TokenKind::Ident)
        && LOCK_METHODS.contains(&file.sig_text(i))
        && i > 0
        && file.sig_text(i - 1) == "."
        && file.sig_text(i + 1) == "("
        && file.sig_text(i + 2) == ")"
}

/// Scan backward from the acquisition to the statement start: the token
/// after the nearest `;`, `{` (block open) or `}` (prior block close) at
/// the statement's own nesting level.
pub fn statement_start(file: &SourceFile, i: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while j > 0 {
        j -= 1;
        match file.sig_text(j) {
            ")" | "]" => depth += 1,
            "(" | "[" => depth -= 1,
            "}" => {
                if depth == 0 {
                    return j + 1;
                }
                depth += 1;
            }
            "{" => {
                if depth <= 0 {
                    return j + 1;
                }
                depth -= 1;
            }
            ";" if depth <= 0 => return j + 1,
            _ => {}
        }
    }
    0
}

/// Does the method chain after the lock call stay in guard-land? `true`
/// for `.lock()`, `.lock().unwrap()`, …; `false` once any other method
/// (`take`, `len`, …) consumes the guard.
pub fn chain_preserves_guard(file: &SourceFile, i: usize) -> bool {
    let mut j = i + 3; // token after the `)` of the lock call
    loop {
        if file.sig_text(j) != "." {
            return true;
        }
        if GUARD_PRESERVING.contains(&file.sig_text(j + 1)) && file.sig_text(j + 2) == "(" {
            match file.matching.get(j + 2).copied().flatten() {
                Some(close) => j = close + 1,
                None => return false,
            }
        } else {
            return false;
        }
    }
}

/// Classify the guard's liveness from the statement shape.
pub fn classify(file: &SourceFile, stmt_start: usize, i: usize) -> Liveness {
    let first = file.sig_text(stmt_start);
    let second = file.sig_text(stmt_start + 1);
    match first {
        "let" => {
            if chain_preserves_guard(file, i) {
                Liveness::Block
            } else {
                Liveness::Statement
            }
        }
        "if" | "while" if second == "let" => Liveness::Construct,
        "match" => Liveness::Construct,
        "if" | "while" => Liveness::Condition,
        _ => Liveness::Statement,
    }
}

/// Exclusive significant-token end of the guard's live range.
pub fn live_end(file: &SourceFile, i: usize, stmt_start: usize, liveness: &Liveness) -> usize {
    match liveness {
        Liveness::Block => enclosing_block_close(file, i),
        Liveness::Statement => forward_to(file, i, ";"),
        Liveness::Condition => forward_to(file, i, "{"),
        Liveness::Construct => construct_end(file, stmt_start, i),
    }
}

/// First `j > i` where `text` appears at bracket depth 0, else the close
/// of the enclosing block.
pub fn forward_to(file: &SourceFile, i: usize, text: &str) -> usize {
    let mut depth = 0i32;
    let mut j = i + 1;
    while j < file.sig.len() {
        match file.sig_text(j) {
            t if t == text && depth <= 0 => return j,
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                if depth == 0 {
                    return j; // enclosing block closed first
                }
                depth -= 1;
            }
            _ => {}
        }
        j += 1;
    }
    j
}

/// The `}` that closes the block the acquisition sits in.
pub fn enclosing_block_close(file: &SourceFile, i: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i + 1;
    while j < file.sig.len() {
        match file.sig_text(j) {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                if depth == 0 {
                    return j;
                }
                depth -= 1;
            }
            _ => {}
        }
        j += 1;
    }
    j
}

/// End of an `if let`/`while let`/`match` construct: the close of its
/// body block, extended over `else`/`else if` chains.
pub fn construct_end(file: &SourceFile, stmt_start: usize, i: usize) -> usize {
    let open = forward_to(file, i, "{");
    let Some(mut close) = file.matching.get(open).copied().flatten() else {
        return open;
    };
    if file.sig_text(stmt_start) == "if" {
        while file.sig_is_ident(close + 1, "else") {
            let next_open = forward_to(file, close + 1, "{");
            match file.matching.get(next_open).copied().flatten() {
                Some(c) => close = c,
                None => break,
            }
        }
    }
    close + 1
}

/// A named guard freed early by `drop(name)` ends its live range there.
pub fn truncate_at_drop(
    file: &SourceFile,
    stmt_start: usize,
    i: usize,
    end: usize,
    liveness: &Liveness,
) -> usize {
    if !matches!(liveness, Liveness::Block) {
        return end;
    }
    // Binding name for the simple `let [mut] name = …` shape only.
    let mut name_idx = stmt_start + 1;
    if file.sig_text(name_idx) == "mut" {
        name_idx += 1;
    }
    if file.sig_kind(name_idx) != Some(TokenKind::Ident) {
        return end;
    }
    let name = file.sig_text(name_idx).to_string();
    for j in i + 3..end {
        if file.sig_is_ident(j, "drop")
            && file.sig_text(j + 1) == "("
            && file.sig_text(j + 2) == name
            && file.sig_text(j + 3) == ")"
        {
            return j;
        }
    }
    end
}

/// The receiver ident directly feeding a lock call at significant index
/// `i`: the ident at `i - 2` in `recv . lock ( )`. A bare `self` receiver
/// resolves to `self_name` (the enclosing impl type), so `self.lock()`
/// helpers get a stable identity too.
pub fn receiver_name(file: &SourceFile, i: usize, self_name: &str) -> Option<String> {
    if i < 2 {
        return None;
    }
    let r = i - 2;
    if file.sig_kind(r) != Some(TokenKind::Ident) {
        return None;
    }
    let text = file.sig_text(r);
    if text == "self" && (r < 2 || file.sig_text(r - 1) != ".") {
        return Some(self_name.to_string());
    }
    Some(text.to_string())
}

/// Summarize every lock acquisition in the significant-token range
/// `[start, end)` (typically one fn body): lock identity + live extent,
/// with `drop()` truncation applied. `self_name` names the enclosing impl
/// type for bare `self.lock()` receivers.
pub fn acquisitions_in(
    file: &SourceFile,
    start: usize,
    end: usize,
    self_name: &str,
) -> Vec<LockAcquisition> {
    let mut out = Vec::new();
    for i in start..end {
        if !is_lock_acquisition(file, i) {
            continue;
        }
        let Some(lock) = receiver_name(file, i, self_name) else {
            continue;
        };
        let stmt_start = statement_start(file, i);
        let liveness = classify(file, stmt_start, i);
        let live = live_end(file, i, stmt_start, &liveness);
        let live = truncate_at_drop(file, stmt_start, i, live, &liveness).min(end);
        let (line, _) = file.pos(file.sig_offset(i));
        out.push(LockAcquisition {
            lock,
            sig_idx: i,
            line,
            live_end: live,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquisition_summary_captures_identity_and_extent() {
        let src =
            "impl S { fn f(&self) { let g = self.inner.jobs.lock(); step(); drop(g); after(); } }";
        let f = SourceFile::parse("x.rs", src);
        let body = f.fns[0].body.unwrap();
        let acqs = acquisitions_in(&f, body.0, body.1, "S");
        assert_eq!(acqs.len(), 1);
        assert_eq!(acqs[0].lock, "jobs");
        // `drop(g)` truncates the range before `after()`.
        let after_idx = (body.0..body.1)
            .find(|&i| f.sig_is_ident(i, "after"))
            .unwrap();
        assert!(acqs[0].live_end <= after_idx);
    }

    #[test]
    fn bare_self_receiver_uses_impl_type_name() {
        let src = "impl JobShared { fn peek(&self) { let s = self.lock(); s.get(); } }";
        let f = SourceFile::parse("x.rs", src);
        let body = f.fns[0].body.unwrap();
        let acqs = acquisitions_in(&f, body.0, body.1, "JobShared");
        assert_eq!(acqs.len(), 1);
        assert_eq!(acqs[0].lock, "JobShared");
    }

    #[test]
    fn statement_temporary_dies_at_semicolon() {
        let src = "fn f() { let n = q.lock().len(); use_it(n); }";
        let f = SourceFile::parse("x.rs", src);
        let acqs = acquisitions_in(&f, 0, f.sig.len(), "");
        assert_eq!(acqs.len(), 1);
        let use_idx = (0..f.sig.len())
            .find(|&i| f.sig_is_ident(i, "use_it"))
            .unwrap();
        assert!(acqs[0].live_end < use_idx);
    }
}
