//! SL008 — swallowed-result: library code must not silently discard a
//! `Result`. `let _ = fallible();` and statement-terminal `.ok();` erase
//! the only evidence an IO write, channel send, or worker join failed —
//! the exact shape behind PR 8's silent-write-failure fix. Propagate with
//! `?`, record a metric, or log; a genuinely best-effort discard takes a
//! reasoned pragma so the suppression inventory (`sirum-lint --pragmas`)
//! shows *why*.
//!
//! This is a workspace rule: whether the discarded call returns `Result`
//! is answered by the symbol table. A discarded call is flagged when
//! (a) every workspace fn with that name returns `Result`, or (b) the
//! name is a known-fallible std call (`join`, `flush`, `write_all`, …).
//! `write!`/`writeln!` into in-memory buffers and `fmt::Write` calls are
//! exempt (infallible by construction here), as is test code. Discards
//! with no call at all (`let _ = unused;`) are silencing a different
//! lint and stay legal.

use super::{is_library_path, WorkspaceRule};
use crate::callgraph::Workspace;
use crate::diag::Finding;
use crate::resolve::DiscardKind;

/// See module docs.
pub struct SwallowedResult;

/// Std calls that return `Result` and are commonly discarded: thread
/// joins, IO writes/flushes, socket option setters, channel sends,
/// filesystem cleanup.
const STD_FALLIBLE: &[&str] = &[
    "join",
    "flush",
    "write_all",
    "read_exact",
    "read_to_end",
    "read_to_string",
    "send",
    "recv",
    "set_read_timeout",
    "set_write_timeout",
    "set_nodelay",
    "shutdown",
    "remove_file",
    "remove_dir_all",
    "create_dir_all",
    "sync_all",
    "set_len",
];

impl WorkspaceRule for SwallowedResult {
    fn code(&self) -> &'static str {
        "SL008"
    }

    fn describe(&self) -> &'static str {
        "no silently discarded Result (`let _ = fallible()` / terminal `.ok()`) in library code"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        for file in &ws.files {
            if !is_library_path(&file.rel_path) {
                continue;
            }
            for d in &file.discards {
                if d.is_test || d.fmt_exempt {
                    continue;
                }
                match d.kind {
                    DiscardKind::OkDiscard => {
                        out.push(Finding {
                            rule: self.code(),
                            file: file.rel_path.clone(),
                            line: d.line,
                            col: d.col,
                            message: "Result discarded via terminal `.ok()`; propagate \
                                      with `?`, log the error, or justify with a reasoned \
                                      pragma"
                                .to_string(),
                        });
                    }
                    DiscardKind::LetUnderscore => {
                        let Some(callee) = &d.callee else {
                            continue;
                        };
                        let fallible = if STD_FALLIBLE.contains(&callee.as_str()) {
                            true
                        } else {
                            let targets = ws.fns_named(callee);
                            !targets.is_empty()
                                && targets.iter().all(|&id| ws.fn_node(id).returns_result)
                        };
                        if fallible {
                            out.push(Finding {
                                rule: self.code(),
                                file: file.rel_path.clone(),
                                line: d.line,
                                col: d.col,
                                message: format!(
                                    "`let _ =` discards the Result of `{callee}(…)`; \
                                     propagate with `?`, log the error, or justify with \
                                     a reasoned pragma"
                                ),
                            });
                        }
                    }
                }
            }
        }
    }
}
