//! The rule registry. Each rule is a token/structure pass over one
//! [`SourceFile`]; the driver decides applicability from the workspace-
//! relative path, runs `check`, then applies pragma suppression.
//!
//! Adding a rule: create `rules/slNNN.rs` implementing [`Rule`], register
//! it in [`all`] and [`known_rule`], add `fixtures/slNNN_{bad,ok}.rs` with
//! a case in `tests/fixtures.rs`, and document the invariant in DESIGN.md.

use crate::callgraph::Workspace;
use crate::diag::Finding;
use crate::resolve::FileSymbols;
use crate::syntax::SourceFile;

mod sl001;
mod sl002;
mod sl003;
mod sl004;
mod sl005;
mod sl006;
mod sl007;
mod sl008;

/// One per-file static-analysis rule.
pub trait Rule {
    /// Stable code, e.g. `"SL001"`.
    fn code(&self) -> &'static str;
    /// One-line description shown by `--list-rules`.
    fn describe(&self) -> &'static str;
    /// Whether this rule runs on the file at this workspace-relative path.
    fn applies(&self, rel_path: &str) -> bool;
    /// Scan the file, pushing findings.
    fn check(&self, file: &SourceFile, sym: &FileSymbols, out: &mut Vec<Finding>);
}

/// One workspace rule: runs once over the resolved workspace (built from
/// per-file summaries, fresh or cached), not per file.
pub trait WorkspaceRule {
    /// Stable code, e.g. `"SL006"`.
    fn code(&self) -> &'static str;
    /// One-line description shown by `--list-rules`.
    fn describe(&self) -> &'static str;
    /// Scan the workspace, pushing findings.
    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>);
}

/// Every registered per-file rule, in code order.
pub fn all() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(sl001::PanicFreedom),
        Box::new(sl002::CancellationPoll),
        Box::new(sl003::LockAcrossBlocking),
        Box::new(sl004::AcceptLoopPurity),
        Box::new(sl005::UnsafeForbidden),
        Box::new(sl007::NondeterministicIteration),
    ]
}

/// Every registered workspace rule, in code order.
pub fn workspace_rules() -> Vec<Box<dyn WorkspaceRule>> {
    vec![
        Box::new(sl006::LockOrderInversion),
        Box::new(sl008::SwallowedResult),
    ]
}

/// Whether `code` names a registered rule (pragmas citing anything else
/// are themselves diagnosed). `SL000` is the pragma-hygiene pseudo-rule —
/// it cannot be suppressed, so it is not "known" for pragma purposes.
pub fn known_rule(code: &str) -> bool {
    matches!(
        code,
        "SL001" | "SL002" | "SL003" | "SL004" | "SL005" | "SL006" | "SL007" | "SL008"
    )
}

/// The `&'static str` form of a known rule code (cached findings store
/// codes as strings; findings carry statics).
pub fn static_code(code: &str) -> Option<&'static str> {
    match code {
        "SL000" => Some(crate::driver::HYGIENE),
        "SL001" => Some("SL001"),
        "SL002" => Some("SL002"),
        "SL003" => Some("SL003"),
        "SL004" => Some("SL004"),
        "SL005" => Some("SL005"),
        "SL006" => Some("SL006"),
        "SL007" => Some("SL007"),
        "SL008" => Some("SL008"),
        _ => None,
    }
}

/// Library and facade paths whose non-test code must be panic-free
/// (SL001). `crates/bench` and `crates/baselines` are harness/reference
/// code and exempt, exactly like under the retired grep gate; the lint
/// crate holds itself to the same standard.
pub(crate) fn is_library_path(rel_path: &str) -> bool {
    rel_path.starts_with("crates/core/src/")
        || rel_path.starts_with("crates/dataflow/src/")
        || rel_path.starts_with("crates/table/src/")
        || rel_path.starts_with("crates/lint/src/")
        || rel_path.starts_with("src/")
}

/// Significant-token ranges covering the arguments of `spawn(…)` calls.
/// Closures passed to `spawn` run on another thread, so blocking calls
/// inside them do not block the *current* thread — SL003/SL004 mask
/// these ranges out.
pub(crate) fn spawn_arg_spans(file: &SourceFile) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    for i in 0..file.sig.len() {
        if file.sig_is_ident(i, "spawn") && file.sig_text(i + 1) == "(" {
            if let Some(close) = file.matching.get(i + 1).copied().flatten() {
                spans.push((i + 1, close));
            }
        }
    }
    spans
}

/// Whether significant index `i` falls strictly inside one of `spans`.
pub(crate) fn in_spans(i: usize, spans: &[(usize, usize)]) -> bool {
    spans.iter().any(|&(open, close)| i > open && i < close)
}

/// Shared helper: push a finding anchored at significant token `i`.
pub(crate) fn finding_at(
    file: &SourceFile,
    sig_idx: usize,
    rule: &'static str,
    message: String,
    out: &mut Vec<Finding>,
) {
    let offset = file.sig_offset(sig_idx);
    let (line, col) = file.pos(offset);
    out.push(Finding {
        rule,
        file: file.rel_path.clone(),
        line,
        col,
        message,
    });
}
