//! SL001 — panic-freedom: no reachable panic machinery in non-test
//! library and facade code. Supersedes `scripts/lint-panics.sh` with
//! token-accurate detection: strings, comments and idents like
//! `unwrap_or_else` can no longer false-positive, and code *after* a
//! `#[cfg(test)]` item is no longer silently skipped the way the awk
//! gate's scan-cutoff skipped it.
//!
//! Flagged forms: `panic!`, `todo!`, `unimplemented!`, `.unwrap()`,
//! `.expect(…)`, and bare `assert!`/`assert_eq!`/`assert_ne!`.
//! Deliberately out of scope, as before: `debug_assert*` and
//! `unreachable!` — those document internal logic errors, not
//! user-input-reachable failures, and converting them to `Result`s would
//! only bury corruption.

use super::{finding_at, Rule};
use crate::diag::Finding;
use crate::lexer::TokenKind;
use crate::resolve::FileSymbols;
use crate::syntax::SourceFile;

/// See module docs.
pub struct PanicFreedom;

const ASSERTS: &[&str] = &["assert", "assert_eq", "assert_ne"];
const PANICS: &[&str] = &["panic", "todo", "unimplemented"];

impl Rule for PanicFreedom {
    fn code(&self) -> &'static str {
        "SL001"
    }

    fn describe(&self) -> &'static str {
        "no panic!/todo!/unimplemented!/unwrap()/expect()/bare assert! in non-test library+facade code"
    }

    fn applies(&self, rel_path: &str) -> bool {
        super::is_library_path(rel_path)
    }

    fn check(&self, file: &SourceFile, _sym: &FileSymbols, out: &mut Vec<Finding>) {
        for i in 0..file.sig.len() {
            if file.sig_kind(i) != Some(TokenKind::Ident) {
                continue;
            }
            if file.in_test(file.sig_offset(i)) {
                continue;
            }
            let text = file.sig_text(i);
            let next = file.sig_text(i + 1);
            if PANICS.contains(&text) && next == "!" {
                finding_at(
                    file,
                    i,
                    self.code(),
                    format!(
                        "`{text}!` in library code; return a typed error \
                         (TableError / DataflowError / SirumError) instead"
                    ),
                    out,
                );
            } else if text == "unwrap" && next == "(" && file.sig_text(i + 2) == ")" {
                finding_at(
                    file,
                    i,
                    self.code(),
                    "`.unwrap()` in library code; propagate with `?` or map to a typed error"
                        .to_string(),
                    out,
                );
            } else if text == "expect" && next == "(" && file.sig_text(i.wrapping_sub(1)) != "[" {
                // The `sig_text(i-1) != "["` guard spares the `#[expect(…)]`
                // lint attribute.
                finding_at(
                    file,
                    i,
                    self.code(),
                    "`.expect(…)` in library code; propagate with `?` or map to a typed error"
                        .to_string(),
                    out,
                );
            } else if ASSERTS.contains(&text) && next == "!" {
                finding_at(
                    file,
                    i,
                    self.code(),
                    format!(
                        "bare `{text}!` in library code; use a typed error for \
                         user-reachable conditions, or justify an internal invariant \
                         with `// lint:allow(SL001) — <reason>`"
                    ),
                    out,
                );
            }
        }
    }
}
