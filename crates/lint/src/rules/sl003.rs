//! SL003 — lock-across-blocking: a mutex/rwlock guard must not be live
//! across a blocking call. Holding a parking_lot guard over `recv(…)`,
//! `JobHandle::wait(…)`, socket IO, or a thread join turns one slow
//! client into a lock-convoy for everyone else — and in the worst case
//! (the pool waiting on a job that needs the pool's own lock) a deadlock.
//!
//! The classifier models edition-2021 temporary scopes, because that is
//! where the real bugs hide:
//!
//! * `let g = x.lock();` — named guard, live to the end of the enclosing
//!   block (truncated by `drop(g)`).
//! * `let v = x.lock().take();` — the chain leaves guard-land, so the
//!   temporary guard dies at the `;`.
//! * `if let Some(v) = x.lock().take() { … }` — the *temporary guard*
//!   lives to the end of the whole `if let` (ditto `while let`/`match`
//!   scrutinees). This is the subtle one: the binding is not a guard,
//!   but the lock is still held inside the block.
//! * `if x.lock().is_empty() { … }` — plain `if`/`while` conditions drop
//!   temporaries before the block runs; only the condition itself is
//!   checked.
//!
//! Scope: the service/session layer and the dataflow engine — the files
//! that mix locks with channels, condvars, sockets and joins.

use super::{finding_at, Rule};
use crate::diag::Finding;
use crate::lexer::TokenKind;
use crate::syntax::SourceFile;

/// See module docs.
pub struct LockAcrossBlocking;

/// Methods that acquire a guard when called with no arguments.
const LOCK_METHODS: &[&str] = &["lock", "read", "write"];

/// Chain methods that still yield the guard (parking_lot has no
/// poisoning; std's `lock().unwrap()` / `unwrap_or_else(PoisonError::
/// into_inner)` idioms preserve the guard too).
const GUARD_PRESERVING: &[&str] = &["unwrap", "expect", "unwrap_or_else"];

/// Calls that can block the thread: condvar/channel waits, accepts,
/// joins, sleeps, socket IO, and the service layer's own job-pool and
/// mining entry points.
const BLOCKING: &[&str] = &[
    "wait",
    "wait_timeout",
    "recv",
    "recv_timeout",
    "recv_deadline",
    "accept",
    "join",
    "sleep",
    "park",
    "read_exact",
    "read_to_end",
    "read_to_string",
    "write_all",
    "flush",
    "submit",
    "send",
    "ingest",
    "mine_more",
];

/// How far the guard born at a given acquisition stays live.
enum Liveness {
    /// Named binding: to the end of the enclosing block.
    Block,
    /// `if let`/`while let`/`match` scrutinee temporary: to the end of
    /// the construct (including `else` chains).
    Construct,
    /// Plain statement temporary: to the terminating `;`.
    Statement,
    /// Plain `if`/`while` condition temporary: to the body `{`.
    Condition,
}

impl Rule for LockAcrossBlocking {
    fn code(&self) -> &'static str {
        "SL003"
    }

    fn describe(&self) -> &'static str {
        "no lock guard live across a blocking call (condvar/channel wait, accept, join, IO, job submit)"
    }

    fn applies(&self, rel_path: &str) -> bool {
        rel_path == "src/service.rs"
            || rel_path.starts_with("src/net/")
            || rel_path == "crates/dataflow/src/engine.rs"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        let spawned = super::spawn_arg_spans(file);
        for i in 0..file.sig.len() {
            if !is_lock_acquisition(file, i) || file.in_test(file.sig_offset(i)) {
                continue;
            }
            let stmt_start = statement_start(file, i);
            let liveness = classify(file, stmt_start, i);
            let end = live_end(file, i, stmt_start, &liveness);
            let end = truncate_at_drop(file, stmt_start, i, end, &liveness);
            let (guard_line, _) = file.pos(file.sig_offset(i));
            for j in i + 3..end {
                if file.sig_kind(j) == Some(TokenKind::Ident)
                    && BLOCKING.contains(&file.sig_text(j))
                    && file.sig_text(j + 1) == "("
                    && !super::in_spans(j, &spawned)
                {
                    finding_at(
                        file,
                        j,
                        self.code(),
                        format!(
                            "blocking call `{}(…)` while the guard from `.{}()` \
                             (line {}) is still live; drop or scope the guard first",
                            file.sig_text(j),
                            file.sig_text(i),
                            guard_line
                        ),
                        out,
                    );
                }
            }
        }
    }
}

/// `.lock()` / `.read()` / `.write()` with empty argument parens — socket
/// `read(buf)`/`write(buf)` take arguments and never match.
fn is_lock_acquisition(file: &SourceFile, i: usize) -> bool {
    file.sig_kind(i) == Some(TokenKind::Ident)
        && LOCK_METHODS.contains(&file.sig_text(i))
        && i > 0
        && file.sig_text(i - 1) == "."
        && file.sig_text(i + 1) == "("
        && file.sig_text(i + 2) == ")"
}

/// Scan backward from the acquisition to the statement start: the token
/// after the nearest `;`, `{` (block open) or `}` (prior block close) at
/// the statement's own nesting level.
fn statement_start(file: &SourceFile, i: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while j > 0 {
        j -= 1;
        match file.sig_text(j) {
            ")" | "]" => depth += 1,
            "(" | "[" => depth -= 1,
            "}" => {
                if depth == 0 {
                    return j + 1;
                }
                depth += 1;
            }
            "{" => {
                if depth <= 0 {
                    return j + 1;
                }
                depth -= 1;
            }
            ";" if depth <= 0 => return j + 1,
            _ => {}
        }
    }
    0
}

/// Does the method chain after the lock call stay in guard-land? `true`
/// for `.lock()`, `.lock().unwrap()`, …; `false` once any other method
/// (`take`, `len`, …) consumes the guard.
fn chain_preserves_guard(file: &SourceFile, i: usize) -> bool {
    let mut j = i + 3; // token after the `)` of the lock call
    loop {
        if file.sig_text(j) != "." {
            return true;
        }
        if GUARD_PRESERVING.contains(&file.sig_text(j + 1)) && file.sig_text(j + 2) == "(" {
            match file.matching.get(j + 2).copied().flatten() {
                Some(close) => j = close + 1,
                None => return false,
            }
        } else {
            return false;
        }
    }
}

fn classify(file: &SourceFile, stmt_start: usize, i: usize) -> Liveness {
    let first = file.sig_text(stmt_start);
    let second = file.sig_text(stmt_start + 1);
    match first {
        "let" => {
            if chain_preserves_guard(file, i) {
                Liveness::Block
            } else {
                Liveness::Statement
            }
        }
        "if" | "while" if second == "let" => Liveness::Construct,
        "match" => Liveness::Construct,
        "if" | "while" => Liveness::Condition,
        _ => Liveness::Statement,
    }
}

/// Exclusive significant-token end of the guard's live range.
fn live_end(file: &SourceFile, i: usize, stmt_start: usize, liveness: &Liveness) -> usize {
    match liveness {
        Liveness::Block => enclosing_block_close(file, i),
        Liveness::Statement => forward_to(file, i, ";"),
        Liveness::Condition => forward_to(file, i, "{"),
        Liveness::Construct => construct_end(file, stmt_start, i),
    }
}

/// First `j > i` where `text` appears at bracket depth 0, else the close
/// of the enclosing block.
fn forward_to(file: &SourceFile, i: usize, text: &str) -> usize {
    let mut depth = 0i32;
    let mut j = i + 1;
    while j < file.sig.len() {
        match file.sig_text(j) {
            t if t == text && depth <= 0 => return j,
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                if depth == 0 {
                    return j; // enclosing block closed first
                }
                depth -= 1;
            }
            _ => {}
        }
        j += 1;
    }
    j
}

/// The `}` that closes the block the acquisition sits in.
fn enclosing_block_close(file: &SourceFile, i: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i + 1;
    while j < file.sig.len() {
        match file.sig_text(j) {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                if depth == 0 {
                    return j;
                }
                depth -= 1;
            }
            _ => {}
        }
        j += 1;
    }
    j
}

/// End of an `if let`/`while let`/`match` construct: the close of its
/// body block, extended over `else`/`else if` chains.
fn construct_end(file: &SourceFile, stmt_start: usize, i: usize) -> usize {
    let open = forward_to(file, i, "{");
    let Some(mut close) = file.matching.get(open).copied().flatten() else {
        return open;
    };
    if file.sig_text(stmt_start) == "if" {
        while file.sig_is_ident(close + 1, "else") {
            let next_open = forward_to(file, close + 1, "{");
            match file.matching.get(next_open).copied().flatten() {
                Some(c) => close = c,
                None => break,
            }
        }
    }
    close + 1
}

/// A named guard freed early by `drop(name)` ends its live range there.
fn truncate_at_drop(
    file: &SourceFile,
    stmt_start: usize,
    i: usize,
    end: usize,
    liveness: &Liveness,
) -> usize {
    if !matches!(liveness, Liveness::Block) {
        return end;
    }
    // Binding name for the simple `let [mut] name = …` shape only.
    let mut name_idx = stmt_start + 1;
    if file.sig_text(name_idx) == "mut" {
        name_idx += 1;
    }
    if file.sig_kind(name_idx) != Some(TokenKind::Ident) {
        return end;
    }
    let name = file.sig_text(name_idx).to_string();
    for j in i + 3..end {
        if file.sig_is_ident(j, "drop")
            && file.sig_text(j + 1) == "("
            && file.sig_text(j + 2) == name
            && file.sig_text(j + 3) == ")"
        {
            return j;
        }
    }
    end
}
