//! SL003 — lock-across-blocking: a mutex/rwlock guard must not be live
//! across a blocking call. Holding a parking_lot guard over `recv(…)`,
//! `JobHandle::wait(…)`, socket IO, or a thread join turns one slow
//! client into a lock-convoy for everyone else — and in the worst case
//! (the pool waiting on a job that needs the pool's own lock) a deadlock.
//!
//! The guard-liveness classifier lives in [`crate::locks`] (it is shared
//! with SL006's cross-file lock-order analysis); see its module docs for
//! the edition-2021 temporary-scope model.
//!
//! Scope: the service/session layer and the dataflow engine — the files
//! that mix locks with channels, condvars, sockets and joins.

use super::{finding_at, Rule};
use crate::diag::Finding;
use crate::lexer::TokenKind;
use crate::locks;
use crate::resolve::FileSymbols;
use crate::syntax::SourceFile;

/// See module docs.
pub struct LockAcrossBlocking;

/// Calls that can block the thread: condvar/channel waits, accepts,
/// joins, sleeps, socket IO, and the service layer's own job-pool and
/// mining entry points.
const BLOCKING: &[&str] = &[
    "wait",
    "wait_timeout",
    "recv",
    "recv_timeout",
    "recv_deadline",
    "accept",
    "join",
    "sleep",
    "park",
    "read_exact",
    "read_to_end",
    "read_to_string",
    "write_all",
    "flush",
    "submit",
    "send",
    "ingest",
    "mine_more",
];

impl Rule for LockAcrossBlocking {
    fn code(&self) -> &'static str {
        "SL003"
    }

    fn describe(&self) -> &'static str {
        "no lock guard live across a blocking call (condvar/channel wait, accept, join, IO, job submit)"
    }

    fn applies(&self, rel_path: &str) -> bool {
        rel_path == "src/service.rs"
            || rel_path.starts_with("src/net/")
            || rel_path == "crates/dataflow/src/engine.rs"
    }

    fn check(&self, file: &SourceFile, _sym: &FileSymbols, out: &mut Vec<Finding>) {
        let spawned = super::spawn_arg_spans(file);
        for i in 0..file.sig.len() {
            if !locks::is_lock_acquisition(file, i) || file.in_test(file.sig_offset(i)) {
                continue;
            }
            let stmt_start = locks::statement_start(file, i);
            let liveness = locks::classify(file, stmt_start, i);
            let end = locks::live_end(file, i, stmt_start, &liveness);
            let end = locks::truncate_at_drop(file, stmt_start, i, end, &liveness);
            let (guard_line, _) = file.pos(file.sig_offset(i));
            for j in i + 3..end {
                if file.sig_kind(j) == Some(TokenKind::Ident)
                    && BLOCKING.contains(&file.sig_text(j))
                    && file.sig_text(j + 1) == "("
                    && !super::in_spans(j, &spawned)
                {
                    finding_at(
                        file,
                        j,
                        self.code(),
                        format!(
                            "blocking call `{}(…)` while the guard from `.{}()` \
                             (line {}) is still live; drop or scope the guard first",
                            file.sig_text(j),
                            file.sig_text(i),
                            guard_line
                        ),
                        out,
                    );
                }
            }
        }
    }
}
