//! SL006 — lock-order-inversion: no cycle in the workspace lock-order
//! graph. Two threads taking the same pair of locks in opposite orders is
//! the classic ABBA deadlock; with parking_lot's non-reentrant locks,
//! even a *self*-cycle (a fn acquiring a lock its own callee acquires
//! again) deadlocks a single thread. Single-file rules cannot see either:
//! the two halves of an inversion typically live in different functions,
//! often different files.
//!
//! The analysis (in [`crate::callgraph`]): per-fn lock summaries from the
//! shared guard-liveness classifier → held-lock sets propagated through
//! resolved calls to a fixpoint → ordering edges `A→B` wherever `B` is
//! acquired (directly or transitively) while `A` is held → elementary
//! cycles, each reported once with every edge's full witness path
//! (`f acquires A → calls g → g acquires B` vs the reverse elsewhere).
//!
//! A finding anchors at the outer acquisition of the cycle's first edge;
//! suppress there if the cycle is intentional (and say why).

use super::WorkspaceRule;
use crate::callgraph::Workspace;
use crate::diag::Finding;

/// See module docs.
pub struct LockOrderInversion;

impl WorkspaceRule for LockOrderInversion {
    fn code(&self) -> &'static str {
        "SL006"
    }

    fn describe(&self) -> &'static str {
        "no cycle in the cross-function lock-order graph (reported with full witness paths)"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        let graph = ws.lock_graph();
        for cycle in graph.cycles() {
            let first = &graph.edges[cycle.edges[0]];
            let nodes: Vec<String> = cycle
                .edges
                .iter()
                .map(|&ei| Workspace::lock_display(&graph.edges[ei].from))
                .collect();
            let witnesses: Vec<String> = cycle
                .edges
                .iter()
                .map(|&ei| graph.edges[ei].witness.clone())
                .collect();
            let message = if cycle.edges.len() == 1 && first.from == first.to {
                format!(
                    "reentrant lock acquisition of {}: {} — parking_lot locks are \
                     not reentrant, this deadlocks a single thread",
                    Workspace::lock_display(&first.from),
                    first.witness
                )
            } else {
                format!(
                    "lock-order inversion across {}: [{}]",
                    nodes.join(" → "),
                    witnesses.join("] vs [")
                )
            };
            out.push(Finding {
                rule: self.code(),
                file: first.file.clone(),
                line: first.line,
                col: 1,
                message,
            });
        }
    }
}
